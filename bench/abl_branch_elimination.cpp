// Ablation (paper §3.1): what to do with conditional branches inside a
// collapsible region. The paper names two options — eliminate them and
// rely on a statistical branch probability (their choice), or keep them
// (the "more precise approach", via user directives). We compare three
// policies on a loop nest whose branch takes its hot path 1/3 of the
// time:
//   1. statistical elimination with the default probability (0.5),
//   2. statistical elimination with a *profiled* probability,
//   3. retaining the branch (slice keeps the condition computation).
#include "apps/tomcatv.hpp"  // for machine specs only
#include "bench/common.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_branchy(std::int64_t n, std::int64_t iters) {
  ir::ProgramBuilder b("branchy");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr N = b.decl_int("N", I(n));
  Expr reps = b.decl_int("REPS", I(iters));
  b.decl_array("A", {N});

  b.for_loop("r", I(1), reps, [&](Expr) {
    // Ring shift keeps communication in the program so the loop over i is
    // inside a retained region boundary.
    b.if_then(sym::lt(myid, P - 1),
              [&] { b.send("A", myid + 1, I(64), I(0), 1); });
    b.if_then(sym::gt(myid, I(0)),
              [&] { b.recv("A", myid - 1, I(64), I(0), 1); });

    b.for_loop("i", I(1), N, [&](Expr i) {
      b.if_then_else(
          sym::eq(sym::imod(i, I(3)), I(0)),
          [&] {
            ir::KernelSpec heavy;
            heavy.task = "heavy";
            heavy.iters = I(900);
            heavy.flops_per_iter = 8.0;
            heavy.reads = {"A"};
            heavy.writes = {"A"};
            b.compute(std::move(heavy));
          },
          [&] {
            ir::KernelSpec light;
            light.task = "light";
            light.iters = I(100);
            light.flops_per_iter = 2.0;
            light.reads = {"A"};
            light.writes = {"A"};
            b.compute(std::move(light));
          });
    });
  });
  return b.take();
}

double am_prediction(const ir::Program& prog, const core::CompileOptions& copt,
                     int procs, const harness::MachineSpec& machine) {
  auto compiled = core::compile(prog, copt);
  const auto params = harness::calibrate(compiled.timer_program, procs, machine);
  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  return harness::run_program(compiled.simplified.program, cfg)
      .predicted_seconds();
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const int procs = 8;
  ir::Program prog = make_branchy(/*n=*/3000, /*iters=*/20);

  // Reference: direct execution (exact branch outcomes).
  harness::RunConfig de_cfg;
  de_cfg.nprocs = procs;
  de_cfg.machine = machine;
  de_cfg.mode = harness::Mode::kDirectExec;
  const double de = harness::run_program(prog, de_cfg).predicted_seconds();

  // Policy 1: default probability 0.5.
  core::CompileOptions p_default;

  // Policy 2: profiled probabilities from one direct run.
  ir::BranchProfiler profiler;
  harness::run_program(prog, de_cfg, nullptr, &profiler);
  core::CompileOptions p_profiled;
  p_profiled.codegen.branch_probs = profiler.probabilities();

  // Policy 3: retain all branches (and the computation feeding them).
  core::CompileOptions p_retain;
  p_retain.slice.retain_all_branches = true;

  // Policy 4: a user directive naming just the data-dependent branch
  // (§3.1's "more precise approach ... specify through directives").
  core::CompileOptions p_directive;
  for (const auto& [stmt_id, prob] : p_profiled.codegen.branch_probs) {
    // The profiled branches are exactly the interesting ones here; a real
    // user would name them in the source.
    if (prob > 0.0 && prob < 1.0) {
      p_directive.slice.retained_branch_ids.insert(stmt_id);
    }
  }

  print_experiment_header(
      std::cout, "Ablation: branch elimination",
      "Eliminated-branch handling for collapsible regions (paper 3.1)",
      {"branch takes the 9x-heavier path on 1/3 of iterations",
       "reference: MPI-SIM-DE prediction " + TablePrinter::fmt(de, 4) + " s",
       "expected: default-probability misestimates; profiling fixes it;",
       "retained branches are exact but keep more of the program"});

  TablePrinter t({"policy", "AM prediction (s)", "error vs DE"});
  struct Case { const char* name; core::CompileOptions opt; };
  for (auto& [name, opt] :
       {Case{"statistical, p = 0.5 (default)", p_default},
        Case{"statistical, profiled p", p_profiled},
        Case{"all branches retained", p_retain},
        Case{"directive: retain the hot branch only", p_directive}}) {
    const double am = am_prediction(prog, opt, procs, machine);
    t.add_row({name, TablePrinter::fmt(am, 4),
               TablePrinter::fmt_percent(relative_error(am, de))});
  }
  std::cout << t.to_ascii();
  return 0;
}
