// Ablation (paper §3.3/§4.2): how well do w_i parameters measured at one
// configuration transfer to others? The paper's scaling functions ignore
// cache working sets, so transferring w_i across process counts (which
// changes the per-process working set) is the main source of AM error.
// We calibrate Tomcatv at several process counts and predict at others,
// and repeat on a machine with a flat (cache-less) cost model, where the
// transfer should be nearly perfect.
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

double am_error_at(const benchx::ProgramFactory& make, int procs,
                   const harness::MachineSpec& machine,
                   const std::map<std::string, double>& params) {
  benchx::PointOptions opts;
  opts.run_de = false;
  auto p = benchx::validate_point(make, procs, machine, params, opts);
  return p.am_error_vs_measured();
}

}  // namespace

int main() {
  apps::TomcatvConfig cfg;
  cfg.n = 1024;
  cfg.iterations = 3;
  const benchx::ProgramFactory make = [&](int) {
    return apps::make_tomcatv(cfg);
  };

  harness::MachineSpec cached = harness::ibm_sp_machine();
  harness::MachineSpec flat = cached;
  flat.name = "IBM SP (flat cost model)";
  flat.compute.cache_penalty = 0.0;

  print_experiment_header(
      std::cout, "Ablation: calibration transfer",
      "w_i measured at one process count, applied at others (Tomcatv)",
      {"per-process working set shrinks as processes grow, shifting the",
       "true per-iteration time; the constant-w_i model cannot follow it",
       "expected: error grows with distance from the calibration point,",
       "and vanishes when the machine has no cache nonlinearity"});

  TablePrinter t({"machine", "calibrated at", "err @4", "err @16", "err @64"});
  for (const auto* machine : {&cached, &flat}) {
    for (int calib : {4, 16, 64}) {
      const auto params = benchx::calibrate_at(make, calib, *machine);
      std::vector<std::string> row{machine->name,
                                   TablePrinter::fmt_int(calib) + " procs"};
      for (int procs : {4, 16, 64}) {
        row.push_back(TablePrinter::fmt_percent(
            am_error_at(make, procs, *machine, params)));
      }
      t.add_row(std::move(row));
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
