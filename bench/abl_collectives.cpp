// Ablation: collective algorithm choice under the same point-to-point
// model. smpi builds collectives from point-to-point messages (binomial
// trees / dissemination), so their cost emerges from the network model —
// this bench contrasts that with naive root-sequential algorithms, which
// is the difference between O(log P) and O(P) critical paths.
#include "bench/common.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_collective_micro(int rounds) {
  ir::ProgramBuilder b("coll_micro");
  b.get_size("P");
  b.get_rank("myid");
  b.decl_real("x", Expr::real(1.0));
  b.decl_array("buf", {I(1024)});
  b.for_loop("r", I(1), I(rounds), [&](Expr) {
    b.barrier();
    b.allreduce_sum("x");
    b.bcast("buf", I(0), I(1024), I(0));
  });
  return b.take();
}

double run_with(bool linear, int procs, const harness::MachineSpec& machine,
                const ir::Program& prog) {
  smpi::World::Options wopts;
  wopts.net = machine.net;
  wopts.compute = machine.compute;
  wopts.linear_collectives = linear;
  smpi::World world(wopts, procs);

  simk::EngineConfig ec;
  ec.num_processes = procs;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    ir::execute(prog, comm);
  });
  return vtime_to_sec(engine.run().completion);
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const int rounds = 10;
  ir::Program prog = make_collective_micro(rounds);

  print_experiment_header(
      std::cout, "Ablation: collective algorithms",
      "Tree-based vs root-sequential collectives (10x barrier+allreduce+bcast)",
      {"both run on the identical point-to-point network model",
       "expected: tree time grows ~log P, linear time grows ~P"});

  TablePrinter t({"procs", "tree (s)", "linear (s)", "linear/tree"});
  for (int procs : {4, 16, 64, 256}) {
    const double tree = run_with(false, procs, machine, prog);
    const double lin = run_with(true, procs, machine, prog);
    t.add_row({TablePrinter::fmt_int(procs), TablePrinter::fmt(tree, 4),
               TablePrinter::fmt(lin, 4), TablePrinter::fmt(lin / tree, 1) + "x"});
  }
  std::cout << t.to_ascii();
  return 0;
}
