// Extension bench (paper §5): "an obvious alternative is to extend the
// MPI-Sim simulator to take as input an abstract model of the
// communication (based on message size, message destination, etc.)".
//
// We compare, for the compiler-simplified (AM) programs, detailed
// communication simulation against the abstract communication model:
// prediction drift, simulated message counts, and simulator wall-clock.
// Combined with the computation axis this covers three of the paper's
// four modeling combinations: (sim, sim) = DE, (model, sim) = AM,
// (model, model) = AM + abstract communication.
#include "apps/nas_sp.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

struct Row {
  std::string label;
  benchx::ProgramFactory make;
  int procs;
};

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();

  apps::TomcatvConfig tc;
  tc.n = 1024;
  tc.iterations = 4;

  std::vector<Row> rows;
  rows.push_back(
      {"Tomcatv 1024^2", [&](int) { return apps::make_tomcatv(tc); }, 64});
  rows.push_back({"NAS SP class A",
                  [](int nprocs) {
                    int q = 1;
                    while ((q + 1) * (q + 1) <= nprocs) ++q;
                    return apps::make_nas_sp(apps::sp_class('A', q, 2));
                  },
                  64});
  rows.push_back({"Sweep3D 150^3",
                  [](int nprocs) {
                    apps::Sweep3DConfig cfg;
                    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
                    cfg.it = (150 + cfg.npe_i - 1) / cfg.npe_i;
                    cfg.jt = (150 + cfg.npe_j - 1) / cfg.npe_j;
                    cfg.kt = 150;
                    cfg.kb = 30;
                    cfg.mm = 6;
                    cfg.mmi = 3;
                    return apps::make_sweep3d(cfg);
                  },
                  64});

  print_experiment_header(
      std::cout, "Extension: abstract communication model",
      "Detailed vs abstract communication under the analytical model",
      {"the fourth modeling combination the paper's §5 sketches:",
       "computation AND communication analytical",
       "expected: predictions drift by a few percent; the event count and",
       "simulator wall-clock drop (fewer simulated protocol rounds)"});

  TablePrinter t({"benchmark (AM, 64 procs)", "detailed pred (s)",
                  "abstract pred (s)", "drift", "detailed msgs",
                  "abstract msgs", "wall speedup"});
  for (const auto& row : rows) {
    const auto params = benchx::calibrate_at(row.make, 16, machine);
    ir::Program prog = row.make(row.procs);
    core::CompileResult compiled = core::compile(prog);

    harness::RunConfig cfg;
    cfg.nprocs = row.procs;
    cfg.machine = machine;
    cfg.mode = harness::Mode::kAnalytical;
    cfg.params = params;

    const auto detailed =
        harness::run_program(compiled.simplified.program, cfg);
    cfg.abstract_comm = true;
    const auto abstract_run =
        harness::run_program(compiled.simplified.program, cfg);

    t.add_row({row.label, TablePrinter::fmt(detailed.predicted_seconds(), 3),
               TablePrinter::fmt(abstract_run.predicted_seconds(), 3),
               TablePrinter::fmt_percent(
                   relative_error(abstract_run.predicted_seconds(),
                                  detailed.predicted_seconds())),
               TablePrinter::fmt_int(static_cast<long long>(detailed.messages)),
               TablePrinter::fmt_int(
                   static_cast<long long>(abstract_run.messages)),
               TablePrinter::fmt(detailed.sim_host_seconds /
                                     std::max(1e-9, abstract_run.sim_host_seconds),
                                 1) +
                   "x"});
  }
  std::cout << t.to_ascii();
  return 0;
}
