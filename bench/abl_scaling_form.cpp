// Ablation (paper §3.1/§3.3): the form of the scaling expression for a
// collapsed loop nest. Affine trip counts admit a closed-form sum (one
// O(1) delay); non-affine ones must keep an executable symbolic sum,
// evaluated at simulation time (NAS SP's array-carried bounds). We
// compare the two codegen modes on a triangular loop nest: predictions
// must be identical; simulation cost is not.
#include <chrono>

#include "bench/common.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_triangular(std::int64_t n) {
  ir::ProgramBuilder b("triangular");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr N = b.decl_int("N", I(n));
  b.decl_array("A", {N});

  b.if_then(sym::lt(myid, P - 1),
            [&] { b.send("A", myid + 1, I(32), I(0), 1); });
  b.if_then(sym::gt(myid, I(0)),
            [&] { b.recv("A", myid - 1, I(32), I(0), 1); });

  // Triangular nest: inner trip count is affine in the outer index.
  b.for_loop("i", I(1), N, [&](Expr i) {
    ir::KernelSpec k;
    k.task = "tri";
    k.iters = i;  // sum_i i = N(N+1)/2
    k.flops_per_iter = 3.0;
    k.reads = {"A"};
    k.writes = {"A"};
    b.compute(std::move(k));
  });
  return b.take();
}

struct ModeResult {
  double prediction = 0.0;
  double sim_wall = 0.0;
  std::size_t sum_nodes = 0;
};

ModeResult run_mode(const ir::Program& prog, bool closed_form, int procs,
                    const harness::MachineSpec& machine) {
  core::CompileOptions copt;
  copt.codegen.use_closed_form_sums = closed_form;
  auto compiled = core::compile(prog, copt);
  const auto params = harness::calibrate(compiled.timer_program, procs, machine);

  ModeResult res;
  for (const auto& ct : compiled.simplified.condensed) {
    std::function<void(const sym::Node&)> walk = [&](const sym::Node& n) {
      res.sum_nodes += n.op == sym::Op::kSum;
      for (const auto& c : n.children) walk(*c);
    };
    walk(ct.seconds.node());
  }

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  // Repeat to get a measurable wall-clock difference.
  double wall = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    auto out = harness::run_program(compiled.simplified.program, cfg);
    res.prediction = out.predicted_seconds();
    wall += out.sim_host_seconds;
  }
  res.sim_wall = wall / 5.0;
  return res;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const int procs = 8;
  ir::Program prog = make_triangular(/*n=*/200000);

  const ModeResult closed = run_mode(prog, true, procs, machine);
  const ModeResult summed = run_mode(prog, false, procs, machine);

  print_experiment_header(
      std::cout, "Ablation: scaling-function form",
      "Closed-form sums vs executable symbolic sums for collapsed loops",
      {"triangular nest, 200k outer iterations",
       "expected: identical predictions; the closed form simulates in O(1)",
       "per delay while the symbolic sum evaluates the whole trip count"});

  TablePrinter t({"codegen mode", "sum nodes", "AM prediction (s)",
                  "simulator wall (s)"});
  t.add_row({"closed-form (paper default)",
             TablePrinter::fmt_int(static_cast<long long>(closed.sum_nodes)),
             TablePrinter::fmt(closed.prediction, 4),
             TablePrinter::fmt(closed.sim_wall, 4)});
  t.add_row({"executable symbolic sum",
             TablePrinter::fmt_int(static_cast<long long>(summed.sum_nodes)),
             TablePrinter::fmt(summed.prediction, 4),
             TablePrinter::fmt(summed.sim_wall, 4)});
  std::cout << t.to_ascii();
  std::cout << "prediction difference: "
            << TablePrinter::fmt_percent(
                   relative_error(summed.prediction, closed.prediction), 3)
            << " (must be ~0)\n";
  return 0;
}
