// Extension bench (paper §3.3): sources for the task-time parameters.
// "Two alternatives to direct measurement of the task time parameters are
// (a) to use compiler support for estimating sequential task execution
// times analytically, and (b) to use separate offline simulation."
//
// We compare, for Tomcatv across process counts:
//   1. measured w_i at 16 procs (the paper's method; timer noise + the
//      calibration configuration's cache regime baked in);
//   2. compiler-estimated w_i at 16 procs (machine-model-based, no timer
//      noise, but the same working-set regime);
//   3. compiler-estimated w_i at the *target* configuration (needs one
//      direct-execution pass there, but removes the working-set transfer
//      error entirely).
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

double am_error(const benchx::ProgramFactory& make, int procs,
                const harness::MachineSpec& machine,
                const std::map<std::string, double>& params) {
  benchx::PointOptions opts;
  opts.run_de = false;
  auto p = benchx::validate_point(make, procs, machine, params, opts);
  return p.am_error_vs_measured();
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  apps::TomcatvConfig tc;
  tc.n = 1024;
  tc.iterations = 3;
  const benchx::ProgramFactory make = [&](int) {
    return apps::make_tomcatv(tc);
  };
  ir::Program prog = make(0);
  core::CompileResult compiled = core::compile(prog);

  const auto measured16 = harness::calibrate(
      compiled.timer_program, 16, machine, compiled.simplified.params);
  const auto estimated16 = harness::estimate_params(
      prog, 16, machine, compiled.simplified.params);

  print_experiment_header(
      std::cout, "Extension: task-time parameter sources",
      "Measured vs compiler-estimated w_i (Tomcatv, AM error vs measured)",
      {"rows 1-2 share the 16-proc working-set regime: estimation matches",
       "measurement minus timer noise; row 3 re-estimates at each target,",
       "removing the cache-transfer error the paper's §3.3 discusses"});

  TablePrinter t({"w_i source", "err @4", "err @16", "err @64"});

  std::vector<std::string> r1{"measured @16 (paper)"};
  std::vector<std::string> r2{"compiler-estimated @16"};
  std::vector<std::string> r3{"compiler-estimated @target"};
  for (int procs : {4, 16, 64}) {
    r1.push_back(
        TablePrinter::fmt_percent(am_error(make, procs, machine, measured16)));
    r2.push_back(
        TablePrinter::fmt_percent(am_error(make, procs, machine, estimated16)));
    const auto at_target = harness::estimate_params(
        prog, procs, machine, compiled.simplified.params);
    r3.push_back(
        TablePrinter::fmt_percent(am_error(make, procs, machine, at_target)));
  }
  t.add_row(std::move(r1));
  t.add_row(std::move(r2));
  t.add_row(std::move(r3));
  std::cout << t.to_ascii();

  std::cout << "sample parameters (w_tc_resid): measured@16 = "
            << measured16.at("w_tc_resid")
            << ", estimated@16 = " << estimated16.at("w_tc_resid") << "\n";
  return 0;
}
