// Ablation: collective algorithm x topology. The platform layer prices
// distance (routed hops), so the right collective algorithm depends on
// both the message size and the machine shape: binomial trees win for
// small payloads (log P latency-bound rounds), pipelined rings win for
// large payloads (each rank moves ~2x the payload regardless of P, all
// over nearest-neighbor paths). This bench sweeps P x bytes x topology
// for bcast under both algorithms and prints the ring/binomial ratio —
// values < 1 mean ring wins.
#include "bench/common.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_bcast_micro(std::int64_t bytes) {
  ir::ProgramBuilder b("bcast_micro");
  b.get_size("P");
  b.get_rank("myid");
  b.decl_array("buf", {I(bytes)});
  b.for_loop("r", I(1), I(4), [&](Expr) {
    b.bcast("buf", I(0), I(bytes), I(0));
  });
  return b.take();
}

double run_with(smpi::CollAlgo algo, int procs,
                const harness::MachineSpec& machine, const ir::Program& prog) {
  smpi::World::Options wopts;
  wopts.net = machine.net;
  wopts.compute = machine.compute;
  wopts.coll.bcast = algo;
  smpi::World world(wopts, procs);

  simk::EngineConfig ec;
  ec.num_processes = procs;
  simk::Engine engine(ec);
  engine.set_body([&](simk::Process& p) {
    smpi::Comm comm(world, p);
    ir::execute(prog, comm);
  });
  return vtime_to_sec(engine.run().completion);
}

harness::MachineSpec machine_for(net::Topology topo) {
  harness::MachineSpec m = harness::ibm_sp_machine();
  m.net.platform.topo = topo;
  return m;
}

}  // namespace

int main() {
  print_experiment_header(
      std::cout, "Ablation: collective algorithm x topology",
      "Ring vs binomial bcast across platform presets (4x bcast)",
      {"same LogGP point-to-point constants on every topology",
       "expected: binomial wins small messages (log P rounds),",
       "ring wins large messages (pipelined, ~2x payload per rank),",
       "and the crossover shifts with per-hop distance costs"});

  for (net::Topology topo :
       {net::Topology::kFlat, net::Topology::kTorus, net::Topology::kFatTree}) {
    const auto machine = machine_for(topo);
    std::cout << "\n== topology: " << net::topology_name(topo) << " ==\n";
    TablePrinter t({"procs", "bytes", "binomial (s)", "ring (s)",
                    "ring/binomial"});
    for (int procs : {8, 64, 256}) {
      for (std::int64_t bytes : {64LL, 64LL * 1024, 1024LL * 1024}) {
        ir::Program prog = make_bcast_micro(bytes);
        const double binom =
            run_with(smpi::CollAlgo::kBinomial, procs, machine, prog);
        const double ring = run_with(smpi::CollAlgo::kRing, procs, machine, prog);
        t.add_row({TablePrinter::fmt_int(procs), TablePrinter::fmt_int(bytes),
                   TablePrinter::fmt(binom, 4), TablePrinter::fmt(ring, 4),
                   TablePrinter::fmt(ring / binom, 2) + "x"});
      }
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
