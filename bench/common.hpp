// Shared machinery for the figure/table reproduction binaries.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (§4): it prints the same series the paper plots — measured
// (our machine emulation), MPI-SIM-DE and MPI-SIM-AM — plus the derived
// error/ratio columns, through a uniform TablePrinter layout that
// EXPERIMENTS.md records against the paper's reported shapes.
#pragma once

#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace stgsim::benchx {

/// Builds a target program for a given process count (apps whose shape
/// depends on the grid rebuild per point).
using ProgramFactory = std::function<ir::Program(int nprocs)>;

struct PointOptions {
  bool run_measured = true;
  bool run_de = true;
  bool run_am = true;
  std::size_t memory_cap_bytes = 0;
  bool record_host_trace = false;
  std::size_t fiber_stack_bytes = 256 * 1024;
};

struct ValidationPoint {
  int procs = 0;
  std::optional<harness::RunOutcome> measured;
  std::optional<harness::RunOutcome> de;
  std::optional<harness::RunOutcome> am;

  double am_error_vs_measured() const {
    return relative_error(am->predicted_seconds(),
                          measured->predicted_seconds());
  }
  double de_error_vs_measured() const {
    return relative_error(de->predicted_seconds(),
                          measured->predicted_seconds());
  }
};

/// Calibrates w_i at `calib_procs` (Figure 2) and returns the table.
inline std::map<std::string, double> calibrate_at(
    const ProgramFactory& make, int calib_procs,
    const harness::MachineSpec& machine) {
  ir::Program prog = make(calib_procs);
  core::CompileResult compiled = core::compile(prog);
  return harness::calibrate(compiled.timer_program, calib_procs, machine,
                            compiled.simplified.params);
}

/// Runs the measured / DE / AM triple at one process count.
inline ValidationPoint validate_point(
    const ProgramFactory& make, int procs,
    const harness::MachineSpec& machine,
    const std::map<std::string, double>& params,
    const PointOptions& opts = {}) {
  ValidationPoint point;
  point.procs = procs;
  ir::Program prog = make(procs);

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.memory_cap_bytes = opts.memory_cap_bytes;
  cfg.record_host_trace = opts.record_host_trace;
  cfg.fiber_stack_bytes = opts.fiber_stack_bytes;

  if (opts.run_measured) {
    cfg.mode = harness::Mode::kMeasured;
    point.measured = harness::run_program(prog, cfg);
  }
  if (opts.run_de) {
    cfg.mode = harness::Mode::kDirectExec;
    point.de = harness::run_program(prog, cfg);
  }
  if (opts.run_am) {
    core::CompileResult compiled = core::compile(prog);
    cfg.mode = harness::Mode::kAnalytical;
    cfg.params = params;
    point.am = harness::run_program(compiled.simplified.program, cfg);
  }
  return point;
}

/// Host-era normalization factor for absolute simulator-performance
/// figures (12/13): the paper ran MPI-Sim on the same IBM SP it was
/// predicting, so host and target speeds matched; this container is ~two
/// orders of magnitude faster than a 1999 SP node. Multiplying replayed
/// simulator wall-clocks by
///     (total virtual computation DE executed) / (host seconds DE took)
/// re-expresses them as if the simulator ran on target-era nodes. This is
/// a single measured ratio per run — not a fit to the paper's numbers.
inline double era_factor(const ValidationPoint& p) {
  STGSIM_CHECK(p.de.has_value() && p.de->ok());
  const double virtual_compute =
      vtime_to_sec(p.de->stats.compute_time) * p.procs;
  // Normalize against the DE run's *traced* execution time (the same
  // quantity duration_scale multiplies), so a 1-host era-normalized DE
  // replay lands at the total target-era computation by construction.
  double traced = 0.0;
  for (const auto& s : p.de->host_trace) traced += s.duration_sec;
  return virtual_compute / std::max(1e-9, traced);
}

/// Host model for replays expressed in target-era units: slice durations
/// slowed to era hardware, cross-worker messaging at SP-interconnect cost.
inline simk::HostModel era_host_model(const ValidationPoint& p) {
  simk::HostModel m;
  m.duration_scale = era_factor(p);
  m.cross_worker_msg_sec = 30e-6;
  m.per_slice_overhead_sec = 2e-6;
  return m;
}

inline std::string cell_time(const std::optional<harness::RunOutcome>& o) {
  if (!o.has_value()) return "-";
  if (o->out_of_memory()) return "OOM";
  if (!o->ok()) return harness::run_status_name(o->status);
  return TablePrinter::fmt(o->predicted_seconds(), 3);
}

inline std::string cell_err(const std::optional<harness::RunOutcome>& o,
                            const std::optional<harness::RunOutcome>& ref) {
  if (!o || !ref || !o->ok() || !ref->ok()) return "-";
  return TablePrinter::fmt_percent(
      relative_error(o->predicted_seconds(), ref->predicted_seconds()));
}

/// Standard validation table (Figs. 3-6): one row per process count.
inline void print_validation_table(const std::string& fig,
                                   const std::string& title,
                                   const std::vector<std::string>& notes,
                                   const std::vector<ValidationPoint>& points) {
  print_experiment_header(std::cout, fig, title, notes);
  TablePrinter t({"procs", "measured (s)", "MPI-SIM-DE (s)", "MPI-SIM-AM (s)",
                  "DE err", "AM err"});
  for (const auto& p : points) {
    t.add_row({TablePrinter::fmt_int(p.procs), cell_time(p.measured),
               cell_time(p.de), cell_time(p.am),
               cell_err(p.de, p.measured), cell_err(p.am, p.measured)});
  }
  std::cout << t.to_ascii();

  RunningStats am_err;
  for (const auto& p : points) {
    if (p.am && p.measured && p.am->ok() && p.measured->ok()) {
      am_err.add(abs_relative_error(p.am->predicted_seconds(),
                                    p.measured->predicted_seconds()));
    }
  }
  if (am_err.count() > 0) {
    std::cout << "AM |error| vs measured: mean "
              << TablePrinter::fmt_percent(am_err.mean()) << ", max "
              << TablePrinter::fmt_percent(am_err.max()) << "\n";
  }
}

}  // namespace stgsim::benchx
