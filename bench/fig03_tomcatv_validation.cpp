// Figure 3: validation of MPI-Sim for Tomcatv on the IBM SP.
// Paper: 2048x2048 mesh, 4-64 processors; MPI-SIM-AM error below 16%
// (average 11.3%), MPI-SIM-DE closer still.
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

int main() {
  const auto machine = harness::ibm_sp_machine();

  apps::TomcatvConfig cfg;
  cfg.n = 1024;  // scaled from the paper's 2048 to fit one host core
  cfg.iterations = 4;
  const benchx::ProgramFactory make = [&](int) {
    return apps::make_tomcatv(cfg);
  };

  // Figure 2 workflow: task times measured once, on 16 processors.
  const auto params = benchx::calibrate_at(make, 16, machine);

  std::vector<benchx::ValidationPoint> points;
  for (int procs : {4, 8, 16, 32, 64}) {
    points.push_back(benchx::validate_point(make, procs, machine, params));
  }

  benchx::print_validation_table(
      "Figure 3", "Validation of MPI-Sim for Tomcatv (IBM SP)",
      {"mesh 1024x1024 (paper: 2048x2048), 4 outer iterations",
       "w_i calibrated once at 16 processors",
       "paper shape: AM error < 16% at every point, average 11.3%"},
      points);
  return 0;
}
