// Figure 4: validation of Sweep3D on the IBM SP, fixed total problem size
// 150x150x150. Paper: predicted and measured differ by at most 7%.
//
// Driven through the campaign runner. Fixed-total scaling means each
// process count has its own it/jt block sizes, so the points are explicit
// "runs" entries rather than one cross-product sweep, and every analytical
// point calibrates at 16 processes with its own grid options (the
// calibration program's per-iteration shape matches the target's).
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

using namespace stgsim;

namespace {

/// Block sizes for a fixed 150^3 total on the 2D grid for `nprocs`.
json::Value options_for(int nprocs) {
  int npe_i = 1, npe_j = 1;
  apps::sweep3d_grid_for(nprocs, &npe_i, &npe_j);
  const std::int64_t total = 150;
  json::Value opts = json::Value::object();
  opts.set("it", json::Value((total + npe_i - 1) / npe_i));
  opts.set("jt", json::Value((total + npe_j - 1) / npe_j));
  opts.set("kt", json::Value(150));
  opts.set("kb", json::Value(30));
  opts.set("mm", json::Value(6));
  opts.set("mmi", json::Value(3));
  opts.set("steps", json::Value(1));
  return opts;
}

}  // namespace

int main() {
  json::Value runs = json::Value::array();
  for (const int procs : {4, 8, 16, 32, 64}) {
    for (const char* mode : {"measured", "de", "am"}) {
      json::Value run = json::Value::object();
      run.set("procs", json::Value(procs));
      run.set("mode", json::Value(mode));
      run.set("options", options_for(procs));
      runs.push_back(run);
    }
  }

  json::Value defaults = json::Value::object();
  defaults.set("app", json::Value("sweep3d"));
  defaults.set("machine", json::Value("ibm_sp"));
  defaults.set("calibrate", json::Value(16));

  json::Value doc = json::Value::object();
  doc.set("name", json::Value("fig04-sweep3d-fixed-total"));
  doc.set("defaults", defaults);
  doc.set("runs", runs);

  campaign::CampaignOptions copts;
  copts.jobs = 2;
  copts.cache_dir = "fig04-campaign-cache";
  copts.with_metrics = false;
  const campaign::CampaignResult result =
      campaign::run_campaign(campaign::parse_scenario(doc), copts);

  std::map<int, benchx::ValidationPoint> points;
  for (const auto& r : result.runs) {
    benchx::ValidationPoint& p = points[r.resolved.config.nprocs];
    p.procs = r.resolved.config.nprocs;
    switch (r.resolved.config.mode) {
      case harness::Mode::kMeasured: p.measured = r.outcome; break;
      case harness::Mode::kDirectExec: p.de = r.outcome; break;
      case harness::Mode::kAnalytical: p.am = r.outcome; break;
    }
  }
  std::vector<benchx::ValidationPoint> rows;
  for (const auto& [_, p] : points) rows.push_back(p);

  benchx::print_validation_table(
      "Figure 4", "Validation of Sweep3D, fixed total 150^3 (IBM SP)",
      {"total grid 150x150x150 block-distributed on a 2D process grid",
       "w_i calibrated at 16 processors (per-point grid options)",
       "campaign: " + std::to_string(result.cache_hits) + "/" +
           std::to_string(result.runs.size()) + " runs from cache",
       "paper shape: predictions within 7% of measurement at all points"},
      rows);
  return 0;
}
