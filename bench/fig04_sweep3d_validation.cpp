// Figure 4: validation of Sweep3D on the IBM SP, fixed total problem size
// 150x150x150. Paper: predicted and measured differ by at most 7%.
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_for(int nprocs) {
  apps::Sweep3DConfig cfg;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  const std::int64_t total = 150;
  cfg.it = (total + cfg.npe_i - 1) / cfg.npe_i;
  cfg.jt = (total + cfg.npe_j - 1) / cfg.npe_j;
  cfg.kt = 150;
  cfg.kb = 30;
  cfg.mm = 6;
  cfg.mmi = 3;
  cfg.timesteps = 1;
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_for(nprocs));
  };

  const auto params = benchx::calibrate_at(make, 16, machine);

  std::vector<benchx::ValidationPoint> points;
  for (int procs : {4, 8, 16, 32, 64}) {
    points.push_back(benchx::validate_point(make, procs, machine, params));
  }

  benchx::print_validation_table(
      "Figure 4", "Validation of Sweep3D, fixed total 150^3 (IBM SP)",
      {"total grid 150x150x150 block-distributed on a 2D process grid",
       "w_i calibrated once at 16 processors",
       "paper shape: predictions within 7% of measurement at all points"},
      points);
  return 0;
}
