// Figure 5: validation for NAS SP, class A, on the IBM SP.
// Paper: task times from the 16-processor class-A run; errors below 7%.
#include "apps/nas_sp.hpp"
#include "bench/common.hpp"

using namespace stgsim;

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    int q = 1;
    while ((q + 1) * (q + 1) <= nprocs) ++q;
    return apps::make_nas_sp(apps::sp_class('A', q, /*timesteps=*/2));
  };

  const auto params = benchx::calibrate_at(make, 16, machine);

  std::vector<benchx::ValidationPoint> points;
  for (int procs : {4, 16, 36, 64}) {
    points.push_back(benchx::validate_point(make, procs, machine, params));
  }

  benchx::print_validation_table(
      "Figure 5", "Validation for NAS SP, class A (IBM SP)",
      {"class A: 64^3 grid, square process grids q^2 = 4..64, 2 timesteps",
       "w_i calibrated at 16 processors on class A",
       "paper shape: errors less than 7%"},
      points);
  return 0;
}
