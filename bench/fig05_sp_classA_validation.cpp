// Figure 5: validation for NAS SP, class A, on the IBM SP.
// Paper: task times from the 16-processor class-A run; errors below 7%.
//
// Driven through the campaign runner: the measured/DE/AM triples are one
// declarative sweep, the 16-process calibration is a shared DAG dependency,
// and results come from the content-addressed cache — re-running this
// binary performs no simulation work.
#include "bench/common.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

using namespace stgsim;

int main() {
  json::Value sweep = json::Value::object();
  sweep.set("app", json::Value("nas_sp"));
  json::Value opts = json::Value::object();
  opts.set("class", json::Value("A"));
  opts.set("steps", json::Value(2));
  sweep.set("options", opts);
  sweep.set("machine", json::Value("ibm_sp"));
  sweep.set("calibrate", json::Value(16));
  json::Value procs = json::Value::array();
  for (const int p : {4, 16, 36, 64}) procs.push_back(json::Value(p));
  sweep.set("procs", procs);
  json::Value modes = json::Value::array();
  for (const char* m : {"measured", "de", "am"}) {
    modes.push_back(json::Value(m));
  }
  sweep.set("mode", modes);

  json::Value doc = json::Value::object();
  doc.set("name", json::Value("fig05-sp-classA"));
  json::Value sweeps = json::Value::array();
  sweeps.push_back(sweep);
  doc.set("sweeps", sweeps);

  campaign::CampaignOptions copts;
  copts.jobs = 2;
  copts.cache_dir = "fig05-campaign-cache";
  copts.with_metrics = false;
  const campaign::CampaignResult result =
      campaign::run_campaign(campaign::parse_scenario(doc), copts);

  std::map<int, benchx::ValidationPoint> points;
  for (const auto& r : result.runs) {
    benchx::ValidationPoint& p = points[r.resolved.config.nprocs];
    p.procs = r.resolved.config.nprocs;
    switch (r.resolved.config.mode) {
      case harness::Mode::kMeasured: p.measured = r.outcome; break;
      case harness::Mode::kDirectExec: p.de = r.outcome; break;
      case harness::Mode::kAnalytical: p.am = r.outcome; break;
    }
  }
  std::vector<benchx::ValidationPoint> rows;
  for (const auto& [_, p] : points) rows.push_back(p);

  benchx::print_validation_table(
      "Figure 5", "Validation for NAS SP, class A (IBM SP)",
      {"class A: 64^3 grid, square process grids q^2 = 4..64, 2 timesteps",
       "w_i calibrated at 16 processors on class A (one shared campaign "
       "calibration)",
       "campaign: " + std::to_string(result.cache_hits) + "/" +
           std::to_string(result.runs.size()) + " runs from cache",
       "paper shape: errors less than 7%"},
      rows);
  return 0;
}
