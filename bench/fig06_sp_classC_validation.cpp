// Figure 6: validation for NAS SP, class C, on the IBM SP — with task
// times calibrated on *class A* at 16 processors. The paper stresses that
// class C runs 16.6x longer than class A, yet the class-A-calibrated
// model stays within ~4% on average: the scaling functions project
// across problem sizes.
#include "apps/nas_sp.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

int q_for(int nprocs) {
  int q = 1;
  while ((q + 1) * (q + 1) <= nprocs) ++q;
  return q;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();

  // Calibrate on CLASS A (the paper's cross-problem-size transfer).
  const benchx::ProgramFactory make_a = [](int nprocs) {
    return apps::make_nas_sp(apps::sp_class('A', q_for(nprocs), 2));
  };
  const auto params = benchx::calibrate_at(make_a, 16, machine);

  const benchx::ProgramFactory make_c = [](int nprocs) {
    return apps::make_nas_sp(apps::sp_class('C', q_for(nprocs), 2));
  };

  benchx::PointOptions opts;
  opts.run_de = false;  // the paper's Fig. 6 plots measured vs MPI-SIM-AM

  std::vector<benchx::ValidationPoint> points;
  for (int procs : {4, 16, 36, 64}) {
    points.push_back(
        benchx::validate_point(make_c, procs, machine, params, opts));
  }

  benchx::print_validation_table(
      "Figure 6", "Validation for NAS SP, class C, w_i from class A (IBM SP)",
      {"class C: 162^3 grid; task times taken from the class-A run at 16 procs",
       "paper shape: average error ~4% despite the 16.6x longer run"},
      points);
  return 0;
}
