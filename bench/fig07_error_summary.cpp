// Figure 7: percent error incurred by MPI-SIM-AM when predicting
// application performance, across all three applications and a range of
// system sizes. Paper: all errors within 16%.
#include "apps/nas_sp.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

int q_for(int nprocs) {
  int q = 1;
  while ((q + 1) * (q + 1) <= nprocs) ++q;
  return q;
}

apps::Sweep3DConfig sweep_for(int nprocs) {
  apps::Sweep3DConfig cfg;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  cfg.it = (150 + cfg.npe_i - 1) / cfg.npe_i;
  cfg.jt = (150 + cfg.npe_j - 1) / cfg.npe_j;
  cfg.kt = 150;
  cfg.kb = 30;
  cfg.mm = 6;
  cfg.mmi = 3;
  return cfg;
}

double am_error(const benchx::ProgramFactory& make, int procs,
                const harness::MachineSpec& machine,
                const std::map<std::string, double>& params) {
  benchx::PointOptions opts;
  opts.run_de = false;
  auto point = benchx::validate_point(make, procs, machine, params, opts);
  return point.am_error_vs_measured();
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();

  const benchx::ProgramFactory make_sp_c = [](int nprocs) {
    return apps::make_nas_sp(apps::sp_class('C', q_for(nprocs), 2));
  };
  const benchx::ProgramFactory make_sp_a = [](int nprocs) {
    return apps::make_nas_sp(apps::sp_class('A', q_for(nprocs), 2));
  };
  apps::TomcatvConfig tc;
  tc.n = 1024;
  tc.iterations = 4;
  const benchx::ProgramFactory make_tc = [&](int) {
    return apps::make_tomcatv(tc);
  };
  const benchx::ProgramFactory make_sw = [](int nprocs) {
    return apps::make_sweep3d(sweep_for(nprocs));
  };

  const auto params_sp = benchx::calibrate_at(make_sp_a, 16, machine);
  const auto params_tc = benchx::calibrate_at(make_tc, 16, machine);
  const auto params_sw = benchx::calibrate_at(make_sw, 16, machine);

  print_experiment_header(
      std::cout, "Figure 7",
      "Percent error of MPI-SIM-AM predictions vs measurement",
      {"SP class C uses class-A task times (as in the paper)",
       "paper shape: all errors within 16%"});

  TablePrinter t({"procs", "SP class C", "Tomcatv", "Sweep3D 150^3"});
  RunningStats all;
  for (int procs : {4, 16, 64}) {
    const double e_sp = am_error(make_sp_c, procs, machine, params_sp);
    const double e_tc = am_error(make_tc, procs, machine, params_tc);
    const double e_sw = am_error(make_sw, procs, machine, params_sw);
    for (double e : {e_sp, e_tc, e_sw}) all.add(std::abs(e));
    t.add_row({TablePrinter::fmt_int(procs), TablePrinter::fmt_percent(e_sp),
               TablePrinter::fmt_percent(e_tc),
               TablePrinter::fmt_percent(e_sw)});
  }
  std::cout << t.to_ascii();
  std::cout << "max |error| over all cells: "
            << TablePrinter::fmt_percent(all.max()) << " (paper: <16%)\n";
  return 0;
}
