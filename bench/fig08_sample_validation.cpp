// Figure 8: validation of SAMPLE on the SGI Origin 2000 — measured vs
// MPI-SIM-AM total execution time for the wavefront and nearest-neighbour
// patterns as the computation:communication ratio varies.
#include "apps/sample.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::SampleConfig config_for(apps::SamplePattern pattern, double ratio,
                              const harness::MachineSpec& machine) {
  apps::SampleConfig cfg;
  cfg.pattern = pattern;
  cfg.iterations = 40;
  cfg.msg_doubles = 1024;
  cfg.work_iters = apps::sample_work_for_ratio(machine.net, machine.compute,
                                               cfg.msg_doubles, ratio);
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::origin2000_machine();
  const int nprocs = 8;  // the paper's Origin 2000 had 8 processors

  print_experiment_header(
      std::cout, "Figure 8",
      "Validation of SAMPLE on the Origin 2000 (measured vs MPI-SIM-AM)",
      {"8 processors, 40 iterations, 8KB messages",
       "ratio column = computation : communication per step",
       "paper shape: curves overlap; divergence only at comm-heavy ratios"});

  TablePrinter t({"comp:comm", "wavefront measured (s)", "wavefront AM (s)",
                  "NN measured (s)", "NN AM (s)"});

  for (double ratio : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    std::vector<double> cells;
    for (auto pattern : {apps::SamplePattern::kWavefront,
                         apps::SamplePattern::kNearestNeighbor}) {
      const auto cfg = config_for(pattern, ratio, machine);
      const benchx::ProgramFactory make = [&](int) {
        return apps::make_sample(cfg);
      };
      const auto params = benchx::calibrate_at(make, nprocs, machine);
      benchx::PointOptions opts;
      opts.run_de = false;
      auto point = benchx::validate_point(make, nprocs, machine, params, opts);
      cells.push_back(point.measured->predicted_seconds());
      cells.push_back(point.am->predicted_seconds());
    }
    t.add_row({TablePrinter::fmt(ratio, 0) + ":1",
               TablePrinter::fmt(cells[0], 4), TablePrinter::fmt(cells[1], 4),
               TablePrinter::fmt(cells[2], 4), TablePrinter::fmt(cells[3], 4)});
  }
  std::cout << t.to_ascii();
  return 0;
}
