// Figure 9: effect of the communication:computation ratio on the accuracy
// of the optimized simulator (SAMPLE on the Origin 2000). Paper: below
// 5% error when computation dominates, growing to at most ~15% as the
// program becomes communication-bound.
#include "apps/sample.hpp"
#include "bench/common.hpp"

using namespace stgsim;

int main() {
  const auto machine = harness::origin2000_machine();
  const int nprocs = 8;

  print_experiment_header(
      std::cout, "Figure 9",
      "Percent variation of MPI-SIM-AM from measured vs comp:comm ratio",
      {"8 processors, 40 iterations, 8KB messages",
       "paper shape: <5% when computation dominates; up to ~15% when",
       "communication dominates (where contention/noise the model omits",
       "matter most)"});

  TablePrinter t({"comp:comm", "wavefront err", "nearest-neighbor err"});
  for (double ratio : {1.0, 3.0, 10.0, 100.0, 1000.0, 10000.0}) {
    std::vector<std::string> row{TablePrinter::fmt(ratio, 0) + ":1"};
    for (auto pattern : {apps::SamplePattern::kWavefront,
                         apps::SamplePattern::kNearestNeighbor}) {
      apps::SampleConfig cfg;
      cfg.pattern = pattern;
      cfg.iterations = 40;
      cfg.msg_doubles = 1024;
      cfg.work_iters = apps::sample_work_for_ratio(
          machine.net, machine.compute, cfg.msg_doubles, ratio);
      const benchx::ProgramFactory make = [&](int) {
        return apps::make_sample(cfg);
      };
      const auto params = benchx::calibrate_at(make, nprocs, machine);
      benchx::PointOptions opts;
      opts.run_de = false;
      auto point = benchx::validate_point(make, nprocs, machine, params, opts);
      row.push_back(TablePrinter::fmt_percent(point.am_error_vs_measured()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_ascii();
  return 0;
}
