// Figure 10: scalability of Sweep3D for the 4x4x255-per-processor size.
// Paper: direct execution is memory-limited to ~250 target processors;
// the analytical model simulates 10,000 — and stays accurate where
// measurement exists.
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_for(int nprocs) {
  apps::Sweep3DConfig cfg;
  cfg.it = 4;
  cfg.jt = 4;
  cfg.kt = 255;
  cfg.kb = 51;
  cfg.mm = 6;
  cfg.mmi = 6;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_for(nprocs));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  print_experiment_header(
      std::cout, "Figure 10",
      "Scalability of Sweep3D, 4x4x255 per processor (IBM SP)",
      {"fixed per-processor size; total problem grows with target count",
       "DE under a 256MB host-memory budget (the paper's host nodes);",
       "paper shape: DE memory-limited near 250 targets, AM reaches 10,000"});

  TablePrinter t({"target procs", "measured (s)", "MPI-SIM-DE (s)",
                  "MPI-SIM-AM (s)", "DE memory", "AM memory"});
  for (int procs : {16, 64, 256, 1024, 2500, 4900, 10000}) {
    benchx::PointOptions opts;
    opts.run_measured = procs <= 64;
    opts.memory_cap_bytes = 256ull << 20;
    opts.fiber_stack_bytes = 128 * 1024;
    auto p = benchx::validate_point(make, procs, machine, params, opts);
    t.add_row({TablePrinter::fmt_int(procs), benchx::cell_time(p.measured),
               benchx::cell_time(p.de), benchx::cell_time(p.am),
               p.de->out_of_memory()
                   ? ">256MB (OOM)"
                   : TablePrinter::fmt_bytes(p.de->peak_target_bytes),
               TablePrinter::fmt_bytes(p.am->peak_target_bytes)});
  }
  std::cout << t.to_ascii();
  return 0;
}
