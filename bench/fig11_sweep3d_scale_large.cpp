// Figure 11: scalability of Sweep3D for the 6x6x1000-per-processor size.
// Paper: direct execution cannot go past ~400 target processors; the
// analytical model scales to the 20,000-processor, one-billion-cell
// configuration of interest to the ASCI application developers.
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_for(int nprocs) {
  apps::Sweep3DConfig cfg;
  cfg.it = 6;
  cfg.jt = 6;
  cfg.kt = 1000;
  cfg.kb = 125;
  cfg.mm = 6;
  cfg.mmi = 6;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_for(nprocs));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  print_experiment_header(
      std::cout, "Figure 11",
      "Scalability of Sweep3D, 6x6x1000 per processor (IBM SP)",
      {"the paper's billion-cell target: 36,000 cells/proc on 20,000 procs",
       "DE under a 1GB host-memory budget",
       "paper shape: DE stops by ~400 targets; AM reaches 20,000 in ~700MB"});

  TablePrinter t({"target procs", "measured (s)", "MPI-SIM-DE (s)",
                  "MPI-SIM-AM (s)", "DE memory", "AM memory"});
  for (int procs : {16, 64, 256, 1024, 4096, 10000, 20000}) {
    benchx::PointOptions opts;
    opts.run_measured = procs <= 64;
    opts.memory_cap_bytes = 1024ull << 20;
    opts.fiber_stack_bytes = 128 * 1024;
    auto p = benchx::validate_point(make, procs, machine, params, opts);
    t.add_row({TablePrinter::fmt_int(procs), benchx::cell_time(p.measured),
               benchx::cell_time(p.de), benchx::cell_time(p.am),
               p.de->out_of_memory()
                   ? ">1GB (OOM)"
                   : TablePrinter::fmt_bytes(p.de->peak_target_bytes),
               TablePrinter::fmt_bytes(p.am->peak_target_bytes)});
  }
  std::cout << t.to_ascii();
  return 0;
}
