// Figure 12: absolute performance of MPI-Sim for NAS SP class A, with as
// many host processors as target processors. Paper: MPI-SIM-DE runs about
// 2x slower than the application it predicts; MPI-SIM-AM runs faster than
// the application (up to 2.5x), despite simulating communication in
// detail — and its advantage shrinks as computation per processor shrinks.
//
// Host-parallel wall-clocks come from replaying the recorded slice trace
// on an emulated k-worker host (this container has one core; see
// DESIGN.md). The DE-vs-application *ratio* additionally reflects that
// this host is far faster than a 1999 SP node — EXPERIMENTS.md discusses
// the comparison; the AM-vs-DE relation is host-independent.
#include "apps/nas_sp.hpp"
#include "bench/common.hpp"

using namespace stgsim;

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    int q = 1;
    while ((q + 1) * (q + 1) <= nprocs) ++q;
    return apps::make_nas_sp(apps::sp_class('A', q, /*timesteps=*/2));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  print_experiment_header(
      std::cout, "Figure 12",
      "Absolute performance of MPI-Sim for NAS SP class A (#host = #target)",
      {"application time = emulated measurement of the target program",
       "simulator wall-clocks replayed on an emulated equal-size host",
       "paper shape: AM faster than the application; AM gain shrinks with",
       "more processors; DE pays for executing all computation"});

  TablePrinter t({"procs", "application (s)", "DE wall, era-norm (s)",
                  "AM wall, era-norm (s)", "DE vs app", "AM vs app",
                  "AM speedup vs DE"});
  for (int procs : {4, 16, 36, 64}) {
    benchx::PointOptions opts;
    opts.record_host_trace = true;
    auto p = benchx::validate_point(make, procs, machine, params, opts);
    const double app = p.measured->predicted_seconds();
    const auto host = benchx::era_host_model(p);
    const double de_wall = harness::emulated_host_seconds(*p.de, procs, host);
    const double am_wall = harness::emulated_host_seconds(*p.am, procs, host);
    t.add_row({TablePrinter::fmt_int(procs), TablePrinter::fmt(app, 3),
               TablePrinter::fmt(de_wall, 3), TablePrinter::fmt(am_wall, 3),
               TablePrinter::fmt(de_wall / app, 2) + "x",
               TablePrinter::fmt(app / am_wall, 2) + "x faster",
               TablePrinter::fmt(de_wall / am_wall, 1) + "x"});
  }
  std::cout << t.to_ascii();
  std::cout << "era-norm: simulator wall-clocks scaled to target-era host "
               "nodes (see bench/common.hpp)\n";
  return 0;
}
