// Figure 13: absolute performance of MPI-Sim for Tomcatv (#host =
// #target). Paper: the MPI-SIM-AM runtime stays essentially flat (< 2s)
// across processor counts while the application takes 13-100s — the
// optimized simulator's cost tracks the communication structure, not the
// computation.
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

int main() {
  const auto machine = harness::ibm_sp_machine();
  apps::TomcatvConfig cfg;
  cfg.n = 1024;
  cfg.iterations = 4;
  const benchx::ProgramFactory make = [&](int) {
    return apps::make_tomcatv(cfg);
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  print_experiment_header(
      std::cout, "Figure 13",
      "Absolute performance of MPI-Sim for Tomcatv (#host = #target)",
      {"paper shape: AM wall-clock roughly constant and far below the",
       "application's runtime at every processor count"});

  TablePrinter t({"procs", "application (s)", "DE wall, era-norm (s)",
                  "AM wall, era-norm (s)", "AM vs app", "AM speedup vs DE"});
  for (int procs : {4, 8, 16, 32, 64}) {
    benchx::PointOptions opts;
    opts.record_host_trace = true;
    auto p = benchx::validate_point(make, procs, machine, params, opts);
    const double app = p.measured->predicted_seconds();
    const auto host = benchx::era_host_model(p);
    const double de_wall = harness::emulated_host_seconds(*p.de, procs, host);
    const double am_wall = harness::emulated_host_seconds(*p.am, procs, host);
    t.add_row({TablePrinter::fmt_int(procs), TablePrinter::fmt(app, 3),
               TablePrinter::fmt(de_wall, 4), TablePrinter::fmt(am_wall, 4),
               TablePrinter::fmt(app / am_wall, 1) + "x faster",
               TablePrinter::fmt(de_wall / am_wall, 1) + "x"});
  }
  std::cout << t.to_ascii();
  std::cout << "era-norm: simulator wall-clocks scaled to target-era host "
               "nodes (see bench/common.hpp)\n";
  return 0;
}
