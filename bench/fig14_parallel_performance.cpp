// Figure 14: parallel performance of MPI-Sim — Sweep3D 150^3 on 64 target
// processors, with host processors varied from 1 to 64. Paper: both
// simulator versions scale well; MPI-SIM-AM is on average 5.4x faster
// than MPI-SIM-DE.
//
// The 1-host column is the real wall-clock of the sequential run on this
// machine; k-host columns replay the recorded slice trace on an emulated
// k-worker conservative host (see DESIGN.md's substitution note).
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_150(int nprocs) {
  apps::Sweep3DConfig cfg;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  cfg.it = (150 + cfg.npe_i - 1) / cfg.npe_i;
  cfg.jt = (150 + cfg.npe_j - 1) / cfg.npe_j;
  cfg.kt = 150;
  cfg.kb = 30;
  cfg.mm = 6;
  cfg.mmi = 3;
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const int targets = 64;
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_150(nprocs));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  benchx::PointOptions opts;
  opts.record_host_trace = true;
  auto p = benchx::validate_point(make, targets, machine, params, opts);

  print_experiment_header(
      std::cout, "Figure 14",
      "Parallel performance: Sweep3D 150^3, 64 targets, 1-64 host procs",
      {"application (measured target time): " +
           TablePrinter::fmt(p.measured->predicted_seconds(), 3) + " s",
       "paper shape: both simulators scale; AM ~5.4x faster than DE on",
       "average; AM speedup flattens past ~8 hosts (communication-bound)"});

  TablePrinter t({"host procs", "MPI-SIM-DE wall (s)", "MPI-SIM-AM wall (s)",
                  "AM speedup vs DE"});
  const auto host = benchx::era_host_model(p);
  for (int hosts : {1, 2, 4, 8, 16, 32, 64}) {
    const double de_wall = harness::emulated_host_seconds(*p.de, hosts, host);
    const double am_wall = harness::emulated_host_seconds(*p.am, hosts, host);
    t.add_row({TablePrinter::fmt_int(hosts), TablePrinter::fmt(de_wall, 3),
               TablePrinter::fmt(am_wall, 4),
               TablePrinter::fmt(de_wall / am_wall, 1) + "x"});
  }
  std::cout << t.to_ascii();
  std::cout << "1-host real wall-clock of this run: DE "
            << TablePrinter::fmt(p.de->sim_host_seconds, 3) << " s, AM "
            << TablePrinter::fmt(p.am->sim_host_seconds, 3) << " s\n";
  return 0;
}
