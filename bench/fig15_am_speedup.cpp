// Figure 15: self-relative speedup of MPI-SIM-AM for Sweep3D 150^3 with
// 64 target processors, as host processors grow. Paper: steep up to ~8
// hosts, then flattening, reaching about 15 at 64 hosts (the application's
// computation:communication ratio limits the simulator's own parallelism).
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_150(int nprocs) {
  apps::Sweep3DConfig cfg;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  cfg.it = (150 + cfg.npe_i - 1) / cfg.npe_i;
  cfg.jt = (150 + cfg.npe_j - 1) / cfg.npe_j;
  cfg.kt = 150;
  cfg.kb = 30;
  cfg.mm = 6;
  cfg.mmi = 3;
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_150(nprocs));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  benchx::PointOptions opts;
  opts.record_host_trace = true;
  opts.run_measured = false;
  auto p = benchx::validate_point(make, 64, machine, params, opts);

  print_experiment_header(
      std::cout, "Figure 15",
      "Speedup of MPI-SIM-AM (Sweep3D 150^3, 64 target processors)",
      {"speedup relative to the 1-host-processor simulation",
       "paper shape: near-linear to ~8 hosts, then flattens (~15 at 64)"});

  const auto host = benchx::era_host_model(p);
  const double base = harness::emulated_host_seconds(*p.am, 1, host);
  TablePrinter t({"host procs", "MPI-SIM-AM wall (s)", "speedup"});
  for (int hosts : {1, 2, 4, 8, 16, 32, 64}) {
    const double wall = harness::emulated_host_seconds(*p.am, hosts, host);
    t.add_row({TablePrinter::fmt_int(hosts), TablePrinter::fmt(wall, 4),
               TablePrinter::fmt(base / wall, 2)});
  }
  std::cout << t.to_ascii();
  return 0;
}
