// Figure 16: simulator runtime when predicting large systems — Sweep3D
// with the 6x6x1000-per-processor size on 64 host processors, target
// count growing (weak scaling). Paper: the optimized simulator's runtime
// is up to ~2x below the original's at the largest sizes.
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig config_for(int nprocs) {
  apps::Sweep3DConfig cfg;
  cfg.it = 6;
  cfg.jt = 6;
  cfg.kt = 1000;
  cfg.kb = 250;
  cfg.mm = 6;
  cfg.mmi = 6;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();
  const int hosts = 64;
  const benchx::ProgramFactory make = [](int nprocs) {
    return apps::make_sweep3d(config_for(nprocs));
  };
  const auto params = benchx::calibrate_at(make, 16, machine);

  print_experiment_header(
      std::cout, "Figure 16",
      "Simulator runtime vs target count: Sweep3D 6x6x1000/proc, 64 hosts",
      {"weak scaling: total problem grows with the target count",
       "wall-clocks replayed on an emulated 64-worker conservative host",
       "paper shape: AM runtime falls increasingly below DE as the system",
       "grows (the abstracted computation dominates DE's cost)"});

  TablePrinter t({"target procs", "total cells", "MPI-SIM-DE wall (s)",
                  "MPI-SIM-AM wall (s)", "AM speedup vs DE"});
  for (int procs : {64, 256, 576}) {
    benchx::PointOptions opts;
    opts.record_host_trace = true;
    opts.run_measured = false;
    auto p = benchx::validate_point(make, procs, machine, params, opts);
    const auto host = benchx::era_host_model(p);
    const double de_wall = harness::emulated_host_seconds(*p.de, hosts, host);
    const double am_wall = harness::emulated_host_seconds(*p.am, hosts, host);
    t.add_row({TablePrinter::fmt_int(procs),
               TablePrinter::fmt_int(procs * 36000LL),
               TablePrinter::fmt(de_wall, 3), TablePrinter::fmt(am_wall, 4),
               TablePrinter::fmt(de_wall / am_wall, 1) + "x"});
  }
  std::cout << t.to_ascii();
  return 0;
}
