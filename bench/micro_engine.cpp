// Microbenchmarks (google-benchmark) for the simulation substrate: fiber
// switching, message round-trips through the engine, symbolic-expression
// evaluation, and interpreter statement dispatch. These bound the cost of
// one simulated event, which is what the AM simulator's wall-clock is
// made of.
#include <benchmark/benchmark.h>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "sim/engine.hpp"
#include "smpi/smpi.hpp"
#include "symexpr/expr.hpp"

using namespace stgsim;

namespace {

void BM_FiberCreateAndRun(benchmark::State& state) {
  for (auto _ : state) {
    simk::Fiber f([] {}, 64 * 1024);
    f.resume();
    benchmark::DoNotOptimize(f.finished());
  }
}
BENCHMARK(BM_FiberCreateAndRun);

void BM_FiberSwitch(benchmark::State& state) {
  simk::Fiber f(
      [] {
        while (true) simk::Fiber::yield_to_scheduler();
      },
      64 * 1024);
  for (auto _ : state) {
    f.resume();
  }
  // Leak the suspended fiber's trivial state: it holds no resources.
}
BENCHMARK(BM_FiberSwitch);

void BM_EnginePingPong(benchmark::State& state) {
  const auto msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    smpi::World::Options wopts;
    smpi::World world(wopts, 2);
    simk::EngineConfig ec;
    ec.num_processes = 2;
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      double buf[8] = {};
      for (int i = 0; i < msgs; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 0, buf, sizeof buf);
          comm.recv(1, 1, buf, sizeof buf);
        } else {
          comm.recv(0, 0, buf, sizeof buf);
          comm.send(0, 1, buf, sizeof buf);
        }
      }
    });
    auto res = engine.run();
    benchmark::DoNotOptimize(res.completion);
  }
  state.SetItemsProcessed(state.iterations() * msgs * 2);
}
BENCHMARK(BM_EnginePingPong)->Arg(64)->Arg(1024);

void BM_ExprEval(benchmark::State& state) {
  using sym::Expr;
  Expr n = Expr::var("N");
  Expr p = Expr::var("P");
  Expr e = (n - 2) * sym::max(sym::min(n, p * 4) - sym::max(Expr::integer(2),
                                                            p - 1) +
                                  1,
                              Expr::integer(0));
  sym::MapEnv env;
  env.set("N", sym::Value(std::int64_t{1024}));
  env.set("P", sym::Value(std::int64_t{16}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.eval_real(env));
  }
}
BENCHMARK(BM_ExprEval);

void BM_InterpScalarLoop(benchmark::State& state) {
  using sym::Expr;
  ir::ProgramBuilder b("loop_micro");
  b.get_size("P");
  b.get_rank("myid");
  Expr n = b.decl_int("N", Expr::integer(state.range(0)));
  b.decl_int("acc", Expr::integer(0));
  b.for_loop("i", Expr::integer(1), n, [&](Expr i) {
    b.assign("acc", Expr::var("acc") + i);
  });
  ir::Program prog = b.take();

  for (auto _ : state) {
    smpi::World::Options wopts;
    smpi::World world(wopts, 1);
    simk::EngineConfig ec;
    ec.num_processes = 1;
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(prog, comm);
    });
    auto res = engine.run();
    benchmark::DoNotOptimize(res.completion);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterpScalarLoop)->Arg(1000);

void BM_SequentialManyProcesses(benchmark::State& state) {
  const auto procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    smpi::World::Options wopts;
    smpi::World world(wopts, procs);
    simk::EngineConfig ec;
    ec.num_processes = procs;
    ec.fiber_stack_bytes = 64 * 1024;
    simk::Engine engine(ec);
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      comm.delay(vtime_from_us(10));
      comm.barrier();
    });
    auto res = engine.run();
    benchmark::DoNotOptimize(res.completion);
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_SequentialManyProcesses)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
