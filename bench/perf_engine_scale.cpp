// Engine-scalability smoke benchmark (not a paper figure): AM-mode runs of
// the SAMPLE kernel and Sweep3D at growing target-process counts, reporting
// raw simulator throughput — scheduling events per second, message matches
// per second — plus peak RSS. This is the regression guard for the PDES
// hot paths (indexed-heap scheduler, flat per-source inboxes, pooled
// message memory, compiled scaling expressions): CI runs it in Release
// mode and archives the JSON it writes.
//
// Usage: perf_engine_scale [--max-procs N] [--out FILE] [--obs] [--threaded]
//                          [--schedule conservative|optimistic|both]
//   --max-procs N   skip sweep points above N target processes
//                   (default 16384; CI uses a smaller bound)
//   --out FILE      JSON output path (default BENCH_engine_scale.json, or
//                   BENCH_threaded_scale.json with --threaded)
//   --obs           attach a metrics-only obs::Recorder to every run, to
//                   measure the enabled-observer overhead against a plain
//                   run of the same sweep (budget: <5% events/sec)
//   --threaded      run the threaded-scheduler sweep instead: workers in
//                   {1,2,4,8} x ranks x all four apps under the comm-aware
//                   partition, with the workers=1 rows (sequential fast
//                   path) as the baseline. The JSON records host_cores —
//                   events/sec ratios are only meaningful against it
//                   (workers > cores measures protocol overhead, not
//                   speedup).
//   --schedule X    (--threaded only) which synchronization protocols to
//                   sweep: the conservative lookahead window, the
//                   optimistic Time Warp scheduler, or both (default).
//                   Optimistic points run the full sweep: periodic
//                   checkpoints let GVT fossil-collect the consumption
//                   log, so peak log memory is bounded by the checkpoint
//                   interval (reported per row as log_bytes_peak), not by
//                   total message volume.
#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"
#include "obs/obs.hpp"
#include "support/numparse.hpp"

using namespace stgsim;

namespace {

struct Point {
  std::string app;
  int procs = 0;
  harness::RunOutcome outcome;
  double peak_rss_mb = 0.0;

  double events() const {
    return static_cast<double>(outcome.messages + outcome.slices);
  }
  double events_per_sec() const {
    return safe_rate(events(), outcome.sim_host_seconds);
  }
  double matches_per_sec() const {
    return safe_rate(static_cast<double>(outcome.messages),
                     outcome.sim_host_seconds);
  }
};

double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// One AM-mode run: compile the app program for `procs` ranks and execute
/// the simplified program with the calibrated w_i table.
Point run_point(const std::string& app, const benchx::ProgramFactory& make,
                int procs, const harness::MachineSpec& machine,
                const std::map<std::string, double>& params,
                bool with_obs) {
  ir::Program prog = make(procs);
  core::CompileResult compiled = core::compile(prog);

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  // AM-mode fibers execute only scalar prologue + delay/communication
  // code; they do not need the default 256 KiB stacks at 16k ranks.
  cfg.fiber_stack_bytes = 128 * 1024;

  std::unique_ptr<obs::Recorder> rec;
  if (with_obs) {
    rec = std::make_unique<obs::Recorder>(obs::Options{}, procs);
    cfg.obs = rec.get();
  }

  Point p;
  p.app = app;
  p.procs = procs;
  p.outcome = harness::run_program(compiled.simplified.program, cfg);
  p.peak_rss_mb = peak_rss_mb();
  STGSIM_CHECK(p.outcome.ok())
      << app << " @ " << procs << ": "
      << harness::run_status_name(p.outcome.status) << " "
      << p.outcome.diagnostic;
  return p;
}

// ---------------------------------------------------------------------------
// Threaded-scheduler sweep (--threaded)
// ---------------------------------------------------------------------------

struct ThreadedPoint {
  std::string app;
  int procs = 0;
  int workers = 0;  ///< 1 = sequential fast path (the baseline rows)
  harness::Schedule schedule = harness::Schedule::kConservative;
  harness::RunOutcome outcome;

  double events_per_sec() const {
    return safe_rate(
        static_cast<double>(outcome.messages + outcome.slices),
        outcome.sim_host_seconds);
  }
};

ThreadedPoint run_threaded_point(const std::string& app,
                                 const benchx::ProgramFactory& make,
                                 int procs, int workers,
                                 harness::Schedule schedule,
                                 const harness::MachineSpec& machine,
                                 const std::map<std::string, double>& params) {
  ir::Program prog = make(procs);
  core::CompileResult compiled = core::compile(prog);

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  cfg.fiber_stack_bytes = 128 * 1024;
  cfg.threads = workers;
  cfg.partition = simk::PartitionMode::kComm;
  cfg.schedule = schedule;

  ThreadedPoint p;
  p.app = app;
  p.procs = procs;
  p.workers = workers;
  p.schedule = schedule;
  p.outcome = harness::run_program(compiled.simplified.program, cfg);
  STGSIM_CHECK(p.outcome.ok())
      << app << " @ " << procs << " x " << workers << " workers ("
      << harness::schedule_name(schedule) << "): "
      << harness::run_status_name(p.outcome.status) << " "
      << p.outcome.diagnostic;
  return p;
}

void write_threaded_json(const std::string& path,
                         const std::vector<ThreadedPoint>& points) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"threaded_scale\",\n  \"mode\": \"am\",\n"
     << "  \"partition\": \"comm\",\n"
     << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"note\": \"workers=1 conservative rows are the sequential fast"
        " path; digests are identical across all rows of one (app, procs)"
        " regardless of schedule; optimistic rows report checkpoint counts"
        " and peak consumption-log bytes (bounded by the checkpoint"
        " interval, not total message volume)\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ThreadedPoint& p = points[i];
    // Baseline = the conservative workers=1 row of the same (app, procs):
    // both protocols are measured against the one sequential fast path.
    double base_wall = 0.0;
    for (const ThreadedPoint& q : points) {
      if (q.app == p.app && q.procs == p.procs && q.workers == 1 &&
          q.schedule == harness::Schedule::kConservative) {
        base_wall = q.outcome.sim_host_seconds;
      }
    }
    const simk::ParallelStats& ps = p.outcome.parallel;
    os << "    {\"app\": \"" << p.app << "\", \"procs\": " << p.procs
       << ", \"workers\": " << p.workers
       << ", \"schedule\": \"" << harness::schedule_name(p.schedule) << "\""
       << ", \"messages\": " << p.outcome.messages
       << ", \"slices\": " << p.outcome.slices
       << ", \"wall_sec\": " << p.outcome.sim_host_seconds
       << ", \"events_per_sec\": " << p.events_per_sec()
       << ", \"speedup_vs_seq\": "
       << safe_speedup(base_wall, p.outcome.sim_host_seconds)
       << ", \"rounds\": " << ps.rounds
       << ", \"intra_messages\": " << ps.intra_messages
       << ", \"mailbox_messages\": " << ps.mailbox_messages
       << ", \"barrier_messages\": " << ps.barrier_messages
       << ", \"rollbacks\": " << ps.rollbacks
       << ", \"anti_messages\": " << ps.anti_messages
       << ", \"gvt_passes\": " << ps.gvt_passes
       << ", \"checkpoints_taken\": " << ps.checkpoints_taken
       << ", \"log_bytes_peak\": " << ps.log_bytes_peak << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run_threaded_sweep(int max_procs, const std::string& out_path,
                       const std::vector<harness::Schedule>& schedules) {
  const auto machine = harness::ibm_sp_machine();
  // Square counts so nas_sp's q x q grid exists at every point.
  const std::vector<int> sweep = {1024, 4096, 16384};
  const std::vector<int> worker_counts = {1, 2, 4, 8};

  const benchx::ProgramFactory make_sample = [](int nprocs) {
    (void)nprocs;
    apps::SampleConfig cfg;
    cfg.iterations = 40;
    cfg.msg_doubles = 1024;
    cfg.work_iters = 100000;
    return apps::make_sample(cfg);
  };
  const benchx::ProgramFactory make_sweep = [](int nprocs) {
    apps::Sweep3DConfig cfg;
    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
    return apps::make_sweep3d(cfg);
  };
  const benchx::ProgramFactory make_tomcatv = [](int nprocs) {
    apps::TomcatvConfig cfg;
    cfg.n = std::max<std::int64_t>(2048, 2 * nprocs);  // >= 2 rows per rank
    cfg.iterations = 2;
    return apps::make_tomcatv(cfg);
  };
  const benchx::ProgramFactory make_sp = [](int nprocs) {
    int q = 1;
    while ((q + 1) * (q + 1) <= nprocs) ++q;
    return apps::make_nas_sp(apps::sp_class('A', q, /*timesteps=*/2));
  };

  print_experiment_header(
      std::cout, "BENCH threaded_scale",
      "Threaded scheduler vs worker count and protocol (AM mode, comm "
      "partition)",
      {"workers=1 conservative rows take the sequential fast path (the",
       "baseline); speedup_vs_seq is baseline wall-clock / wall-clock,",
       "only meaningful up to the host core count recorded in the JSON",
       "digests are bit-identical across every row of one (app, procs)"});

  std::vector<ThreadedPoint> points;
  TablePrinter t({"app", "procs", "workers", "schedule", "wall (s)",
                  "events/s", "rounds", "cross msgs", "rollbacks"});
  for (const auto& [app, make] :
       std::vector<std::pair<std::string, benchx::ProgramFactory>>{
           {"sample", make_sample},
           {"sweep3d", make_sweep},
           {"tomcatv", make_tomcatv},
           {"nas_sp", make_sp}}) {
    const auto params = benchx::calibrate_at(make, 16, machine);
    for (int procs : sweep) {
      if (procs > max_procs) continue;
      for (int workers : worker_counts) {
        for (harness::Schedule schedule : schedules) {
          ThreadedPoint p = run_threaded_point(app, make, procs, workers,
                                               schedule, machine, params);
          const simk::ParallelStats& ps = p.outcome.parallel;
          t.add_row({p.app, TablePrinter::fmt_int(p.procs),
                     TablePrinter::fmt_int(p.workers),
                     harness::schedule_name(p.schedule),
                     TablePrinter::fmt(p.outcome.sim_host_seconds, 3),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(p.events_per_sec())),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(ps.rounds)),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(ps.cross_messages())),
                     TablePrinter::fmt_int(
                         static_cast<std::int64_t>(ps.rollbacks))});
          points.push_back(std::move(p));
        }
      }
    }
  }
  std::cout << t.to_ascii();

  write_threaded_json(out_path, points);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"engine_scale\",\n  \"mode\": \"am\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"app\": \"" << p.app << "\", \"procs\": " << p.procs
       << ", \"messages\": " << p.outcome.messages
       << ", \"slices\": " << p.outcome.slices
       << ", \"wall_sec\": " << p.outcome.sim_host_seconds
       << ", \"events_per_sec\": " << p.events_per_sec()
       << ", \"matches_per_sec\": " << p.matches_per_sec()
       << ", \"peak_rss_mb\": " << p.peak_rss_mb << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int max_procs = 16384;
  std::string out_path;
  bool with_obs = false;
  bool threaded = false;
  std::vector<harness::Schedule> schedules = {
      harness::Schedule::kConservative, harness::Schedule::kOptimistic};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-procs") == 0 && i + 1 < argc) {
      long long n = 0;
      if (support::parse_i64(argv[++i], &n) !=
              support::ParseNumStatus::kOk ||
          n < 1 || n > 1 << 24) {
        std::cerr << "--max-procs: expected a positive integer, got '"
                  << argv[i] << "'\n";
        return 2;
      }
      max_procs = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      with_obs = true;
    } else if (std::strcmp(argv[i], "--threaded") == 0) {
      threaded = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0 && i + 1 < argc) {
      const std::string which = argv[++i];
      harness::Schedule one;
      if (which == "both") {
        schedules = {harness::Schedule::kConservative,
                     harness::Schedule::kOptimistic};
      } else if (harness::parse_schedule(which, &one)) {
        schedules = {one};
      } else {
        std::cerr << "--schedule: expected conservative|optimistic|both, "
                     "got '" << which << "'\n";
        return 2;
      }
    } else {
      std::cerr << "usage: perf_engine_scale [--max-procs N] [--out FILE]"
                   " [--obs] [--threaded]"
                   " [--schedule conservative|optimistic|both]\n";
      return 2;
    }
  }
  if (out_path.empty()) {
    out_path =
        threaded ? "BENCH_threaded_scale.json" : "BENCH_engine_scale.json";
  }
  if (threaded) return run_threaded_sweep(max_procs, out_path, schedules);

  const auto machine = harness::ibm_sp_machine();
  const std::vector<int> sweep = {256, 1024, 4096, 16384};

  // Same workloads the CLI defaults use, so numbers are comparable to
  // `stgsim run --mode am` timings.
  const benchx::ProgramFactory make_sample = [](int nprocs) {
    (void)nprocs;
    apps::SampleConfig cfg;
    cfg.iterations = 40;
    cfg.msg_doubles = 1024;
    cfg.work_iters = 100000;
    return apps::make_sample(cfg);
  };
  const benchx::ProgramFactory make_sweep = [](int nprocs) {
    apps::Sweep3DConfig cfg;  // defaults: 4x4x255 per proc, kb=17
    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
    return apps::make_sweep3d(cfg);
  };

  print_experiment_header(
      std::cout, "BENCH engine_scale",
      "Simulator throughput vs target count (AM mode)",
      {"events = messages + fiber resumptions (scheduling events)",
       "matches/sec = delivered messages retired through the matcher",
       "peak RSS is process-cumulative (monotone down the table)"});

  std::vector<Point> points;
  TablePrinter t({"app", "procs", "messages", "wall (s)", "events/s",
                  "matches/s", "peak RSS (MB)"});
  for (const auto& [app, make] :
       std::vector<std::pair<std::string, benchx::ProgramFactory>>{
           {"sample", make_sample}, {"sweep3d", make_sweep}}) {
    const auto params = benchx::calibrate_at(make, 16, machine);
    for (int procs : sweep) {
      if (procs > max_procs) continue;
      Point p = run_point(app, make, procs, machine, params, with_obs);
      t.add_row({p.app, TablePrinter::fmt_int(p.procs),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.outcome.messages)),
                 TablePrinter::fmt(p.outcome.sim_host_seconds, 3),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.events_per_sec())),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.matches_per_sec())),
                 TablePrinter::fmt(p.peak_rss_mb, 1)});
      points.push_back(std::move(p));
    }
  }
  std::cout << t.to_ascii();

  write_json(out_path, points);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
