// Engine-scalability smoke benchmark (not a paper figure): AM-mode runs of
// the SAMPLE kernel and Sweep3D at growing target-process counts, reporting
// raw simulator throughput — scheduling events per second, message matches
// per second — plus peak RSS. This is the regression guard for the PDES
// hot paths (indexed-heap scheduler, flat per-source inboxes, pooled
// message memory, compiled scaling expressions): CI runs it in Release
// mode and archives the JSON it writes.
//
// Usage: perf_engine_scale [--max-procs N] [--out FILE] [--obs]
//   --max-procs N   skip sweep points above N target processes
//                   (default 16384; CI uses a smaller bound)
//   --out FILE      JSON output path (default BENCH_engine_scale.json)
//   --obs           attach a metrics-only obs::Recorder to every run, to
//                   measure the enabled-observer overhead against a plain
//                   run of the same sweep (budget: <5% events/sec)
#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "bench/common.hpp"
#include "obs/obs.hpp"

using namespace stgsim;

namespace {

struct Point {
  std::string app;
  int procs = 0;
  harness::RunOutcome outcome;
  double peak_rss_mb = 0.0;

  double events() const {
    return static_cast<double>(outcome.messages + outcome.slices);
  }
  double events_per_sec() const {
    return events() / std::max(1e-9, outcome.sim_host_seconds);
  }
  double matches_per_sec() const {
    return static_cast<double>(outcome.messages) /
           std::max(1e-9, outcome.sim_host_seconds);
  }
};

double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// One AM-mode run: compile the app program for `procs` ranks and execute
/// the simplified program with the calibrated w_i table.
Point run_point(const std::string& app, const benchx::ProgramFactory& make,
                int procs, const harness::MachineSpec& machine,
                const std::map<std::string, double>& params,
                bool with_obs) {
  ir::Program prog = make(procs);
  core::CompileResult compiled = core::compile(prog);

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  // AM-mode fibers execute only scalar prologue + delay/communication
  // code; they do not need the default 256 KiB stacks at 16k ranks.
  cfg.fiber_stack_bytes = 128 * 1024;

  std::unique_ptr<obs::Recorder> rec;
  if (with_obs) {
    rec = std::make_unique<obs::Recorder>(obs::Options{}, procs);
    cfg.obs = rec.get();
  }

  Point p;
  p.app = app;
  p.procs = procs;
  p.outcome = harness::run_program(compiled.simplified.program, cfg);
  p.peak_rss_mb = peak_rss_mb();
  STGSIM_CHECK(p.outcome.ok())
      << app << " @ " << procs << ": "
      << harness::run_status_name(p.outcome.status) << " "
      << p.outcome.diagnostic;
  return p;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"engine_scale\",\n  \"mode\": \"am\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"app\": \"" << p.app << "\", \"procs\": " << p.procs
       << ", \"messages\": " << p.outcome.messages
       << ", \"slices\": " << p.outcome.slices
       << ", \"wall_sec\": " << p.outcome.sim_host_seconds
       << ", \"events_per_sec\": " << p.events_per_sec()
       << ", \"matches_per_sec\": " << p.matches_per_sec()
       << ", \"peak_rss_mb\": " << p.peak_rss_mb << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int max_procs = 16384;
  std::string out_path = "BENCH_engine_scale.json";
  bool with_obs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-procs") == 0 && i + 1 < argc) {
      max_procs = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      with_obs = true;
    } else {
      std::cerr << "usage: perf_engine_scale [--max-procs N] [--out FILE]"
                   " [--obs]\n";
      return 2;
    }
  }

  const auto machine = harness::ibm_sp_machine();
  const std::vector<int> sweep = {256, 1024, 4096, 16384};

  // Same workloads the CLI defaults use, so numbers are comparable to
  // `stgsim run --mode am` timings.
  const benchx::ProgramFactory make_sample = [](int nprocs) {
    (void)nprocs;
    apps::SampleConfig cfg;
    cfg.iterations = 40;
    cfg.msg_doubles = 1024;
    cfg.work_iters = 100000;
    return apps::make_sample(cfg);
  };
  const benchx::ProgramFactory make_sweep = [](int nprocs) {
    apps::Sweep3DConfig cfg;  // defaults: 4x4x255 per proc, kb=17
    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
    return apps::make_sweep3d(cfg);
  };

  print_experiment_header(
      std::cout, "BENCH engine_scale",
      "Simulator throughput vs target count (AM mode)",
      {"events = messages + fiber resumptions (scheduling events)",
       "matches/sec = delivered messages retired through the matcher",
       "peak RSS is process-cumulative (monotone down the table)"});

  std::vector<Point> points;
  TablePrinter t({"app", "procs", "messages", "wall (s)", "events/s",
                  "matches/s", "peak RSS (MB)"});
  for (const auto& [app, make] :
       std::vector<std::pair<std::string, benchx::ProgramFactory>>{
           {"sample", make_sample}, {"sweep3d", make_sweep}}) {
    const auto params = benchx::calibrate_at(make, 16, machine);
    for (int procs : sweep) {
      if (procs > max_procs) continue;
      Point p = run_point(app, make, procs, machine, params, with_obs);
      t.add_row({p.app, TablePrinter::fmt_int(p.procs),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.outcome.messages)),
                 TablePrinter::fmt(p.outcome.sim_host_seconds, 3),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.events_per_sec())),
                 TablePrinter::fmt_int(
                     static_cast<std::int64_t>(p.matches_per_sec())),
                 TablePrinter::fmt(p.peak_rss_mb, 1)});
      points.push_back(std::move(p));
    }
  }
  std::cout << t.to_ascii();

  write_json(out_path, points);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
