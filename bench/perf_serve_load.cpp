// Serve-load smoke benchmark (not a paper figure): drives serve::Service
// in-process with a pool of client threads firing a mix of identical and
// distinct run requests, then repeats the whole mix against the warm
// cache. This is the regression guard for the campaign-service admission
// and dedup paths: each unique spec must execute exactly once on the cold
// pass (everything else is a cache hit or an in-flight dedup join), the
// warm pass must be 100% cache hits, and request latency percentiles are
// archived so a slow lock or a serialized executor shows up as a step in
// the JSON CI stores.
//
// Usage: perf_serve_load [--clients N] [--requests M] [--distinct K]
//                        [--jobs J] [--out FILE]
//   --clients N    concurrent client threads (default 8)
//   --requests M   requests per client per pass (default 16)
//   --distinct K   distinct run specs the mix cycles through (default 4)
//   --jobs J       executor permit-pool size (default 4)
//   --out FILE     JSON output path (default BENCH_serve_load.json)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/executor.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/json.hpp"
#include "support/numparse.hpp"

using namespace stgsim;

namespace {

using Clock = std::chrono::steady_clock;

/// One distinct run spec: the sample kernel with a work knob that keys the
/// content address, so --distinct K yields exactly K cache entries.
serve::Request make_request(int client, int distinct_id) {
  serve::Request req;
  req.kind = serve::RequestKind::kRun;
  req.client = "client-" + std::to_string(client);
  json::Value payload = json::Value::object();
  payload.set("app", "sample");
  payload.set("mode", "de");
  payload.set("procs", 2);
  payload.set("seed", 5);
  json::Value opts = json::Value::object();
  opts.set("iters", "2");
  opts.set("work", std::to_string(1000 + 100 * distinct_id));
  payload.set("options", opts);
  req.payload = std::move(payload);
  return req;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct PassResult {
  std::vector<double> latencies_ms;  // sorted
  double wall_sec = 0.0;
  std::size_t errors = 0;
};

/// Fires clients x requests at the service, round-robin over the distinct
/// specs, and collects per-request latency.
PassResult run_pass(serve::Service& service, int clients, int requests,
                    int distinct) {
  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::size_t> errors(clients, 0);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      per_client[c].reserve(requests);
      for (int r = 0; r < requests; ++r) {
        const serve::Request req = make_request(c, (c + r) % distinct);
        const Clock::time_point t0 = Clock::now();
        json::Value last;
        service.handle(req, [&](const json::Value& f) { last = f; });
        per_client[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        if (last.at("event").as_string() != "result") ++errors[c];
      }
    });
  }
  for (auto& t : pool) t.join();
  PassResult out;
  out.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  for (int c = 0; c < clients; ++c) {
    out.latencies_ms.insert(out.latencies_ms.end(), per_client[c].begin(),
                            per_client[c].end());
    out.errors += errors[c];
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

json::Value pass_json(const PassResult& pass, int total_requests) {
  json::Value out = json::Value::object();
  out.set("requests", total_requests);
  out.set("errors", static_cast<std::int64_t>(pass.errors));
  out.set("wall_sec", pass.wall_sec);
  out.set("requests_per_sec",
          pass.wall_sec > 0.0 ? total_requests / pass.wall_sec : 0.0);
  out.set("latency_ms_p50", percentile(pass.latencies_ms, 0.50));
  out.set("latency_ms_p95", percentile(pass.latencies_ms, 0.95));
  out.set("latency_ms_p99", percentile(pass.latencies_ms, 0.99));
  return out;
}

json::Value executor_json(const campaign::Executor::Stats& st) {
  json::Value out = json::Value::object();
  out.set("executed", static_cast<std::int64_t>(st.executed));
  out.set("cache_hits", static_cast<std::int64_t>(st.cache_hits));
  out.set("dedup_joined", static_cast<std::int64_t>(st.dedup_joined));
  const double lookups =
      static_cast<double>(st.executed + st.cache_hits + st.dedup_joined);
  out.set("hit_rate",
          lookups > 0.0 ? static_cast<double>(st.cache_hits + st.dedup_joined) /
                              lookups
                        : 0.0);
  return out;
}

long long parse_flag(int argc, char** argv, int& i, const char* name) {
  if (i + 1 >= argc) {
    std::cerr << name << " needs a value\n";
    std::exit(1);
  }
  long long v = 0;
  if (support::parse_i64(argv[++i], &v) != support::ParseNumStatus::kOk ||
      v <= 0) {
    std::cerr << name << ": expected a positive integer\n";
    std::exit(1);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 8;
  int requests = 16;
  int distinct = 4;
  int jobs = 4;
  std::string out_path = "BENCH_serve_load.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0) {
      clients = static_cast<int>(parse_flag(argc, argv, i, "--clients"));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      requests = static_cast<int>(parse_flag(argc, argv, i, "--requests"));
    } else if (std::strcmp(argv[i], "--distinct") == 0) {
      distinct = static_cast<int>(parse_flag(argc, argv, i, "--distinct"));
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = static_cast<int>(parse_flag(argc, argv, i, "--jobs"));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 1;
    }
  }

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() /
      ("stgsim-serve-bench-" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);

  serve::Service::Options so;
  so.cache_dir = cache_dir.string();
  so.jobs = jobs;
  so.max_active_requests = 0;       // the bench saturates on purpose
  so.max_inflight_per_client = 0;   // (admission is tested elsewhere)
  serve::Service service(so);

  const int total = clients * requests;
  std::cout << "serve-load: " << clients << " clients x " << requests
            << " requests, " << distinct << " distinct specs, jobs=" << jobs
            << "\n";

  const PassResult cold = run_pass(service, clients, requests, distinct);
  const campaign::Executor::Stats cold_stats = service.executor().stats();
  const PassResult warm = run_pass(service, clients, requests, distinct);
  const campaign::Executor::Stats warm_stats = service.executor().stats();

  // Warm-pass deltas: everything after the cold pass must be a cache hit.
  const std::uint64_t warm_executed = warm_stats.executed - cold_stats.executed;
  const std::uint64_t warm_hits = warm_stats.cache_hits - cold_stats.cache_hits;

  json::Value doc = json::Value::object();
  doc.set("bench", "serve_load");
  json::Value cfg = json::Value::object();
  cfg.set("clients", clients);
  cfg.set("requests_per_client", requests);
  cfg.set("distinct_specs", distinct);
  cfg.set("jobs", jobs);
  cfg.set("host_cores",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  doc.set("config", cfg);
  json::Value cold_doc = pass_json(cold, total);
  cold_doc.set("executor", executor_json(cold_stats));
  doc.set("cold", cold_doc);
  json::Value warm_doc = pass_json(warm, total);
  warm_doc.set("warm_executed", static_cast<std::int64_t>(warm_executed));
  warm_doc.set("warm_cache_hits", static_cast<std::int64_t>(warm_hits));
  doc.set("warm", warm_doc);

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << doc.dump(2) << "\n";
  out.close();
  std::filesystem::remove_all(cache_dir);

  std::cout << "cold: executed=" << cold_stats.executed
            << " hits=" << cold_stats.cache_hits
            << " dedup_joined=" << cold_stats.dedup_joined
            << " p95=" << pass_json(cold, total).at("latency_ms_p95").as_number()
            << "ms\n";
  std::cout << "warm: executed=" << warm_executed << " hits=" << warm_hits
            << " p95=" << pass_json(warm, total).at("latency_ms_p95").as_number()
            << "ms\n";
  std::cout << "wrote " << out_path << "\n";

  bool ok = true;
  if (cold_stats.executed != static_cast<std::uint64_t>(distinct)) {
    std::cerr << "FAIL: cold pass executed " << cold_stats.executed
              << " runs, expected exactly " << distinct << "\n";
    ok = false;
  }
  if (warm_executed != 0) {
    std::cerr << "FAIL: warm pass executed " << warm_executed
              << " runs, expected 0 (100% cache hits)\n";
    ok = false;
  }
  if (cold.errors + warm.errors != 0) {
    std::cerr << "FAIL: " << (cold.errors + warm.errors)
              << " requests did not end in a result frame\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
