// Table 1: total memory used by MPI-SIM-DE vs MPI-SIM-AM for each
// benchmark, and the reduction factor. Paper: factors from ~5 (SP) to
// ~2000 (Tomcatv, Sweep3D per-processor sizes) — two to three orders of
// magnitude for the array-dominated codes.
//
// A second table reports the optimistic scheduler's peak consumption-log
// bytes for the same AM-mode runs across checkpoint intervals {1, 4, 64,
// off}: with checkpoints on, GVT prunes log entries behind the newest
// committed checkpoint, so peak log memory shrinks with the interval;
// "off" retains the full history (the pre-checkpoint behaviour).
#include "apps/nas_sp.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "bench/common.hpp"

using namespace stgsim;

namespace {

struct Row {
  std::string label;
  benchx::ProgramFactory make;
  int procs;
};

/// Peak consumption-log bytes of one AM-mode run under the sequential
/// optimistic scheduler at the given checkpoint interval (0 = off).
std::uint64_t optimistic_log_peak(const benchx::ProgramFactory& make,
                                  int procs,
                                  const harness::MachineSpec& machine,
                                  const std::map<std::string, double>& params,
                                  std::uint64_t checkpoint_interval) {
  ir::Program prog = make(procs);
  core::CompileResult compiled = core::compile(prog);
  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  cfg.schedule = harness::Schedule::kOptimistic;
  cfg.checkpoint_interval = checkpoint_interval;
  // Fixed intervals isolate the interval's effect on the log bound.
  cfg.checkpoint_adaptive = false;
  harness::RunOutcome out = harness::run_program(compiled.simplified.program, cfg);
  STGSIM_CHECK(out.ok()) << harness::run_status_name(out.status) << " "
                         << out.diagnostic;
  return out.parallel.log_bytes_peak;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();

  apps::Sweep3DConfig sw_small;  // 4x4x255 per processor
  sw_small.it = 4;
  sw_small.jt = 4;
  sw_small.kt = 255;
  sw_small.kb = 17;
  sw_small.mm = 6;
  sw_small.mmi = 3;

  apps::Sweep3DConfig sw_large;  // 6x6x1000 per processor
  sw_large.it = 6;
  sw_large.jt = 6;
  sw_large.kt = 1000;
  sw_large.kb = 125;
  sw_large.mm = 6;
  sw_large.mmi = 3;

  apps::TomcatvConfig tc;
  tc.n = 1024;
  tc.iterations = 2;

  std::vector<Row> rows;
  rows.push_back({"Sweep3D 4x4x255/proc, 100 procs",
                  [&](int nprocs) {
                    auto cfg = sw_small;
                    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
                    return apps::make_sweep3d(cfg);
                  },
                  100});
  rows.push_back({"Sweep3D 6x6x1000/proc, 64 procs",
                  [&](int nprocs) {
                    auto cfg = sw_large;
                    apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
                    return apps::make_sweep3d(cfg);
                  },
                  64});
  rows.push_back({"SP, class A, 16 procs",
                  [](int) { return apps::make_nas_sp(apps::sp_class('A', 4, 1)); },
                  16});
  rows.push_back({"SP, class C, 16 procs",
                  [](int) { return apps::make_nas_sp(apps::sp_class('C', 4, 1)); },
                  16});
  rows.push_back({"Tomcatv 1024^2, 16 procs",
                  [&](int) { return apps::make_tomcatv(tc); },
                  16});

  print_experiment_header(
      std::cout, "Table 1",
      "Total simulator memory: MPI-SIM-DE vs MPI-SIM-AM",
      {"peak bytes of simulated-program data across all target processes",
       "paper shape: reductions of 1-3 orders of magnitude for the",
       "array-dominated codes; smaller for SP"});

  TablePrinter t({"benchmark", "procs", "MPI-SIM-DE", "MPI-SIM-AM",
                  "reduction factor"});
  TablePrinter lt({"benchmark", "procs", "log peak cp=1", "cp=4", "cp=64",
                   "cp=off"});
  for (const auto& row : rows) {
    const auto params = benchx::calibrate_at(row.make, row.procs, machine);
    benchx::PointOptions opts;
    opts.run_measured = false;
    auto point =
        benchx::validate_point(row.make, row.procs, machine, params, opts);
    const double factor =
        static_cast<double>(point.de->peak_target_bytes) /
        static_cast<double>(std::max<std::size_t>(1, point.am->peak_target_bytes));
    t.add_row({row.label, TablePrinter::fmt_int(row.procs),
               TablePrinter::fmt_bytes(point.de->peak_target_bytes),
               TablePrinter::fmt_bytes(point.am->peak_target_bytes),
               TablePrinter::fmt(factor, 0)});

    std::vector<std::string> cells = {row.label,
                                      TablePrinter::fmt_int(row.procs)};
    for (std::uint64_t interval : {std::uint64_t{1}, std::uint64_t{4},
                                   std::uint64_t{64}, std::uint64_t{0}}) {
      cells.push_back(TablePrinter::fmt_bytes(optimistic_log_peak(
          row.make, row.procs, machine, params, interval)));
    }
    lt.add_row(cells);
  }
  std::cout << t.to_ascii();

  std::cout << "\nOptimistic consumption-log peak vs checkpoint interval "
               "(AM mode, sequential Time Warp; cp=off never prunes)\n";
  std::cout << lt.to_ascii();
  return 0;
}
