file(REMOVE_RECURSE
  "CMakeFiles/abl_branch_elimination.dir/abl_branch_elimination.cpp.o"
  "CMakeFiles/abl_branch_elimination.dir/abl_branch_elimination.cpp.o.d"
  "abl_branch_elimination"
  "abl_branch_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_branch_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
