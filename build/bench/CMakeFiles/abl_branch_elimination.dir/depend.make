# Empty dependencies file for abl_branch_elimination.
# This may be replaced when dependencies are built.
