file(REMOVE_RECURSE
  "CMakeFiles/abl_calibration_transfer.dir/abl_calibration_transfer.cpp.o"
  "CMakeFiles/abl_calibration_transfer.dir/abl_calibration_transfer.cpp.o.d"
  "abl_calibration_transfer"
  "abl_calibration_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_calibration_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
