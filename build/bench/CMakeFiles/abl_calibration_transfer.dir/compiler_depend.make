# Empty compiler generated dependencies file for abl_calibration_transfer.
# This may be replaced when dependencies are built.
