file(REMOVE_RECURSE
  "CMakeFiles/abl_comm_model.dir/abl_comm_model.cpp.o"
  "CMakeFiles/abl_comm_model.dir/abl_comm_model.cpp.o.d"
  "abl_comm_model"
  "abl_comm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
