# Empty compiler generated dependencies file for abl_comm_model.
# This may be replaced when dependencies are built.
