file(REMOVE_RECURSE
  "CMakeFiles/abl_scaling_form.dir/abl_scaling_form.cpp.o"
  "CMakeFiles/abl_scaling_form.dir/abl_scaling_form.cpp.o.d"
  "abl_scaling_form"
  "abl_scaling_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scaling_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
