# Empty dependencies file for abl_scaling_form.
# This may be replaced when dependencies are built.
