file(REMOVE_RECURSE
  "CMakeFiles/abl_task_time_sources.dir/abl_task_time_sources.cpp.o"
  "CMakeFiles/abl_task_time_sources.dir/abl_task_time_sources.cpp.o.d"
  "abl_task_time_sources"
  "abl_task_time_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_task_time_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
