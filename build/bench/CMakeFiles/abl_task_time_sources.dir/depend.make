# Empty dependencies file for abl_task_time_sources.
# This may be replaced when dependencies are built.
