file(REMOVE_RECURSE
  "CMakeFiles/fig03_tomcatv_validation.dir/fig03_tomcatv_validation.cpp.o"
  "CMakeFiles/fig03_tomcatv_validation.dir/fig03_tomcatv_validation.cpp.o.d"
  "fig03_tomcatv_validation"
  "fig03_tomcatv_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_tomcatv_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
