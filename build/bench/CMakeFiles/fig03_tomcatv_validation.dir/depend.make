# Empty dependencies file for fig03_tomcatv_validation.
# This may be replaced when dependencies are built.
