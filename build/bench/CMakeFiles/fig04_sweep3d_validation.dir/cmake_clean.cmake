file(REMOVE_RECURSE
  "CMakeFiles/fig04_sweep3d_validation.dir/fig04_sweep3d_validation.cpp.o"
  "CMakeFiles/fig04_sweep3d_validation.dir/fig04_sweep3d_validation.cpp.o.d"
  "fig04_sweep3d_validation"
  "fig04_sweep3d_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sweep3d_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
