# Empty dependencies file for fig04_sweep3d_validation.
# This may be replaced when dependencies are built.
