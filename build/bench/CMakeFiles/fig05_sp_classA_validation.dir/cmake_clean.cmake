file(REMOVE_RECURSE
  "CMakeFiles/fig05_sp_classA_validation.dir/fig05_sp_classA_validation.cpp.o"
  "CMakeFiles/fig05_sp_classA_validation.dir/fig05_sp_classA_validation.cpp.o.d"
  "fig05_sp_classA_validation"
  "fig05_sp_classA_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sp_classA_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
