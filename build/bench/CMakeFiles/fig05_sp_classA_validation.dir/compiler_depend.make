# Empty compiler generated dependencies file for fig05_sp_classA_validation.
# This may be replaced when dependencies are built.
