file(REMOVE_RECURSE
  "CMakeFiles/fig06_sp_classC_validation.dir/fig06_sp_classC_validation.cpp.o"
  "CMakeFiles/fig06_sp_classC_validation.dir/fig06_sp_classC_validation.cpp.o.d"
  "fig06_sp_classC_validation"
  "fig06_sp_classC_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sp_classC_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
