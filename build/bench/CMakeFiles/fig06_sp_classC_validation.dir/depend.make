# Empty dependencies file for fig06_sp_classC_validation.
# This may be replaced when dependencies are built.
