file(REMOVE_RECURSE
  "CMakeFiles/fig07_error_summary.dir/fig07_error_summary.cpp.o"
  "CMakeFiles/fig07_error_summary.dir/fig07_error_summary.cpp.o.d"
  "fig07_error_summary"
  "fig07_error_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_error_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
