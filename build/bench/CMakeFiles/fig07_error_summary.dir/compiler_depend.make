# Empty compiler generated dependencies file for fig07_error_summary.
# This may be replaced when dependencies are built.
