# Empty dependencies file for fig09_sample_error.
# This may be replaced when dependencies are built.
