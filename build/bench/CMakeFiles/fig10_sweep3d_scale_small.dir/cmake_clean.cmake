file(REMOVE_RECURSE
  "CMakeFiles/fig10_sweep3d_scale_small.dir/fig10_sweep3d_scale_small.cpp.o"
  "CMakeFiles/fig10_sweep3d_scale_small.dir/fig10_sweep3d_scale_small.cpp.o.d"
  "fig10_sweep3d_scale_small"
  "fig10_sweep3d_scale_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sweep3d_scale_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
