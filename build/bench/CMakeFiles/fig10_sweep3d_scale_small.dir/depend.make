# Empty dependencies file for fig10_sweep3d_scale_small.
# This may be replaced when dependencies are built.
