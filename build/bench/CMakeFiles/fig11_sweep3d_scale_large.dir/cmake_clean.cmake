file(REMOVE_RECURSE
  "CMakeFiles/fig11_sweep3d_scale_large.dir/fig11_sweep3d_scale_large.cpp.o"
  "CMakeFiles/fig11_sweep3d_scale_large.dir/fig11_sweep3d_scale_large.cpp.o.d"
  "fig11_sweep3d_scale_large"
  "fig11_sweep3d_scale_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sweep3d_scale_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
