# Empty dependencies file for fig11_sweep3d_scale_large.
# This may be replaced when dependencies are built.
