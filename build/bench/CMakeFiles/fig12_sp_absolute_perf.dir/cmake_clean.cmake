file(REMOVE_RECURSE
  "CMakeFiles/fig12_sp_absolute_perf.dir/fig12_sp_absolute_perf.cpp.o"
  "CMakeFiles/fig12_sp_absolute_perf.dir/fig12_sp_absolute_perf.cpp.o.d"
  "fig12_sp_absolute_perf"
  "fig12_sp_absolute_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sp_absolute_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
