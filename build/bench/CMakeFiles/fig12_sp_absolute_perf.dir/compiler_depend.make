# Empty compiler generated dependencies file for fig12_sp_absolute_perf.
# This may be replaced when dependencies are built.
