# Empty compiler generated dependencies file for fig13_tomcatv_absolute_perf.
# This may be replaced when dependencies are built.
