file(REMOVE_RECURSE
  "CMakeFiles/fig14_parallel_performance.dir/fig14_parallel_performance.cpp.o"
  "CMakeFiles/fig14_parallel_performance.dir/fig14_parallel_performance.cpp.o.d"
  "fig14_parallel_performance"
  "fig14_parallel_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_parallel_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
