# Empty compiler generated dependencies file for fig14_parallel_performance.
# This may be replaced when dependencies are built.
