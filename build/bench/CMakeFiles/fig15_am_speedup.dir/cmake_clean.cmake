file(REMOVE_RECURSE
  "CMakeFiles/fig15_am_speedup.dir/fig15_am_speedup.cpp.o"
  "CMakeFiles/fig15_am_speedup.dir/fig15_am_speedup.cpp.o.d"
  "fig15_am_speedup"
  "fig15_am_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_am_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
