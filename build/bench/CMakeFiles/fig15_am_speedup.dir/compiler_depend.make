# Empty compiler generated dependencies file for fig15_am_speedup.
# This may be replaced when dependencies are built.
