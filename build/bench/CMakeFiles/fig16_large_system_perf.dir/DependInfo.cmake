
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_large_system_perf.cpp" "bench/CMakeFiles/fig16_large_system_perf.dir/fig16_large_system_perf.cpp.o" "gcc" "bench/CMakeFiles/fig16_large_system_perf.dir/fig16_large_system_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/stgsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stgsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/stgsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/stgsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/symexpr/CMakeFiles/stgsim_symexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/smpi/CMakeFiles/stgsim_smpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stgsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/stgsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stgsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
