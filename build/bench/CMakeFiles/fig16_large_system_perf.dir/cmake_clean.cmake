file(REMOVE_RECURSE
  "CMakeFiles/fig16_large_system_perf.dir/fig16_large_system_perf.cpp.o"
  "CMakeFiles/fig16_large_system_perf.dir/fig16_large_system_perf.cpp.o.d"
  "fig16_large_system_perf"
  "fig16_large_system_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_large_system_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
