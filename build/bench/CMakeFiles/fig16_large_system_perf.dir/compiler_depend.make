# Empty compiler generated dependencies file for fig16_large_system_perf.
# This may be replaced when dependencies are built.
