file(REMOVE_RECURSE
  "CMakeFiles/sweep3d_study.dir/sweep3d_study.cpp.o"
  "CMakeFiles/sweep3d_study.dir/sweep3d_study.cpp.o.d"
  "sweep3d_study"
  "sweep3d_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep3d_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
