# Empty compiler generated dependencies file for sweep3d_study.
# This may be replaced when dependencies are built.
