file(REMOVE_RECURSE
  "CMakeFiles/taskgraph_tour.dir/taskgraph_tour.cpp.o"
  "CMakeFiles/taskgraph_tour.dir/taskgraph_tour.cpp.o.d"
  "taskgraph_tour"
  "taskgraph_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskgraph_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
