# Empty dependencies file for taskgraph_tour.
# This may be replaced when dependencies are built.
