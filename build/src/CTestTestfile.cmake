# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("symexpr")
subdirs("sim")
subdirs("net")
subdirs("machine")
subdirs("smpi")
subdirs("ir")
subdirs("core")
subdirs("apps")
subdirs("harness")
subdirs("cli")
