file(REMOVE_RECURSE
  "CMakeFiles/stgsim_apps.dir/nas_sp.cpp.o"
  "CMakeFiles/stgsim_apps.dir/nas_sp.cpp.o.d"
  "CMakeFiles/stgsim_apps.dir/sample.cpp.o"
  "CMakeFiles/stgsim_apps.dir/sample.cpp.o.d"
  "CMakeFiles/stgsim_apps.dir/sweep3d.cpp.o"
  "CMakeFiles/stgsim_apps.dir/sweep3d.cpp.o.d"
  "CMakeFiles/stgsim_apps.dir/tomcatv.cpp.o"
  "CMakeFiles/stgsim_apps.dir/tomcatv.cpp.o.d"
  "libstgsim_apps.a"
  "libstgsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
