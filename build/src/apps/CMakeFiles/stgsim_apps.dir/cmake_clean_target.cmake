file(REMOVE_RECURSE
  "libstgsim_apps.a"
)
