# Empty compiler generated dependencies file for stgsim_apps.
# This may be replaced when dependencies are built.
