file(REMOVE_RECURSE
  "CMakeFiles/stgsim.dir/stgsim_cli.cpp.o"
  "CMakeFiles/stgsim.dir/stgsim_cli.cpp.o.d"
  "stgsim"
  "stgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
