# Empty compiler generated dependencies file for stgsim.
# This may be replaced when dependencies are built.
