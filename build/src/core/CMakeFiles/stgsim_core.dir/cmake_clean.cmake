file(REMOVE_RECURSE
  "CMakeFiles/stgsim_core.dir/calibration.cpp.o"
  "CMakeFiles/stgsim_core.dir/calibration.cpp.o.d"
  "CMakeFiles/stgsim_core.dir/codegen.cpp.o"
  "CMakeFiles/stgsim_core.dir/codegen.cpp.o.d"
  "CMakeFiles/stgsim_core.dir/compiler.cpp.o"
  "CMakeFiles/stgsim_core.dir/compiler.cpp.o.d"
  "CMakeFiles/stgsim_core.dir/dtg.cpp.o"
  "CMakeFiles/stgsim_core.dir/dtg.cpp.o.d"
  "CMakeFiles/stgsim_core.dir/slice.cpp.o"
  "CMakeFiles/stgsim_core.dir/slice.cpp.o.d"
  "CMakeFiles/stgsim_core.dir/stg.cpp.o"
  "CMakeFiles/stgsim_core.dir/stg.cpp.o.d"
  "libstgsim_core.a"
  "libstgsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
