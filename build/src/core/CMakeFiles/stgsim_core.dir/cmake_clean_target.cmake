file(REMOVE_RECURSE
  "libstgsim_core.a"
)
