# Empty dependencies file for stgsim_core.
# This may be replaced when dependencies are built.
