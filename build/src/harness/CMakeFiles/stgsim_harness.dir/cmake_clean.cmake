file(REMOVE_RECURSE
  "CMakeFiles/stgsim_harness.dir/runner.cpp.o"
  "CMakeFiles/stgsim_harness.dir/runner.cpp.o.d"
  "libstgsim_harness.a"
  "libstgsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
