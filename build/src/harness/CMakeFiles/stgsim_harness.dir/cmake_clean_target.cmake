file(REMOVE_RECURSE
  "libstgsim_harness.a"
)
