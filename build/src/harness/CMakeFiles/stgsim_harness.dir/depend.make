# Empty dependencies file for stgsim_harness.
# This may be replaced when dependencies are built.
