file(REMOVE_RECURSE
  "CMakeFiles/stgsim_ir.dir/builder.cpp.o"
  "CMakeFiles/stgsim_ir.dir/builder.cpp.o.d"
  "CMakeFiles/stgsim_ir.dir/interp.cpp.o"
  "CMakeFiles/stgsim_ir.dir/interp.cpp.o.d"
  "CMakeFiles/stgsim_ir.dir/program.cpp.o"
  "CMakeFiles/stgsim_ir.dir/program.cpp.o.d"
  "libstgsim_ir.a"
  "libstgsim_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
