file(REMOVE_RECURSE
  "libstgsim_ir.a"
)
