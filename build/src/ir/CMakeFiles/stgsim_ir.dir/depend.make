# Empty dependencies file for stgsim_ir.
# This may be replaced when dependencies are built.
