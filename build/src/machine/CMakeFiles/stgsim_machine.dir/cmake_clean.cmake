file(REMOVE_RECURSE
  "CMakeFiles/stgsim_machine.dir/compute.cpp.o"
  "CMakeFiles/stgsim_machine.dir/compute.cpp.o.d"
  "libstgsim_machine.a"
  "libstgsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
