file(REMOVE_RECURSE
  "libstgsim_machine.a"
)
