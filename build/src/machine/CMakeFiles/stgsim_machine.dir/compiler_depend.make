# Empty compiler generated dependencies file for stgsim_machine.
# This may be replaced when dependencies are built.
