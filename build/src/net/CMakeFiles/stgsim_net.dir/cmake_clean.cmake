file(REMOVE_RECURSE
  "CMakeFiles/stgsim_net.dir/network.cpp.o"
  "CMakeFiles/stgsim_net.dir/network.cpp.o.d"
  "libstgsim_net.a"
  "libstgsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
