file(REMOVE_RECURSE
  "libstgsim_net.a"
)
