# Empty dependencies file for stgsim_net.
# This may be replaced when dependencies are built.
