file(REMOVE_RECURSE
  "CMakeFiles/stgsim_sim.dir/engine.cpp.o"
  "CMakeFiles/stgsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/stgsim_sim.dir/fiber.cpp.o"
  "CMakeFiles/stgsim_sim.dir/fiber.cpp.o.d"
  "libstgsim_sim.a"
  "libstgsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
