file(REMOVE_RECURSE
  "libstgsim_sim.a"
)
