# Empty compiler generated dependencies file for stgsim_sim.
# This may be replaced when dependencies are built.
