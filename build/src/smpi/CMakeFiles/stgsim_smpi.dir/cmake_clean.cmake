file(REMOVE_RECURSE
  "CMakeFiles/stgsim_smpi.dir/smpi.cpp.o"
  "CMakeFiles/stgsim_smpi.dir/smpi.cpp.o.d"
  "libstgsim_smpi.a"
  "libstgsim_smpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_smpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
