file(REMOVE_RECURSE
  "libstgsim_smpi.a"
)
