# Empty dependencies file for stgsim_smpi.
# This may be replaced when dependencies are built.
