file(REMOVE_RECURSE
  "CMakeFiles/stgsim_support.dir/check.cpp.o"
  "CMakeFiles/stgsim_support.dir/check.cpp.o.d"
  "CMakeFiles/stgsim_support.dir/table.cpp.o"
  "CMakeFiles/stgsim_support.dir/table.cpp.o.d"
  "CMakeFiles/stgsim_support.dir/vtime.cpp.o"
  "CMakeFiles/stgsim_support.dir/vtime.cpp.o.d"
  "libstgsim_support.a"
  "libstgsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
