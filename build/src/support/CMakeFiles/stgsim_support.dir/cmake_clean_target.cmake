file(REMOVE_RECURSE
  "libstgsim_support.a"
)
