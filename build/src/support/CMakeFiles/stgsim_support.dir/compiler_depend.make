# Empty compiler generated dependencies file for stgsim_support.
# This may be replaced when dependencies are built.
