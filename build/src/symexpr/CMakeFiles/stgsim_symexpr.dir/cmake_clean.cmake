file(REMOVE_RECURSE
  "CMakeFiles/stgsim_symexpr.dir/expr.cpp.o"
  "CMakeFiles/stgsim_symexpr.dir/expr.cpp.o.d"
  "libstgsim_symexpr.a"
  "libstgsim_symexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgsim_symexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
