file(REMOVE_RECURSE
  "libstgsim_symexpr.a"
)
