# Empty dependencies file for stgsim_symexpr.
# This may be replaced when dependencies are built.
