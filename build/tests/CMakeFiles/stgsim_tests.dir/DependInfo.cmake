
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_dtg.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_dtg.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_dtg.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_net_machine.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_net_machine.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_net_machine.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_program.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_program.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_program.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_slice.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_slice.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_slice.cpp.o.d"
  "/root/repo/tests/test_smpi.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_smpi.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_smpi.cpp.o.d"
  "/root/repo/tests/test_stg.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_stg.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_stg.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_symexpr.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_symexpr.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_symexpr.cpp.o.d"
  "/root/repo/tests/test_validation_band.cpp" "tests/CMakeFiles/stgsim_tests.dir/test_validation_band.cpp.o" "gcc" "tests/CMakeFiles/stgsim_tests.dir/test_validation_band.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/stgsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stgsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/stgsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/stgsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/symexpr/CMakeFiles/stgsim_symexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/smpi/CMakeFiles/stgsim_smpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stgsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/stgsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stgsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
