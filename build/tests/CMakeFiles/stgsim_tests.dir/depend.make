# Empty dependencies file for stgsim_tests.
# This may be replaced when dependencies are built.
