# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stgsim_tests[1]_include.cmake")
add_test(cli_list_apps "/root/repo/build/src/cli/stgsim" "list-apps")
set_tests_properties(cli_list_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_compile "/root/repo/build/src/cli/stgsim" "compile" "--app" "tomcatv" "--n" "128" "--procs" "4")
set_tests_properties(cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_compile_sp_stg "/root/repo/build/src/cli/stgsim" "compile" "--app" "nas_sp" "--class" "A" "--procs" "9" "--dump-stg" "/root/repo/build/sp_stg.dot" "--print-simplified")
set_tests_properties(cli_compile_sp_stg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_de "/root/repo/build/src/cli/stgsim" "run" "--app" "sample" "--procs" "4" "--mode" "de" "--iters" "3" "--work" "2000")
set_tests_properties(cli_run_de PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_measured "/root/repo/build/src/cli/stgsim" "run" "--app" "sweep3d" "--procs" "4" "--mode" "measured" "--kt" "36" "--kb" "12")
set_tests_properties(cli_run_measured PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_am "/root/repo/build/src/cli/stgsim" "run" "--app" "tomcatv" "--n" "128" "--iters" "2" "--procs" "8" "--mode" "am" "--calib" "4")
set_tests_properties(cli_run_am PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_am_abstract "/root/repo/build/src/cli/stgsim" "run" "--app" "nas_sp" "--class" "A" "--procs" "4" "--mode" "am" "--calib" "4" "--abstract-comm")
set_tests_properties(cli_run_am_abstract PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_flag "/root/repo/build/src/cli/stgsim" "run" "--app" "tomcatv" "--procs" "4" "--mode" "de" "--bogus" "1")
set_tests_properties(cli_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_app "/root/repo/build/src/cli/stgsim" "run" "--app" "nope" "--procs" "4")
set_tests_properties(cli_rejects_unknown_app PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_app "/root/repo/build/examples/custom_app")
set_tests_properties(example_custom_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_taskgraph_tour "/root/repo/build/examples/taskgraph_tour")
set_tests_properties(example_taskgraph_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dump_dtg "/root/repo/build/src/cli/stgsim" "compile" "--app" "tomcatv" "--n" "128" "--iters" "1" "--procs" "4" "--dump-dtg" "/root/repo/build/tc_dtg.dot")
set_tests_properties(cli_dump_dtg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;50;add_test;/root/repo/tests/CMakeLists.txt;0;")
