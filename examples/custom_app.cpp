// Authoring a new target application — and seeing what the compiler can
// and cannot abstract away.
//
// The app is a 2D Jacobi iteration with halo exchange, built in two
// variants:
//   * fixed iteration count — the residual feeds only an allreduce
//     payload, so the slice eliminates every kernel and every array;
//   * convergence-checked — the allreduced residual steers a branch, so
//     it is part of the parallel structure: the slice must retain the
//     residual kernel, the arrays it reads, and (transitively) the update
//     kernel producing them. This is the paper's §3.2 point that
//     "intermediate computational results can affect the program
//     execution time", and the price of predicting such programs.
//
//   $ ./examples/custom_app
#include <iostream>

#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_jacobi(std::int64_t n, std::int64_t max_iters,
                        bool convergence_check) {
  ir::ProgramBuilder b(convergence_check ? "jacobi2d_conv" : "jacobi2d_fixed");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr N = b.decl_int("N", I(n));
  Expr iters = b.decl_int("MAXIT", I(max_iters));
  Expr rows = b.decl_int("rows", sym::ceil_div(N, P));
  b.decl_real("resid", Expr::real(1.0));
  b.decl_int("converged", I(0));

  b.decl_array("U", {(rows + 2) * N});
  b.decl_array("V", {(rows + 2) * N});

  {
    ir::KernelSpec init;
    init.task = "jb_init";
    init.iters = (rows + 2) * N;
    init.flops_per_iter = 1.0;
    init.writes = {"U", "V"};
    init.body = [](ir::KernelCtx& ctx) {
      double* u = ctx.array("U");
      double* v = ctx.array("V");
      for (std::size_t i = 0; i < ctx.array_elems("U"); ++i) {
        u[i] = (i % 7 == 0) ? 1.0 : 0.0;
        v[i] = 0.0;
      }
    };
    b.compute(std::move(init));
  }

  auto iteration_body = [&] {
    // Halo rows to/from both neighbours.
    b.if_then(sym::gt(myid, I(0)), [&] {
      b.isend("reqs", "U", myid - 1, N, N, 1);
      b.irecv("reqs", "U", myid - 1, N, I(0), 2);
    });
    b.if_then(sym::lt(myid, P - 1), [&] {
      b.isend("reqs", "U", myid + 1, N, rows * N, 2);
      b.irecv("reqs", "U", myid + 1, N, (rows + 1) * N, 1);
    });
    b.waitall("reqs");

    {
      ir::KernelSpec update;
      update.task = "jb_update";
      update.iters = rows * (N - 2);
      update.flops_per_iter = 5.0;
      update.reads = {"U"};
      update.writes = {"V"};
      update.body = [](ir::KernelCtx& ctx) {
        const double* u = ctx.array("U");
        double* v = ctx.array("V");
        const std::size_t n = ctx.array_elems("U");
        for (std::size_t i = 1; i + 1 < n; ++i) {
          v[i] = 0.25 * (u[i - 1] + u[i + 1] + 2.0 * u[i]);
        }
      };
      b.compute(std::move(update));
    }

    {
      ir::KernelSpec residual;
      residual.task = "jb_residual";
      residual.iters = rows * N;
      residual.flops_per_iter = 3.0;
      residual.reads = {"U", "V"};
      residual.writes = {"U", "resid"};
      residual.body = [](ir::KernelCtx& ctx) {
        double* u = ctx.array("U");
        const double* v = ctx.array("V");
        double r = 0.0;
        const std::size_t n = ctx.array_elems("U");
        for (std::size_t i = 0; i < n; ++i) {
          r += (v[i] - u[i]) * (v[i] - u[i]);
          u[i] = v[i];
        }
        ctx.set_scalar("resid", sym::Value(r / static_cast<double>(n)));
      };
      b.compute(std::move(residual));
    }
    b.allreduce_sum("resid");
    if (convergence_check) {
      b.if_then(sym::lt(Expr::var("resid"), Expr::real(1e-7)),
                [&] { b.assign("converged", I(1)); });
    }
  };

  b.for_loop("t", I(1), iters, [&](Expr) {
    if (convergence_check) {
      b.if_then(sym::eq(Expr::var("converged"), I(0)), iteration_body);
    } else {
      iteration_body();
    }
  });
  return b.take();
}

void describe(const char* title, const ir::Program& prog) {
  core::CompileResult compiled = core::compile(prog);
  std::cout << "--- " << title << " ---\n";
  std::cout << compiled.report(prog);
  for (const char* a : {"U", "V"}) {
    std::cout << "  array " << a << ": "
              << (compiled.slice.array_is_live(a) ? "RETAINED" : "eliminated")
              << "\n";
  }

  const int nprocs = 8;
  const auto machine = harness::ibm_sp_machine();
  const auto params =
      harness::calibrate(compiled.timer_program, nprocs, machine);

  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kDirectExec;
  const auto de = harness::run_program(prog, cfg);
  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  const auto am = harness::run_program(compiled.simplified.program, cfg);

  std::cout << "  DE " << de.predicted_seconds() << " s / "
            << de.peak_target_bytes << " B;  AM " << am.predicted_seconds()
            << " s / " << am.peak_target_bytes << " B  (memory reduction "
            << static_cast<double>(de.peak_target_bytes) /
                   static_cast<double>(am.peak_target_bytes)
            << "x)\n\n";
}

}  // namespace

int main() {
  describe("fixed iteration count: everything collapses",
           make_jacobi(512, 40, /*convergence_check=*/false));
  describe(
      "convergence-checked: the residual steers control flow, so the "
      "slice\nmust retain the computation that produces it",
      make_jacobi(512, 40, /*convergence_check=*/true));

  std::cout << "Lesson: communication *payloads* are free to abstract; "
               "values that reach\ncontrol flow are not — the compiler "
               "keeps exactly the computation needed\nto reproduce the "
               "program's parallel behaviour (paper §3.2).\n";
  return 0;
}
