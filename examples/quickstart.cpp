// Quickstart: the paper's Figure 1 in 100 lines.
//
// Builds the shift-communication example program, compiles it into a
// simplified (delay-based) program via the static task graph, calibrates
// the task-time parameters with the timer-instrumented version, and
// compares MPI-SIM-DE with MPI-SIM-AM.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "ir/builder.hpp"

using namespace stgsim;
using sym::Expr;

namespace {

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::Program make_shift_example() {
  ir::ProgramBuilder b("fig1_shift");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr N = b.decl_int("N", I(4096));
  Expr blk = b.decl_int("b", sym::ceil_div(N, P));

  b.decl_array("A", {N, blk + 1});
  b.decl_array("D", {N, blk + 1});

  // <SEND D(2:N-1, ...) to processor myid-1> guarded exactly as in Fig. 1.
  b.if_then(sym::gt(myid, I(0)),
            [&] { b.send("D", myid - 1, N - 2, I(0), 0); });
  b.if_then(sym::lt(myid, P - 1),
            [&] { b.recv("D", myid + 1, N - 2, blk * N, 0); });

  ir::KernelSpec loop_nest;
  loop_nest.task = "stencil";
  loop_nest.iters =
      (N - 2) * sym::max(sym::min(N, myid * blk + blk) -
                             sym::max(I(2), myid * blk + 1) + 1,
                         I(0));
  loop_nest.flops_per_iter = 2.0;  // A(I,J) = (D(I,J) + D(I,J-1)) * 0.5
  loop_nest.reads = {"D"};
  loop_nest.writes = {"A"};
  loop_nest.body = [](ir::KernelCtx& ctx) {
    double* a = ctx.array("A");
    const double* d = ctx.array("D");
    for (std::size_t i = 1; i < ctx.array_elems("A"); ++i) {
      a[i] = (d[i] + d[i - 1]) * 0.5;
    }
  };
  b.compute(std::move(loop_nest));
  return b.take();
}

}  // namespace

int main() {
  ir::Program prog = make_shift_example();
  std::cout << "=== Original program (Figure 1a) ===\n"
            << prog.to_string() << "\n";

  core::CompileResult compiled = core::compile(prog);
  std::cout << "=== Static task graph (Figure 1b) ===\n"
            << compiled.stg.summary() << "\n";
  std::cout << "=== Simplified program (Figure 1c) ===\n"
            << compiled.simplified.program.to_string() << "\n";
  std::cout << "=== Compiler report ===\n" << compiled.report(prog) << "\n";

  const int nprocs = 16;
  const auto machine = harness::ibm_sp_machine();

  // Figure 2 workflow: measure w_i with the timer version...
  const auto params =
      harness::calibrate(compiled.timer_program, nprocs, machine);
  std::cout << "calibrated parameters:\n";
  for (const auto& [name, value] : params) {
    std::cout << "  " << name << " = " << value << " s/iter\n";
  }

  // ...then simulate both ways.
  harness::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.machine = machine;
  cfg.mode = harness::Mode::kDirectExec;
  const auto de = harness::run_program(prog, cfg);

  cfg.mode = harness::Mode::kAnalytical;
  cfg.params = params;
  const auto am = harness::run_program(compiled.simplified.program, cfg);

  std::cout << "\nMPI-SIM-DE predicts " << de.predicted_seconds()
            << " s using " << de.peak_target_bytes << " bytes of target data\n"
            << "MPI-SIM-AM predicts " << am.predicted_seconds()
            << " s using " << am.peak_target_bytes
            << " bytes of target data\n"
            << "memory reduction: "
            << static_cast<double>(de.peak_target_bytes) /
                   static_cast<double>(am.peak_target_bytes)
            << "x\n";
  return 0;
}
