// Capacity-planning study — the paper's motivating use case (§1): size a
// target system for the billion-cell ASCI Sweep3D configuration, which no
// direct-execution simulator (and no small testbed) can handle.
//
// The study calibrates task times once on a small run, then uses the
// compiler-simplified model to predict time-to-solution and parallel
// efficiency across candidate system sizes, including the 20,000-processor
// configuration the paper targets.
//
//   $ ./examples/sweep3d_study
#include <iostream>

#include "apps/sweep3d.hpp"
#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "support/table.hpp"

using namespace stgsim;

namespace {

apps::Sweep3DConfig per_proc_config(int nprocs) {
  apps::Sweep3DConfig cfg;
  cfg.it = 6;
  cfg.jt = 6;
  cfg.kt = 1000;  // 36,000 cells per processor, as in the paper
  cfg.kb = 250;
  cfg.mm = 6;
  cfg.mmi = 6;
  apps::sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
  return cfg;
}

}  // namespace

int main() {
  const auto machine = harness::ibm_sp_machine();

  // One calibration run at a size that fits anywhere (Figure 2 workflow).
  std::cout << "calibrating task times on 16 processors...\n";
  const int calib_procs = 16;
  ir::Program calib_prog = apps::make_sweep3d(per_proc_config(calib_procs));
  const auto params = harness::calibrate(
      core::compile(calib_prog).timer_program, calib_procs, machine);

  std::cout << "sweeping candidate system sizes with MPI-SIM-AM...\n\n";
  TablePrinter t({"procs", "total cells", "predicted time (s)",
                  "parallel efficiency", "simulator wall (s)",
                  "simulator memory"});

  double base_time = 0.0;
  int base_procs = 0;
  for (int procs : {16, 64, 256, 1024, 4096, 10000, 20000}) {
    ir::Program prog = apps::make_sweep3d(per_proc_config(procs));
    core::CompileResult compiled = core::compile(prog);

    harness::RunConfig cfg;
    cfg.nprocs = procs;
    cfg.machine = machine;
    cfg.mode = harness::Mode::kAnalytical;
    cfg.params = params;
    cfg.fiber_stack_bytes = 128 * 1024;
    const auto out = harness::run_program(compiled.simplified.program, cfg);

    if (base_procs == 0) {
      base_procs = procs;
      base_time = out.predicted_seconds();
    }
    // Weak scaling: perfect efficiency would keep the time flat.
    const double eff = base_time / out.predicted_seconds();

    t.add_row({TablePrinter::fmt_int(procs),
               TablePrinter::fmt_int(procs * 36000LL),
               TablePrinter::fmt(out.predicted_seconds(), 3),
               TablePrinter::fmt_percent(eff),
               TablePrinter::fmt(out.sim_host_seconds, 2),
               TablePrinter::fmt_bytes(out.peak_target_bytes)});
    (void)base_procs;
  }
  std::cout << t.to_ascii();
  std::cout << "\nThe 20,000-processor row is the paper's one-billion-cell "
               "configuration —\nimpossible under direct execution, minutes "
               "under the compiler-supported model.\n";
  return 0;
}
