// Tour of the static task graph (STG) machinery on a real benchmark.
//
// Synthesizes the STG for NAS SP, prints the symbolic summary (task sets,
// scaling functions, communication mappings), writes Graphviz renderings
// of both the original program's graph and the simplified program's
// graph, and prints the compiler's condensation report.
//
//   $ ./examples/taskgraph_tour
//   $ dot -Tpdf nas_sp_stg.dot -o nas_sp_stg.pdf   # if graphviz is around
#include <fstream>
#include <iostream>

#include "apps/nas_sp.hpp"
#include "core/compiler.hpp"
#include "core/dtg.hpp"
#include "harness/runner.hpp"

using namespace stgsim;

int main() {
  apps::NasSpConfig cfg = apps::sp_class('A', /*q=*/3, /*timesteps=*/1);
  ir::Program prog = apps::make_nas_sp(cfg);

  core::CompileResult compiled = core::compile(prog);

  std::cout << "=== NAS SP static task graph ===\n"
            << compiled.stg.summary() << "\n";

  std::cout << "=== Condensation ===\n";
  for (const auto& ct : compiled.simplified.condensed) {
    std::cout << "  delay(" << ct.seconds.to_string() << ")\n    folds:";
    for (const auto& task : ct.tasks) std::cout << ' ' << task;
    std::cout << "\n";
  }

  std::cout << "\n=== Full compiler report ===\n" << compiled.report(prog);

  {
    std::ofstream dot("nas_sp_stg.dot");
    dot << compiled.stg.to_dot();
  }
  {
    core::Stg simplified_stg =
        core::synthesize_stg(compiled.simplified.program);
    std::ofstream dot("nas_sp_simplified_stg.dot");
    dot << simplified_stg.to_dot();
    std::cout << "\noriginal STG nodes: " << compiled.stg.nodes.size()
              << ", simplified program STG nodes: "
              << simplified_stg.nodes.size() << "\n";
  }
  std::cout << "wrote nas_sp_stg.dot and nas_sp_simplified_stg.dot\n";

  // Unfold the dynamic task graph from one 9-process run and check it
  // against the static graph (every executed instance maps to a static
  // node whose process-set guard admits its rank).
  {
    const int nprocs = 9;
    core::DtgRecorder recorder;
    core::DtgObserver observer(&recorder);
    smpi::World::Options wopts;
    smpi::World world(wopts, nprocs);
    simk::EngineConfig ec;
    ec.num_processes = nprocs;
    simk::Engine engine(ec);
    ir::ExecOptions xopts;
    xopts.observer = &observer;
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(prog, comm, xopts);
    });
    engine.run();
    core::Dtg dtg = recorder.build();

    std::cout << "\n=== Dynamic task graph (9-process run) ===\n"
              << dtg.summary();
    const std::string consistency = dtg.check_consistency();
    const std::string vs_stg = dtg.check_against_stg(
        compiled.stg, {{"P", sym::Value(std::int64_t{nprocs})},
                       {"Q", sym::Value(std::int64_t{3})}});
    std::cout << "consistency check: " << (consistency.empty() ? "OK" : consistency)
              << "\nSTG cross-check:   " << (vs_stg.empty() ? "OK" : vs_stg)
              << "\n";
    std::ofstream dot("nas_sp_dtg.dot");
    dot << dtg.to_dot();
    std::cout << "wrote nas_sp_dtg.dot\n";
  }
  return 0;
}
