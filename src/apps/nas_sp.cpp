#include "apps/nas_sp.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "support/check.hpp"

namespace stgsim::apps {

namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

/// Streaming update over an array: real memory traffic for direct
/// execution without benchmark-specific physics.
void stream_kernel_body(ir::KernelCtx& ctx, const char* in, const char* out,
                        double scale) {
  const double* a = ctx.array(in);
  double* b = ctx.array(out);
  const std::size_t n = std::min(ctx.array_elems(in), ctx.array_elems(out));
  const auto iters = static_cast<std::size_t>(ctx.iters());
  for (std::size_t k = 0; k < iters; ++k) {
    const std::size_t c = k % n;
    b[c] = b[c] * (1.0 - scale) + a[c] * scale;
  }
}

}  // namespace

NasSpConfig sp_class(char cls, int q, std::int64_t timesteps) {
  NasSpConfig c;
  switch (cls) {
    case 'A': c.grid = 64; break;
    case 'B': c.grid = 102; break;
    case 'C': c.grid = 162; break;
    default: STGSIM_UNREACHABLE("unknown SP class");
  }
  c.q = q;
  c.timesteps = timesteps;
  return c;
}

ir::Program make_nas_sp(const NasSpConfig& config) {
  STGSIM_CHECK_GT(config.q, 0);

  ir::ProgramBuilder b("nas_sp");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");

  Expr grid = b.decl_int("GRID", I(config.grid));
  Expr nt = b.decl_int("NT", I(config.timesteps));
  Expr q = b.decl_int("Q", I(config.q));

  Expr ip = b.decl_int("ip", sym::imod(myid, q));
  Expr jp = b.decl_int("jp", sym::idiv(myid, q));

  // Remainder-distributed local extents (cell sizes) — the grid sizes the
  // real SP stores in arrays and reuses in most loop bounds.
  Expr rem = b.decl_int("rem", sym::imod(grid, q));
  Expr cx = b.decl_int(
      "cx", sym::idiv(grid, q) + sym::select(sym::lt(ip, rem), I(1), I(0)));
  Expr cy = b.decl_int(
      "cy", sym::idiv(grid, q) + sym::select(sym::lt(jp, rem), I(1), I(0)));
  Expr nz = b.decl_int("nz", grid);

  // Five solution components per cell (u, rhs) plus solver coefficients.
  b.decl_array("u", {I(5) * cx * cy * nz});
  b.decl_array("rhs", {I(5) * cx * cy * nz});
  b.decl_array("lhs", {I(3) * cx * cy * nz});
  b.decl_array("xface", {I(5) * cy * nz});
  b.decl_array("yface", {I(5) * cx * nz});

  {
    ir::KernelSpec init;
    init.task = "sp_init";
    init.iters = I(5) * cx * cy * nz;
    init.flops_per_iter = 6.0;
    init.writes = {"u", "xface", "yface"};
    init.body = [](ir::KernelCtx& ctx) {
      double* u = ctx.array("u");
      const std::size_t n = ctx.array_elems("u");
      for (std::size_t i = 0; i < n; ++i) {
        u[i] = 1.0 + 0.001 * static_cast<double>(i % 13);
      }
      for (const char* f : {"xface", "yface"}) {
        double* p = ctx.array(f);
        for (std::size_t i = 0; i < ctx.array_elems(f); ++i) p[i] = 0.0;
      }
    };
    b.compute(std::move(init));
  }

  b.for_loop("step", I(1), nt, [&](Expr) {
    // ---- copy_faces: halo exchange with the four grid neighbours -------
    {
      ir::KernelSpec pack;
      pack.task = "sp_pack";
      pack.iters = I(5) * (cy + cx) * nz;
      pack.flops_per_iter = 2.0;
      pack.reads = {"u"};
      pack.writes = {"xface", "yface"};
      pack.body = [](ir::KernelCtx& ctx) {
        stream_kernel_body(ctx, "u", "xface", 0.5);
      };
      b.compute(std::move(pack));
    }
    b.if_then(sym::gt(ip, I(0)), [&] {
      b.isend("reqs", "xface", myid - 1, I(5) * cy * nz, I(0), 1);
      b.irecv("reqs", "xface", myid - 1, I(5) * cy * nz, I(0), 2);
    });
    b.if_then(sym::lt(ip, q - 1), [&] {
      b.isend("reqs", "xface", myid + 1, I(5) * cy * nz, I(0), 2);
      b.irecv("reqs", "xface", myid + 1, I(5) * cy * nz, I(0), 1);
    });
    b.if_then(sym::gt(jp, I(0)), [&] {
      b.isend("reqs", "yface", myid - q, I(5) * cx * nz, I(0), 3);
      b.irecv("reqs", "yface", myid - q, I(5) * cx * nz, I(0), 4);
    });
    b.if_then(sym::lt(jp, q - 1), [&] {
      b.isend("reqs", "yface", myid + q, I(5) * cx * nz, I(0), 4);
      b.irecv("reqs", "yface", myid + q, I(5) * cx * nz, I(0), 3);
    });
    b.waitall("reqs");

    {
      ir::KernelSpec rhs;
      rhs.task = "sp_rhs";
      rhs.iters = cx * cy * nz;
      rhs.flops_per_iter = 58.0;  // the 13-point compute_rhs stencil
      rhs.reads = {"u", "xface", "yface"};
      rhs.writes = {"rhs"};
      rhs.body = [](ir::KernelCtx& ctx) {
        stream_kernel_body(ctx, "u", "rhs", 0.3);
      };
      b.compute(std::move(rhs));
    }

    // ---- x_solve / y_solve: pipelined Thomas sweeps ---------------------
    auto line_solve = [&](const std::string& dim, const Expr& coord,
                          const Expr& extent, const Expr& stride,
                          const std::string& face, const Expr& face_count,
                          int tag_fwd, int tag_bwd) {
      // Forward elimination flows toward increasing coordinate.
      b.if_then(sym::gt(coord, I(0)), [&] {
        b.recv(face, myid - stride, face_count, I(0), tag_fwd);
      });
      {
        ir::KernelSpec fwd;
        fwd.task = "sp_" + dim + "_fwd";
        fwd.iters = cx * cy * nz;
        fwd.flops_per_iter = 38.0;
        fwd.reads = {"rhs", "u", face};
        fwd.writes = {"lhs", "rhs"};
        fwd.body = [](ir::KernelCtx& ctx) {
          stream_kernel_body(ctx, "rhs", "lhs", 0.4);
        };
        b.compute(std::move(fwd));
      }
      b.if_then(sym::lt(coord, extent - 1), [&] {
        b.send(face, myid + stride, face_count, I(0), tag_fwd);
      });

      // Back substitution flows the other way.
      b.if_then(sym::lt(coord, extent - 1), [&] {
        b.recv(face, myid + stride, face_count, I(0), tag_bwd);
      });
      {
        ir::KernelSpec bwd;
        bwd.task = "sp_" + dim + "_bwd";
        bwd.iters = cx * cy * nz;
        bwd.flops_per_iter = 17.0;
        bwd.reads = {"lhs", face};
        bwd.writes = {"rhs"};
        bwd.body = [](ir::KernelCtx& ctx) {
          stream_kernel_body(ctx, "lhs", "rhs", 0.2);
        };
        b.compute(std::move(bwd));
      }
      b.if_then(sym::gt(coord, I(0)), [&] {
        b.send(face, myid - stride, face_count, I(0), tag_bwd);
      });
    };

    line_solve("x", ip, q, I(1), "xface", I(5) * cy * nz, 5, 6);
    line_solve("y", jp, q, q, "yface", I(5) * cx * nz, 7, 8);

    // ---- z_solve: local multipartition stages with mod-distributed cell
    // sizes. The stage size is NOT affine in the stage index, so the
    // compiler must retain an executable symbolic sum (paper §3.3).
    b.for_loop("s", I(1), q, [&](Expr s) {
      ir::KernelSpec zc;
      zc.task = "sp_z_cell";
      zc.iters = cx * cy *
                 (sym::idiv(grid, q) +
                  sym::select(sym::lt(sym::imod(s - 1 + ip + jp, q), rem),
                              I(1), I(0)));
      zc.flops_per_iter = 49.0;
      zc.reads = {"rhs"};
      zc.writes = {"lhs"};
      zc.body = [](ir::KernelCtx& ctx) {
        stream_kernel_body(ctx, "rhs", "lhs", 0.35);
      };
      b.compute(std::move(zc));
    });

    {
      ir::KernelSpec add;
      add.task = "sp_add";
      add.iters = cx * cy * nz;
      add.flops_per_iter = 5.0;
      add.reads = {"rhs"};
      add.writes = {"u"};
      add.body = [](ir::KernelCtx& ctx) {
        stream_kernel_body(ctx, "rhs", "u", 0.1);
      };
      b.compute(std::move(add));
    }
  });

  // Verification residual (payload-only; eliminated by the slice).
  b.decl_real("rnorm", Expr::real(1.0));
  b.allreduce_sum("rnorm");

  return b.take();
}

std::uint64_t nas_sp_expected_sends(const NasSpConfig& config, int rank) {
  const int q = config.q;
  const int ip = rank % q;
  const int jp = rank / q;
  const std::uint64_t west = ip > 0, east = ip < q - 1;
  const std::uint64_t south = jp > 0, north = jp < q - 1;
  // copy_faces: one isend per existing neighbour; x_solve: forward send
  // east + backward send west; y_solve: forward north + backward south.
  const std::uint64_t per_step = (west + east + south + north)  // halos
                                 + (east + west)                // x solves
                                 + (north + south);             // y solves
  return per_step * static_cast<std::uint64_t>(config.timesteps);
}

std::size_t nas_sp_rank_bytes(const NasSpConfig& config) {
  const auto g = static_cast<std::size_t>(config.grid);
  const auto q = static_cast<std::size_t>(config.q);
  const std::size_t base = g / q;
  const std::size_t rem = g % q;
  const std::size_t cx = base + (0 < rem ? 1 : 0);  // rank 0 (largest)
  const std::size_t cy = cx;
  return (5 * cx * cy * g * 2 + 3 * cx * cy * g + 5 * cy * g + 5 * cx * g) *
         sizeof(double);
}

}  // namespace stgsim::apps
