// NAS SP (NPB 2.3, paper §4.1): a scalar-pentadiagonal ADI solver on a
// square process grid (P = q^2). Each timestep exchanges faces with the
// four grid neighbours, computes the right-hand side, then performs
// pipelined line solves in x, y and z; the x/y solves pipeline across q
// stages with a boundary exchange per stage.
//
// The per-stage cell sizes are computed with non-affine expressions
// (mod-based remainder distribution), reproducing the paper's observation
// about SP: the compiler cannot forward-substitute the loop bounds into a
// closed form, so the simplified program retains *executable symbolic
// scaling expressions* evaluated at run time (§3.3).
#pragma once

#include <cstdint>

#include "ir/program.hpp"

namespace stgsim::apps {

struct NasSpConfig {
  std::int64_t grid = 64;      ///< class A = 64, class B = 102, class C = 162
  std::int64_t timesteps = 4;  ///< full benchmark: 400
  int q = 2;                   ///< process grid edge; P must equal q*q
};

/// Built-in problem classes (grid edge per the NPB 2.3 specification).
NasSpConfig sp_class(char cls, int q, std::int64_t timesteps);

ir::Program make_nas_sp(const NasSpConfig& config);

/// Messages (isend/send ops) one rank issues over the whole run.
std::uint64_t nas_sp_expected_sends(const NasSpConfig& config, int rank);

/// Per-rank data footprint (bytes).
std::size_t nas_sp_rank_bytes(const NasSpConfig& config);

}  // namespace stgsim::apps
