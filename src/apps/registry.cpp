#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/nas_sp.hpp"
#include "support/numparse.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"

namespace stgsim::apps {

namespace {

const std::vector<AppInfo>& registry() {
  static const std::vector<AppInfo> apps = {
      {"tomcatv",
       "2D SOR mesh solver (paper Figs. 3, 13)",
       {{"n", "1024"}, {"iters", "4"}}},
      {"sweep3d",
       "ASCI wavefront sweep (paper Figs. 4, 10-12)",
       {{"it", "6"}, {"jt", "6"}, {"kt", "255"}, {"kb", "51"},
        {"mm", "6"}, {"mmi", "3"}, {"steps", "1"}}},
      {"nas_sp",
       "NAS SP pseudo-app, classes A/B/C (paper Figs. 5-6, 12)",
       {{"class", "A"}, {"steps", "2"}}},
      {"sample",
       "synthetic SAMPLE kernels (paper Figs. 8-9)",
       {{"pattern", "nn"}, {"iters", "40"}, {"msg-doubles", "1024"},
        {"work", "100000"}}},
  };
  return apps;
}

/// Options for `spec` with defaults filled in; rejects unknown names.
std::map<std::string, std::string> resolve_options(const AppInfo& info,
                                                   const AppSpec& spec) {
  std::map<std::string, std::string> out;
  for (const auto& [name, dflt] : info.options) out[name] = dflt;
  for (const auto& [name, value] : spec.options) {
    auto it = out.find(name);
    if (it == out.end()) {
      std::string known;
      for (const auto& [opt, _] : info.options) {
        if (!known.empty()) known += ", ";
        known += opt;
      }
      throw std::runtime_error("app '" + info.name +
                               "' has no option '" + name +
                               "' (accepted: " + known + ")");
    }
    it->second = value;
  }
  return out;
}

long long to_num(const std::string& app, const std::string& opt,
                 const std::string& value) {
  long long v = 0;
  const auto st = support::parse_i64(value, &v);
  if (st != support::ParseNumStatus::kOk) {
    throw std::runtime_error(
        "app '" + app + "' option '" + opt + "': " +
        support::parse_num_problem(st, "expected an integer") + ", got '" +
        value + "'");
  }
  return v;
}

}  // namespace

const std::vector<AppInfo>& registered_apps() { return registry(); }

const AppInfo* find_app(const std::string& name) {
  for (const auto& info : registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

AppSpec canonical_app_spec(const AppSpec& spec) {
  const AppInfo* info = find_app(spec.name);
  if (info == nullptr) {
    throw std::runtime_error("unknown app '" + spec.name +
                             "' (try: stgsim list-apps)");
  }
  AppSpec out;
  out.name = spec.name;
  out.options = resolve_options(*info, spec);
  return out;
}

ir::Program build_app(const AppSpec& spec, int nprocs) {
  const AppSpec full = canonical_app_spec(spec);
  const auto& o = full.options;
  auto num = [&](const std::string& opt) {
    return to_num(full.name, opt, o.at(opt));
  };

  if (full.name == "tomcatv") {
    TomcatvConfig cfg;
    cfg.n = num("n");
    cfg.iterations = num("iters");
    return make_tomcatv(cfg);
  }
  if (full.name == "sweep3d") {
    Sweep3DConfig cfg;
    cfg.it = num("it");
    cfg.jt = num("jt");
    cfg.kt = num("kt");
    cfg.kb = num("kb");
    cfg.mm = num("mm");
    cfg.mmi = num("mmi");
    cfg.timesteps = num("steps");
    sweep3d_grid_for(nprocs, &cfg.npe_i, &cfg.npe_j);
    return make_sweep3d(cfg);
  }
  if (full.name == "nas_sp") {
    int q = 1;
    while ((q + 1) * (q + 1) <= nprocs) ++q;
    if (q * q != nprocs) {
      throw std::runtime_error("nas_sp needs a square process count, got " +
                               std::to_string(nprocs));
    }
    const std::string& cls = o.at("class");
    if (cls.size() != 1 || (cls != "A" && cls != "B" && cls != "C")) {
      throw std::runtime_error("nas_sp class must be A, B or C, got '" +
                               cls + "'");
    }
    return make_nas_sp(sp_class(cls.at(0), q, num("steps")));
  }
  if (full.name == "sample") {
    SampleConfig cfg;
    const std::string& pattern = o.at("pattern");
    if (pattern == "wavefront") {
      cfg.pattern = SamplePattern::kWavefront;
    } else if (pattern == "nn") {
      cfg.pattern = SamplePattern::kNearestNeighbor;
    } else if (pattern == "anysource") {
      cfg.pattern = SamplePattern::kAnySource;
    } else {
      throw std::runtime_error(
          "sample pattern must be nn, wavefront or anysource, got '" +
          pattern + "'");
    }
    cfg.iterations = num("iters");
    cfg.msg_doubles = num("msg-doubles");
    cfg.work_iters = num("work");
    return make_sample(cfg);
  }
  throw std::runtime_error("unknown app '" + full.name + "'");
}

}  // namespace stgsim::apps
