// Application registry: one place that knows how to build every target
// program from a (name, option map) pair.
//
// Before the campaign subsystem, only the CLI could construct apps, and it
// did so from its own flag parser — scenario files, config files, and the
// bench harness each would have needed another copy of that switch. An
// AppSpec is the neutral representation all of them share: options are
// strings exactly as they appear on a command line or in a JSON scenario,
// validated here (unknown option names and malformed values are structured
// errors, not silently-applied defaults).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace stgsim::apps {

/// A target program by name plus its app-specific options ("kt" -> "36").
/// The map is sorted, so the canonical JSON form of a spec — and therefore
/// every cache key derived from it — is independent of option order.
struct AppSpec {
  std::string name;
  std::map<std::string, std::string> options;

  bool operator==(const AppSpec&) const = default;
};

/// One registered application.
struct AppInfo {
  std::string name;
  std::string summary;
  /// Every option the app accepts, with its default (as a string).
  std::vector<std::pair<std::string, std::string>> options;
};

/// All registered apps, in listing order.
const std::vector<AppInfo>& registered_apps();

/// Registry entry for `name`; nullptr when unknown.
const AppInfo* find_app(const std::string& name);

/// Builds the program for `spec` on `nprocs` ranks. Throws
/// std::runtime_error for an unknown app, an option the app does not
/// accept, a malformed value, or an invalid process count (e.g. nas_sp on
/// a non-square count).
ir::Program build_app(const AppSpec& spec, int nprocs);

/// `spec` with every option the app accepts present (defaults filled in)
/// and validated — the canonical form used for cache keys, so
/// "kt defaulted to 255" and "kt=255 given explicitly" digest identically.
AppSpec canonical_app_spec(const AppSpec& spec);

}  // namespace stgsim::apps
