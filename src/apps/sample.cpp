#include "apps/sample.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "support/check.hpp"

namespace stgsim::apps {

namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

ir::KernelSpec work_kernel(const SampleConfig& config) {
  ir::KernelSpec k;
  k.task = "sample_work";
  k.iters = Expr::var("WORK");
  k.flops_per_iter = config.flops_per_iter;
  k.reads = {"data"};
  k.writes = {"data"};
  k.body = [](ir::KernelCtx& ctx) {
    // SAMPLE's computation is pure filler: its results feed nothing. The
    // body touches the working set (capped — the modeled cost comes from
    // the iteration count, not from host work) so direct execution still
    // has real array traffic.
    double* d = ctx.array("data");
    const std::size_t n = ctx.array_elems("data");
    const std::size_t steps =
        std::min(static_cast<std::size_t>(ctx.iters()), std::size_t{65536});
    double acc = 1.0;
    for (std::size_t i = 0; i < steps; ++i) {
      const std::size_t c = i % n;
      acc = acc * 0.999 + d[c] * 0.001;
      d[c] = acc;
    }
  };
  return k;
}

}  // namespace

const char* sample_pattern_name(SamplePattern p) {
  switch (p) {
    case SamplePattern::kWavefront: return "wavefront";
    case SamplePattern::kNearestNeighbor: return "nearest-neighbor";
    case SamplePattern::kAnySource: return "anysource";
  }
  return "?";
}

ir::Program make_sample(const SampleConfig& config) {
  ir::ProgramBuilder b(std::string("sample_") +
                       sample_pattern_name(config.pattern));
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr niter = b.decl_int("NITER", I(config.iterations));
  Expr msg = b.decl_int("MSG", I(config.msg_doubles));
  b.decl_int("WORK", I(config.work_iters));

  b.decl_array("buf", {msg * 2});
  b.decl_array("data", {sym::max(msg, I(4096))});

  {
    ir::KernelSpec init;
    init.task = "sample_init";
    init.iters = sym::max(msg, I(4096));
    init.flops_per_iter = 1.0;
    init.writes = {"data", "buf"};
    init.body = [](ir::KernelCtx& ctx) {
      for (const char* a : {"data", "buf"}) {
        double* p = ctx.array(a);
        for (std::size_t i = 0; i < ctx.array_elems(a); ++i) {
          p[i] = static_cast<double>(i % 11);
        }
      }
    };
    b.compute(std::move(init));
  }

  b.for_loop("iter", I(1), niter, [&](Expr) {
    switch (config.pattern) {
      case SamplePattern::kWavefront:
        // Pipeline: consume from the left, work, feed the right.
        b.if_then(sym::gt(myid, I(0)),
                  [&] { b.recv("buf", myid - 1, msg, I(0), 1); });
        b.compute(work_kernel(config));
        b.if_then(sym::lt(myid, P - 1),
                  [&] { b.send("buf", myid + 1, msg, I(0), 1); });
        break;
      case SamplePattern::kNearestNeighbor:
        // Bidirectional exchange with both ring neighbours.
        b.if_then(sym::gt(myid, I(0)), [&] {
          b.isend("reqs", "buf", myid - 1, msg, I(0), 1);
          b.irecv("reqs", "buf", myid - 1, msg, I(0), 2);
        });
        b.if_then(sym::lt(myid, P - 1), [&] {
          b.isend("reqs", "buf", myid + 1, msg, I(0), 2);
          b.irecv("reqs", "buf", myid + 1, msg, msg, 1);
        });
        b.waitall("reqs");
        b.compute(work_kernel(config));
        break;
      case SamplePattern::kAnySource:
        // Many-to-one gather with ANY_SOURCE matching: every non-root
        // rank computes a *different* amount of work (more for lower
        // ids) before sending to rank 0, so message readiness order is
        // rank-dependent and the root's wildcard receives are genuine
        // races for the scheduler to resolve.
        b.if_then(sym::gt(myid, I(0)), [&] {
          ir::KernelSpec k = work_kernel(config);
          k.iters = Expr::var("WORK") * (P - myid);
          b.compute(std::move(k));
          b.send("buf", I(0), msg, I(0), 7);
        });
        b.if_then(sym::eq(myid, I(0)), [&] {
          b.for_loop("k", I(1), P - 1,
                     [&](Expr) { b.recv("buf", I(-1), msg, I(0), 7); });
        });
        break;
    }
  });

  return b.take();
}

std::int64_t sample_work_for_ratio(const net::NetworkParams& net,
                                   const machine::ComputeParams& compute,
                                   std::int64_t msg_doubles,
                                   double comp_per_comm,
                                   double flops_per_iter) {
  STGSIM_CHECK_GT(comp_per_comm, 0.0);
  const double msg_sec =
      vtime_to_sec(net.latency + net.send_overhead + net.recv_overhead) +
      static_cast<double>(msg_doubles) * sizeof(double) / net.bytes_per_sec;
  const double iter_sec =
      machine::seconds_per_iteration(compute, flops_per_iter, 0.0);
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(comp_per_comm * msg_sec / iter_sec));
}

}  // namespace stgsim::apps
