// SAMPLE (paper §4.1): the synthetic communication kernel used to quantify
// how the optimized simulator's accuracy depends on the computation
// granularity and the communication pattern. Two patterns, as in the
// paper's Origin 2000 study: a wavefront pipeline and a nearest-neighbour
// exchange; the computation:communication ratio is a direct knob.
//
// A third pattern, "anysource", is a many-to-one gather into rank 0 via
// MPI_ANY_SOURCE receives with per-sender staggered compute, so which
// sender's message is matched first genuinely depends on schedule. It is
// the canonical workload for `stgsim check` (the wildcard safety bound is
// exactly what makes its digest schedule-invariant).
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.hpp"
#include "machine/compute.hpp"
#include "net/network.hpp"

namespace stgsim::apps {

enum class SamplePattern { kWavefront, kNearestNeighbor, kAnySource };

const char* sample_pattern_name(SamplePattern p);

struct SampleConfig {
  SamplePattern pattern = SamplePattern::kNearestNeighbor;
  std::int64_t iterations = 50;
  std::int64_t msg_doubles = 2048;   ///< message payload (doubles)
  std::int64_t work_iters = 100000;  ///< kernel iterations per step
  double flops_per_iter = 4.0;
};

ir::Program make_sample(const SampleConfig& config);

/// Picks work_iters so that (communication time) : (computation time) per
/// step is roughly 1 : comp_per_comm on the given machine, mirroring how
/// the paper sweeps the ratio from 1:1 to 1:10000.
std::int64_t sample_work_for_ratio(const net::NetworkParams& net,
                                   const machine::ComputeParams& compute,
                                   std::int64_t msg_doubles,
                                   double comp_per_comm,
                                   double flops_per_iter = 4.0);

}  // namespace stgsim::apps
