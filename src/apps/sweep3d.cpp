#include "apps/sweep3d.hpp"

#include <cmath>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "support/check.hpp"

namespace stgsim::apps {

namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

}  // namespace

void sweep3d_grid_for(int nprocs, int* npe_i, int* npe_j) {
  int best = 1;
  for (int f = 1; f * f <= nprocs; ++f) {
    if (nprocs % f == 0) best = f;
  }
  *npe_i = best;
  *npe_j = nprocs / best;
}

ir::Program make_sweep3d(const Sweep3DConfig& config) {
  STGSIM_CHECK_EQ(config.kt % config.kb, 0) << "kb must divide kt";
  STGSIM_CHECK_EQ(config.mm % config.mmi, 0) << "mmi must divide mm";

  ir::ProgramBuilder b("sweep3d");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");

  Expr it = b.decl_int("IT", I(config.it));
  Expr jt = b.decl_int("JT", I(config.jt));
  Expr kt = b.decl_int("KT", I(config.kt));
  Expr kb = b.decl_int("KB", I(config.kb));
  Expr mmi = b.decl_int("MMI", I(config.mmi));
  Expr nkb = b.decl_int("NKB", I(config.kt / config.kb));
  Expr nmb = b.decl_int("NMB", I(config.mm / config.mmi));
  Expr npei = b.decl_int("NPEI", I(config.npe_i));
  Expr npej = b.decl_int("NPEJ", I(config.npe_j));
  Expr nts = b.decl_int("NTS", I(config.timesteps));

  Expr ip = b.decl_int("ip", sym::imod(myid, npei));
  Expr jp = b.decl_int("jp", sym::idiv(myid, npei));

  // Cell-centered state (the real code's source, cross sections, angular
  // and scalar flux plus two flux moments) and the pipeline face buffers.
  for (const char* a :
       {"src", "sigt", "sigs", "qsrc", "phi", "flux", "flm1", "flm2"}) {
    b.decl_array(a, {it * jt * kt});
  }
  b.decl_array("phiib", {jt * kb * mmi});  // i-direction face
  b.decl_array("phijb", {it * kb * mmi});  // j-direction face

  {
    ir::KernelSpec init;
    init.task = "sw_init";
    init.iters = it * jt * kt;
    init.flops_per_iter = 5.0;
    init.writes = {"src", "sigt", "sigs", "qsrc", "phiib", "phijb"};
    init.body = [](ir::KernelCtx& ctx) {
      double* src = ctx.array("src");
      double* sigt = ctx.array("sigt");
      double* sigs = ctx.array("sigs");
      double* qsrc = ctx.array("qsrc");
      const std::size_t elems = ctx.array_elems("src");
      for (std::size_t i = 0; i < elems; ++i) {
        // A small fraction of strongly absorbing cells creates the
        // data-dependent negative-flux population the fixup branch sees.
        src[i] = (i % 31 == 0) ? -0.8 : 1.0 + 0.001 * static_cast<double>(i % 7);
        sigt[i] = 1.0 + 0.01 * static_cast<double>(i % 5);
        sigs[i] = 0.5 * sigt[i];
        qsrc[i] = 0.25 * src[i];
      }
      double* fi = ctx.array("phiib");
      for (std::size_t i = 0; i < ctx.array_elems("phiib"); ++i) fi[i] = 0.0;
      double* fj = ctx.array("phijb");
      for (std::size_t i = 0; i < ctx.array_elems("phijb"); ++i) fj[i] = 0.0;
    };
    b.compute(std::move(init));
  }

  Expr idir = b.decl_int("idir", I(1));
  Expr jdir = b.decl_int("jdir", I(1));

  b.for_loop("ts", I(1), nts, [&](Expr) {
    b.for_loop("iq", I(1), I(8), [&](Expr iq) {
      b.assign("idir", sym::select(sym::eq(sym::imod(iq, I(2)), I(1)), I(1),
                                   I(-1)));
      b.assign("jdir", sym::select(
                           sym::eq(sym::imod(sym::idiv(iq - 1, I(2)), I(2)),
                                   I(0)),
                           I(1), I(-1)));

      b.for_loop("kblk", I(1), nkb, [&](Expr) {
        b.for_loop("mblk", I(1), nmb, [&](Expr) {
          // Receive upwind faces (wavefront pipelining).
          b.if_then(sym::logical_or(
                        sym::logical_and(sym::eq(idir, I(1)), sym::gt(ip, I(0))),
                        sym::logical_and(sym::eq(idir, I(-1)),
                                         sym::lt(ip, npei - 1))),
                    [&] {
                      b.recv("phiib", myid - idir, jt * kb * mmi, I(0), 1);
                    });
          b.if_then(sym::logical_or(
                        sym::logical_and(sym::eq(jdir, I(1)), sym::gt(jp, I(0))),
                        sym::logical_and(sym::eq(jdir, I(-1)),
                                         sym::lt(jp, npej - 1))),
                    [&] {
                      b.recv("phijb", myid - jdir * npei, it * kb * mmi, I(0),
                             2);
                    });

          {
            ir::KernelSpec sweep;
            sweep.task = "sw_sweep";
            sweep.iters = it * jt * kb * mmi;
            sweep.flops_per_iter = 28.0;
            // The flux fixup: extra work on iterations whose flux goes
            // negative; direct execution observes the true fraction.
            sweep.extra_flops_per_iter = 14.0;
            sweep.reads = {"src", "sigt", "sigs", "qsrc"};
            sweep.writes = {"phi", "flux", "flm1", "flm2", "phiib", "phijb"};
            sweep.body = [](ir::KernelCtx& ctx) {
              const double* src = ctx.array("src");
              const double* sigt = ctx.array("sigt");
              const double* sigs = ctx.array("sigs");
              const double* qsrc = ctx.array("qsrc");
              double* phi = ctx.array("phi");
              double* flux = ctx.array("flux");
              double* f1 = ctx.array("flm1");
              double* f2 = ctx.array("flm2");
              double* fi = ctx.array("phiib");
              double* fj = ctx.array("phijb");
              const std::size_t cells = ctx.array_elems("phi");
              const std::size_t ni = ctx.array_elems("phiib");
              const std::size_t nj = ctx.array_elems("phijb");
              const auto iters = static_cast<std::size_t>(ctx.iters());
              for (std::size_t n = 0; n < iters; ++n) {
                const std::size_t c = n % cells;
                const double incoming = fi[n % ni] + fj[n % nj];
                double p = (src[c] + qsrc[c] + 0.5 * incoming) /
                           (sigt[c] - 0.5 * sigs[c]);
                if (p < 0.0) {
                  // Fixup: clamp and rebalance (the extra-work branch).
                  p = 0.0;
                }
                phi[c] = p;
                flux[c] += p;
                f1[c] += 0.5 * p;
                f2[c] += 0.25 * p;
                fi[n % ni] = 0.7 * p + 0.3 * fi[n % ni];
                fj[n % nj] = 0.7 * p + 0.3 * fj[n % nj];
              }
            };
            sweep.branch_fraction = [](ir::KernelCtx& ctx) {
              // Fraction of cells whose flux required the fixup in this
              // block — recomputed from the data, as a direct-execution
              // simulator would observe it.
              const double* src = ctx.array("src");
              const std::size_t cells = ctx.array_elems("phi");
              std::size_t neg = 0;
              for (std::size_t c = 0; c < cells; ++c) {
                if (src[c] < 0.0) ++neg;
              }
              return static_cast<double>(neg) / static_cast<double>(cells);
            };
            b.compute(std::move(sweep));
          }

          // Send downwind faces.
          b.if_then(
              sym::logical_or(
                  sym::logical_and(sym::eq(idir, I(1)), sym::lt(ip, npei - 1)),
                  sym::logical_and(sym::eq(idir, I(-1)), sym::gt(ip, I(0)))),
              [&] { b.send("phiib", myid + idir, jt * kb * mmi, I(0), 1); });
          b.if_then(
              sym::logical_or(
                  sym::logical_and(sym::eq(jdir, I(1)), sym::lt(jp, npej - 1)),
                  sym::logical_and(sym::eq(jdir, I(-1)), sym::gt(jp, I(0)))),
              [&] { b.send("phijb", myid + jdir * npei, it * kb * mmi, I(0), 2); });
        });
      });
    });

    // End-of-timestep global balance check (tiny, but real communication).
    b.decl_real("balance", Expr::real(1.0));
    b.allreduce_sum("balance");
  });

  return b.take();
}

std::uint64_t sweep3d_expected_sends(const Sweep3DConfig& config, int ip,
                                     int jp) {
  const std::int64_t stages =
      config.timesteps * (config.kt / config.kb) * (config.mm / config.mmi);
  std::uint64_t sends = 0;
  for (int iq = 1; iq <= 8; ++iq) {
    const int idir = (iq % 2 == 1) ? 1 : -1;
    const int jdir = (((iq - 1) / 2) % 2 == 0) ? 1 : -1;
    const bool send_i = (idir == 1) ? (ip < config.npe_i - 1) : (ip > 0);
    const bool send_j = (jdir == 1) ? (jp < config.npe_j - 1) : (jp > 0);
    sends += static_cast<std::uint64_t>(stages) *
             (static_cast<std::uint64_t>(send_i) +
              static_cast<std::uint64_t>(send_j));
  }
  return sends;
}

std::size_t sweep3d_rank_bytes(const Sweep3DConfig& config) {
  const auto cells =
      static_cast<std::size_t>(config.it * config.jt * config.kt);
  const auto iface = static_cast<std::size_t>(config.jt * config.kb * config.mmi);
  const auto jface = static_cast<std::size_t>(config.it * config.kb * config.mmi);
  return (8 * cells + iface + jface) * sizeof(double);
}

}  // namespace stgsim::apps
