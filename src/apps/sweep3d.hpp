// Sweep3D (DOE ASCI benchmark, paper §4.1): discrete-ordinates transport
// sweeps over a 3D grid block-distributed on a 2D process grid. Each of
// the 8 octants pipelines wavefronts across the grid in blocks of k-planes
// and angles: receive upwind faces, compute the block, send downwind
// faces. A data-dependent flux-fixup branch inside the computational
// kernel is the paper's example of a branch that must be eliminated
// statistically (§3.1).
#pragma once

#include <cstdint>

#include "ir/program.hpp"

namespace stgsim::apps {

struct Sweep3DConfig {
  // Per-process block (the paper studies 4x4x255 and 6x6x1000 per proc).
  std::int64_t it = 4;
  std::int64_t jt = 4;
  std::int64_t kt = 255;

  std::int64_t mm = 6;   ///< angles per octant
  std::int64_t mmi = 3;  ///< angles per pipeline stage
  std::int64_t kb = 17;  ///< k-planes per pipeline stage (must divide kt)

  std::int64_t timesteps = 1;

  // Process grid (npe_i * npe_j must equal the run's process count).
  int npe_i = 2;
  int npe_j = 2;
};

ir::Program make_sweep3d(const Sweep3DConfig& config);

/// Near-square factorization helper for the benches: npe_i <= npe_j.
void sweep3d_grid_for(int nprocs, int* npe_i, int* npe_j);

/// Messages (send ops) rank (ip, jp) issues over the whole run.
std::uint64_t sweep3d_expected_sends(const Sweep3DConfig& config, int ip,
                                     int jp);

/// Per-rank data footprint (bytes) of the full program.
std::size_t sweep3d_rank_bytes(const Sweep3DConfig& config);

}  // namespace stgsim::apps
