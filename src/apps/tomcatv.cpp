#include "apps/tomcatv.hpp"

#include <algorithm>
#include <cmath>

#include "ir/builder.hpp"
#include "ir/interp.hpp"

namespace stgsim::apps {

namespace {

using sym::Expr;

Expr I(std::int64_t v) { return Expr::integer(v); }

/// Column-major local layout: column j (0 = left halo, b+1 = right halo)
/// occupies elements [j*n, (j+1)*n).
void exchange_columns(ir::ProgramBuilder& b, const std::string& array,
                      const Expr& myid, const Expr& P, const Expr& n,
                      const Expr& blk, int tag_left, int tag_right) {
  b.if_then(sym::gt(myid, I(0)), [&] {
    b.isend("reqs", array, myid - 1, n, n, tag_left);          // col 1
    b.irecv("reqs", array, myid - 1, n, I(0), tag_right);      // col 0
  });
  b.if_then(sym::lt(myid, P - 1), [&] {
    b.isend("reqs", array, myid + 1, n, blk * n, tag_right);   // col b
    b.irecv("reqs", array, myid + 1, n, (blk + 1) * n, tag_left);
  });
}

}  // namespace

ir::Program make_tomcatv(const TomcatvConfig& config) {
  ir::ProgramBuilder b("tomcatv");
  Expr P = b.get_size("P");
  Expr myid = b.get_rank("myid");
  Expr n = b.decl_int("N", I(config.n));
  Expr niter = b.decl_int("NITER", I(config.iterations));
  Expr blk = b.decl_int("b", sym::ceil_div(n, P));
  b.decl_real("rmax", Expr::real(0.0));

  // Mesh coordinates, residuals and the tridiagonal workspace (the real
  // benchmark's X, Y, RX, RY, AA, DD, D), one halo column on each side.
  for (const char* a : {"X", "Y", "RX", "RY", "AA", "DD", "D"}) {
    b.decl_array(a, {n, blk + 2});
  }

  {
    ir::KernelSpec init;
    init.task = "tc_init";
    init.iters = n * (blk + 2);
    init.flops_per_iter = 4.0;
    init.writes = {"X", "Y"};
    init.body = [](ir::KernelCtx& ctx) {
      double* x = ctx.array("X");
      double* y = ctx.array("Y");
      const std::size_t elems = ctx.array_elems("X");
      const double r0 = static_cast<double>(ctx.rank() + 1);
      for (std::size_t i = 0; i < elems; ++i) {
        x[i] = r0 + static_cast<double>(i % 101) * 0.01;
        y[i] = r0 - static_cast<double>(i % 97) * 0.01;
      }
    };
    b.compute(std::move(init));
  }

  b.for_loop("iter", I(1), niter, [&](Expr) {
    // Boundary-column exchange for both coordinate arrays.
    exchange_columns(b, "X", myid, P, n, blk, 1, 2);
    exchange_columns(b, "Y", myid, P, n, blk, 3, 4);
    b.waitall("reqs");

    {
      ir::KernelSpec resid;
      resid.task = "tc_resid";
      resid.iters = (n - 2) * blk;
      resid.flops_per_iter = 31.0;  // the big 9-point residual stencil
      resid.reads = {"X", "Y"};
      resid.writes = {"RX", "RY"};
      resid.body = [](ir::KernelCtx& ctx) {
        const double* x = ctx.array("X");
        const double* y = ctx.array("Y");
        double* rx = ctx.array("RX");
        double* ry = ctx.array("RY");
        const auto nn = static_cast<std::size_t>(ctx.array_extent("X", 0));
        const auto cols = static_cast<std::size_t>(ctx.array_extent("X", 1));
        for (std::size_t j = 1; j + 1 < cols; ++j) {
          for (std::size_t i = 1; i + 1 < nn; ++i) {
            const std::size_t c = j * nn + i;
            const double xxx = x[c + nn] - 2.0 * x[c] + x[c - nn];
            const double xyy = x[c + 1] - 2.0 * x[c] + x[c - 1];
            const double yxx = y[c + nn] - 2.0 * y[c] + y[c - nn];
            const double yyy = y[c + 1] - 2.0 * y[c] + y[c - 1];
            rx[c] = xxx * 0.5 + xyy * 0.25 + (x[c + nn + 1] - x[c - nn + 1]);
            ry[c] = yxx * 0.5 + yyy * 0.25 + (y[c + nn + 1] - y[c - nn + 1]);
          }
        }
      };
      b.compute(std::move(resid));
    }

    {
      // Residual maximum: feeds only the allreduce payload, so the slice
      // eliminates this kernel — the reduction itself stays.
      ir::KernelSpec rmax;
      rmax.task = "tc_rmax";
      rmax.iters = (n - 2) * blk;
      rmax.flops_per_iter = 2.0;
      rmax.reads = {"RX", "RY"};
      rmax.writes = {"rmax"};
      rmax.body = [](ir::KernelCtx& ctx) {
        const double* rx = ctx.array("RX");
        const double* ry = ctx.array("RY");
        const std::size_t elems = ctx.array_elems("RX");
        double m = 0.0;
        for (std::size_t i = 0; i < elems; ++i) {
          m = std::max(m, std::max(std::fabs(rx[i]), std::fabs(ry[i])));
        }
        ctx.set_scalar("rmax", sym::Value(m));
      };
      b.compute(std::move(rmax));
    }
    b.allreduce_max("rmax");

    {
      // Tridiagonal coefficients (AA, DD) from the current mesh.
      ir::KernelSpec coef;
      coef.task = "tc_coef";
      coef.iters = n * blk;
      coef.flops_per_iter = 9.0;
      coef.reads = {"X", "Y"};
      coef.writes = {"AA", "DD"};
      coef.body = [](ir::KernelCtx& ctx) {
        const double* x = ctx.array("X");
        const double* y = ctx.array("Y");
        double* aa = ctx.array("AA");
        double* dd = ctx.array("DD");
        const std::size_t elems = ctx.array_elems("AA");
        for (std::size_t i = 0; i < elems; ++i) {
          aa[i] = -0.5 * (x[i] * x[i] + y[i] * y[i]);
          dd[i] = 1.0 - 2.0 * aa[i];
        }
      };
      b.compute(std::move(coef));
    }

    {
      // Tridiagonal solves along each column (local under (*,BLOCK)).
      ir::KernelSpec solve;
      solve.task = "tc_solve";
      solve.iters = n * blk;
      solve.flops_per_iter = 24.0;  // forward elimination + back substitution
      solve.reads = {"RX", "RY", "AA", "DD"};
      solve.writes = {"X", "Y", "D"};
      solve.body = [](ir::KernelCtx& ctx) {
        double* x = ctx.array("X");
        double* y = ctx.array("Y");
        double* d = ctx.array("D");
        const double* rx = ctx.array("RX");
        const double* ry = ctx.array("RY");
        const double* aa = ctx.array("AA");
        const double* dd = ctx.array("DD");
        const auto nn = static_cast<std::size_t>(ctx.array_extent("X", 0));
        const auto cols = static_cast<std::size_t>(ctx.array_extent("X", 1));
        for (std::size_t j = 1; j + 1 < cols; ++j) {
          double carry_x = 0.0, carry_y = 0.0;
          for (std::size_t i = 1; i + 1 < nn; ++i) {
            const std::size_t c = j * nn + i;
            const double piv = dd[c] - aa[c] * d[c - 1];
            d[c] = aa[c] / (piv != 0.0 ? piv : 1.0);
            carry_x = (rx[c] - aa[c] * carry_x) * d[c];
            carry_y = (ry[c] - aa[c] * carry_y) * d[c];
            x[c] += carry_x;
            y[c] += carry_y;
          }
        }
      };
      b.compute(std::move(solve));
    }
  });

  return b.take();
}

std::uint64_t tomcatv_expected_isends(const TomcatvConfig& config, int nprocs,
                                      int rank) {
  const bool has_left = rank > 0;
  const bool has_right = rank < nprocs - 1;
  // Per iteration: 2 arrays x (1 isend per existing neighbour).
  const std::uint64_t per_iter =
      2ULL * (static_cast<std::uint64_t>(has_left) +
              static_cast<std::uint64_t>(has_right));
  return per_iter * static_cast<std::uint64_t>(config.iterations);
}

std::size_t tomcatv_rank_bytes(const TomcatvConfig& config, int nprocs) {
  const auto n = static_cast<std::size_t>(config.n);
  const std::size_t blk =
      (n + static_cast<std::size_t>(nprocs) - 1) / static_cast<std::size_t>(nprocs);
  return 7 * n * (blk + 2) * sizeof(double);
}

}  // namespace stgsim::apps
