// Tomcatv (SPEC92 mesh-generation benchmark) as compiled by dHPF with a
// (*,BLOCK) distribution (paper §4.1): columns of the N x N mesh are
// block-distributed, each iteration exchanges boundary columns with both
// neighbours, computes residuals, reduces the residual maximum, and
// applies the tridiagonal corrections.
//
// This is the benchmark the paper handles *fully automatically* through
// compilation, task measurement and simulation (Figure 2) — and so do we:
// the returned program goes through core::compile() unmodified.
#pragma once

#include <cstdint>

#include "ir/program.hpp"

namespace stgsim::apps {

struct TomcatvConfig {
  std::int64_t n = 2048;        ///< mesh is n x n (paper: 2048)
  std::int64_t iterations = 8;  ///< outer mesh-generation sweeps
};

ir::Program make_tomcatv(const TomcatvConfig& config);

/// Analytic oracle for tests: user-level point-to-point messages one rank
/// issues over the whole run (isend ops; receives mirror them).
std::uint64_t tomcatv_expected_isends(const TomcatvConfig& config, int nprocs,
                                      int rank);

/// Per-rank data footprint (bytes) of the full program — what MPI-SIM-DE
/// must allocate for this rank.
std::size_t tomcatv_rank_bytes(const TomcatvConfig& config, int nprocs);

}  // namespace stgsim::apps
