#include "campaign/cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace stgsim::campaign {

namespace fs = std::filesystem;

namespace {

/// Entry checksum: FNV-1a over the payload's canonical compact dump, as
/// 16 hex digits. Canonical dumps are byte-stable, so the checksum is a
/// pure function of the payload's meaning.
std::string payload_checksum(const json::Value& payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : payload.dump()) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  static const char* const digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create cache directory '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultCache::path_for(const std::string& key_hex) const {
  return (fs::path(dir_) / (key_hex + ".json")).string();
}

bool ResultCache::contains(const std::string& key_hex) const {
  std::error_code ec;
  return fs::exists(path_for(key_hex), ec);
}

std::optional<json::Value> ResultCache::load(const std::string& key_hex) const {
  std::ifstream in(path_for(key_hex), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  // Corrupt entry == miss at every stage; the run simply re-executes.
  try {
    json::Value entry = json::Value::parse(buf.str());
    if (!entry.is_object()) return std::nullopt;
    const json::Value* checksum = entry.find("checksum");
    const json::Value* payload = entry.find("payload");
    if (checksum == nullptr || payload == nullptr ||
        !checksum->is_string()) {
      return std::nullopt;  // pre-envelope or damaged entry
    }
    if (checksum->as_string() != payload_checksum(*payload)) {
      return std::nullopt;  // torn/bit-flipped but still-parseable entry
    }
    return *payload;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& key_hex,
                        const json::Value& doc) const {
  const std::string final_path = path_for(key_hex);
  // Unique temp name per writer so two concurrent stores of the same key
  // (possible when a campaign races a standalone run) never interleave.
  // pid disambiguates across processes sharing the cache directory; the
  // counter disambiguates threads within one (object addresses can repeat
  // across processes and even within one after deallocation).
  static std::atomic<std::uint64_t> store_counter{0};
#if defined(_WIN32)
  const auto pid = static_cast<long long>(_getpid());
#else
  const auto pid = static_cast<long long>(getpid());
#endif
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(pid) + "." +
      std::to_string(store_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write cache entry '" + tmp_path + "'");
    }
    json::Value entry = json::Value::object();
    entry.set("checksum", payload_checksum(doc));
    entry.set("payload", doc);
    out << entry.dump(2) << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("short write to cache entry '" + tmp_path +
                               "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    // A lost rename race (or a cache directory that became read-only
    // mid-campaign) only costs a cache entry, never the run's results —
    // skip the store instead of failing the campaign.
    fs::remove(tmp_path, ec);
  }
}

void ResultCache::remove(const std::string& key_hex) const {
  std::error_code ec;
  fs::remove(path_for(key_hex), ec);
}

}  // namespace stgsim::campaign
