#include "campaign/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace stgsim::campaign {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create cache directory '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultCache::path_for(const std::string& key_hex) const {
  return (fs::path(dir_) / (key_hex + ".json")).string();
}

bool ResultCache::contains(const std::string& key_hex) const {
  std::error_code ec;
  return fs::exists(path_for(key_hex), ec);
}

std::optional<json::Value> ResultCache::load(const std::string& key_hex) const {
  std::ifstream in(path_for(key_hex), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return json::Value::parse(buf.str());
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt entry == miss; the run simply re-executes
  }
}

void ResultCache::store(const std::string& key_hex,
                        const json::Value& doc) const {
  const std::string final_path = path_for(key_hex);
  // Unique temp name per writer so two concurrent stores of the same key
  // (possible when a campaign races a standalone run) never interleave.
  const std::string tmp_path =
      final_path + ".tmp." +
      std::to_string(reinterpret_cast<std::uintptr_t>(&doc));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write cache entry '" + tmp_path + "'");
    }
    out << doc.dump(2) << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("short write to cache entry '" + tmp_path +
                               "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("cannot finalize cache entry '" + final_path +
                             "'");
  }
}

void ResultCache::remove(const std::string& key_hex) const {
  std::error_code ec;
  fs::remove(path_for(key_hex), ec);
}

}  // namespace stgsim::campaign
