// Content-addressed result cache.
//
// Every completed simulation stores its serialized outcome under the
// digest of its resolved RunSpec (plus the simulator version). A later
// campaign — or a resumed one — that resolves a spec to the same digest
// skips the simulation entirely and reuses the stored outcome
// bit-identically: the cache file *is* the campaign's durable state, so
// resume-after-kill needs no separate journal; whatever finished is
// cached, whatever didn't is re-run.
//
// Entries are written atomically (temp file + rename) so a killed process
// never leaves a half-written entry that a resume would trust. On top of
// that, every entry embeds an FNV-1a checksum of its payload: torn or
// bit-flipped files that still parse as JSON (truncation inside a number,
// a flipped digit) fail verification and read as misses instead of
// poisoning report.json. Entries from before the checksum envelope read
// as misses too — re-running a simulation is always safe; trusting
// damaged bytes is not.
#pragma once

#include <optional>
#include <string>

#include "support/json.hpp"

namespace stgsim::campaign {

class ResultCache {
 public:
  /// Opens (creating if needed) the cache rooted at `dir`.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The stored payload for `key_hex`, or nullopt. A corrupt entry —
  /// unparseable JSON, a missing/invalid checksum envelope, or a payload
  /// that fails its checksum — is treated as a miss, never an error.
  std::optional<json::Value> load(const std::string& key_hex) const;

  /// Atomically stores `doc` under `key_hex`, overwriting any previous
  /// entry. A failed finalize (rename) is a silent cache-skip, not an
  /// error — the cache is an accelerator, never a correctness dependency.
  void store(const std::string& key_hex, const json::Value& doc) const;

  /// Removes the entry for `key_hex` (no-op when absent).
  void remove(const std::string& key_hex) const;

  bool contains(const std::string& key_hex) const;

  std::string path_for(const std::string& key_hex) const;

 private:
  std::string dir_;
};

}  // namespace stgsim::campaign
