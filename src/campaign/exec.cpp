#include "campaign/exec.hpp"

#include <stdexcept>

#include "apps/registry.hpp"
#include "core/compiler.hpp"
#include "harness/runner.hpp"
#include "obs/obs.hpp"

namespace stgsim::campaign {

namespace {

apps::AppSpec app_spec_of(const harness::RunSpec& spec) {
  apps::AppSpec app;
  app.name = spec.app;
  app.options = spec.app_options;
  return app;
}

}  // namespace

std::map<std::string, double> run_calibration(const harness::RunSpec& spec) {
  if (spec.calibrate_procs <= 0) {
    throw std::runtime_error("run spec has no calibration configuration");
  }
  // The calibration program must be built for the calibration size (apps
  // whose communication shape depends on the process grid).
  ir::Program calib_prog =
      apps::build_app(app_spec_of(spec), spec.calibrate_procs);
  core::CompileResult compiled = core::compile(calib_prog);
  return harness::calibrate(compiled.timer_program, spec.calibrate_procs,
                            spec.config.machine, /*required_params=*/{},
                            spec.config.seed);
}

harness::RunSpec resolve_spec(
    const harness::RunSpec& spec,
    const std::map<std::string, double>* calib_params) {
  if (spec.config.mode != harness::Mode::kAnalytical) return spec;

  harness::RunSpec resolved = spec;
  if (calib_params != nullptr) {
    resolved.config.params = *calib_params;
  } else if (resolved.config.params.empty()) {
    throw std::runtime_error(
        "analytical run needs w_i parameters: either inline \"params\" or a "
        "\"calibrate\" process count");
  }
  // Zero-fill parameters the target program reads but the calibration run
  // never executed (paper §3.3: tasks inside branches not taken at the
  // calibration configuration contributed nothing to the measurement).
  ir::Program prog = apps::build_app(app_spec_of(spec), spec.config.nprocs);
  core::CompileResult compiled = core::compile(prog);
  for (const auto& p : compiled.simplified.params) {
    resolved.config.params.emplace(p, 0.0);
  }
  return resolved;
}

harness::RunOutcome execute_spec(const harness::RunSpec& spec,
                                 bool with_metrics) {
  harness::RunConfig cfg = spec.config;
  obs::Recorder recorder(obs::Options{/*trace=*/false, /*metrics=*/true,
                                      /*comm_matrix=*/false},
                         cfg.nprocs);
  if (with_metrics) cfg.obs = &recorder;

  try {
    ir::Program prog = apps::build_app(app_spec_of(spec), cfg.nprocs);
    if (cfg.mode == harness::Mode::kAnalytical) {
      core::CompileResult compiled = core::compile(prog);
      return harness::run_program(compiled.simplified.program, cfg);
    }
    return harness::run_program(prog, cfg);
  } catch (const std::exception& e) {
    // Misconfigured point (bad app shape for this process count, invalid
    // combination): a structured outcome so the campaign keeps going and
    // the report's taxonomy shows it.
    harness::RunOutcome out;
    out.status = harness::RunStatus::kInternalError;
    out.diagnostic = e.what();
    out.nprocs = cfg.nprocs;
    return out;
  }
}

}  // namespace stgsim::campaign
