// Executing a RunSpec — the one place that turns a declarative run
// description into simulation work.
//
// The CLI (`stgsim run`, `stgsim calibrate`), the campaign runner, and the
// campaign-based benches all funnel through these three functions instead
// of hand-rolling build-app / compile / calibrate / run_program pipelines.
// The split between resolve and execute exists for the cache: an
// analytical run's prediction depends on its w_i table, so the campaign
// resolves params first (cheap — one compile, no simulation), digests the
// resolved spec, and only executes on a cache miss.
#pragma once

#include <map>
#include <string>

#include "harness/config_json.hpp"

namespace stgsim::campaign {

/// Runs the Figure-2 calibration a spec names: the app's
/// timer-instrumented program, measured at spec.calibrate_procs on
/// spec.config.machine with spec.config.seed. Throws (CheckError) when
/// the calibration run itself fails.
std::map<std::string, double> run_calibration(const harness::RunSpec& spec);

/// Resolves `spec` to the form whose digest is a pure content address.
/// For analytical runs this compiles the app and fills config.params from
/// `calib_params` (or the spec's inline params), zero-filling parameters
/// the calibration never measured; other modes pass through unchanged.
/// `calib_params` may be null when the spec carries inline params or is
/// not analytical.
harness::RunSpec resolve_spec(
    const harness::RunSpec& spec,
    const std::map<std::string, double>* calib_params);

/// Executes a *resolved* spec and returns its outcome. `with_metrics`
/// attaches a metrics-only obs::Recorder (deterministic counters; never
/// changes digests). Configuration errors surfaced while building the
/// target program (e.g. nas_sp on a non-square process count) are
/// reported as kInternalError outcomes, not exceptions — a campaign must
/// outlive any misconfigured point.
harness::RunOutcome execute_spec(const harness::RunSpec& spec,
                                 bool with_metrics);

}  // namespace stgsim::campaign
