#include "campaign/executor.hpp"

#include <utility>

#include "campaign/exec.hpp"

namespace stgsim::campaign {

Executor::Executor(Options options)
    : options_(std::move(options)), cache_(options_.cache_dir) {}

void Executor::acquire_permit() {
  if (options_.max_concurrency <= 0) return;
  std::unique_lock lk(mu_);
  ++stats_.queue_waiting;
  permit_cv_.wait(lk, [&] { return running_ < options_.max_concurrency; });
  --stats_.queue_waiting;
  ++running_;
}

void Executor::release_permit() {
  if (options_.max_concurrency <= 0) return;
  {
    std::lock_guard lk(mu_);
    --running_;
  }
  permit_cv_.notify_one();
}

Executor::Result Executor::run_resolved(const harness::RunSpec& resolved,
                                        bool retry_failed) {
  const std::string digest = harness::run_spec_digest_hex(resolved);

  std::shared_future<Result> fut;
  std::promise<Result> promise;
  bool leader = false;
  {
    std::lock_guard lk(mu_);
    auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      inflight_.emplace(digest, fut);
      leader = true;
      ++stats_.in_flight;
    }
  }

  if (!leader) {
    // One execution, N responders: block on the leader's future. The
    // leader stores to the cache *before* publishing, so our copy and a
    // later cache hit serialize byte-identically.
    Result r = fut.get();
    r.source = Source::kDedupJoined;
    std::lock_guard lk(mu_);
    ++stats_.dedup_joined;
    return r;
  }

  // Leader path. Whatever happens, the in-flight entry must be published
  // and retired exactly once.
  auto publish = [&](Result r, std::exception_ptr error) -> Result {
    if (error != nullptr) {
      promise.set_exception(error);
    } else {
      promise.set_value(r);
    }
    {
      std::lock_guard lk(mu_);
      inflight_.erase(digest);
      --stats_.in_flight;
    }
    if (error != nullptr) std::rethrow_exception(error);
    return r;
  };

  try {
    if (auto doc = cache_.load(digest)) {
      try {
        harness::RunOutcome cached =
            harness::outcome_from_json(doc->at("outcome"));
        if (!retry_failed || cached.ok()) {
          {
            std::lock_guard lk(mu_);
            ++stats_.cache_hits;
          }
          return publish({digest, Source::kCacheHit, std::move(cached)},
                         nullptr);
        }
      } catch (const std::exception&) {
        // Malformed entry: treat as a miss and re-execute.
      }
    }

    acquire_permit();
    harness::RunOutcome outcome;
    try {
      outcome = execute_spec(resolved, options_.with_metrics);
    } catch (...) {
      release_permit();
      throw;
    }
    release_permit();

    json::Value entry = json::Value::object();
    entry.set("spec", harness::run_spec_to_json(resolved));
    entry.set("outcome", harness::outcome_to_json(outcome));
    cache_.store(digest, entry);
    {
      std::lock_guard lk(mu_);
      ++stats_.executed;
    }
    return publish({digest, Source::kExecuted, std::move(outcome)}, nullptr);
  } catch (...) {
    return publish({}, std::current_exception());
  }
}

std::map<std::string, double> Executor::calibration(
    const harness::RunSpec& spec, Source* source) {
  const std::string digest = harness::calibration_digest_hex(spec);

  std::shared_future<std::map<std::string, double>> fut;
  std::promise<std::map<std::string, double>> promise;
  bool leader = false;
  {
    std::lock_guard lk(mu_);
    auto it = inflight_calib_.find(digest);
    if (it != inflight_calib_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      inflight_calib_.emplace(digest, fut);
      leader = true;
    }
  }

  if (!leader) {
    std::map<std::string, double> params = fut.get();
    {
      std::lock_guard lk(mu_);
      ++stats_.calibrations_joined;
    }
    if (source != nullptr) *source = Source::kDedupJoined;
    return params;
  }

  auto publish = [&](std::map<std::string, double> params,
                     std::exception_ptr error) {
    if (error != nullptr) {
      promise.set_exception(error);
    } else {
      promise.set_value(params);
    }
    {
      std::lock_guard lk(mu_);
      inflight_calib_.erase(digest);
    }
    if (error != nullptr) std::rethrow_exception(error);
    return params;
  };

  try {
    if (auto doc = cache_.load(digest)) {
      try {
        std::map<std::string, double> params =
            harness::params_from_json(doc->at("params"));
        {
          std::lock_guard lk(mu_);
          ++stats_.calibrations_cached;
        }
        if (source != nullptr) *source = Source::kCacheHit;
        return publish(std::move(params), nullptr);
      } catch (const std::exception&) {
        // Malformed entry: recompute.
      }
    }

    acquire_permit();
    std::map<std::string, double> params;
    try {
      params = run_calibration(spec);
    } catch (...) {
      release_permit();
      throw;
    }
    release_permit();

    json::Value entry = json::Value::object();
    entry.set("kind", "calibration");
    entry.set("params", harness::params_to_json(params));
    cache_.store(digest, entry);
    {
      std::lock_guard lk(mu_);
      ++stats_.calibrations_run;
    }
    if (source != nullptr) *source = Source::kExecuted;
    return publish(std::move(params), nullptr);
  } catch (...) {
    return publish({}, std::current_exception());
  }
}

Executor::Stats Executor::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace stgsim::campaign
