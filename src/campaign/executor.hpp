// Shared run executor: content-addressed cache + in-flight dedup + a
// bounded execution pool, extracted from the campaign runner so the serve
// daemon and the offline `stgsim campaign` path execute runs through one
// object with one contract.
//
// The contract, per resolved RunSpec digest:
//
//   * at most one execution is ever in flight — concurrent requests for
//     the same digest elect a leader; the rest block and receive the
//     leader's outcome (one execution, N responders);
//   * a completed outcome is stored in the ResultCache before waiters are
//     released, so "dedup join" and "cache hit" return byte-identical
//     serialized outcomes;
//   * execution concurrency is bounded by `max_concurrency` permits —
//     callers queue (FIFO-ish, condition-variable fairness) when the pool
//     is saturated, which is the serve daemon's backpressure point.
//
// Calibrations get the same treatment keyed by calibration digest, since
// every analytical point of a sweep — and every concurrent client asking
// for one — shares the measurement run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "campaign/cache.hpp"
#include "harness/config_json.hpp"

namespace stgsim::campaign {

class Executor {
 public:
  struct Options {
    std::string cache_dir = ".stgsim-cache";
    /// Maximum simultaneously-executing simulations (callers beyond it
    /// wait for a permit). 0 = unbounded.
    int max_concurrency = 0;
    /// Attach a metrics-only recorder to executed runs (never changes
    /// digests).
    bool with_metrics = true;
  };

  /// Where a result came from. kExecuted ran the simulation on this call;
  /// kCacheHit loaded the stored outcome; kDedupJoined waited on a
  /// concurrent execution of the same digest.
  enum class Source { kExecuted, kCacheHit, kDedupJoined };

  struct Result {
    std::string digest_hex;
    Source source = Source::kExecuted;
    harness::RunOutcome outcome;
  };

  /// Monotonic counters (plus two gauges) for observability.
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t dedup_joined = 0;
    std::uint64_t calibrations_run = 0;
    std::uint64_t calibrations_cached = 0;
    std::uint64_t calibrations_joined = 0;
    std::uint64_t in_flight = 0;      ///< gauge: digests currently leading
    std::uint64_t queue_waiting = 0;  ///< gauge: callers waiting for a permit
  };

  explicit Executor(Options options);

  /// Runs a *resolved* spec through cache -> in-flight dedup -> execute.
  /// `retry_failed` re-executes a cached outcome whose status != ok.
  /// Never throws for simulation-level failures (they are structured
  /// outcomes); only environment errors (unwritable cache dir) propagate.
  Result run_resolved(const harness::RunSpec& resolved,
                      bool retry_failed = false);

  /// Deduplicated calibration: cache by calibration digest, join
  /// concurrent identical measurements. `source` (optional) reports how
  /// the table was obtained. Throws when the calibration run itself fails
  /// (every dependent run is then poisoned by the caller).
  std::map<std::string, double> calibration(const harness::RunSpec& spec,
                                            Source* source = nullptr);

  Stats stats() const;
  const ResultCache& cache() const { return cache_; }
  const Options& options() const { return options_; }

 private:
  void acquire_permit();
  void release_permit();

  Options options_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable permit_cv_;
  int running_ = 0;
  std::map<std::string, std::shared_future<Result>> inflight_;
  std::map<std::string,
           std::shared_future<std::map<std::string, double>>>
      inflight_calib_;

  Stats stats_;
};

}  // namespace stgsim::campaign
