#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "campaign/exec.hpp"
#include "campaign/executor.hpp"
#include "fault/fault.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "obs/obs.hpp"
#include "support/json.hpp"

namespace stgsim::campaign {

namespace {

/// Runs fn(0..n-1) on up to `jobs` host threads, pulling indices from a
/// shared counter. fn must not throw (every call site catches internally:
/// one bad run must not take the pool down).
void for_each_parallel(int jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(jobs, 1)), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

harness::RunOutcome failure_outcome(const harness::RunSpec& spec,
                                    const std::string& diagnostic) {
  harness::RunOutcome out;
  out.status = harness::RunStatus::kInternalError;
  out.diagnostic = diagnostic;
  out.nprocs = spec.config.nprocs;
  return out;
}

/// RFC-4180 field quoting; only quotes when the field needs it so simple
/// rows stay grep-friendly.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string options_string(const std::map<std::string, std::string>& opts) {
  std::string out;
  for (const auto& [k, v] : opts) {
    if (!out.empty()) out += ";";
    out += k + "=" + v;
  }
  return out;
}

/// Grouping key for measured-vs-predicted comparisons: the canonical spec
/// with the prediction-method fields (mode, params, calibrate) and the
/// host-side execution fields (workers, partition, abstract_comm — they
/// never change simulated results or define the baseline) removed. Runs
/// sharing a key predict the same experiment by different methods.
std::string comparison_key(const harness::RunSpec& spec) {
  json::Value doc = harness::run_spec_to_json(spec);
  json::Value key = json::Value::object();
  for (const auto& [k, v] : doc.as_object()) {
    if (k == "mode" || k == "params" || k == "calibrate" || k == "workers" ||
        k == "partition" || k == "abstract_comm") {
      continue;
    }
    key.set(k, v);
  }
  return key.dump();
}

}  // namespace

CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  // Campaigns execute through a (possibly shared) Executor so the serve
  // daemon's concurrent campaigns dedup against each other; standalone
  // invocations build a private one with the same cache contract.
  std::unique_ptr<Executor> owned;
  Executor* exec = options.executor;
  if (exec == nullptr) {
    Executor::Options eo;
    eo.cache_dir = options.cache_dir;
    eo.with_metrics = options.with_metrics;
    owned = std::make_unique<Executor>(std::move(eo));
    exec = owned.get();
  }
  const ResultCache& cache = exec->cache();

  CampaignResult result;
  result.name = scenario.name;
  result.scenario_digest = scenario.digest_hex;
  result.runs.resize(scenario.runs.size());

  // Progress hook plumbing: one serialized callback per finalized run.
  std::mutex progress_mu;
  std::size_t progress_done = 0;
  auto notify_done = [&](const RunReport& report) {
    if (!options.on_run_done) return;
    std::lock_guard lk(progress_mu);
    options.on_run_done(report, ++progress_done, result.runs.size());
  };

  // ---- Phase 1: calibrations (deduplicated; most analytical runs share
  // one). A failed calibration poisons its dependents with a structured
  // kInternalError outcome instead of aborting the campaign.
  const std::size_t ncal = scenario.calibrations.size();
  std::vector<std::map<std::string, double>> calib_params(ncal);
  std::vector<std::string> calib_error(ncal);
  std::vector<Executor::Source> calib_source(ncal, Executor::Source::kExecuted);
  for_each_parallel(options.jobs, ncal, [&](std::size_t i) {
    try {
      calib_params[i] =
          exec->calibration(scenario.calibrations[i].spec, &calib_source[i]);
    } catch (const std::exception& e) {
      calib_error[i] = e.what();
    }
  });
  for (std::size_t i = 0; i < ncal; ++i) {
    if (!calib_error[i].empty()) continue;
    // A concurrent campaign's measurement (kDedupJoined) counts as cached:
    // this campaign did not run it.
    if (calib_source[i] == Executor::Source::kExecuted) {
      ++result.calibrations_run;
    } else {
      ++result.calibrations_cached;
    }
  }

  // ---- Phase 2a: resolve every run, digest it, and probe the cache.
  const std::size_t nruns = scenario.runs.size();
  std::vector<char> needs_exec(nruns, 0);
  for_each_parallel(options.jobs, nruns, [&](std::size_t i) {
    const CampaignRun& run = scenario.runs[i];
    RunReport& report = result.runs[i];
    report.id = run.id;
    report.resolved = run.spec;

    if (run.calibration >= 0 && !calib_error[run.calibration].empty()) {
      report.outcome = failure_outcome(
          run.spec, "calibration failed: " + calib_error[run.calibration]);
      notify_done(report);
      return;
    }
    try {
      const std::map<std::string, double>* params =
          run.calibration >= 0 ? &calib_params[run.calibration] : nullptr;
      report.resolved = resolve_spec(run.spec, params);
    } catch (const std::exception& e) {
      report.outcome = failure_outcome(run.spec, e.what());
      notify_done(report);
      return;
    }
    report.digest_hex = harness::run_spec_digest_hex(report.resolved);

    if (auto doc = cache.load(report.digest_hex)) {
      try {
        harness::RunOutcome cached =
            harness::outcome_from_json(doc->at("outcome"));
        if (!options.retry_failed || cached.ok()) {
          report.outcome = std::move(cached);
          report.cache_hit = true;
          notify_done(report);
          return;
        }
      } catch (const std::exception&) {
        // Malformed entry: treat as a miss.
      }
    }
    needs_exec[i] = 1;
  });

  // ---- Phase 2b: execute unique digests (duplicate sweep points simulate
  // once), in first-appearance order for a deterministic work list. The
  // Executor's in-flight map additionally dedups against runs another
  // campaign or serve client is executing right now.
  std::map<std::string, std::vector<std::size_t>> by_digest;
  std::vector<std::string> exec_order;
  for (std::size_t i = 0; i < nruns; ++i) {
    if (!needs_exec[i]) continue;
    auto [it, inserted] = by_digest.emplace(result.runs[i].digest_hex,
                                            std::vector<std::size_t>{});
    if (inserted) exec_order.push_back(result.runs[i].digest_hex);
    it->second.push_back(i);
  }
  std::vector<Executor::Result> exec_results(exec_order.size());
  std::atomic<std::size_t> we_executed{0};
  for_each_parallel(options.jobs, exec_order.size(), [&](std::size_t j) {
    const std::vector<std::size_t>& members = by_digest[exec_order[j]];
    const RunReport& lead = result.runs[members.front()];
    try {
      exec_results[j] = exec->run_resolved(lead.resolved, options.retry_failed);
    } catch (const std::exception& e) {
      exec_results[j].digest_hex = lead.digest_hex;
      exec_results[j].outcome = failure_outcome(lead.resolved, e.what());
      exec_results[j].source = Executor::Source::kExecuted;
    }
    if (exec_results[j].source == Executor::Source::kExecuted) {
      we_executed.fetch_add(1, std::memory_order_relaxed);
    }
    for (const std::size_t i : members) {
      result.runs[i].outcome = exec_results[j].outcome;
      notify_done(result.runs[i]);
    }
  });
  // Unique digests this campaign simulated itself; a digest served by a
  // concurrent execution (kDedupJoined) or stored between probe and
  // execute (kCacheHit) was not our work.
  result.executed = we_executed.load();
  for (const RunReport& r : result.runs) {
    if (r.cache_hit) ++result.cache_hits;
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

json::Value report_json(const CampaignResult& result) {
  json::Value doc = json::Value::object();
  doc.set("campaign", result.name);
  doc.set("scenario_digest", result.scenario_digest);
  doc.set("simulator_version", harness::kSimulatorVersion);

  // Per-run records, scenario order. Host wall-clock (sim_host_seconds) is
  // deliberately absent: the report must be a pure function of the
  // simulated results.
  json::Value runs = json::Value::array();
  std::map<std::string, std::int64_t> status_counts;
  obs::MetricsSnapshot rollup;
  for (const RunReport& r : result.runs) {
    json::Value entry = json::Value::object();
    entry.set("id", r.id);
    entry.set("digest", r.digest_hex);
    entry.set("spec", harness::run_spec_to_json(r.resolved));
    entry.set("status", harness::run_status_name(r.outcome.status));
    if (!r.outcome.diagnostic.empty()) {
      entry.set("diagnostic", r.outcome.diagnostic);
    }
    entry.set("predicted_ns", static_cast<std::int64_t>(r.outcome.predicted_time));
    entry.set("messages", r.outcome.messages);
    entry.set("slices", r.outcome.slices);
    entry.set("peak_target_bytes",
              static_cast<std::uint64_t>(r.outcome.peak_target_bytes));
    entry.set("run_digest", harness::run_digest_hex(r.outcome));
    runs.push_back(std::move(entry));

    ++status_counts[harness::run_status_name(r.outcome.status)];
    obs::merge_metrics(&rollup, r.outcome.metrics);
  }
  doc.set("runs", std::move(runs));

  json::Value counts = json::Value::object();
  for (const auto& [name, n] : status_counts) counts.set(name, n);
  doc.set("status_counts", std::move(counts));

  // Measured-vs-predicted comparisons (the paper's validation figures):
  // runs that share everything but the prediction method, grouped against
  // their measured baseline.
  std::map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::string> group_order;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const std::string key = comparison_key(result.runs[i].resolved);
    auto [it, inserted] = groups.emplace(key, std::vector<std::size_t>{});
    if (inserted) group_order.push_back(key);
    it->second.push_back(i);
  }
  json::Value comparisons = json::Value::array();
  for (const std::string& key : group_order) {
    const std::vector<std::size_t>& members = groups[key];
    const RunReport* baseline = nullptr;
    for (const std::size_t i : members) {
      const RunReport& r = result.runs[i];
      if (r.resolved.config.mode == harness::Mode::kMeasured &&
          r.outcome.ok()) {
        baseline = &r;
        break;
      }
    }
    if (baseline == nullptr || members.size() < 2) continue;
    json::Value group = json::Value::object();
    group.set("app", baseline->resolved.app);
    group.set("procs", baseline->resolved.config.nprocs);
    group.set("machine",
              harness::machine_spec_string(baseline->resolved.config.machine));
    group.set("measured_ns",
              static_cast<std::int64_t>(baseline->outcome.predicted_time));
    json::Value entries = json::Value::array();
    for (const std::size_t i : members) {
      const RunReport& r = result.runs[i];
      if (&r == baseline) continue;
      json::Value e = json::Value::object();
      e.set("id", r.id);
      e.set("mode", harness::mode_key(r.resolved.config.mode));
      e.set("workers", r.resolved.config.threads);
      if (r.resolved.config.abstract_comm) e.set("abstract_comm", true);
      e.set("status", harness::run_status_name(r.outcome.status));
      e.set("predicted_ns",
            static_cast<std::int64_t>(r.outcome.predicted_time));
      if (r.outcome.ok() && baseline->outcome.predicted_time > 0) {
        const double err =
            100.0 *
            (static_cast<double>(r.outcome.predicted_time) -
             static_cast<double>(baseline->outcome.predicted_time)) /
            static_cast<double>(baseline->outcome.predicted_time);
        e.set("error_pct", err);
      }
      entries.push_back(std::move(e));
    }
    group.set("predictions", std::move(entries));
    comparisons.push_back(std::move(group));
  }
  doc.set("comparisons", std::move(comparisons));

  // Campaign-wide metrics rollup (deterministic counters only).
  json::Value metrics = json::Value::object();
  json::Value scalars = json::Value::object();
  for (const auto& [name, value] : rollup.scalars) scalars.set(name, value);
  metrics.set("scalars", std::move(scalars));
  json::Value hist = json::Value::array();
  for (const std::uint64_t b : rollup.msg_size_hist) hist.push_back(b);
  metrics.set("msg_size_hist", std::move(hist));
  doc.set("metrics", std::move(metrics));
  return doc;
}

std::string report_csv(const CampaignResult& result) {
  // Baselines for the error column, same grouping as report_json.
  std::map<std::string, const RunReport*> baselines;
  for (const RunReport& r : result.runs) {
    if (r.resolved.config.mode != harness::Mode::kMeasured || !r.outcome.ok())
      continue;
    baselines.emplace(comparison_key(r.resolved), &r);
  }

  std::string out =
      "id,app,options,procs,mode,machine,workers,seed,fault,status,"
      "predicted_sec,error_vs_measured_pct,messages,slices,peak_mb,digest\n";
  for (const RunReport& r : result.runs) {
    const harness::RunConfig& c = r.resolved.config;
    out += csv_field(r.id);
    out += ',';
    out += csv_field(r.resolved.app);
    out += ',';
    out += csv_field(options_string(r.resolved.app_options));
    out += ',';
    out += std::to_string(c.nprocs);
    out += ',';
    out += harness::mode_key(c.mode);
    out += ',';
    out += csv_field(harness::machine_spec_string(c.machine));
    out += ',';
    out += std::to_string(c.threads);
    out += ',';
    out += std::to_string(c.seed);
    out += ',';
    out += csv_field(c.faults.to_string());
    out += ',';
    out += harness::run_status_name(r.outcome.status);
    out += ',';
    out += json::format_double(vtime_to_sec(r.outcome.predicted_time));
    out += ',';
    if (c.mode != harness::Mode::kMeasured && r.outcome.ok()) {
      auto it = baselines.find(comparison_key(r.resolved));
      if (it != baselines.end() && it->second->outcome.predicted_time > 0) {
        const double base =
            static_cast<double>(it->second->outcome.predicted_time);
        out += json::format_double(
            100.0 * (static_cast<double>(r.outcome.predicted_time) - base) /
            base);
      }
    }
    out += ',';
    out += std::to_string(r.outcome.messages);
    out += ',';
    out += std::to_string(r.outcome.slices);
    out += ',';
    out += json::format_double(static_cast<double>(r.outcome.peak_target_bytes) /
                               (1024.0 * 1024.0));
    out += ',';
    out += r.digest_hex;
    out += '\n';
  }
  return out;
}

json::Value manifest_json(const CampaignResult& result,
                          const CampaignOptions& options) {
  json::Value doc = json::Value::object();
  doc.set("campaign", result.name);
  doc.set("scenario_digest", result.scenario_digest);
  doc.set("simulator_version", harness::kSimulatorVersion);
  doc.set("jobs", options.jobs);
  doc.set("cache_dir", options.cache_dir);
  doc.set("wall_seconds", result.wall_seconds);
  doc.set("cache_hits", static_cast<std::int64_t>(result.cache_hits));
  doc.set("executed", static_cast<std::int64_t>(result.executed));
  doc.set("calibrations_run",
          static_cast<std::int64_t>(result.calibrations_run));
  doc.set("calibrations_cached",
          static_cast<std::int64_t>(result.calibrations_cached));
  json::Value runs = json::Value::array();
  for (const RunReport& r : result.runs) {
    json::Value e = json::Value::object();
    e.set("id", r.id);
    e.set("digest", r.digest_hex);
    e.set("cache_hit", r.cache_hit);
    runs.push_back(std::move(e));
  }
  doc.set("runs", std::move(runs));
  return doc;
}

void write_reports(const CampaignResult& result,
                   const CampaignOptions& options) {
  namespace fs = std::filesystem;
  if (options.out_dir.empty()) return;
  std::error_code ec;
  fs::create_directories(options.out_dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create output directory '" +
                             options.out_dir + "': " + ec.message());
  }
  auto write_file = [&](const char* name, const std::string& body) {
    const std::string path = (fs::path(options.out_dir) / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + path + "'");
    out << body;
  };
  write_file("report.json", report_json(result).dump(2) + "\n");
  write_file("report.csv", report_csv(result));
  write_file("campaign.json", manifest_json(result, options).dump(2) + "\n");
}

}  // namespace stgsim::campaign
