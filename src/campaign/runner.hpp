// Campaign execution: runs an expanded Scenario through the result cache
// on a host-thread job pool and produces deterministic aggregate reports.
//
// Execution is a two-phase DAG walk. Phase 1 runs the deduplicated
// calibration jobs (cache-checked by calibration digest); phase 2 resolves
// every run against its calibration's w_i table, digests the *resolved*
// spec, and either reuses the cached outcome or executes it. Runs that
// resolve to the same digest — duplicate sweep points — execute once.
//
// Determinism contract: report_json()/report_csv() are pure functions of
// the scenario and the cached outcomes. They contain no wall-clock, host
// load, or hit/miss information, so re-invoking a completed campaign
// rewrites them byte-identically with zero simulation work. The mutable
// facts (cache hits, campaign wall time) live in the campaign.json
// manifest instead.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/executor.hpp"
#include "campaign/scenario.hpp"
#include "harness/config_json.hpp"
#include "support/json.hpp"

namespace stgsim::campaign {

struct RunReport;

struct CampaignOptions {
  /// Worker threads for the job pool (1 = serial). Each worker executes
  /// whole runs; per-run engine state is isolated, so results are
  /// independent of `jobs`.
  int jobs = 1;
  std::string cache_dir = ".stgsim-cache";
  /// Where report.json / report.csv / campaign.json are written by
  /// write_reports(); empty = caller handles output.
  std::string out_dir;
  /// Re-execute cached runs whose status != ok. By default every completed
  /// outcome — including deadlocks and budget overruns, which are
  /// deterministic — is reused.
  bool retry_failed = false;
  /// Attach a metrics-only Recorder to executed runs so reports can roll
  /// up campaign-wide counters. Never affects digests.
  bool with_metrics = true;
  /// Shared executor (cache + in-flight dedup + execution permits). When
  /// null, run_campaign builds a private one from cache_dir/with_metrics.
  /// The serve daemon passes its own so concurrent campaigns dedup runs
  /// against each other, not just within one scenario.
  Executor* executor = nullptr;
  /// Progress hook, invoked once per run as its outcome becomes final
  /// (serialized; never concurrently). `done` counts finished runs so far,
  /// `total` is the scenario's run count.
  std::function<void(const RunReport& report, std::size_t done,
                     std::size_t total)>
      on_run_done;
};

/// One run's results as the campaign saw them.
struct RunReport {
  std::string id;
  harness::RunSpec resolved;   ///< params filled for analytical runs
  std::string digest_hex;      ///< empty when resolution itself failed
  bool cache_hit = false;
  harness::RunOutcome outcome;
};

struct CampaignResult {
  std::string name;
  std::string scenario_digest;
  std::vector<RunReport> runs;  ///< scenario expansion order

  std::size_t cache_hits = 0;        ///< runs served from the cache
  std::size_t executed = 0;          ///< unique digests simulated
  std::size_t calibrations_run = 0;
  std::size_t calibrations_cached = 0;
  double wall_seconds = 0.0;
};

/// Executes the scenario. Individual run failures (including calibration
/// failures, which surface as kInternalError on every dependent run) are
/// recorded in the result, not thrown; only environment errors (unwritable
/// cache dir) throw.
CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options);

/// Deterministic aggregate report (see the contract above): per-run spec +
/// outcome, status taxonomy rollup, measured-vs-predicted comparisons for
/// sweep points that share everything but the mode, and a campaign-wide
/// metrics rollup.
json::Value report_json(const CampaignResult& result);

/// The same data as CSV — one row per run, RFC-4180 quoting.
std::string report_csv(const CampaignResult& result);

/// Mutable companion to the reports: cache hit/miss per run, wall time,
/// job count, cache directory. Not part of the byte-identity contract.
json::Value manifest_json(const CampaignResult& result,
                          const CampaignOptions& options);

/// Writes report.json, report.csv, and campaign.json into
/// options.out_dir (created if needed).
void write_reports(const CampaignResult& result,
                   const CampaignOptions& options);

}  // namespace stgsim::campaign
