#include "campaign/scenario.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>

namespace stgsim::campaign {

namespace {

/// One sweep axis: the (possibly nested) key and its values in file order.
struct Axis {
  std::string key;       ///< run-spec key, or "options.<name>"
  json::Value::Array values;
};

/// Merges `overrides` on top of `base` (one level deep for "options").
json::Value merge_point(const json::Value& base, const json::Value& overrides) {
  json::Value out = base;
  for (const auto& [key, value] : overrides.as_object()) {
    if (key == "options" && out.has("options")) {
      json::Value opts = out.at("options");
      for (const auto& [name, ov] : value.as_object()) opts.set(name, ov);
      out.set("options", opts);
    } else {
      out.set(key, value);
    }
  }
  return out;
}

void set_nested(json::Value* point, const std::string& key,
                const json::Value& value) {
  if (key.rfind("options.", 0) == 0) {
    json::Value opts =
        point->has("options") ? point->at("options") : json::Value::object();
    opts.set(key.substr(8), value);
    point->set("options", opts);
  } else {
    point->set(key, value);
  }
}

/// Splits a sweep object into its scalar part and its array-valued axes.
/// Axes come out in sorted key order (json::Value objects are sorted), so
/// the cross product below is deterministic.
void split_axes(const json::Value& sweep, json::Value* scalars,
                std::vector<Axis>* axes) {
  *scalars = json::Value::object();
  for (const auto& [key, value] : sweep.as_object()) {
    if (value.is_array()) {
      if (value.as_array().empty()) {
        throw std::runtime_error("sweep axis '" + key + "' is empty");
      }
      axes->push_back(Axis{key, value.as_array()});
    } else if (key == "options") {
      json::Value scalar_opts = json::Value::object();
      for (const auto& [name, ov] : value.as_object()) {
        if (ov.is_array()) {
          if (ov.as_array().empty()) {
            throw std::runtime_error("sweep axis 'options." + name +
                                     "' is empty");
          }
          axes->push_back(Axis{"options." + name, ov.as_array()});
        } else {
          scalar_opts.set(name, ov);
        }
      }
      scalars->set("options", scalar_opts);
    } else {
      scalars->set(key, value);
    }
  }
}

/// Short tag for run ids: app, procs, mode — enough to make ids readable;
/// the numeric prefix makes them unique.
std::string run_tag(const harness::RunSpec& spec) {
  return spec.app + "-p" + std::to_string(spec.config.nprocs) + "-" +
         harness::mode_key(spec.config.mode);
}

void validate_spec(const harness::RunSpec& spec, const std::string& where) {
  const harness::RunConfig& c = spec.config;
  if (c.mode == harness::Mode::kMeasured && c.threads > 0) {
    throw std::runtime_error(
        where + ": measured mode is sequential-only (workers must be 0)");
  }
  if (c.mode == harness::Mode::kAnalytical && c.params.empty() &&
      spec.calibrate_procs <= 0) {
    throw std::runtime_error(
        where +
        ": analytical runs need either inline \"params\" or a \"calibrate\" "
        "process count");
  }
  if (c.threads < 0) {
    throw std::runtime_error(where + ": workers must be >= 0");
  }
}

}  // namespace

Scenario parse_scenario(const json::Value& doc) {
  Scenario out;
  json::Value defaults = json::Value::object();
  const json::Value* sweeps = nullptr;
  const json::Value* runs = nullptr;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      out.name = value.as_string();
    } else if (key == "defaults") {
      defaults = value;
      (void)defaults.as_object();
    } else if (key == "sweeps") {
      sweeps = &value;
    } else if (key == "runs") {
      runs = &value;
    } else {
      throw std::runtime_error(
          "unknown scenario key '" + key +
          "' (expected name, defaults, sweeps, runs)");
    }
  }
  if (out.name.empty()) {
    throw std::runtime_error("scenario is missing required key 'name'");
  }
  if (sweeps == nullptr && runs == nullptr) {
    throw std::runtime_error("scenario has neither 'sweeps' nor 'runs'");
  }

  // Expand into point documents (deterministic order).
  std::vector<json::Value> points;
  if (runs != nullptr) {
    for (const auto& r : runs->as_array()) {
      points.push_back(merge_point(defaults, r));
    }
  }
  if (sweeps != nullptr) {
    for (const auto& sweep : sweeps->as_array()) {
      json::Value scalars = json::Value::object();
      std::vector<Axis> axes;
      split_axes(sweep, &scalars, &axes);
      const json::Value base = merge_point(defaults, scalars);
      // Odometer over the axes; the last (sorted) axis varies fastest.
      std::vector<std::size_t> idx(axes.size(), 0);
      bool done = false;
      while (!done) {
        json::Value point = base;
        for (std::size_t a = 0; a < axes.size(); ++a) {
          set_nested(&point, axes[a].key, axes[a].values[idx[a]]);
        }
        points.push_back(std::move(point));
        done = true;
        for (std::size_t a = axes.size(); a-- > 0;) {
          if (++idx[a] < axes[a].values.size()) {
            done = false;
            break;
          }
          idx[a] = 0;
        }
      }
    }
  }

  // Parse points into RunSpecs, wiring calibration dependencies.
  std::map<std::string, int> calib_by_digest;
  std::string expansion;  // canonical dumps, for the scenario digest
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::string where = "run " + std::to_string(i);
    harness::RunSpec spec;
    try {
      spec = harness::run_spec_from_json(points[i]);
    } catch (const std::exception& e) {
      throw std::runtime_error(where + ": " + e.what());
    }
    validate_spec(spec, where);

    CampaignRun run;
    run.spec = spec;
    char prefix[24];
    std::snprintf(prefix, sizeof(prefix), "%03zu", i);
    run.id = std::string(prefix) + "-" + run_tag(spec);

    if (spec.config.mode == harness::Mode::kAnalytical &&
        spec.config.params.empty()) {
      const std::string digest = harness::calibration_digest_hex(spec);
      auto [it, inserted] =
          calib_by_digest.emplace(digest, out.calibrations.size());
      if (inserted) {
        CalibrationJob job;
        job.spec = spec;
        job.digest_hex = digest;
        job.id = "calib-" + spec.app + "-p" +
                 std::to_string(spec.calibrate_procs) + "-" +
                 std::to_string(out.calibrations.size());
        out.calibrations.push_back(std::move(job));
      }
      run.calibration = it->second;
    }

    expansion += harness::run_spec_to_json(spec).dump();
    expansion.push_back('\n');
    out.runs.push_back(std::move(run));
  }

  // FNV-1a over the canonical expansion + simulator version.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  };
  mix(expansion);
  mix(harness::kSimulatorVersion);
  static const char* digits = "0123456789abcdef";
  out.digest_hex.assign(16, '0');
  for (int i = 15; i >= 0; --i) {
    out.digest_hex[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

Scenario parse_scenario_text(const std::string& text) {
  return parse_scenario(json::Value::parse(text));
}

}  // namespace stgsim::campaign
