// Declarative sweep scenarios.
//
// A scenario file describes an experiment campaign the way the paper's
// evaluation is structured: sweeps over (app × nprocs × mode × machine ×
// seed × faults × ...), where analytical-model points depend on a
// calibration run whose w_i table feeds them (Figure 2). parse_scenario
// expands the sweeps into a flat, deterministically-ordered list of fully
// resolved RunSpecs plus the deduplicated calibration jobs they depend on
// — a two-level DAG the campaign runner executes.
//
// Schema (all run-spec keys from harness/config_json.hpp are accepted):
//
//   {
//     "name": "sweep3d-validation",
//     "defaults": { "machine": "ibm_sp", "seed": 1 },
//     "sweeps": [
//       {
//         "app": "sweep3d",
//         "options": {"kt": 36, "kb": 12},
//         "procs": [4, 8, 16],
//         "mode": ["measured", "de", "am"],
//         "calibrate": 16
//       }
//     ],
//     "runs": [ { ...single fully-specified run... } ]
//   }
//
// Inside a sweep, any run-spec value — including app option values — may
// be a JSON array; the sweep is the cross product of all array-valued
// axes. `defaults` supplies scalar fallbacks for every sweep and run.
// Expansion order is deterministic: sweeps in file order, axes in sorted
// key order, axis values in file order — so run ids, cache keys, and
// reports are stable across invocations of the same scenario.
#pragma once

#include <string>
#include <vector>

#include "harness/config_json.hpp"
#include "support/json.hpp"

namespace stgsim::campaign {

/// One expanded run of a campaign.
struct CampaignRun {
  std::string id;          ///< stable, unique within the scenario
  harness::RunSpec spec;   ///< params not yet resolved for analytical runs
  int calibration = -1;    ///< index into Scenario::calibrations, or -1
};

/// One deduplicated calibration job (several analytical runs typically
/// share it).
struct CalibrationJob {
  std::string id;
  harness::RunSpec spec;    ///< app/machine/seed/calibrate_procs define it
  std::string digest_hex;   ///< harness::calibration_digest_hex(spec)
};

struct Scenario {
  std::string name;
  std::vector<CalibrationJob> calibrations;
  std::vector<CampaignRun> runs;  ///< expansion order

  /// Digest of the scenario's canonical expansion (all run-spec dumps);
  /// recorded in the campaign manifest so a resumed campaign can detect
  /// that the scenario changed underneath it.
  std::string digest_hex;
};

/// Expands a scenario document. Throws std::runtime_error with context on
/// schema violations: unknown keys, unknown apps/machines/modes, analytical
/// sweeps with neither "calibrate" nor inline "params", measured runs with
/// workers > 0 (emulation is sequential-only).
Scenario parse_scenario(const json::Value& doc);

/// Convenience: parse text, then expand.
Scenario parse_scenario_text(const std::string& text);

}  // namespace stgsim::campaign
