#include "cli/args.hpp"

#include <stdexcept>

#include "support/errors.hpp"
#include "support/json.hpp"
#include "support/numparse.hpp"

namespace stgsim::cli {

Args::Args(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      if (key.rfind('-', 0) == 0) {
        throw std::runtime_error("expected --flag, got '" + key + "'");
      }
      positionals_.push_back(key);
      continue;
    }
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";  // boolean flag
    }
    seen_[key] = false;
  }
}

void Args::reject_legacy(const std::string& legacy,
                         const std::string& canonical) const {
  if (!values_.contains(legacy)) return;
  json::Value detail = json::Value::object();
  detail.set("removed", "--" + legacy);
  detail.set("replacement", "--" + canonical);
  throw errors::StructuredError(
      "usage.removed_flag", errors::kCategoryUsage,
      "--" + legacy + " was removed; use --" + canonical,
      std::move(detail));
}

std::string Args::str(const std::string& key, const std::string& dflt) {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  seen_[key] = true;
  return it->second;
}

long long Args::num(const std::string& key, long long dflt) {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  seen_[key] = true;
  long long v = 0;
  const auto st = support::parse_i64(it->second, &v);
  if (st != support::ParseNumStatus::kOk) {
    throw std::runtime_error(
        "flag --" + key + ": " +
        support::parse_num_problem(st, "expected an integer") + ", got '" +
        it->second + "'");
  }
  return v;
}

double Args::real(const std::string& key, double dflt) {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  seen_[key] = true;
  double v = 0.0;
  const auto st = support::parse_f64(it->second, &v);
  if (st != support::ParseNumStatus::kOk) {
    throw std::runtime_error(
        "flag --" + key + ": " +
        support::parse_num_problem(st, "expected a number") + ", got '" +
        it->second + "'");
  }
  return v;
}

bool Args::flag(const std::string& key) {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  seen_[key] = true;
  // A bare "--key" means true; an explicit value must be a recognized
  // boolean. Anything else used to silently read as true ("--digest=no"
  // enabled digests) — now it is a structured error.
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::runtime_error("flag --" + key + ": expected a boolean, got '" +
                           v + "'");
}

const std::string& Args::positional(std::size_t i,
                                    const std::string& what) const {
  if (i >= positionals_.size()) {
    throw std::runtime_error("missing " + what);
  }
  return positionals_[i];
}

void Args::no_positionals() const {
  if (!positionals_.empty()) {
    throw std::runtime_error("unexpected argument '" + positionals_.front() +
                             "'");
  }
}

void Args::check_all_consumed() const {
  for (const auto& [key, used] : seen_) {
    if (!used) throw std::runtime_error("unknown flag --" + key);
  }
}

}  // namespace stgsim::cli
