// Flag parser for the stgsim CLI.
//
// Flags take either "--key value" or "--key=value" form; a "--key" followed
// by another flag (or nothing) is a boolean. Tokens that do not start with
// "--" are collected as positionals (the campaign subcommand's scenario
// path). Every subcommand calls check_all_consumed() after reading its
// flags so a typo is a structured error, never a silently ignored option.
//
// Legacy spellings finished their deprecation cycle: reject_legacy()
// turns the old flag into a structured "usage.removed_flag" error naming
// its replacement, so a stale script fails loudly with a machine-readable
// envelope (under --json-errors) instead of silently drifting.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace stgsim::cli {

class Args {
 public:
  /// Parses argv[first..argc). Throws std::runtime_error on malformed
  /// tokens (e.g. "-flag" single-dash).
  Args(int argc, char** argv, int first);

  /// Rejects removed flag `legacy`: if the user passed --<legacy>, throws
  /// errors::StructuredError("usage.removed_flag") whose detail names the
  /// `canonical` replacement.
  void reject_legacy(const std::string& legacy,
                     const std::string& canonical) const;

  bool has(const std::string& key) const { return values_.contains(key); }

  std::string str(const std::string& key, const std::string& dflt);
  long long num(const std::string& key, long long dflt);
  double real(const std::string& key, double dflt);
  bool flag(const std::string& key);

  const std::vector<std::string>& positionals() const { return positionals_; }
  /// Positional argument `i`; throws naming `what` when absent.
  const std::string& positional(std::size_t i, const std::string& what) const;
  /// Throws if any positional was given (for subcommands that take none).
  void no_positionals() const;

  /// Throws "unknown flag --x" for any flag no accessor ever read.
  void check_all_consumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
  std::vector<std::string> positionals_;
};

}  // namespace stgsim::cli
