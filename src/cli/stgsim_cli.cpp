// stgsim — command-line front end.
//
//   stgsim list-apps
//   stgsim compile  --app <name> [--<option> v ...] [--procs P]
//                   [--dump-stg f.dot] [--dump-dtg f.dot]
//                   [--print-simplified] [--print-timer]
//   stgsim run      [--config spec.json] [--app <name>] [--<option> v ...]
//                   [--procs P] [--mode measured|de|am]
//                   [--machine "ibm_sp[latency_us=30,bw=120e6]"]
//                   [--calibrate N] [--load-params f] [--save-params f]
//                   [--workers N] [--partition block|interleave|comm]
//                   [--schedule conservative|optimistic]
//                   [--gvt-interval N] [--checkpoint-interval N|none]
//                   [--checkpoint-adaptive on|off] [--speculation-window SEC]
//                   [--abstract-comm] [--memory-cap-mb M]
//                   [--seed S] [--fault SPEC]
//                   [--max-vtime-sec T] [--max-messages N] [--max-host-sec T]
//                   [--digest] [--print-config]
//                   [--trace-out f.json] [--metrics-out f.json]
//                   [--comm-matrix-out f.json] [--links-out f.json]
//   stgsim calibrate --app <name> [--<option> v ...] --procs P
//                   [--machine M] [--seed S] [--save-params f] [--json]
//   stgsim campaign <scenario.json> [--jobs N] [--cache-dir D] [--out-dir D]
//                   [--retry-failed] [--no-metrics] [--print-report]
//   stgsim check    --app <name> [--<option> v ...] [--procs P (<= 8)]
//                   [--mode de|am] [--machine M] [--seed S] [--fault SPEC]
//                   [--max-schedules N] [--max-depth N] [--max-host-sec T]
//                   [--workers N] [--trials N] [--drain-seed S]
//                   [--schedule conservative|optimistic] [--no-dpor]
//                   [--gvt-interval N] [--checkpoint-interval N|none]
//                   [--keep-going]
//                   [--inject unsafe-wildcard|commit-before-gvt]
//                   [--counterexample-out f.json]
//   stgsim check    --replay f.json [--trace-out f] [--metrics-out f]
//                   [--comm-matrix-out f] [--divergence-out f]
//   stgsim serve    [--host H] [--port P] [--port-file f] [--cache-dir D]
//                   [--jobs N] [--max-requests N] [--max-per-client N]
//                   [--max-run-sec T] [--no-metrics]
//   stgsim submit   (--config spec.json | --scenario sc.json)
//                   (--port P | --port-file f) [--host H] [--client NAME]
//                   [--stream] [--retry-failed] [--out-dir D]
//   stgsim status   (--port P | --port-file f) [--host H]
//                   [--metrics] [--metrics-out f]
//   stgsim shutdown (--port P | --port-file f) [--host H]
//   stgsim schema   [--id ID]
//
// Flags take either "--key value" or "--key=value" form. Boolean flags
// accept --key, --key=true/1/yes/on and --key=false/0/no/off; any other
// value is an error (it used to silently read as true).
//
// `run` executes one simulation. Its configuration is the RunSpec JSON
// schema (harness/config_json.hpp): start from --config if given, then
// apply flag overrides — flags always win. --print-config dumps the
// resulting canonical spec as JSON and exits; feeding that back through
// --config reproduces the run exactly. --machine accepts a registry name
// or a spec string with field overrides ("ibm_sp[latency_us=30]"); unknown
// machines, override keys, apps, and app options are structured errors.
//
// `calibrate` runs only the Figure-2 measurement pass and prints the w_i
// table (or JSON with --json); --save-params writes the file `run
// --load-params` and scenario files consume.
//
// `campaign` expands a declarative scenario file (campaign/scenario.hpp)
// into a DAG of calibrations and runs, executes it on --jobs worker
// threads through a content-addressed result cache, and writes
// report.json / report.csv / campaign.json into --out-dir. Re-invoking a
// completed campaign performs zero simulation work and rewrites the
// reports byte-identically.
//
// --digest prints a 64-bit run digest (per-rank final virtual clocks,
// message counts, delivered bytes) — two runs predicting bit-identical
// results print the same digest, regardless of scheduler or host timing.
// The same digest appears as "run_digest" in campaign reports.
//
// The observability flags never change simulated results (digests are
// bit-identical with and without them):
//   --trace-out f        virtual-time timeline per rank as Chrome
//                        trace-event JSON (load in Perfetto/about:tracing)
//   --metrics-out f      engine/protocol counters + message-size histogram
//                        as JSON; also prints a metrics summary table
//   --comm-matrix-out f  rank×rank message/byte matrix as JSON
//   --links-out f        per-link utilization + hop-count histogram of the
//                        routed platform as JSON
//
// --fault injects a deterministic fault plan (see src/fault/fault.hpp for
// the clause syntax); the --max-* flags bound pathological runs, which then
// exit with a structured outcome instead of hanging.
//
// `check` is the exhaustive-interleaving protocol gate (src/mc,
// DESIGN.md §13): it explores every message-delivery/match ordering of a
// small run (DFS with sleep-set DPOR reduction; --no-dpor disables the
// reduction) and asserts that all schedules commit the sequential
// scheduler's digest and that deadlocks, if any, are deterministic. A
// threaded cross-check then perturbs mailbox drain order under --workers
// N (default 2; 0 skips) for --trials seeded permutations. Divergences
// serialize to --counterexample-out; `check --replay file` re-runs that
// one schedule deterministically, with the observability flags available
// and --divergence-out writing a canonical-vs-observed field dump.
// --inject unsafe-wildcard plants the pre-PR-3 wildcard commit race
// behind a test-only flag, for exercising the gate itself.
//
// --schedule optimistic switches the engine to the Time Warp scheduler
// (DESIGN.md §15): speculative execution with rollback, anti-messages and
// GVT-driven fossil collection. Digests are bit-identical to the
// conservative schedulers; `check --schedule optimistic` explores the
// rollback/commit protocol against the conservative sequential digest, and
// --inject commit-before-gvt plants a commit-finalized-before-GVT race on
// the optimistic path for the gate to rediscover. Four knobs tune the
// optimistic engine without changing any simulated result (digests are
// bit-identical across every setting):
//   --gvt-interval N          committed events between GVT passes on the
//                             sequential drivers (adaptively retuned at
//                             runtime unless the config disables it)
//   --checkpoint-interval N   committed consumes between per-rank restore
//                             points; rollback coast-forwards from the
//                             newest checkpoint at-or-before the violation
//                             and GVT prunes the consumption log behind
//                             committed checkpoints. "none" disables both
//                             (replay from rank start, unpruned log).
//   --checkpoint-adaptive     auto-tune the interval per rank from observed
//                             rollback frequency (default on)
//   --speculation-window SEC  hold back ranks more than SEC of virtual time
//                             ahead of GVT (default unbounded)
//
// `serve` runs the long-lived campaign daemon (DESIGN.md §16): a local
// HTTP API (loopback by default, ephemeral port published via
// --port-file) accepting run and campaign requests on the versioned
// "stgsim-serve-1" wire protocol, deduping identical in-flight work
// through the shared content-addressed cache, and streaming NDJSON
// progress frames. `submit` and `status` are its clients; `schema` prints
// the published JSON Schemas of every wire surface (RunSpec, RunOutcome,
// error envelope, serve request/frame).
//
// The PR 5 deprecation cycle is finished: "stgsim --app ..." (no
// subcommand), --threads, and --calib now fail with a structured
// "usage.removed_flag" / "usage.legacy_invocation" error naming the
// replacement instead of silently aliasing. The global --json-errors flag
// (any subcommand) prints failures as the versioned structured-error
// envelope (support/errors.hpp) on stdout — byte-identical to the serve
// daemon's error responses.
//
// Exit codes: 0 ok, 2 out_of_memory, 3 deadlock, 4 budget_exceeded,
// 5 internal_error, 6 protocol divergence (`check`)
// (1 = usage/configuration errors). Structured-error categories map onto
// the same codes (errors::category_exit_code).
//
// Examples:
//   stgsim run --app tomcatv --n 1024 --procs 64 --mode am
//   stgsim run --app sweep3d --kt 1000 --procs 10000 --mode am --calibrate 16
//   stgsim run --app sweep3d --procs 4 --mode de \
//       --fault "link:src=0,dst=1,latency=4,bandwidth=0.25;straggler:rank=2,factor=2"
//   stgsim run --app tomcatv --procs 16 --mode de \
//       --machine "ibm_sp[latency_us=30,bw=120e6]"
//   stgsim run --app sweep3d --procs 64 --mode de --links-out links.json \
//       --machine "ibm_sp[topo=fattree,radix=16,algo.bcast=binomial]"
//   stgsim campaign examples/scenario_sweep3d.json --jobs 4 --out-dir out
//   stgsim compile --app nas_sp --class A --procs 16 --dump-stg sp.dot
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "campaign/exec.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "cli/args.hpp"
#include "core/calibration.hpp"
#include "core/compiler.hpp"
#include "core/dtg.hpp"
#include "harness/config_json.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "harness/runner.hpp"
#include "mc/checker.hpp"
#include "mc/oracles.hpp"
#include "mc/schedule.hpp"
#include "obs/obs.hpp"
#include "serve/daemon.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/errors.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace stgsim::cli {
namespace {

/// Set by the global --json-errors flag: failures print the structured
/// envelope on stdout instead of "error: ..." prose on stderr.
bool g_json_errors = false;

int status_exit_code(const harness::RunOutcome& out) {
  switch (out.status) {
    case harness::RunStatus::kOk: return 0;
    case harness::RunStatus::kOutOfMemory: return 2;
    case harness::RunStatus::kDeadlock: return 3;
    case harness::RunStatus::kBudgetExceeded: return 4;
    case harness::RunStatus::kInternalError: return 5;
  }
  return 5;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Collects --<option> flags for `app` from the registry's accepted list
/// into a spec document's "options" object. Only registered option names
/// are consumed, so an unrecognized flag still fails check_all_consumed().
void apply_app_option_flags(json::Value* doc, const std::string& app,
                            Args& args) {
  const apps::AppInfo* info = apps::find_app(app);
  if (info == nullptr) return;  // run_spec_from_json reports the bad app
  json::Value opts =
      doc->has("options") ? doc->at("options") : json::Value::object();
  for (const auto& [name, dflt] : info->options) {
    (void)dflt;
    if (args.has(name)) opts.set(name, json::Value(args.str(name, "")));
  }
  doc->set("options", opts);
}

/// Builds the RunSpec document for `run`/`compile`: the --config file (if
/// any) with flag overrides applied on top.
json::Value spec_doc_from_args(Args& args) {
  args.reject_legacy("threads", "workers");
  args.reject_legacy("calib", "calibrate");

  json::Value doc = json::Value::object();
  const std::string config_path = args.str("config", "");
  if (!config_path.empty()) {
    doc = json::Value::parse(read_file(config_path));
    (void)doc.as_object();
  }

  if (args.has("app")) doc.set("app", json::Value(args.str("app", "")));
  if (args.has("procs")) {
    doc.set("procs", json::Value(static_cast<std::int64_t>(args.num("procs", 0))));
  } else if (!doc.has("procs")) {
    doc.set("procs", json::Value(16));  // historical CLI default
  }
  if (args.has("mode")) doc.set("mode", json::Value(args.str("mode", "")));
  if (args.has("machine")) {
    doc.set("machine", json::Value(args.str("machine", "")));
  }
  if (args.has("workers")) {
    doc.set("workers",
            json::Value(static_cast<std::int64_t>(args.num("workers", 0))));
  }
  if (args.has("partition")) {
    doc.set("partition", json::Value(args.str("partition", "")));
  }
  if (args.has("schedule")) {
    doc.set("schedule", json::Value(args.str("schedule", "")));
  }
  if (args.has("gvt-interval")) {
    const long long v = args.num("gvt-interval", 0);
    if (v < 1) {
      throw std::runtime_error("flag --gvt-interval: must be >= 1, got '" +
                               std::to_string(v) + "'");
    }
    doc.set("gvt_interval", json::Value(static_cast<std::int64_t>(v)));
  }
  if (args.has("checkpoint-interval")) {
    // "none" disables checkpoints (rollback replays from rank start);
    // otherwise the value is a committed-consume count >= 1.
    long long v = 0;
    if (args.str("checkpoint-interval", "") != "none") {
      v = args.num("checkpoint-interval", 0);
      if (v < 1) {
        throw std::runtime_error(
            "flag --checkpoint-interval: must be >= 1 or 'none', got '" +
            std::to_string(v) + "'");
      }
    }
    doc.set("checkpoint_interval", json::Value(static_cast<std::int64_t>(v)));
  }
  if (args.has("checkpoint-adaptive")) {
    doc.set("checkpoint_adaptive", json::Value(args.flag("checkpoint-adaptive")));
  }
  if (args.has("speculation-window")) {
    const double v = args.real("speculation-window", 0.0);
    if (v <= 0.0) {
      throw std::runtime_error(
          "flag --speculation-window: must be > 0 seconds of virtual time");
    }
    doc.set("speculation_window_sec", json::Value(v));
  }
  if (args.flag("abstract-comm")) doc.set("abstract_comm", json::Value(true));
  if (args.has("memory-cap-mb")) {
    doc.set("memory_cap_mb", json::Value(args.real("memory-cap-mb", 0.0)));
  }
  if (args.has("stack-kb")) {
    doc.set("fiber_stack_kb", json::Value(args.real("stack-kb", 256.0)));
  }
  if (args.has("seed")) {
    doc.set("seed", json::Value(static_cast<std::int64_t>(args.num("seed", 0))));
  }
  if (args.has("fault")) doc.set("fault", json::Value(args.str("fault", "")));
  if (args.has("max-vtime-sec")) {
    doc.set("max_vtime_ns",
            json::Value(args.real("max-vtime-sec", 0.0) * 1e9));
  }
  if (args.has("max-messages")) {
    doc.set("max_messages", json::Value(static_cast<std::int64_t>(
                                args.num("max-messages", 0))));
  }
  if (args.has("max-host-sec")) {
    doc.set("max_host_sec", json::Value(args.real("max-host-sec", 0.0)));
  }
  if (args.has("calibrate")) {
    doc.set("calibrate",
            json::Value(static_cast<std::int64_t>(args.num("calibrate", 0))));
  }

  const std::string app =
      doc.has("app") ? doc.at("app").as_string() : args.str("app", "");
  apply_app_option_flags(&doc, app, args);
  return doc;
}

apps::AppSpec app_spec_of(const harness::RunSpec& spec) {
  apps::AppSpec app;
  app.name = spec.app;
  app.options = spec.app_options;
  return app;
}

int cmd_list_apps(Args& args) {
  args.no_positionals();
  args.check_all_consumed();
  for (const auto& info : apps::registered_apps()) {
    std::cout << info.name << " - " << info.summary << '\n';
    std::cout << "    options:";
    for (const auto& [name, dflt] : info.options) {
      std::cout << " --" << name << " (" << dflt << ")";
    }
    std::cout << '\n';
  }
  std::cout << "machines:";
  for (const auto& name : harness::machine_names()) std::cout << ' ' << name;
  std::cout << '\n';
  return 0;
}

int cmd_compile(Args& args) {
  args.no_positionals();
  json::Value doc = spec_doc_from_args(args);
  if (!doc.has("app")) throw std::runtime_error("compile needs --app");
  const std::string app = doc.at("app").as_string();
  const int procs = static_cast<int>(doc.at("procs").as_int());
  apps::AppSpec app_spec;
  app_spec.name = app;
  for (const auto& [name, v] : doc.at("options").as_object()) {
    app_spec.options[name] = v.as_string();
  }
  ir::Program prog = apps::build_app(app_spec, procs);
  core::CompileResult compiled = core::compile(prog);

  std::cout << compiled.report(prog);

  const std::string dot_path = args.str("dump-stg", "");
  if (!dot_path.empty()) {
    std::ofstream os(dot_path);
    os << compiled.stg.to_dot();
    std::cout << "wrote " << dot_path << '\n';
  }
  if (args.flag("print-simplified")) {
    std::cout << "\n--- simplified program ---\n"
              << compiled.simplified.program.to_string();
  }
  if (args.flag("print-timer")) {
    std::cout << "\n--- timer-instrumented program ---\n"
              << compiled.timer_program.to_string();
  }

  const std::string dtg_path = args.str("dump-dtg", "");
  if (!dtg_path.empty()) {
    // Unfold the dynamic task graph from one direct-execution run.
    core::DtgRecorder recorder;
    core::DtgObserver observer(&recorder);
    smpi::World::Options wopts;
    wopts.net = harness::ibm_sp_machine().net;
    wopts.compute = harness::ibm_sp_machine().compute;
    smpi::World world(wopts, procs);
    simk::EngineConfig ec;
    ec.num_processes = procs;
    simk::Engine engine(ec);
    ir::ExecOptions xopts;
    xopts.observer = &observer;
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(prog, comm, xopts);
    });
    engine.run();
    core::Dtg dtg = recorder.build();
    const std::string consistency = dtg.check_consistency();
    std::cout << dtg.summary() << "consistency: "
              << (consistency.empty() ? "OK" : consistency) << '\n';
    std::ofstream os(dtg_path);
    os << dtg.to_dot();
    std::cout << "wrote " << dtg_path << '\n';
  }
  args.check_all_consumed();
  return 0;
}

int cmd_run(Args& args) {
  args.no_positionals();
  const bool partition_given = args.has("partition");
  json::Value doc = spec_doc_from_args(args);
  if (!doc.has("app")) throw std::runtime_error("run needs --app");
  harness::RunSpec spec = harness::run_spec_from_json(doc);
  if (partition_given && spec.config.threads < 2) {
    // Used to be silently ignored: partitioning only exists under the
    // threaded scheduler, so accepting it on a sequential run hides the
    // typo'd/missing --workers the user meant to pass.
    throw std::runtime_error(
        "--partition requires --workers >= 2 (sequential runs have no "
        "rank partitions)");
  }

  if (args.flag("print-config")) {
    args.check_all_consumed();
    std::cout << harness::run_spec_to_json(spec).dump(2) << '\n';
    return 0;
  }

  // Resolve w_i parameters for analytical runs: an explicit file beats
  // inline/config params beats calibration (defaulting to 16 processes,
  // the historical CLI behavior).
  harness::RunSpec resolved = spec;
  if (spec.config.mode == harness::Mode::kAnalytical) {
    const std::string load = args.str("load-params", "");
    if (!load.empty()) {
      spec.config.params = core::load_params(load);
      spec.calibrate_procs = 0;
    }
    std::map<std::string, double> calib;
    const std::map<std::string, double>* calib_ptr = nullptr;
    if (spec.config.params.empty()) {
      if (spec.calibrate_procs <= 0) spec.calibrate_procs = 16;
      std::cerr << "calibrating w_i at " << spec.calibrate_procs
                << " processes...\n";
      calib = campaign::run_calibration(spec);
      calib_ptr = &calib;
    }
    resolved = campaign::resolve_spec(spec, calib_ptr);
    const std::string save = args.str("save-params", "");
    if (!save.empty()) {
      core::save_params(save, resolved.config.params);
      std::cerr << "wrote " << save << '\n';
    }
  }

  harness::RunConfig cfg = resolved.config;
  const bool want_digest = args.flag("digest");
  const std::string trace_out = args.str("trace-out", "");
  const std::string metrics_out = args.str("metrics-out", "");
  const std::string matrix_out = args.str("comm-matrix-out", "");
  const std::string links_out = args.str("links-out", "");
  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_out.empty() || !metrics_out.empty() || !matrix_out.empty() ||
      !links_out.empty()) {
    obs::Options oopts;
    oopts.trace = !trace_out.empty();
    oopts.comm_matrix = !matrix_out.empty();
    recorder = std::make_unique<obs::Recorder>(oopts, cfg.nprocs);
    cfg.obs = recorder.get();
  }
  args.check_all_consumed();

  // Same execution pipeline as campaign::execute_spec, but configuration
  // errors (bad app shape for this process count) exit 1 as usage errors
  // instead of becoming a structured outcome.
  ir::Program prog = apps::build_app(app_spec_of(resolved), cfg.nprocs);
  harness::RunOutcome out;
  if (cfg.mode == harness::Mode::kAnalytical) {
    core::CompileResult compiled = core::compile(prog);
    out = harness::run_program(compiled.simplified.program, cfg);
  } else {
    out = harness::run_program(prog, cfg);
  }

  if (!out.ok()) {
    if (g_json_errors) {
      // Failed outcomes share the error envelope too: the category IS the
      // RunStatus taxonomy, so the exit code follows from it.
      std::cout << errors::error_envelope("run.failed",
                                          harness::run_status_name(out.status),
                                          out.diagnostic)
                       .dump(2)
                << '\n';
    } else {
      std::cout << "RUN FAILED [" << harness::run_status_name(out.status)
                << "]: " << out.diagnostic << '\n';
    }
    return status_exit_code(out);
  }
  TablePrinter t({"quantity", "value"});
  t.add_row({"app", resolved.app});
  t.add_row({"mode", harness::mode_key(cfg.mode)});
  t.add_row({"machine", harness::machine_spec_string(cfg.machine)});
  t.add_row({"outcome", harness::run_status_name(out.status)});
  t.add_row({"target processes", TablePrinter::fmt_int(cfg.nprocs)});
  t.add_row({"predicted time", vtime_to_string(out.predicted_time)});
  t.add_row({"target data (peak)", TablePrinter::fmt_bytes(out.peak_target_bytes)});
  t.add_row({"messages simulated",
             TablePrinter::fmt_int(static_cast<long long>(out.messages))});
  if (cfg.schedule == harness::Schedule::kOptimistic) {
    t.add_row({"rollbacks",
               TablePrinter::fmt_int(
                   static_cast<long long>(out.parallel.rollbacks))});
    t.add_row({"checkpoints taken",
               TablePrinter::fmt_int(
                   static_cast<long long>(out.parallel.checkpoints_taken))});
    t.add_row({"events replayed",
               TablePrinter::fmt_int(
                   static_cast<long long>(out.parallel.replayed_events))});
    t.add_row({"consumption log (peak)",
               TablePrinter::fmt_bytes(out.parallel.log_bytes_peak)});
  }
  t.add_row({"simulator wall-clock",
             TablePrinter::fmt(out.sim_host_seconds, 3) + " s"});
  std::cout << t.to_ascii();

  if (recorder != nullptr) {
    auto open_out = [](const std::string& path) {
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot write " + path);
      return os;
    };
    if (!trace_out.empty()) {
      auto os = open_out(trace_out);
      recorder->write_chrome_trace(os);
      std::cerr << "wrote " << trace_out << '\n';
    }
    if (!metrics_out.empty()) {
      auto os = open_out(metrics_out);
      obs::Recorder::write_metrics_json(os, out.metrics);
      std::cerr << "wrote " << metrics_out << '\n';
    }
    if (!matrix_out.empty()) {
      auto os = open_out(matrix_out);
      obs::Recorder::write_comm_matrix_json(os, out.metrics);
      std::cerr << "wrote " << matrix_out << '\n';
    }
    if (!links_out.empty()) {
      auto os = open_out(links_out);
      obs::Recorder::write_link_stats_json(os, out.metrics);
      std::cerr << "wrote " << links_out << '\n';
    }
    TablePrinter mt({"metric", "value"});
    for (const auto& [name, value] : out.metrics.scalars) {
      const auto ll = static_cast<long long>(value);
      mt.add_row({name, static_cast<double>(ll) == value
                            ? TablePrinter::fmt_int(ll)
                            : TablePrinter::fmt(value, 6)});
    }
    std::cout << mt.to_ascii();
  }

  if (want_digest) {
    std::cout << "digest: " << harness::run_digest_hex(out) << '\n';
    std::cout << "cache key: " << harness::run_spec_digest_hex(resolved)
              << '\n';
  }
  return 0;
}

int cmd_calibrate(Args& args) {
  args.no_positionals();
  args.reject_legacy("calib", "calibrate");
  json::Value doc = json::Value::object();
  if (!args.has("app")) throw std::runtime_error("calibrate needs --app");
  doc.set("app", json::Value(args.str("app", "")));
  doc.set("mode", json::Value("am"));
  if (args.has("machine")) {
    doc.set("machine", json::Value(args.str("machine", "")));
  }
  if (args.has("seed")) {
    doc.set("seed", json::Value(static_cast<std::int64_t>(args.num("seed", 0))));
  }
  doc.set("calibrate", json::Value(static_cast<std::int64_t>(
                           args.num("procs", args.num("calibrate", 16)))));
  apply_app_option_flags(&doc, doc.at("app").as_string(), args);
  harness::RunSpec spec = harness::run_spec_from_json(doc);

  const bool as_json = args.flag("json");
  const std::string save = args.str("save-params", "");
  args.check_all_consumed();

  std::cerr << "calibrating w_i at " << spec.calibrate_procs
            << " processes...\n";
  const std::map<std::string, double> params = campaign::run_calibration(spec);
  if (!save.empty()) {
    core::save_params(save, params);
    std::cerr << "wrote " << save << '\n';
  }
  if (as_json) {
    std::cout << harness::params_to_json(params).dump(2) << '\n';
  } else {
    TablePrinter t({"parameter", "sec/iteration"});
    for (const auto& [name, value] : params) {
      t.add_row({name, TablePrinter::fmt(value, 9)});
    }
    std::cout << t.to_ascii();
  }
  return 0;
}

int cmd_campaign(Args& args) {
  std::string path = args.str("scenario", "");
  if (path.empty() && !args.positionals().empty()) {
    path = args.positional(0, "scenario file");
  }
  if (path.empty()) {
    throw std::runtime_error("campaign needs a scenario file argument");
  }

  campaign::CampaignOptions opts;
  opts.jobs = static_cast<int>(args.num("jobs", 1));
  if (opts.jobs < 1) throw std::runtime_error("--jobs must be >= 1");
  opts.cache_dir = args.str("cache-dir", ".stgsim-cache");
  opts.out_dir = args.str("out-dir", "campaign-out");
  opts.retry_failed = args.flag("retry-failed");
  opts.with_metrics = !args.flag("no-metrics");
  const bool print_report = args.flag("print-report");
  args.check_all_consumed();

  campaign::Scenario scenario =
      campaign::parse_scenario_text(read_file(path));
  std::cerr << "campaign '" << scenario.name << "': " << scenario.runs.size()
            << " runs, " << scenario.calibrations.size()
            << " calibrations, jobs=" << opts.jobs << '\n';

  campaign::CampaignResult result = campaign::run_campaign(scenario, opts);
  campaign::write_reports(result, opts);

  std::map<std::string, int> status_counts;
  for (const auto& r : result.runs) {
    ++status_counts[harness::run_status_name(r.outcome.status)];
  }
  TablePrinter t({"quantity", "value"});
  t.add_row({"campaign", result.name});
  t.add_row({"runs", TablePrinter::fmt_int(
                         static_cast<long long>(result.runs.size()))});
  for (const auto& [name, n] : status_counts) {
    t.add_row({"  " + name, TablePrinter::fmt_int(n)});
  }
  t.add_row({"cache hits", TablePrinter::fmt_int(
                               static_cast<long long>(result.cache_hits))});
  t.add_row({"executed", TablePrinter::fmt_int(
                             static_cast<long long>(result.executed))});
  t.add_row({"calibrations run",
             TablePrinter::fmt_int(
                 static_cast<long long>(result.calibrations_run))});
  t.add_row({"calibrations cached",
             TablePrinter::fmt_int(
                 static_cast<long long>(result.calibrations_cached))});
  t.add_row({"wall-clock", TablePrinter::fmt(result.wall_seconds, 3) + " s"});
  t.add_row({"reports", opts.out_dir + "/report.{json,csv}"});
  std::cout << t.to_ascii();

  if (print_report) {
    std::cout << campaign::report_json(result).dump(2) << '\n';
  }
  return 0;
}

/// Builds the executable program for a fully-resolved spec: the app
/// itself under de, the compiler-simplified program (with inline w_i
/// params) under am.
ir::Program program_for_spec(const harness::RunSpec& resolved) {
  ir::Program prog =
      apps::build_app(app_spec_of(resolved), resolved.config.nprocs);
  if (resolved.config.mode == harness::Mode::kAnalytical) {
    core::CompileResult compiled = core::compile(prog);
    return std::move(compiled.simplified.program);
  }
  return prog;
}

int run_check_replay(Args& args, const std::string& path) {
  json::Value doc = json::Value::parse(read_file(path));
  if (!doc.has("kind") || doc.at("kind").as_string() != "stgsim-schedule") {
    throw std::runtime_error("'" + path +
                             "' is not a stgsim counterexample file");
  }
  if (!doc.has("spec")) {
    throw std::runtime_error(
        "counterexample has no embedded run spec; cannot replay");
  }
  harness::RunSpec spec = harness::run_spec_from_json(doc.at("spec"));
  const std::string canonical_digest =
      doc.at("canonical").at("digest").as_string();
  const std::string recorded_digest =
      doc.at("observed").at("digest").as_string();

  harness::RunConfig cfg = spec.config;
  cfg.threads = 0;
  cfg.record_host_trace = false;
  cfg.max_host_seconds = 0.0;
  if (const json::Value* inj = doc.find("inject")) {
    if (inj->as_string() == "unsafe-wildcard") {
      cfg.unsafe_wildcard_commit = true;
    } else if (inj->as_string() == "commit-before-gvt") {
      cfg.unsafe_commit_before_gvt = true;
    } else {
      throw std::runtime_error("unknown inject '" + inj->as_string() + "'");
    }
  }

  // Full observability is the point of replay: attach a recorder when any
  // output was requested (never changes simulated results).
  const std::string trace_out = args.str("trace-out", "");
  const std::string metrics_out = args.str("metrics-out", "");
  const std::string matrix_out = args.str("comm-matrix-out", "");
  const std::string div_out = args.str("divergence-out", "");
  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_out.empty() || !metrics_out.empty() || !matrix_out.empty()) {
    obs::Options oopts;
    oopts.trace = !trace_out.empty();
    oopts.comm_matrix = !matrix_out.empty();
    recorder = std::make_unique<obs::Recorder>(oopts, cfg.nprocs);
    cfg.obs = recorder.get();
  }
  args.check_all_consumed();

  ir::Program prog = program_for_spec(spec);

  std::unique_ptr<simk::ScheduleOracle> oracle;
  if (const json::Value* steps = doc.find("steps")) {
    oracle =
        std::make_unique<mc::ReplayOracle>(mc::schedule_from_json(*steps));
  } else {
    // Threaded drain-permutation counterexample: re-run the exact trial.
    cfg.threads = static_cast<int>(doc.at("workers").as_int());
    oracle = std::make_unique<mc::DrainPermuteOracle>(
        static_cast<std::uint64_t>(doc.at("drain_seed").as_number()),
        cfg.threads);
  }
  cfg.oracle = oracle.get();

  harness::RunOutcome out = harness::run_program(prog, cfg);
  const std::string replayed_digest = harness::run_digest_hex(out);

  TablePrinter t({"quantity", "value"});
  t.add_row({"counterexample", path});
  t.add_row({"divergence kind", doc.at("divergence").as_string()});
  t.add_row({"canonical digest", canonical_digest});
  t.add_row({"recorded divergent digest", recorded_digest});
  t.add_row({"replayed digest", replayed_digest});
  t.add_row({"replayed outcome", harness::run_status_name(out.status)});
  if (!out.diagnostic.empty()) t.add_row({"diagnostic", out.diagnostic});
  t.add_row({"reproduced",
             replayed_digest == canonical_digest ? "no (matches canonical)"
                                                 : "yes"});
  std::cout << t.to_ascii();

  if (recorder != nullptr) {
    auto open_out = [](const std::string& p) {
      std::ofstream os(p);
      if (!os) throw std::runtime_error("cannot write " + p);
      return os;
    };
    if (!trace_out.empty()) {
      auto os = open_out(trace_out);
      recorder->write_chrome_trace(os);
      std::cerr << "wrote " << trace_out << '\n';
    }
    if (!metrics_out.empty()) {
      auto os = open_out(metrics_out);
      obs::Recorder::write_metrics_json(os, recorder->snapshot());
      std::cerr << "wrote " << metrics_out << '\n';
    }
    if (!matrix_out.empty()) {
      auto os = open_out(matrix_out);
      obs::Recorder::write_comm_matrix_json(os, recorder->snapshot());
      std::cerr << "wrote " << matrix_out << '\n';
    }
  }
  if (!div_out.empty()) {
    std::ofstream os(div_out);
    if (!os) throw std::runtime_error("cannot write " + div_out);
    std::vector<std::pair<std::string, std::string>> canon_fields = {
        {"digest", canonical_digest},
        {"status", doc.at("canonical").at("status").as_string()},
    };
    std::vector<std::pair<std::string, std::string>> obs_fields = {
        {"digest", replayed_digest},
        {"status", harness::run_status_name(out.status)},
        {"predicted_vtime", vtime_to_string(out.predicted_time)},
    };
    for (std::size_t r = 0; r < out.per_rank.size(); ++r) {
      obs_fields.emplace_back("rank" + std::to_string(r) + "_clock",
                              std::to_string(out.per_rank[r]));
    }
    obs::Recorder::write_divergence_json(
        os, doc.at("description").as_string(), canon_fields, obs_fields);
    std::cerr << "wrote " << div_out << '\n';
  }
  return replayed_digest == canonical_digest ? 0 : 6;
}

int cmd_check(Args& args) {
  args.no_positionals();
  const std::string replay_path = args.str("replay", "");
  if (!replay_path.empty()) return run_check_replay(args, replay_path);

  const bool workers_given = args.has("workers");
  json::Value doc = spec_doc_from_args(args);
  if (!doc.has("app")) throw std::runtime_error("check needs --app");

  mc::CheckOptions copts;
  copts.max_schedules =
      static_cast<std::uint64_t>(args.num("max-schedules", 256));
  copts.max_depth = static_cast<std::size_t>(args.num("max-depth", 0));
  copts.use_dpor = !args.flag("no-dpor");
  copts.keep_going = args.flag("keep-going");
  copts.threaded_trials = static_cast<int>(args.num("trials", 4));
  copts.drain_seed = static_cast<std::uint64_t>(args.num("drain-seed", 1));
  const std::string inject = args.str("inject", "");
  const std::string cex_out = args.str("counterexample-out", "");
  args.check_all_consumed();

  harness::RunSpec spec = harness::run_spec_from_json(doc);
  if (spec.config.mode == harness::Mode::kMeasured) {
    throw std::runtime_error(
        "check requires --mode de or am: measured mode's seeded noise is "
        "order-dependent by design, so digest invariance cannot hold");
  }
  if (spec.config.nprocs > 8) {
    throw std::runtime_error(
        "check explores schedules exhaustively and supports at most 8 "
        "ranks (got " +
        std::to_string(spec.config.nprocs) + ")");
  }
  if (workers_given) {
    copts.threaded_workers = spec.config.threads;
    if (copts.threaded_workers == 1) {
      throw std::runtime_error(
          "--workers for check must be 0 (skip the threaded cross-check) "
          "or >= 2");
    }
  }
  // --max-host-sec bounds the *whole exploration* here (a per-run wall
  // budget would fire schedule-nondeterministically).
  if (spec.config.max_host_seconds > 0.0) {
    copts.max_host_seconds = spec.config.max_host_seconds;
  }
  if (!inject.empty() && inject != "unsafe-wildcard" &&
      inject != "commit-before-gvt") {
    throw std::runtime_error(
        "unknown --inject '" + inject +
        "' (expected unsafe-wildcard|commit-before-gvt)");
  }
  const bool optimistic =
      spec.config.schedule == harness::Schedule::kOptimistic;
  if (inject == "unsafe-wildcard" && optimistic) {
    throw std::runtime_error(
        "--inject unsafe-wildcard targets the conservative commit path; "
        "use --inject commit-before-gvt with --schedule optimistic");
  }
  if (inject == "commit-before-gvt" && !optimistic) {
    throw std::runtime_error(
        "--inject commit-before-gvt requires --schedule optimistic");
  }

  // Resolve w_i parameters for analytical-model checks.
  harness::RunSpec resolved = spec;
  if (spec.config.mode == harness::Mode::kAnalytical &&
      spec.config.params.empty()) {
    if (spec.calibrate_procs <= 0) spec.calibrate_procs = spec.config.nprocs;
    std::cerr << "calibrating w_i at " << spec.calibrate_procs
              << " processes...\n";
    const std::map<std::string, double> calib =
        campaign::run_calibration(spec);
    resolved = campaign::resolve_spec(spec, &calib);
  }

  copts.base = resolved.config;
  copts.base.unsafe_wildcard_commit = (inject == "unsafe-wildcard");
  copts.base.unsafe_commit_before_gvt = (inject == "commit-before-gvt");
  ir::Program prog = program_for_spec(resolved);

  mc::CheckReport rep = mc::check_program(prog, copts);
  if (!rep.error.empty()) {
    std::cout << "CHECK ERROR: " << rep.error << '\n';
    return 5;
  }

  TablePrinter t({"quantity", "value"});
  t.add_row({"app", resolved.app});
  t.add_row({"mode", harness::mode_key(resolved.config.mode)});
  t.add_row({"target processes", TablePrinter::fmt_int(resolved.config.nprocs)});
  t.add_row({"canonical outcome",
             harness::run_status_name(rep.canonical.status)});
  t.add_row({"canonical digest", rep.canonical_digest});
  t.add_row({"wildcard receives", rep.used_wildcard_recv ? "yes" : "no"});
  t.add_row({"schedules explored",
             TablePrinter::fmt_int(static_cast<long long>(rep.stats.schedules))});
  t.add_row({"prefixes pruned (sleep sets)",
             TablePrinter::fmt_int(static_cast<long long>(rep.stats.pruned))});
  if (rep.stats.depth_clipped > 0) {
    t.add_row({"runs clipped by --max-depth",
               TablePrinter::fmt_int(
                   static_cast<long long>(rep.stats.depth_clipped))});
  }
  t.add_row({"deepest schedule (choice points)",
             TablePrinter::fmt_int(
                 static_cast<long long>(rep.stats.max_depth_seen))});
  t.add_row({"distinct schedule digests",
             TablePrinter::fmt_int(
                 static_cast<long long>(rep.distinct_schedule_digests))});
  t.add_row({"exploration",
             rep.stats.complete ? std::string("complete")
                                : (rep.stats.budget_reason.empty()
                                       ? std::string("stopped")
                                       : rep.stats.budget_reason)});
  if (copts.threaded_workers >= 2) {
    t.add_row({"threaded cross-check trials",
               TablePrinter::fmt_int(rep.threaded_trials_run) + " (workers=" +
                   std::to_string(copts.threaded_workers) + ")"});
  }
  t.add_row({"divergences",
             TablePrinter::fmt_int(
                 static_cast<long long>(rep.divergences.size()))});
  std::cout << t.to_ascii();

  if (rep.divergences.empty()) {
    std::cout << "PROTOCOL GATE PASSED: all explored schedules commit "
                 "digest "
              << rep.canonical_digest << '\n';
    return 0;
  }

  for (std::size_t i = 0; i < rep.divergences.size(); ++i) {
    const mc::Divergence& d = rep.divergences[i];
    std::cout << "DIVERGENCE " << (i + 1) << " ["
              << mc::divergence_kind_name(d.kind) << "]: " << d.description
              << '\n';
    if (!d.schedule.empty()) {
      std::cout << "  schedule (" << d.schedule.size() << " steps):";
      for (const auto& s : d.schedule) std::cout << ' ' << mc::option_label(s);
      std::cout << '\n';
    } else if (d.kind == mc::Divergence::Kind::kThreadedDigest) {
      std::cout << "  threaded trial: workers=" << d.workers
                << " drain_seed=" << d.drain_seed << '\n';
    }
  }
  if (!cex_out.empty()) {
    json::Value cex = mc::counterexample_to_json(
        rep.divergences.front(), rep, harness::run_spec_to_json(resolved));
    if (!inject.empty()) cex.set("inject", inject);
    std::ofstream os(cex_out);
    if (!os) throw std::runtime_error("cannot write " + cex_out);
    os << cex.dump(2) << '\n';
    std::cerr << "wrote " << cex_out << '\n';
  }
  std::cout << "PROTOCOL GATE FAILED: " << rep.divergences.size()
            << " divergent schedule(s); replay with stgsim check --replay "
            << (cex_out.empty() ? "<counterexample.json>" : cex_out) << '\n';
  return 6;
}

// ---------------------------------------------------------------------------
// Service subcommands (DESIGN.md §16).

int cmd_schema(Args& args) {
  args.no_positionals();
  const std::string only = args.str("id", "");
  args.check_all_consumed();

  std::vector<json::Value> schemas;
  schemas.push_back(harness::run_spec_schema_json());
  schemas.push_back(harness::run_outcome_schema_json());
  schemas.push_back(errors::error_envelope_schema_json());
  schemas.push_back(serve::request_schema_json());
  schemas.push_back(serve::frame_schema_json());

  json::Value doc = json::Value::object();
  json::Value ids = json::Value::array();
  for (const json::Value& s : schemas) {
    const std::string id = s.at("$id").as_string();
    ids.push_back(id);
    if (only.empty() || only == id) doc.set(id, s);
  }
  if (!only.empty() && doc.as_object().empty()) {
    json::Value detail = json::Value::object();
    detail.set("requested", only);
    detail.set("available", ids);
    throw errors::StructuredError("usage.unknown_schema_id",
                                  errors::kCategoryUsage,
                                  "unknown schema id '" + only + "'",
                                  std::move(detail));
  }
  if (only.empty()) {
    json::Value versions = json::Value::object();
    json::Value spec_versions = json::Value::array();
    for (const std::string& v : harness::published_schema_versions()) {
      spec_versions.push_back(v);
    }
    versions.set("run_spec", std::move(spec_versions));
    json::Value protos = json::Value::array();
    for (const std::string& p : serve::published_protos()) protos.push_back(p);
    versions.set("serve", std::move(protos));
    json::Value error_apis = json::Value::array();
    error_apis.push_back(std::string(errors::kErrorApi));
    versions.set("error", std::move(error_apis));
    doc.set("published_versions", std::move(versions));
  }
  std::cout << doc.dump(2) << '\n';
  return 0;
}

std::sig_atomic_t volatile g_signal = 0;
void on_signal(int) { g_signal = 1; }

int cmd_serve(Args& args) {
  args.no_positionals();
  serve::Service::Options sopts;
  sopts.cache_dir = args.str("cache-dir", ".stgsim-cache");
  sopts.jobs = static_cast<int>(args.num("jobs", 2));
  if (sopts.jobs < 0) throw std::runtime_error("--jobs must be >= 0");
  sopts.max_active_requests =
      static_cast<int>(args.num("max-requests", 16));
  sopts.max_inflight_per_client =
      static_cast<int>(args.num("max-per-client", 4));
  sopts.max_run_host_seconds = args.real("max-run-sec", 0.0);
  sopts.with_metrics = !args.flag("no-metrics");

  serve::HttpServer::Options hopts;
  hopts.host = args.str("host", "127.0.0.1");
  hopts.port = static_cast<int>(args.num("port", 0));
  const std::string port_file = args.str("port-file", "");
  args.check_all_consumed();

  serve::Service service(sopts);
  serve::HttpServer server;
  const int port = server.start(hopts, serve::make_http_handler(service));
  if (!port_file.empty()) {
    std::ofstream pf(port_file, std::ios::trunc);
    if (!pf) throw std::runtime_error("cannot write " + port_file);
    pf << port << '\n';
  }
  std::cerr << "stgsim serve listening on " << hopts.host << ":" << port
            << " (cache " << sopts.cache_dir << ", jobs " << sopts.jobs
            << ")\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!service.shutdown_requested() && g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful drain: reject new work, finish what is in flight, then stop
  // the listener (stop() joins every connection handler).
  std::cerr << "stgsim serve draining...\n";
  service.begin_drain();
  service.wait_idle();
  server.stop();
  std::cerr << "stgsim serve stopped\n";
  return 0;
}

/// Daemon address from --port / --port-file (+ --host).
std::pair<std::string, int> daemon_address(Args& args) {
  const std::string host = args.str("host", "127.0.0.1");
  int port = static_cast<int>(args.num("port", 0));
  if (port == 0) {
    const std::string pf = args.str("port-file", "");
    if (pf.empty()) {
      throw std::runtime_error(
          "need --port or --port-file to reach the daemon");
    }
    port = std::atoi(read_file(pf).c_str());
    if (port <= 0) {
      throw std::runtime_error("'" + pf + "' does not contain a port");
    }
  }
  return {host, port};
}

/// Exit code for a terminal frame: errors map through their category,
/// run results through their outcome status, everything else is 0.
int frame_exit_code(const json::Value& f) {
  if (const json::Value* event = f.find("event")) {
    if (event->as_string() == "error") {
      if (const json::Value* inner = f.find("error")) {
        if (const json::Value* cat = inner->find("category")) {
          return errors::category_exit_code(cat->as_string());
        }
      }
      return errors::category_exit_code(errors::kCategoryInternalError);
    }
  }
  if (const json::Value* outcome = f.find("outcome")) {
    const std::string status = outcome->at("status").as_string();
    if (status != "ok") return errors::category_exit_code(status);
  }
  return 0;
}

/// Writes a campaign result frame's reports like `stgsim campaign` does —
/// byte-identical report.json / report.csv (canonical JSON makes the
/// re-dump exact).
void write_frame_reports(const json::Value& f, const std::string& out_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create output directory '" + out_dir +
                             "': " + ec.message());
  }
  auto write_file = [&](const char* name, const std::string& body) {
    const std::string path = (fs::path(out_dir) / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + path + "'");
    out << body;
  };
  write_file("report.json", f.at("report").dump(2) + "\n");
  write_file("report.csv", f.at("report_csv").as_string());
  std::cerr << "wrote " << out_dir << "/report.{json,csv}\n";
}

int cmd_submit(Args& args) {
  args.no_positionals();
  const auto [host, port] = daemon_address(args);

  serve::Request req;
  const std::string config = args.str("config", "");
  const std::string scenario = args.str("scenario", "");
  if (config.empty() == scenario.empty()) {
    throw std::runtime_error(
        "submit needs exactly one of --config (run) or --scenario "
        "(campaign)");
  }
  req.kind = config.empty() ? serve::RequestKind::kCampaign
                            : serve::RequestKind::kRun;
  req.payload =
      json::Value::parse(read_file(config.empty() ? scenario : config));
  req.client = args.str("client", "anon");
  req.stream = args.flag("stream");
  req.retry_failed = args.flag("retry-failed");
  const std::string out_dir = args.str("out-dir", "");
  args.check_all_consumed();

  const std::string body = serve::request_to_json(req).dump();
  json::Value terminal;
  if (req.stream) {
    serve::http_request_stream(
        host, port, "POST", "/v1/request", body,
        [&](const std::string& line) {
          if (line.empty()) return;
          const json::Value f = json::Value::parse(line);
          const std::string event = f.at("event").as_string();
          if (event == "result" || event == "error") {
            terminal = f;
            return;
          }
          // Progress frames narrate on stderr; stdout stays machine-parse
          // friendly (the terminal document only).
          if (event == "run_done") {
            std::cerr << "[" << f.at("done").as_int() << "/"
                      << f.at("total").as_int() << "] " <<
                f.at("id").as_string() << ": " << f.at("status").as_string()
                      << (f.at("cache_hit").as_bool() ? " (cached)" : "")
                      << '\n';
          } else {
            std::cerr << event << "...\n";
          }
        });
    if (terminal.is_null()) {
      throw std::runtime_error("daemon closed the stream without a result");
    }
  } else {
    const serve::HttpResponse resp =
        serve::http_request(host, port, "POST", "/v1/request", body);
    const json::Value doc = json::Value::parse(resp.body);
    if (doc.find("error") != nullptr && doc.find("event") == nullptr) {
      // Non-streaming rejections arrive as the bare envelope — print it
      // verbatim (byte-identical to --json-errors output) and exit by
      // category.
      std::cout << resp.body;
      return errors::category_exit_code(
          doc.at("error").at("category").as_string());
    }
    terminal = doc;
  }

  const int code = frame_exit_code(terminal);
  if (!out_dir.empty() && terminal.find("report") != nullptr) {
    write_frame_reports(terminal, out_dir);
  }
  if (terminal.find("event") != nullptr &&
      terminal.at("event").as_string() == "error") {
    json::Value envelope = json::Value::object();
    envelope.set("error", terminal.at("error"));
    std::cout << envelope.dump(2) << '\n';
    return code;
  }
  std::cout << terminal.dump(2) << '\n';
  return code;
}

int cmd_status(Args& args) {
  args.no_positionals();
  const auto [host, port] = daemon_address(args);
  const bool metrics = args.flag("metrics");
  const std::string metrics_out = args.str("metrics-out", "");
  args.check_all_consumed();

  if (metrics || !metrics_out.empty()) {
    const serve::HttpResponse resp =
        serve::http_request(host, port, "GET", "/v1/metrics", "");
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out, std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write " + metrics_out);
      os << resp.body;
      std::cerr << "wrote " << metrics_out << '\n';
    }
    if (metrics) std::cout << resp.body;
    return resp.status == 200 ? 0 : 5;
  }
  const serve::HttpResponse resp =
      serve::http_request(host, port, "GET", "/v1/status", "");
  std::cout << resp.body;
  return resp.status == 200 ? 0 : 5;
}

int cmd_shutdown(Args& args) {
  args.no_positionals();
  const auto [host, port] = daemon_address(args);
  args.check_all_consumed();
  const serve::HttpResponse resp =
      serve::http_request(host, port, "POST", "/v1/shutdown", "");
  std::cout << resp.body;
  return resp.status == 200 ? 0 : 5;
}

int main(int argc, char** argv) {
  // The global --json-errors flag may appear anywhere; strip it before
  // subcommand parsing so every command shares it.
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-errors") {
      g_json_errors = true;
      continue;
    }
    kept.push_back(argv[i]);
  }
  argc = static_cast<int>(kept.size());
  argv = kept.data();

  try {
    if (argc < 2) {
      throw std::runtime_error(
          "usage: stgsim <list-apps|compile|run|calibrate|campaign|check|"
          "serve|submit|status|shutdown|schema> [--flags]\n"
          "see the header of src/cli/stgsim_cli.cpp for examples");
    }
    const std::string cmd = argv[1];
    if (cmd.rfind("--", 0) == 0) {
      // The PR 5 deprecation cycle for "stgsim --app ..." (implicit `run`)
      // is over: fail structurally, naming the replacement.
      json::Value detail = json::Value::object();
      detail.set("replacement", "stgsim run " + cmd + " ...");
      throw errors::StructuredError(
          "usage.legacy_invocation", errors::kCategoryUsage,
          "invoking stgsim without a subcommand was removed; use "
          "'stgsim run ...'",
          std::move(detail));
    }
    Args args(argc, argv, 2);
    if (cmd == "list-apps") return cmd_list_apps(args);
    if (cmd == "compile") return cmd_compile(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "calibrate") return cmd_calibrate(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "status") return cmd_status(args);
    if (cmd == "shutdown") return cmd_shutdown(args);
    if (cmd == "schema") return cmd_schema(args);
    throw errors::StructuredError("usage.unknown_command",
                                  errors::kCategoryUsage,
                                  "unknown command '" + cmd + "'");
  } catch (const std::exception& e) {
    // One exit path for every failure: the envelope (stdout, machine-read)
    // under --json-errors, classic "error:" prose (stderr) otherwise. The
    // exit code always follows the error's category (plain exceptions are
    // usage errors -> 1, the historical behavior).
    const json::Value envelope = errors::error_envelope_for(
        e, "usage.invalid_invocation", errors::kCategoryUsage);
    if (g_json_errors) {
      std::cout << envelope.dump(2) << '\n';
    } else {
      std::cerr << "error: " << e.what() << '\n';
    }
    return errors::category_exit_code(
        envelope.at("error").at("category").as_string());
  }
}

}  // namespace
}  // namespace stgsim::cli

int main(int argc, char** argv) { return stgsim::cli::main(argc, argv); }
