// stgsim — command-line front end.
//
//   stgsim list-apps
//   stgsim compile --app <name> [app flags] [--procs P]
//                  [--dump-stg f.dot] [--dump-dtg f.dot]
//                  [--print-simplified] [--print-timer]
//   stgsim run --app <name> --procs P --mode measured|de|am [app flags]
//              [--machine sp|origin2000] [--calib N]
//              [--load-params f] [--save-params f]
//              [--workers N] [--partition block|interleave|comm]
//              [--abstract-comm] [--memory-cap-mb M]
//              [--seed S] [--fault SPEC]
//              [--max-vtime-sec T] [--max-messages N] [--max-host-sec T]
//              [--digest] [--trace-out f.json] [--metrics-out f.json]
//              [--comm-matrix-out f.json]
//
// Flags take either "--key value" or "--key=value" form.
//
// --digest prints a 64-bit run digest (per-rank final virtual clocks,
// message counts, delivered bytes) — two runs predicting bit-identical
// results print the same digest, regardless of scheduler or host timing.
//
// The observability flags never change simulated results (digests are
// bit-identical with and without them):
//   --trace-out f        virtual-time timeline per rank as Chrome
//                        trace-event JSON (load in Perfetto/about:tracing)
//   --metrics-out f      engine/protocol counters + message-size histogram
//                        as JSON; also prints a metrics summary table
//   --comm-matrix-out f  rank×rank message/byte matrix as JSON
//
// --fault injects a deterministic fault plan (see src/fault/fault.hpp for
// the clause syntax); the --max-* flags bound pathological runs, which then
// exit with a structured outcome instead of hanging.
//
// Exit codes: 0 ok, 2 out_of_memory, 3 deadlock, 4 budget_exceeded,
// 5 internal_error (1 = usage/configuration errors).
//
// Examples:
//   stgsim run --app tomcatv --n 1024 --procs 64 --mode am
//   stgsim run --app sweep3d --kt 1000 --procs 10000 --mode am --calib 16
//   stgsim run --app sweep3d --procs 4 --mode de \
//       --fault "link:src=0,dst=1,latency=4,bandwidth=0.25;straggler:rank=2,factor=2"
//   stgsim compile --app nas_sp --class A --procs 16 --dump-stg sp.dot
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/nas_sp.hpp"
#include "apps/sample.hpp"
#include "apps/sweep3d.hpp"
#include "apps/tomcatv.hpp"
#include "core/calibration.hpp"
#include "core/compiler.hpp"
#include "core/dtg.hpp"
#include "fault/fault.hpp"
#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "obs/obs.hpp"
#include "support/table.hpp"

namespace stgsim::cli {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::runtime_error("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (const auto eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
      seen_[key] = false;
    }
  }

  bool has(const std::string& key) const { return values_.contains(key); }

  std::string str(const std::string& key, const std::string& dflt) {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    seen_[key] = true;
    return it->second;
  }

  long long num(const std::string& key, long long dflt) {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    seen_[key] = true;
    return std::stoll(it->second);
  }

  double real(const std::string& key, double dflt) {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    seen_[key] = true;
    return std::stod(it->second);
  }

  bool flag(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) return false;
    seen_[key] = true;
    return true;
  }

  void check_all_consumed() const {
    for (const auto& [key, used] : seen_) {
      if (!used) throw std::runtime_error("unknown flag --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
};

const std::vector<std::string> kApps = {"tomcatv", "sweep3d", "nas_sp",
                                        "sample"};

ir::Program build_app(const std::string& app, int procs, Args& args) {
  if (app == "tomcatv") {
    apps::TomcatvConfig cfg;
    cfg.n = args.num("n", 1024);
    cfg.iterations = args.num("iters", 4);
    return apps::make_tomcatv(cfg);
  }
  if (app == "sweep3d") {
    apps::Sweep3DConfig cfg;
    cfg.it = args.num("it", 6);
    cfg.jt = args.num("jt", 6);
    cfg.kt = args.num("kt", 255);
    cfg.kb = args.num("kb", 51);
    cfg.mm = args.num("mm", 6);
    cfg.mmi = args.num("mmi", 3);
    cfg.timesteps = args.num("steps", 1);
    apps::sweep3d_grid_for(procs, &cfg.npe_i, &cfg.npe_j);
    return apps::make_sweep3d(cfg);
  }
  if (app == "nas_sp") {
    int q = 1;
    while ((q + 1) * (q + 1) <= procs) ++q;
    if (q * q != procs) {
      throw std::runtime_error("nas_sp needs a square process count");
    }
    const std::string cls = args.str("class", "A");
    return apps::make_nas_sp(
        apps::sp_class(cls.at(0), q, args.num("steps", 2)));
  }
  if (app == "sample") {
    apps::SampleConfig cfg;
    const std::string pattern = args.str("pattern", "nn");
    cfg.pattern = (pattern == "wavefront") ? apps::SamplePattern::kWavefront
                                           : apps::SamplePattern::kNearestNeighbor;
    cfg.iterations = args.num("iters", 40);
    cfg.msg_doubles = args.num("msg-doubles", 1024);
    cfg.work_iters = args.num("work", 100000);
    return apps::make_sample(cfg);
  }
  throw std::runtime_error("unknown app '" + app +
                           "' (try: stgsim list-apps)");
}

harness::MachineSpec machine_for(Args& args) {
  const std::string m = args.str("machine", "sp");
  if (m == "sp") return harness::ibm_sp_machine();
  if (m == "origin2000") return harness::origin2000_machine();
  throw std::runtime_error("unknown machine '" + m + "'");
}

int cmd_list_apps() {
  for (const auto& a : kApps) std::cout << a << '\n';
  return 0;
}

int cmd_compile(Args& args) {
  const std::string app = args.str("app", "");
  const int procs = static_cast<int>(args.num("procs", 16));
  ir::Program prog = build_app(app, procs, args);
  core::CompileResult compiled = core::compile(prog);

  std::cout << compiled.report(prog);

  const std::string dot_path = args.str("dump-stg", "");
  if (!dot_path.empty()) {
    std::ofstream os(dot_path);
    os << compiled.stg.to_dot();
    std::cout << "wrote " << dot_path << '\n';
  }
  if (args.flag("print-simplified")) {
    std::cout << "\n--- simplified program ---\n"
              << compiled.simplified.program.to_string();
  }
  if (args.flag("print-timer")) {
    std::cout << "\n--- timer-instrumented program ---\n"
              << compiled.timer_program.to_string();
  }

  const std::string dtg_path = args.str("dump-dtg", "");
  if (!dtg_path.empty()) {
    // Unfold the dynamic task graph from one direct-execution run.
    core::DtgRecorder recorder;
    core::DtgObserver observer(&recorder);
    smpi::World::Options wopts;
    wopts.net = harness::ibm_sp_machine().net;
    wopts.compute = harness::ibm_sp_machine().compute;
    smpi::World world(wopts, procs);
    simk::EngineConfig ec;
    ec.num_processes = procs;
    simk::Engine engine(ec);
    ir::ExecOptions xopts;
    xopts.observer = &observer;
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(world, p);
      ir::execute(prog, comm, xopts);
    });
    engine.run();
    core::Dtg dtg = recorder.build();
    const std::string consistency = dtg.check_consistency();
    std::cout << dtg.summary() << "consistency: "
              << (consistency.empty() ? "OK" : consistency) << '\n';
    std::ofstream os(dtg_path);
    os << dtg.to_dot();
    std::cout << "wrote " << dtg_path << '\n';
  }
  args.check_all_consumed();
  return 0;
}

int cmd_run(Args& args) {
  const std::string app = args.str("app", "");
  const int procs = static_cast<int>(args.num("procs", 16));
  const std::string mode_str = args.str("mode", "de");
  const auto machine = machine_for(args);

  harness::RunConfig cfg;
  cfg.nprocs = procs;
  cfg.machine = machine;
  // --workers is the preferred spelling; --threads is kept as an alias.
  cfg.threads = static_cast<int>(
      args.num("workers", args.num("threads", 0)));
  const std::string part_str = args.str("partition", "block");
  STGSIM_CHECK(simk::parse_partition_mode(part_str, &cfg.partition))
      << "unknown --partition mode '" << part_str
      << "' (expected block|interleave|comm)";
  cfg.abstract_comm = args.flag("abstract-comm");
  cfg.memory_cap_bytes =
      static_cast<std::size_t>(args.num("memory-cap-mb", 0)) << 20;
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 20260704));
  cfg.fiber_stack_bytes =
      static_cast<std::size_t>(args.num("stack-kb", 256)) * 1024;
  const std::string fault_spec = args.str("fault", "");
  if (!fault_spec.empty()) cfg.faults = fault::parse_fault_plan(fault_spec);
  cfg.max_virtual_time = vtime_from_sec(args.real("max-vtime-sec", 0.0));
  cfg.max_messages = static_cast<std::uint64_t>(args.num("max-messages", 0));
  cfg.max_host_seconds = args.real("max-host-sec", 0.0);
  const bool want_digest = args.flag("digest");

  const std::string trace_out = args.str("trace-out", "");
  const std::string metrics_out = args.str("metrics-out", "");
  const std::string matrix_out = args.str("comm-matrix-out", "");
  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_out.empty() || !metrics_out.empty() || !matrix_out.empty()) {
    obs::Options oopts;
    oopts.trace = !trace_out.empty();
    oopts.comm_matrix = !matrix_out.empty();
    recorder = std::make_unique<obs::Recorder>(oopts, procs);
    cfg.obs = recorder.get();
  }

  harness::RunOutcome out;
  if (mode_str == "measured" || mode_str == "de") {
    cfg.mode = mode_str == "de" ? harness::Mode::kDirectExec
                                : harness::Mode::kMeasured;
    ir::Program prog = build_app(app, procs, args);
    args.check_all_consumed();
    out = harness::run_program(prog, cfg);
  } else if (mode_str == "am") {
    cfg.mode = harness::Mode::kAnalytical;
    ir::Program prog = build_app(app, procs, args);
    core::CompileResult compiled = core::compile(prog);

    const std::string load = args.str("load-params", "");
    if (!load.empty()) {
      cfg.params = core::load_params(load);
      for (const auto& p : compiled.simplified.params) {
        cfg.params.emplace(p, 0.0);
      }
    } else {
      const int calib = static_cast<int>(args.num("calib", 16));
      std::cerr << "calibrating w_i at " << calib << " processes...\n";
      // The calibration program must be built for the calibration size
      // (apps whose shape depends on the grid).
      Args calib_args = args;
      ir::Program calib_prog = build_app(app, calib, calib_args);
      core::CompileResult calib_compiled = core::compile(calib_prog);
      cfg.params =
          harness::calibrate(calib_compiled.timer_program, calib, machine,
                             compiled.simplified.params, cfg.seed);
    }
    const std::string save = args.str("save-params", "");
    if (!save.empty()) {
      core::save_params(save, cfg.params);
      std::cerr << "wrote " << save << '\n';
    }
    args.check_all_consumed();
    out = harness::run_program(compiled.simplified.program, cfg);
  } else {
    throw std::runtime_error("unknown mode '" + mode_str +
                             "' (measured|de|am)");
  }

  if (!out.ok()) {
    std::cout << "RUN FAILED [" << harness::run_status_name(out.status)
              << "]: " << out.diagnostic << '\n';
    switch (out.status) {
      case harness::RunStatus::kOutOfMemory: return 2;
      case harness::RunStatus::kDeadlock: return 3;
      case harness::RunStatus::kBudgetExceeded: return 4;
      default: return 5;
    }
  }
  TablePrinter t({"quantity", "value"});
  t.add_row({"app", app});
  t.add_row({"mode", mode_str});
  t.add_row({"outcome", harness::run_status_name(out.status)});
  t.add_row({"target processes", TablePrinter::fmt_int(procs)});
  t.add_row({"predicted time", vtime_to_string(out.predicted_time)});
  t.add_row({"target data (peak)", TablePrinter::fmt_bytes(out.peak_target_bytes)});
  t.add_row({"messages simulated",
             TablePrinter::fmt_int(static_cast<long long>(out.messages))});
  t.add_row({"simulator wall-clock",
             TablePrinter::fmt(out.sim_host_seconds, 3) + " s"});
  std::cout << t.to_ascii();

  if (recorder != nullptr) {
    auto open_out = [](const std::string& path) {
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot write " + path);
      return os;
    };
    if (!trace_out.empty()) {
      auto os = open_out(trace_out);
      recorder->write_chrome_trace(os);
      std::cerr << "wrote " << trace_out << '\n';
    }
    if (!metrics_out.empty()) {
      auto os = open_out(metrics_out);
      obs::Recorder::write_metrics_json(os, out.metrics);
      std::cerr << "wrote " << metrics_out << '\n';
    }
    if (!matrix_out.empty()) {
      auto os = open_out(matrix_out);
      obs::Recorder::write_comm_matrix_json(os, out.metrics);
      std::cerr << "wrote " << matrix_out << '\n';
    }
    TablePrinter mt({"metric", "value"});
    for (const auto& [name, value] : out.metrics.scalars) {
      const auto ll = static_cast<long long>(value);
      mt.add_row({name, static_cast<double>(ll) == value
                            ? TablePrinter::fmt_int(ll)
                            : TablePrinter::fmt(value, 6)});
    }
    std::cout << mt.to_ascii();
  }

  if (want_digest) std::cout << "digest: " << harness::run_digest_hex(out) << '\n';
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: stgsim <list-apps|compile|run> [--flags]\n"
                 "see the header of src/cli/stgsim_cli.cpp for examples\n";
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv);
    if (cmd == "list-apps") return cmd_list_apps();
    if (cmd == "compile") return cmd_compile(args);
    if (cmd == "run") return cmd_run(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace
}  // namespace stgsim::cli

int main(int argc, char** argv) { return stgsim::cli::main(argc, argv); }
