#include "core/calibration.hpp"

#include <fstream>

#include "support/check.hpp"

namespace stgsim::core {

void save_params(const std::string& path,
                 const std::map<std::string, double>& params) {
  std::ofstream os(path);
  STGSIM_CHECK(os.good()) << "cannot open " << path << " for writing";
  os.precision(17);
  for (const auto& [name, value] : params) {
    os << name << ' ' << value << '\n';
  }
}

std::map<std::string, double> load_params(const std::string& path) {
  std::ifstream is(path);
  STGSIM_CHECK(is.good()) << "cannot open parameter file " << path;
  std::map<std::string, double> params;
  std::string name;
  double value = 0.0;
  while (is >> name >> value) {
    params[name] = value;
  }
  return params;
}

}  // namespace stgsim::core
