// Persistence of the w_i parameter tables (paper Figure 2: the output of
// the timer-instrumented run "can be directly provided as input to the
// delay version of the code").
#pragma once

#include <map>
#include <string>

namespace stgsim::core {

/// Writes "name value" lines; overwrites the file.
void save_params(const std::string& path,
                 const std::map<std::string, double>& params);

/// Reads a table written by save_params. Throws on malformed input.
std::map<std::string, double> load_params(const std::string& path);

}  // namespace stgsim::core
