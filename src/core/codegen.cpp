#include "core/codegen.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "symexpr/compiled.hpp"

namespace stgsim::core {

namespace {

using ir::Stmt;
using ir::StmtKind;
using ir::StmtP;
using sym::Expr;

bool is_zero(const Expr& e) {
  auto c = e.simplified().constant_value();
  return c.has_value() && c->as_real() == 0.0;
}

bool is_comm_with_buffer(StmtKind k) {
  switch (k) {
    case StmtKind::kSend:
    case StmtKind::kRecv:
    case StmtKind::kIsend:
    case StmtKind::kIrecv:
    case StmtKind::kBcast:
      return true;
    default:
      return false;
  }
}

struct Cost {
  Expr seconds = Expr::integer(0);
  std::vector<std::string> tasks;
};

class Simplifier {
 public:
  Simplifier(const ir::Program& src, const SliceResult& slice,
             const CodegenOptions& options)
      : src_(src), slice_(slice), opt_(options),
        out_(src.name() + ".simplified") {
    ir::for_each_stmt(src_, [&](const Stmt& s) {
      if (s.kind == StmtKind::kDeclArray) {
        array_elem_bytes_[s.name] = s.elem_bytes;
      }
    });
  }

  SimplifyResult run() {
    for (const auto& p : src_.procedures()) {
      ir::Procedure& op = out_.add_procedure(p.name);
      simplify_block(p.body, op.body);
    }
    std::vector<StmtP> body;
    simplify_block(src_.main(), body);

    insert_dummy_decl(&body);

    // Prologue: one read_and_broadcast per task-time parameter (Fig. 1c).
    std::vector<StmtP> prologue;
    for (const auto& p : params_) {
      StmtP s = out_.make_stmt(StmtKind::kReadParam);
      s->name = p;
      s->aux_name = p;
      prologue.push_back(std::move(s));
    }
    auto& main = out_.main();
    for (auto& s : prologue) main.push_back(std::move(s));
    for (auto& s : body) main.push_back(std::move(s));

    out_.validate();

    return SimplifyResult{std::move(out_), std::move(condensed_),
                          std::move(params_), dummy_comms_};
  }

 private:
  void simplify_block(const std::vector<StmtP>& in, std::vector<StmtP>& out) {
    Cost pending;
    auto flush = [&] {
      if (is_zero(pending.seconds)) {
        pending = Cost{};
        return;
      }
      StmtP d = out_.make_stmt(StmtKind::kDelay);
      d->e1 = pending.seconds.simplified();
      d->e1_compiled = std::make_shared<const sym::CompiledExpr>(
          sym::CompiledExpr::compile(d->e1));
      CondensedTask ct;
      ct.delay_stmt_id = d->id;
      ct.seconds = d->e1;
      ct.tasks = pending.tasks;
      condensed_.push_back(std::move(ct));
      out.push_back(std::move(d));
      pending = Cost{};
    };

    for (const auto& s : in) {
      if (slice_.is_retained(*s)) {
        flush();
        out.push_back(transform(*s));
      } else {
        Cost c = cost_of(*s);
        if (!is_zero(c.seconds)) {
          pending.seconds = pending.seconds + c.seconds;
          pending.tasks.insert(pending.tasks.end(), c.tasks.begin(),
                               c.tasks.end());
        }
      }
    }
    flush();
  }

  StmtP transform(const Stmt& s) {
    StmtP t = out_.make_stmt(s.kind);
    t->name = s.name;
    t->aux_name = s.aux_name;
    t->scalar_is_real = s.scalar_is_real;
    t->has_init = s.has_init;
    t->elem_bytes = s.elem_bytes;
    t->tag = s.tag;
    t->e1 = s.e1;
    t->e2 = s.e2;
    t->e3 = s.e3;
    t->extents = s.extents;
    t->kernel = s.kernel;

    if (is_comm_with_buffer(s.kind) && !slice_.array_is_live(s.name)) {
      // Redirect to the shared dummy buffer: same wire size (in bytes),
      // offset zero — message contents are not part of the prediction.
      auto it = array_elem_bytes_.find(s.name);
      STGSIM_CHECK(it != array_elem_bytes_.end())
          << "communication on undeclared array " << s.name;
      const Expr bytes =
          (s.e2 * Expr::integer(static_cast<std::int64_t>(it->second)))
              .simplified();
      t->name = opt_.dummy_buffer_name;
      t->e2 = bytes;
      t->e3 = Expr::integer(0);
      t->payload_free = true;
      dummy_sizes_.push_back(bytes);
      ++dummy_comms_;
    }

    simplify_block(s.body, t->body);
    simplify_block(s.else_body, t->else_body);
    return t;
  }

  Cost cost_of(const Stmt& s) {
    Cost c;
    switch (s.kind) {
      case StmtKind::kCompute: {
        const std::string param = "w_" + s.kernel.task;
        params_.insert(param);
        c.seconds = s.kernel.iters * Expr::var(param);
        c.tasks.push_back(s.kernel.task);
        break;
      }
      case StmtKind::kFor: {
        Cost body = block_cost(s.body);
        if (is_zero(body.seconds)) break;
        c.tasks = std::move(body.tasks);
        if (opt_.use_closed_form_sums) {
          if (auto closed = sym::closed_form_sum(s.name, s.e1, s.e2,
                                                 body.seconds.simplified())) {
            c.seconds = *closed;
            break;
          }
        }
        // Executable symbolic sum, evaluated at run time — the paper's
        // fallback when forward substitution is infeasible (NAS SP).
        c.seconds = sym::sum(s.name, s.e1, s.e2, body.seconds.simplified());
        break;
      }
      case StmtKind::kIf: {
        Cost then_c = block_cost(s.body);
        Cost else_c = block_cost(s.else_body);
        if (is_zero(then_c.seconds) && is_zero(else_c.seconds)) break;
        const double p = branch_prob(s.id);
        c.seconds = Expr::real(p) * then_c.seconds +
                    Expr::real(1.0 - p) * else_c.seconds;
        c.tasks = std::move(then_c.tasks);
        c.tasks.insert(c.tasks.end(), else_c.tasks.begin(),
                       else_c.tasks.end());
        break;
      }
      case StmtKind::kCall: {
        const ir::Procedure* p = src_.find_procedure(s.name);
        STGSIM_CHECK(p != nullptr);
        c = block_cost(p->body);
        break;
      }
      default:
        break;  // scalar statements cost nothing (paper ignores them too)
    }
    return c;
  }

  Cost block_cost(const std::vector<StmtP>& block) {
    Cost total;
    for (const auto& s : block) {
      STGSIM_CHECK(!slice_.is_retained(*s))
          << "retained statement inside an eliminated region (stmt id "
          << s->id << ")";
      Cost c = cost_of(*s);
      if (!is_zero(c.seconds)) {
        total.seconds = total.seconds + c.seconds;
        total.tasks.insert(total.tasks.end(), c.tasks.begin(), c.tasks.end());
      }
    }
    return total;
  }

  double branch_prob(int stmt_id) const {
    auto it = opt_.branch_probs.find(stmt_id);
    return it == opt_.branch_probs.end() ? opt_.default_branch_prob
                                         : it->second;
  }

  void insert_dummy_decl(std::vector<StmtP>* body) {
    if (dummy_sizes_.empty()) return;

    Expr size = dummy_sizes_.front();
    for (std::size_t i = 1; i < dummy_sizes_.size(); ++i) {
      size = sym::max(size, dummy_sizes_[i]);
    }
    size = size.simplified();

    // Earliest position where every variable of the size expression is
    // defined (§3.1: allocate once the required message sizes are known).
    std::set<std::string> needed = size.free_vars();
    std::set<std::string> defined;
    std::size_t insert_at = body->size() + 1;
    auto covered = [&] {
      return std::all_of(needed.begin(), needed.end(), [&](const auto& v) {
        return defined.contains(v);
      });
    };
    for (std::size_t i = 0; i <= body->size(); ++i) {
      if (covered()) {
        insert_at = i;
        break;
      }
      if (i == body->size()) break;
      const Stmt& s = *(*body)[i];
      for (const auto& d : ir::stmt_effects(s).defs) defined.insert(d);
      ir::for_each_stmt(s.body, [&](const Stmt& inner) {
        for (const auto& d : ir::stmt_effects(inner).defs) defined.insert(d);
      });
      ir::for_each_stmt(s.else_body, [&](const Stmt& inner) {
        for (const auto& d : ir::stmt_effects(inner).defs) defined.insert(d);
      });
    }
    // Static allocation is only legal if the insertion point exists and
    // precedes the first dummy-buffer communication; otherwise fall back
    // to dynamic per-use allocation ("statically or dynamically,
    // potentially multiple times", §3.1).
    bool static_ok = insert_at <= body->size();
    for (std::size_t i = 0; static_ok && i < insert_at; ++i) {
      bool uses_dummy = false;
      auto check = [&](const Stmt& inner) {
        uses_dummy = uses_dummy || inner.name == opt_.dummy_buffer_name;
      };
      check(*(*body)[i]);
      ir::for_each_stmt((*body)[i]->body, check);
      ir::for_each_stmt((*body)[i]->else_body, check);
      static_ok = !uses_dummy;
    }

    if (static_ok) {
      StmtP d = out_.make_stmt(StmtKind::kDeclArray);
      d->name = opt_.dummy_buffer_name;
      d->extents = {size};
      d->elem_bytes = 1;
      body->insert(body->begin() + static_cast<std::ptrdiff_t>(insert_at),
                   std::move(d));
    } else {
      insert_dynamic_dummy_decls(body);
      for (auto& p : out_.procedures()) insert_dynamic_dummy_decls(&p.body);
    }
  }

  /// Re-declares the dummy buffer immediately before every communication
  /// that uses it, sized for that message (each declaration releases the
  /// previous buffer, so at most one is live).
  void insert_dynamic_dummy_decls(std::vector<StmtP>* block) {
    std::vector<StmtP> out;
    out.reserve(block->size());
    for (auto& s : *block) {
      insert_dynamic_dummy_decls(&s->body);
      insert_dynamic_dummy_decls(&s->else_body);
      if (is_comm_with_buffer(s->kind) &&
          s->name == opt_.dummy_buffer_name) {
        StmtP d = out_.make_stmt(StmtKind::kDeclArray);
        d->name = opt_.dummy_buffer_name;
        d->extents = {s->e2};  // already a byte count on the dummy
        d->elem_bytes = 1;
        out.push_back(std::move(d));
      }
      out.push_back(std::move(s));
    }
    *block = std::move(out);
  }

  const ir::Program& src_;
  const SliceResult& slice_;
  CodegenOptions opt_;
  ir::Program out_;

  std::map<std::string, std::size_t> array_elem_bytes_;
  std::set<std::string> params_;
  std::vector<CondensedTask> condensed_;
  std::vector<Expr> dummy_sizes_;
  std::size_t dummy_comms_ = 0;
};

void instrument_block(ir::Program& prog, std::vector<StmtP>& block) {
  std::vector<StmtP> out;
  out.reserve(block.size());
  for (auto& s : block) {
    if (s->kind == StmtKind::kCompute) {
      StmtP start = prog.make_stmt(StmtKind::kTimerStart);
      start->name = s->kernel.task;
      StmtP stop = prog.make_stmt(StmtKind::kTimerStop);
      stop->name = s->kernel.task;
      stop->e1 = s->kernel.iters;
      out.push_back(std::move(start));
      out.push_back(std::move(s));
      out.push_back(std::move(stop));
    } else {
      instrument_block(prog, s->body);
      instrument_block(prog, s->else_body);
      out.push_back(std::move(s));
    }
  }
  block = std::move(out);
}

}  // namespace

SimplifyResult generate_simplified(const ir::Program& prog,
                                   const SliceResult& slice,
                                   const CodegenOptions& options) {
  return Simplifier(prog, slice, options).run();
}

ir::Program generate_timer_program(const ir::Program& prog) {
  ir::Program out = prog.clone();
  instrument_block(out, out.main());
  for (auto& p : out.procedures()) instrument_block(out, p.body);
  return out;
}

}  // namespace stgsim::core
