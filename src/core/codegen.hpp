// Simplified-program generation (paper §3.1) and timer instrumentation
// (paper §3.3 / Figure 2).
//
// generate_simplified() rewrites a target program using a computed slice:
//   * retained statements (communication, the control flow that reaches
//     it, and the sliced-in scalar computation) are kept verbatim;
//   * maximal runs of eliminated statements are collapsed into a single
//     call to the MPI-Sim delay() extension whose argument is the region's
//     symbolic scaling expression times the per-iteration time parameters
//     w_<task> (closed-form sums over eliminated loops where the trip
//     counts are affine; executable symbolic sums otherwise — the NAS SP
//     case where loop bounds live in arrays the compiler cannot forward);
//   * eliminated conditionals are folded statistically with a (possibly
//     profiled) branch probability;
//   * communication references to eliminated arrays are redirected to a
//     single shared dummy buffer sized to the maximum message (§3.1);
//   * a prologue of read_and_broadcast calls loads each w_<task>.
//
// generate_timer_program() instruments every computational task of the
// *original* program with timers, producing the measurement version whose
// output parameterizes the simplified one.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/slice.hpp"
#include "ir/program.hpp"

namespace stgsim::core {

struct CodegenOptions {
  /// Per-branch taken probability (keyed by kIf statement id) from a
  /// profiling run; branches missing here use default_branch_prob.
  std::map<int, double> branch_probs;
  double default_branch_prob = 0.5;

  /// Use closed-form sums for affine trip counts; when false, every
  /// eliminated loop keeps an executable symbolic sum (ablation).
  bool use_closed_form_sums = true;

  std::string dummy_buffer_name = "__dummy_buf";
};

/// One emitted delay() call and the tasks it condenses.
struct CondensedTask {
  int delay_stmt_id = -1;
  sym::Expr seconds;                 ///< the delay argument
  std::vector<std::string> tasks;    ///< kernel task names folded in
};

struct SimplifyResult {
  ir::Program program;
  std::vector<CondensedTask> condensed;
  std::set<std::string> params;  ///< w_<task> parameters the program reads
  std::size_t dummy_buffer_comms = 0;  ///< comm ops redirected to the dummy
};

SimplifyResult generate_simplified(const ir::Program& prog,
                                   const SliceResult& slice,
                                   const CodegenOptions& options = {});

/// Clone of `prog` with TimerStart/TimerStop around every compute task.
ir::Program generate_timer_program(const ir::Program& prog);

}  // namespace stgsim::core
