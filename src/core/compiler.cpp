#include "core/compiler.hpp"

#include <sstream>

namespace stgsim::core {

CompileResult compile(const ir::Program& prog, const CompileOptions& options) {
  prog.validate();
  Stg stg = synthesize_stg(prog, options.rank_var);
  SliceResult slice = compute_slice(prog, options.slice);
  SimplifyResult simplified = generate_simplified(prog, slice, options.codegen);
  ir::Program timer = generate_timer_program(prog);
  return CompileResult{std::move(stg), std::move(slice), std::move(simplified),
                       std::move(timer)};
}

std::string CompileResult::report(const ir::Program& original) const {
  std::size_t total = 0;
  ir::for_each_stmt(original, [&](const ir::Stmt&) { ++total; });

  std::size_t arrays = 0, live = 0;
  ir::for_each_stmt(original, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kDeclArray) {
      ++arrays;
      if (slice.array_is_live(s.name)) ++live;
    }
  });

  std::ostringstream os;
  os << "compile report for '" << original.name() << "'\n";
  os << "  " << stg.summary();
  os << "  slice: retained " << slice.retained.size() << "/" << total
     << " statements, " << slice.needed_vars.size() << " needed variables\n";
  os << "  arrays: " << live << "/" << arrays
     << " kept; eliminated arrays redirected to "
     << (simplified.dummy_buffer_comms > 0 ? "the dummy buffer" : "(none)")
     << " in " << simplified.dummy_buffer_comms << " communication ops\n";
  os << "  condensed tasks: " << simplified.condensed.size() << "\n";
  for (const auto& ct : simplified.condensed) {
    os << "    delay(" << ct.seconds.to_string() << ")\n";
  }
  os << "  parameters:";
  for (const auto& p : simplified.params) os << ' ' << p;
  os << '\n';
  return os.str();
}

}  // namespace stgsim::core
