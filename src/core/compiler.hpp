// The compiler driver: IR program -> {STG, slice, simplified program,
// timer-instrumented program} — the full §3 pipeline in one call.
#pragma once

#include <string>

#include "core/codegen.hpp"
#include "core/slice.hpp"
#include "core/stg.hpp"
#include "ir/program.hpp"

namespace stgsim::core {

struct CompileOptions {
  SliceOptions slice;
  CodegenOptions codegen;
  std::string rank_var = "myid";
};

struct CompileResult {
  Stg stg;
  SliceResult slice;
  SimplifyResult simplified;
  ir::Program timer_program;

  /// Human-readable compilation summary (what was retained, what was
  /// collapsed, which parameters the simplified program needs).
  std::string report(const ir::Program& original) const;
};

CompileResult compile(const ir::Program& prog,
                      const CompileOptions& options = {});

}  // namespace stgsim::core
