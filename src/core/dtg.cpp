#include "core/dtg.hpp"

#include <sstream>

#include "core/stg.hpp"
#include "support/check.hpp"

namespace stgsim::core {

namespace {

const char* kind_name(DtgNodeKind k) {
  switch (k) {
    case DtgNodeKind::kCompute: return "compute";
    case DtgNodeKind::kSend: return "send";
    case DtgNodeKind::kRecv: return "recv";
    case DtgNodeKind::kCollective: return "collective";
  }
  return "?";
}

}  // namespace

std::vector<const DtgNode*> Dtg::instances_of(int rank) const {
  std::vector<const DtgNode*> out;
  for (const auto& n : nodes) {
    if (n.rank == rank) out.push_back(&n);
  }
  return out;
}

std::size_t Dtg::count(DtgNodeKind kind) const {
  std::size_t c = 0;
  for (const auto& n : nodes) c += n.kind == kind;
  return c;
}

std::string Dtg::check_consistency() const {
  std::ostringstream os;

  // Per-rank instance sequences must be time-ordered.
  std::map<int, VTime> last_end;
  for (const auto& n : nodes) {
    if (n.end < n.start) {
      os << "instance " << n.id << " ends before it starts";
      return os.str();
    }
    auto it = last_end.find(n.rank);
    if (it != last_end.end() && n.start + 1 < it->second) {
      // +1ns slack: collectives may complete at identical timestamps.
      os << "rank " << n.rank << " instance " << n.id
         << " starts before its predecessor ended";
      return os.str();
    }
    last_end[n.rank] = n.end;
  }

  // Every message edge pairs a send with a recv of the same tag/bytes.
  std::map<int, const DtgNode*> by_id;
  for (const auto& n : nodes) by_id[n.id] = &n;
  std::size_t paired_sends = 0;
  for (const auto& e : msg_edges) {
    const DtgNode* s = by_id.at(e.send_node);
    const DtgNode* r = by_id.at(e.recv_node);
    if (s->kind != DtgNodeKind::kSend || r->kind != DtgNodeKind::kRecv) {
      os << "edge " << e.send_node << "->" << e.recv_node
         << " does not connect send to recv";
      return os.str();
    }
    if (s->tag != r->tag || s->bytes != r->bytes) {
      os << "edge " << e.send_node << "->" << e.recv_node
         << " mismatched tag/bytes (" << s->tag << "/" << s->bytes << " vs "
         << r->tag << "/" << r->bytes << ")";
      return os.str();
    }
    if (s->peer != r->rank || r->peer != s->rank) {
      os << "edge " << e.send_node << "->" << e.recv_node
         << " endpoint mismatch";
      return os.str();
    }
    // Nonblocking receives are recorded at post time, which may precede
    // the matching send; the causality check applies to blocking ops.
    if (!r->nonblocking && !s->nonblocking && r->end < s->start) {
      os << "edge " << e.send_node << "->" << e.recv_node
         << " completes before the send began";
      return os.str();
    }
    ++paired_sends;
  }
  if (paired_sends != count(DtgNodeKind::kSend)) {
    os << "unpaired sends: " << count(DtgNodeKind::kSend) - paired_sends;
    return os.str();
  }
  return "";
}

std::string Dtg::check_against_stg(
    const Stg& stg, const std::map<std::string, sym::Value>& globals,
    const std::string& rank_var) const {
  std::ostringstream os;
  for (const auto& n : nodes) {
    const StgNode* sn = stg.node_for_stmt(n.stmt_id);
    if (sn == nullptr) {
      os << "dynamic instance " << n.id << " (" << kind_name(n.kind)
         << ", stmt " << n.stmt_id << ") has no static node";
      return os.str();
    }
    const bool kinds_match =
        (n.kind == DtgNodeKind::kCompute) == (sn->kind == StgNodeKind::kCompute);
    if (!kinds_match) {
      os << "dynamic instance " << n.id << " kind disagrees with static node";
      return os.str();
    }
    // Guard check: the static process set must admit the executing rank.
    sym::MapEnv env(globals);
    env.set(rank_var, sym::Value(std::int64_t{n.rank}));
    try {
      if (!sn->guard.eval(env).as_bool()) {
        os << "rank " << n.rank << " executed stmt " << n.stmt_id
           << " but the static guard " << sn->guard.to_string()
           << " excludes it";
        return os.str();
      }
    } catch (const sym::EvalError&) {
      // Guard references run-time scalars the caller did not provide
      // (e.g. per-octant direction variables): not checkable statically.
    }
  }
  return "";
}

std::string Dtg::to_dot() const {
  std::ostringstream os;
  os << "digraph dtg {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  // One horizontal chain per rank.
  std::map<int, std::vector<const DtgNode*>> per_rank;
  for (const auto& n : nodes) per_rank[n.rank].push_back(&n);
  for (const auto& [rank, seq] : per_rank) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const DtgNode& n = *seq[i];
      os << "  n" << n.id << " [label=\"r" << n.rank << " "
         << kind_name(n.kind);
      if (!n.task.empty()) os << " " << n.task;
      if (n.kind == DtgNodeKind::kSend || n.kind == DtgNodeKind::kRecv) {
        os << " tag " << n.tag;
      }
      os << "\\n@" << vtime_to_string(n.start) << "\"];\n";
      if (i > 0) {
        os << "  n" << seq[i - 1]->id << " -> n" << n.id
           << " [color=gray];\n";
      }
    }
  }
  for (const auto& e : msg_edges) {
    os << "  n" << e.send_node << " -> n" << e.recv_node
       << " [style=dashed, color=red];\n";
  }
  os << "}\n";
  return os.str();
}

std::string Dtg::summary() const {
  std::ostringstream os;
  os << "DTG: " << nodes.size() << " task instances ("
     << count(DtgNodeKind::kCompute) << " compute, "
     << count(DtgNodeKind::kSend) << " send, " << count(DtgNodeKind::kRecv)
     << " recv, " << count(DtgNodeKind::kCollective) << " collective), "
     << msg_edges.size() << " message edges\n";
  return os.str();
}

void DtgRecorder::record(int rank, DtgNodeKind kind, const ir::Stmt& stmt,
                         const std::string& task, int peer, int tag,
                         std::size_t bytes, bool nonblocking, VTime start,
                         VTime end) {
  DtgNode n;
  n.id = static_cast<int>(nodes_.size());
  n.rank = rank;
  n.kind = kind;
  n.stmt_id = stmt.id;
  n.task = task;
  n.peer = peer;
  n.tag = tag;
  n.bytes = bytes;
  n.nonblocking = nonblocking;
  n.start = start;
  n.end = end;
  nodes_.push_back(std::move(n));
}

Dtg DtgRecorder::build() const {
  Dtg dtg;
  dtg.nodes = nodes_;

  // Pair the k-th send on channel (src, dst, tag) with the k-th receive
  // posted for it — the engine's non-overtaking matching rule.
  using Channel = std::tuple<int, int, int>;
  std::map<Channel, std::vector<int>> sends, recvs;
  for (const auto& n : dtg.nodes) {
    if (n.kind == DtgNodeKind::kSend) {
      sends[{n.rank, n.peer, n.tag}].push_back(n.id);
    } else if (n.kind == DtgNodeKind::kRecv && n.peer >= 0) {
      recvs[{n.peer, n.rank, n.tag}].push_back(n.id);
    }
  }
  for (const auto& [channel, ss] : sends) {
    auto it = recvs.find(channel);
    if (it == recvs.end()) continue;
    const auto& rs = it->second;
    for (std::size_t k = 0; k < ss.size() && k < rs.size(); ++k) {
      dtg.msg_edges.push_back(DtgMsgEdge{ss[k], rs[k]});
    }
  }
  return dtg;
}

}  // namespace stgsim::core
