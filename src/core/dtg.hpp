// The dynamic task graph (DTG).
//
// The paper's compiler work synthesized "static (and dynamic) task
// graphs" (§2.2): where the STG is a compact symbolic representation —
// one node per *set* of parallel tasks — the DTG is its unfolding for a
// concrete run: one node per executed task *instance* per process, with
// the actual message edges that occurred. It serves three purposes here:
//   * a ground-truth artifact for inspecting a run (export to Graphviz);
//   * cross-validation of the STG: every dynamic instance must map back
//     to a static node whose guard admits the executing process;
//   * structural invariants (send/recv pairing, per-process ordering)
//     that the tests assert after direct-execution runs.
//
// Recording is opt-in via ir::ExecOptions (sequential scheduler only).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/interp.hpp"
#include "ir/program.hpp"
#include "support/vtime.hpp"

namespace stgsim::core {

class Stg;

enum class DtgNodeKind { kCompute, kSend, kRecv, kCollective };

struct DtgNode {
  int id = -1;
  int rank = -1;
  DtgNodeKind kind{};
  int stmt_id = -1;       ///< source marker into the IR / STG
  std::string task;       ///< kernel task (compute nodes)
  int peer = -1;          ///< actual partner rank (p2p nodes)
  int tag = 0;
  std::size_t bytes = 0;
  bool nonblocking = false;  ///< isend/irecv: recorded at post time
  VTime start = 0;
  VTime end = 0;
};

struct DtgMsgEdge {
  int send_node = -1;
  int recv_node = -1;
};

/// A fully unfolded run: per-rank instance sequences plus message edges.
class Dtg {
 public:
  std::vector<DtgNode> nodes;
  std::vector<DtgMsgEdge> msg_edges;

  /// Instances executed by `rank`, in program order.
  std::vector<const DtgNode*> instances_of(int rank) const;
  std::size_t count(DtgNodeKind kind) const;

  /// Structural invariants: every send instance pairs with exactly one
  /// recv instance of equal tag and byte count; a message never completes
  /// before it started; each rank's instances are time-ordered. Returns
  /// "" or a description of the first violation.
  std::string check_consistency() const;

  /// Cross-validation against the static graph: every instance's stmt_id
  /// must name an STG node of the matching kind, and for nodes guarded by
  /// a process-set condition over `rank_var` and `globals`, the guard
  /// must admit the executing rank. Returns "" or the first violation.
  std::string check_against_stg(const Stg& stg,
                                const std::map<std::string, sym::Value>& globals,
                                const std::string& rank_var = "myid") const;

  std::string to_dot() const;
  std::string summary() const;
};

/// Collects instances during interpretation; build() pairs message edges
/// (k-th send on a (src,dst,tag) channel with its k-th receive — the
/// engine's own non-overtaking matching rule).
class DtgRecorder {
 public:
  void record(int rank, DtgNodeKind kind, const ir::Stmt& stmt,
              const std::string& task, int peer, int tag, std::size_t bytes,
              bool nonblocking, VTime start, VTime end);

  Dtg build() const;

 private:
  std::vector<DtgNode> nodes_;
};

/// Adapter plugging a DtgRecorder into ir::ExecOptions::observer.
class DtgObserver : public ir::StmtObserver {
 public:
  explicit DtgObserver(DtgRecorder* recorder) : recorder_(recorder) {}

  void on_compute(int rank, const ir::Stmt& stmt, VTime start,
                  VTime end) override {
    recorder_->record(rank, DtgNodeKind::kCompute, stmt, stmt.kernel.task,
                      -1, 0, 0, /*nonblocking=*/false, start, end);
  }

  void on_comm(int rank, const ir::Stmt& stmt, int peer, std::size_t bytes,
               VTime start, VTime end) override {
    DtgNodeKind kind = DtgNodeKind::kCollective;
    switch (stmt.kind) {
      case ir::StmtKind::kSend:
      case ir::StmtKind::kIsend:
        kind = DtgNodeKind::kSend;
        break;
      case ir::StmtKind::kRecv:
      case ir::StmtKind::kIrecv:
        kind = DtgNodeKind::kRecv;
        break;
      default:
        break;
    }
    const bool nonblocking = stmt.kind == ir::StmtKind::kIsend ||
                             stmt.kind == ir::StmtKind::kIrecv;
    recorder_->record(rank, kind, stmt, "", peer, stmt.tag, bytes,
                      nonblocking, start, end);
  }

 private:
  DtgRecorder* recorder_;
};

}  // namespace stgsim::core
