#include "core/slice.hpp"

#include <map>
#include <vector>

#include "support/check.hpp"

namespace stgsim::core {

namespace {

using ir::Stmt;
using ir::StmtKind;

bool is_comm(StmtKind k) {
  switch (k) {
    case StmtKind::kSend:
    case StmtKind::kRecv:
    case StmtKind::kIsend:
    case StmtKind::kIrecv:
    case StmtKind::kWaitall:
    case StmtKind::kBarrier:
    case StmtKind::kBcast:
    case StmtKind::kAllreduceSum:
    case StmtKind::kAllreduceMax:
      return true;
    default:
      return false;
  }
}

/// Variables whose values influence timing/structure when this statement
/// is retained — communication payloads excluded.
std::set<std::string> structural_uses(const Stmt& s) {
  std::set<std::string> out;
  auto add = [&](const sym::Expr& e) {
    for (auto& v : e.free_vars()) out.insert(v);
  };
  switch (s.kind) {
    case StmtKind::kDeclScalar:
      if (s.has_init) add(s.e1);
      break;
    case StmtKind::kDeclArray:
      for (const auto& e : s.extents) add(e);
      break;
    case StmtKind::kAssign:
      add(s.e1);
      break;
    case StmtKind::kFor:
      add(s.e1);
      add(s.e2);
      break;
    case StmtKind::kIf:
      add(s.e1);
      break;
    case StmtKind::kCompute:
      // A retained kernel really executes: it needs its operands (values)
      // and its buffers (reads and writes), plus its cost expression.
      for (const auto& r : s.kernel.reads) out.insert(r);
      for (const auto& w : s.kernel.writes) out.insert(w);
      add(s.kernel.iters);
      break;
    case StmtKind::kSend:
    case StmtKind::kRecv:
    case StmtKind::kIsend:
    case StmtKind::kIrecv:
    case StmtKind::kBcast:
      add(s.e1);
      add(s.e2);
      add(s.e3);
      break;
    case StmtKind::kAllreduceSum:
    case StmtKind::kAllreduceMax:
    case StmtKind::kWaitall:
    case StmtKind::kBarrier:
    case StmtKind::kGetRank:
    case StmtKind::kGetSize:
    case StmtKind::kReadParam:
    case StmtKind::kCall:
      break;
    case StmtKind::kDelay:
    case StmtKind::kTimerStop:
      add(s.e1);
      break;
    case StmtKind::kTimerStart:
      break;
  }
  return out;
}

struct StmtInfo {
  const Stmt* stmt = nullptr;
  std::vector<const Stmt*> ancestors;  // innermost last, within one body
  std::string proc;                    // "" for main
};

class Slicer {
 public:
  Slicer(const ir::Program& prog, const SliceOptions& options)
      : prog_(prog), options_(options) {
    index_block(prog.main(), {}, "");
    for (const auto& p : prog.procedures()) {
      index_block(p.body, {}, p.name);
    }
  }

  SliceResult run() {
    seed();
    bool changed = true;
    while (changed) {
      changed = false;
      changed |= propagate_defs();
      changed |= control_closure();
      changed |= call_closure();
      changed |= scaling_closure();
    }

    SliceResult result;
    result.retained = std::move(retained_);
    result.needed_vars = std::move(needed_);
    for (const auto& info : infos_) {
      if (info.stmt->kind == StmtKind::kDeclArray &&
          result.retained.contains(info.stmt->id)) {
        result.live_arrays.insert(info.stmt->name);
      }
    }
    return result;
  }

 private:
  void index_block(const std::vector<ir::StmtP>& block,
                   std::vector<const Stmt*> ancestors,
                   const std::string& proc) {
    for (const auto& sp : block) {
      const Stmt* s = sp.get();
      infos_.push_back(StmtInfo{s, ancestors, proc});
      info_of_[s->id] = infos_.size() - 1;
      for (const auto& d : ir::stmt_effects(*s).defs) {
        // Request-list names are bookkeeping, not program variables.
        if (s->kind == StmtKind::kIsend || s->kind == StmtKind::kIrecv) {
          if (d == s->aux_name) continue;
        }
        if (s->kind == StmtKind::kWaitall) continue;
        defs_of_[d].push_back(s);
      }
      if (s->kind == StmtKind::kCall) {
        call_sites_[s->name].push_back(s);
      }
      auto inner = ancestors;
      inner.push_back(s);
      index_block(s->body, inner, proc);
      index_block(s->else_body, inner, proc);
    }
  }

  bool retain(const Stmt* s) { return retained_.insert(s->id).second; }

  bool need(const std::string& var) { return needed_.insert(var).second; }

  bool need_all(const std::set<std::string>& vars) {
    bool changed = false;
    for (const auto& v : vars) changed |= need(v);
    return changed;
  }

  void seed() {
    // Scalar declarations by name, for payload-only scalars (below).
    std::map<std::string, std::vector<const Stmt*>> scalar_decls;
    for (const auto& info : infos_) {
      if (info.stmt->kind == StmtKind::kDeclScalar) {
        scalar_decls[info.stmt->name].push_back(info.stmt);
      }
    }

    for (const auto& info : infos_) {
      const Stmt& s = *info.stmt;
      if (is_comm(s.kind)) {
        retain(info.stmt);
        need_all(structural_uses(s));
        // A reduction's payload scalar must stay *declared* even when its
        // value is dead (the kernels computing it are eliminated, but the
        // collective still transfers 8 bytes of it).
        if (s.kind == StmtKind::kAllreduceSum ||
            s.kind == StmtKind::kAllreduceMax) {
          auto it = scalar_decls.find(s.name);
          if (it != scalar_decls.end()) {
            for (const Stmt* d : it->second) {
              retain(d);
              need_all(structural_uses(*d));
            }
          }
        }
      }
      if (s.kind == StmtKind::kIf &&
          (options_.retain_all_branches ||
           options_.retained_branch_ids.contains(s.id))) {
        retain(info.stmt);
        need_all(structural_uses(s));
      }
    }
  }

  bool propagate_defs() {
    bool changed = false;
    // Every definition of a needed variable is retained, and its own
    // structural uses become needed (flow-insensitive closure).
    for (const auto& var : std::set<std::string>(needed_)) {
      auto it = defs_of_.find(var);
      if (it == defs_of_.end()) continue;
      for (const Stmt* d : it->second) {
        changed |= retain(d);
        changed |= need_all(structural_uses(*d));
      }
    }
    return changed;
  }

  bool control_closure() {
    bool changed = false;
    for (const auto& info : infos_) {
      if (!retained_.contains(info.stmt->id)) continue;
      for (const Stmt* a : info.ancestors) {
        changed |= retain(a);
        changed |= need_all(structural_uses(*a));
      }
    }
    return changed;
  }

  bool call_closure() {
    bool changed = false;
    for (const auto& info : infos_) {
      if (info.proc.empty() || !retained_.contains(info.stmt->id)) continue;
      auto it = call_sites_.find(info.proc);
      if (it == call_sites_.end()) continue;
      for (const Stmt* site : it->second) {
        changed |= retain(site);
        // Ancestors of the site are handled by control_closure next round.
      }
    }
    return changed;
  }

  /// For every *eliminated* kernel, the free variables of its scaling
  /// function — with variables bound by enclosing eliminated loops removed
  /// (they are summed over symbolically) and the bounds of those loops
  /// added instead (paper §3.1: "we also compute a scaling expression for
  /// each collapsed task").
  bool scaling_closure() {
    bool changed = false;
    for (const auto& info : infos_) {
      const Stmt& s = *info.stmt;
      if (s.kind != StmtKind::kCompute || retained_.contains(s.id)) continue;

      std::set<std::string> bound;
      // Walk ancestors outermost -> innermost below the last retained one.
      std::size_t start = 0;
      for (std::size_t i = 0; i < info.ancestors.size(); ++i) {
        if (retained_.contains(info.ancestors[i]->id)) start = i + 1;
      }
      for (std::size_t i = start; i < info.ancestors.size(); ++i) {
        const Stmt& a = *info.ancestors[i];
        if (a.kind == StmtKind::kFor) {
          for (const auto& v : a.e1.free_vars()) {
            if (!bound.contains(v)) changed |= need(v);
          }
          for (const auto& v : a.e2.free_vars()) {
            if (!bound.contains(v)) changed |= need(v);
          }
          bound.insert(a.name);
        }
        // Eliminated branches are folded statistically; their condition
        // variables are intentionally NOT needed (§3.1's simpler approach).
      }
      for (const auto& v : s.kernel.iters.free_vars()) {
        if (!bound.contains(v)) changed |= need(v);
      }
    }
    return changed;
  }

  const ir::Program& prog_;
  SliceOptions options_;

  std::vector<StmtInfo> infos_;
  std::map<int, std::size_t> info_of_;
  std::map<std::string, std::vector<const Stmt*>> defs_of_;
  std::map<std::string, std::vector<const Stmt*>> call_sites_;

  std::set<int> retained_;
  std::set<std::string> needed_;
};

}  // namespace

SliceResult compute_slice(const ir::Program& prog,
                          const SliceOptions& options) {
  return Slicer(prog, options).run();
}

}  // namespace stgsim::core
