// Program slicing (paper §3.2).
//
// Given a target program, computes the subset of statements that must be
// retained in the simplified program because they affect its *parallel
// structure*: communication arguments (peers, sizes, offsets), the control
// flow that reaches communication, and the free variables of the scaling
// functions of eliminated computational tasks. Everything else — in
// particular the computational loop nests and the large arrays they touch
// — can be abstracted away.
//
// The slice is flow-insensitive (every definition of a needed variable is
// retained) and therefore conservative, exactly as the paper allows: "the
// subset has to be conservative, limited by the precision of static
// program analysis, and therefore may not be minimal."
//
// Values that flow only through communication *payloads* are not part of
// the criterion: predicting performance needs message sizes and
// destinations, not message contents. A payload variable joins the slice
// only if something structural later depends on it (e.g. a convergence
// test on an allreduced residual), in which case the def-use closure pulls
// in the kernels that compute it — and those kernels then stay in the
// simplified program as real computations.
#pragma once

#include <set>
#include <string>

#include "ir/program.hpp"

namespace stgsim::core {

struct SliceOptions {
  /// Ablation knob: retain every branch (and the computation feeding its
  /// condition) instead of eliminating branches statistically (§3.1's
  /// "more precise approach").
  bool retain_all_branches = false;

  /// User directives (§3.1): specific branches to retain by statement id
  /// — "allow the user to specify through directives that specific
  /// branches can be [kept and the rest] treated analytically".
  std::set<int> retained_branch_ids;
};

struct SliceResult {
  std::set<int> retained;            ///< statement ids kept in the slice
  std::set<std::string> needed_vars; ///< scalars/arrays whose values matter
  std::set<std::string> live_arrays; ///< arrays that must stay allocated

  bool is_retained(const ir::Stmt& s) const { return retained.contains(s.id); }
  bool array_is_live(const std::string& name) const {
    return live_arrays.contains(name);
  }
};

SliceResult compute_slice(const ir::Program& prog,
                          const SliceOptions& options = {});

}  // namespace stgsim::core
