#include "core/stg.hpp"

#include <map>
#include <sstream>

#include "support/check.hpp"

namespace stgsim::core {

namespace {

using ir::Stmt;
using ir::StmtKind;
using sym::Expr;

bool is_comm_stmt(StmtKind k) {
  switch (k) {
    case StmtKind::kSend:
    case StmtKind::kRecv:
    case StmtKind::kIsend:
    case StmtKind::kIrecv:
    case StmtKind::kWaitall:
    case StmtKind::kBarrier:
    case StmtKind::kBcast:
    case StmtKind::kAllreduceSum:
    case StmtKind::kAllreduceMax:
      return true;
    default:
      return false;
  }
}

bool is_send_kind(StmtKind k) {
  return k == StmtKind::kSend || k == StmtKind::kIsend;
}
bool is_recv_kind(StmtKind k) {
  return k == StmtKind::kRecv || k == StmtKind::kIrecv;
}

class Synthesizer {
 public:
  Synthesizer(const ir::Program& prog, std::string rank_var)
      : prog_(prog), rank_var_(std::move(rank_var)) {
    ir::for_each_stmt(prog_, [&](const Stmt& s) {
      if (s.kind == StmtKind::kDeclArray) {
        elem_bytes_[s.name] = s.elem_bytes;
      }
    });
  }

  Stg run() {
    stg_.roots = walk_block(prog_.main(), Expr::integer(1));
    pair_comm_edges();
    return std::move(stg_);
  }

 private:
  std::size_t elem_bytes_of(const std::string& array) const {
    auto it = elem_bytes_.find(array);
    return it == elem_bytes_.end() ? sizeof(double) : it->second;
  }

  std::vector<int> walk_block(const std::vector<ir::StmtP>& block,
                              const Expr& guard) {
    std::vector<int> ids;
    for (const auto& sp : block) {
      const Stmt& s = *sp;
      switch (s.kind) {
        case StmtKind::kCompute: {
          StgNode n;
          n.kind = StgNodeKind::kCompute;
          n.stmt_id = s.id;
          n.guard = guard;
          n.task = s.kernel.task;
          n.scaling = s.kernel.iters;
          n.flops_per_iter = s.kernel.flops_per_iter;
          ids.push_back(add(std::move(n)));
          break;
        }
        case StmtKind::kFor: {
          StgNode n;
          n.kind = StgNodeKind::kControl;
          n.stmt_id = s.id;
          n.guard = guard;
          n.is_loop = true;
          n.loop_var = s.name;
          n.lo = s.e1;
          n.hi = s.e2;
          const int id = add(std::move(n));
          ids.push_back(id);
          auto kids = walk_block(s.body, guard);
          stg_.nodes[static_cast<std::size_t>(id)].children = std::move(kids);
          break;
        }
        case StmtKind::kIf: {
          // A branch on the rank variable refines the process set of the
          // statements it guards (Fig. 1(b): send/recv nodes exist only
          // for the boundary processes); any other branch becomes a
          // control node.
          const bool rank_guard = s.e1.references(rank_var_) &&
                                  s.else_body.empty();
          if (rank_guard) {
            auto kids =
                walk_block(s.body, sym::logical_and(guard, s.e1).simplified());
            ids.insert(ids.end(), kids.begin(), kids.end());
          } else {
            StgNode n;
            n.kind = StgNodeKind::kControl;
            n.stmt_id = s.id;
            n.guard = guard;
            n.is_loop = false;
            n.cond = s.e1;
            const int id = add(std::move(n));
            ids.push_back(id);
            auto kids = walk_block(s.body, guard);
            auto ekids = walk_block(s.else_body, guard);
            kids.insert(kids.end(), ekids.begin(), ekids.end());
            stg_.nodes[static_cast<std::size_t>(id)].children =
                std::move(kids);
          }
          break;
        }
        case StmtKind::kCall: {
          const ir::Procedure* p = prog_.find_procedure(s.name);
          STGSIM_CHECK(p != nullptr);
          auto kids = walk_block(p->body, guard);
          ids.insert(ids.end(), kids.begin(), kids.end());
          break;
        }
        default: {
          if (!is_comm_stmt(s.kind)) break;  // scalar stmts: no STG node
          StgNode n;
          n.kind = StgNodeKind::kComm;
          n.stmt_id = s.id;
          n.guard = guard;
          n.comm_kind = s.kind;
          n.tag = s.tag;
          n.peer = s.e1;
          if (s.kind == StmtKind::kAllreduceSum ||
              s.kind == StmtKind::kAllreduceMax) {
            n.size_bytes = Expr::integer(static_cast<std::int64_t>(
                sizeof(double)));
          } else if (s.kind != StmtKind::kBarrier &&
                     s.kind != StmtKind::kWaitall) {
            n.size_bytes =
                (s.e2 * Expr::integer(static_cast<std::int64_t>(
                            elem_bytes_of(s.name))))
                    .simplified();
          }
          ids.push_back(add(std::move(n)));
          break;
        }
      }
    }
    return ids;
  }

  int add(StgNode n) {
    n.id = static_cast<int>(stg_.nodes.size());
    stg_.nodes.push_back(std::move(n));
    return stg_.nodes.back().id;
  }

  /// Pairs send-type with recv-type nodes by message tag — tags statically
  /// identify communication patterns in compiler-generated MPI (the dHPF
  /// convention the paper relies on).
  void pair_comm_edges() {
    std::map<int, std::vector<int>> sends;
    std::map<int, std::vector<int>> recvs;
    for (const auto& n : stg_.nodes) {
      if (n.kind != StgNodeKind::kComm) continue;
      if (is_send_kind(n.comm_kind)) sends[n.tag].push_back(n.id);
      if (is_recv_kind(n.comm_kind)) recvs[n.tag].push_back(n.id);
    }
    for (const auto& [tag, ss] : sends) {
      auto it = recvs.find(tag);
      if (it == recvs.end()) continue;
      for (int s : ss) {
        for (int r : it->second) {
          StgCommEdge e;
          e.send_node = s;
          e.recv_node = r;
          e.tag = tag;
          e.mapping = stg_.nodes[static_cast<std::size_t>(s)].peer;
          stg_.comm_edges.push_back(std::move(e));
        }
      }
    }
  }

  const ir::Program& prog_;
  std::string rank_var_;
  std::map<std::string, std::size_t> elem_bytes_;
  Stg stg_;
};

std::string guard_text(const Expr& guard) {
  auto c = guard.constant_value();
  if (c.has_value() && c->as_bool()) return "{[p] : 0 <= p < P}";
  return "{[p] : 0 <= p < P, " + guard.to_string() + "}";
}

}  // namespace

const StgNode* Stg::node_for_stmt(int stmt_id) const {
  for (const auto& n : nodes) {
    if (n.stmt_id == stmt_id) return &n;
  }
  return nullptr;
}

std::size_t Stg::count(StgNodeKind kind) const {
  std::size_t c = 0;
  for (const auto& n : nodes) c += (n.kind == kind) ? 1 : 0;
  return c;
}

std::string Stg::to_dot() const {
  std::ostringstream os;
  os << "digraph stg {\n  node [shape=box, fontsize=10];\n";
  for (const auto& n : nodes) {
    os << "  n" << n.id << " [label=\"";
    switch (n.kind) {
      case StgNodeKind::kCompute:
        os << "COMPUTE " << n.task << "\\niters: " << n.scaling.to_string();
        break;
      case StgNodeKind::kComm:
        os << ir::stmt_kind_name(n.comm_kind) << " tag " << n.tag
           << "\\nsize: " << n.size_bytes.to_string();
        if (n.comm_kind == ir::StmtKind::kSend ||
            n.comm_kind == ir::StmtKind::kIsend ||
            n.comm_kind == ir::StmtKind::kRecv ||
            n.comm_kind == ir::StmtKind::kIrecv) {
          os << "\\npeer: " << n.peer.to_string();
        }
        break;
      case StgNodeKind::kControl:
        if (n.is_loop) {
          os << "DO " << n.loop_var << " = " << n.lo.to_string() << ".."
             << n.hi.to_string();
        } else {
          os << "IF " << n.cond.to_string();
        }
        break;
    }
    os << "\\n" << guard_text(n.guard) << "\"";
    if (n.kind == StgNodeKind::kComm) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  // Control-nesting edges.
  for (const auto& n : nodes) {
    for (int c : n.children) {
      os << "  n" << n.id << " -> n" << c << " [color=gray];\n";
    }
  }
  // Sequential flow among roots.
  for (std::size_t i = 1; i < roots.size(); ++i) {
    os << "  n" << roots[i - 1] << " -> n" << roots[i] << ";\n";
  }
  // Communication edges.
  for (const auto& e : comm_edges) {
    os << "  n" << e.send_node << " -> n" << e.recv_node
       << " [style=dashed, color=red, label=\"q = " << e.mapping.to_string()
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string Stg::summary() const {
  std::ostringstream os;
  os << "STG: " << nodes.size() << " nodes ("
     << count(StgNodeKind::kCompute) << " compute, "
     << count(StgNodeKind::kComm) << " comm, "
     << count(StgNodeKind::kControl) << " control), "
     << comm_edges.size() << " communication edge sets\n";
  for (const auto& n : nodes) {
    if (n.kind != StgNodeKind::kCompute) continue;
    os << "  task " << n.task << ": iters = " << n.scaling.to_string()
       << ", tasks " << guard_text(n.guard) << "\n";
  }
  for (const auto& e : comm_edges) {
    os << "  comm tag " << e.tag << ": pairs {[p] -> [q] : q = "
       << e.mapping.to_string() << "}\n";
  }
  return os.str();
}

Stg synthesize_stg(const ir::Program& prog, const std::string& rank_var) {
  return Synthesizer(prog, rank_var).run();
}

}  // namespace stgsim::core
