// The static task graph (STG) — paper §2.2.
//
// A compact, symbolic representation of the parallel structure of a
// message-passing program, independent of input values and process count.
// Nodes represent sets of parallel tasks (one per process, restricted by a
// symbolic guard over the process id); communication edges carry a
// symbolic mapping from sender to receiver process ids and a symbolic
// message size. Control nodes capture the loops and branches that shape
// the parallel structure.
//
// The STG is synthesized from the IR (mirroring how the dHPF compiler
// synthesizes it from HPF/MPI programs); each node keeps a marker to its
// source statement, which is what the condensation and slicing passes key
// on. Use to_dot() to render the graph.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace stgsim::core {

enum class StgNodeKind { kCompute, kComm, kControl };

struct StgNode {
  int id = -1;
  StgNodeKind kind{};
  int stmt_id = -1;  ///< source marker into the IR

  /// Process set {[p] : 0 <= p < P && guard}; guard is a boolean
  /// expression over the rank variable and program variables.
  sym::Expr guard = sym::Expr::integer(1);

  // kCompute
  std::string task;
  sym::Expr scaling = sym::Expr::integer(0);  ///< iterations per execution
  double flops_per_iter = 0.0;

  // kComm
  ir::StmtKind comm_kind = ir::StmtKind::kBarrier;
  sym::Expr peer = sym::Expr::integer(-1);  ///< partner rank as f(p)
  sym::Expr size_bytes = sym::Expr::integer(0);
  int tag = 0;

  // kControl
  bool is_loop = false;
  std::string loop_var;
  sym::Expr lo, hi, cond;

  std::vector<int> children;  ///< nested structure (control nodes)
};

/// A symbolic communication edge: task pairs {[p] -> [q] : q = mapping(p)}.
struct StgCommEdge {
  int send_node = -1;
  int recv_node = -1;
  int tag = 0;
  sym::Expr mapping;  ///< receiver rank as a function of the sender's rank
};

class Stg {
 public:
  std::vector<StgNode> nodes;
  std::vector<int> roots;  ///< top-level sequence (main body)
  std::vector<StgCommEdge> comm_edges;

  const StgNode* node_for_stmt(int stmt_id) const;
  std::size_t count(StgNodeKind kind) const;

  /// Graphviz rendering (control nesting as clusters, comm edges dashed).
  std::string to_dot() const;

  /// Text summary used by the examples and the compiler report.
  std::string summary() const;
};

/// Synthesizes the STG from an IR program. `rank_var` is the scalar the
/// program binds to its MPI rank (used to phrase guards and mappings).
Stg synthesize_stg(const ir::Program& prog,
                   const std::string& rank_var = "myid");

}  // namespace stgsim::core
