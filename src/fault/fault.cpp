#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/json.hpp"
#include "support/numparse.hpp"

namespace stgsim::fault {

namespace {

bool rank_matches(int selector, int rank) {
  return selector == kAnyRank || selector == rank;
}

/// Shortest decimal that parses back to exactly the same double, so
/// parse_fault_plan(to_string()) is lossless for every factor — the
/// campaign cache embeds the canonical spec string in its keys.
std::string fmt(double v) { return json::format_double(v); }

/// Formats a VTime window bound as fractional seconds for to_string().
void append_window(std::ostringstream& os, const Window& w) {
  if (w.from != 0) os << ",from=" << fmt(vtime_to_sec(w.from));
  if (w.until != kVTimeNever) os << ",until=" << fmt(vtime_to_sec(w.until));
}

}  // namespace

void FaultPlan::validate() const {
  for (const auto& l : links) {
    STGSIM_CHECK_GE(l.latency_factor, 1.0)
        << "link latency factor must be >= 1 (faults only degrade)";
    STGSIM_CHECK(l.bandwidth_factor > 0.0 && l.bandwidth_factor <= 1.0)
        << "link bandwidth factor must be in (0, 1]";
    STGSIM_CHECK_LE(l.window.from, l.window.until) << "empty link window";
  }
  for (const auto& s : stragglers) {
    STGSIM_CHECK_GE(s.factor, 1.0) << "straggler factor must be >= 1";
    STGSIM_CHECK_LE(s.window.from, s.window.until) << "empty straggler window";
  }
  for (const auto& b : brownouts) {
    STGSIM_CHECK(b.injection_factor > 0.0 && b.injection_factor <= 1.0)
        << "brownout injection factor must be in (0, 1]";
    STGSIM_CHECK_LE(b.window.from, b.window.until) << "empty brownout window";
  }
  STGSIM_CHECK(eager_drop.drop_prob >= 0.0 && eager_drop.drop_prob < 1.0)
      << "drop probability must be in [0, 1)";
  STGSIM_CHECK_GE(eager_drop.backoff_factor, 1.0)
      << "retransmission backoff must be >= 1";
  STGSIM_CHECK_GE(eager_drop.max_retries, 0);
  if (eager_drop.enabled()) {
    STGSIM_CHECK_GT(eager_drop.retransmit_timeout, 0)
        << "retransmission timeout must be positive";
  }
}

double FaultPlan::latency_factor(int src, int dst, VTime t) const {
  double f = 1.0;
  for (const auto& l : links) {
    if (rank_matches(l.src, src) && rank_matches(l.dst, dst) &&
        l.window.contains(t)) {
      f *= l.latency_factor;
    }
  }
  return f;
}

double FaultPlan::latency_floor_factor() const {
  double f = 1.0;
  for (const auto& l : links) {
    if (l.src == kAnyRank && l.dst == kAnyRank && l.window.from <= 0 &&
        l.window.until == kVTimeNever) {
      f *= l.latency_factor;
    }
  }
  return f;
}

double FaultPlan::bandwidth_factor(int src, int dst, VTime t) const {
  double f = 1.0;
  for (const auto& l : links) {
    if (rank_matches(l.src, src) && rank_matches(l.dst, dst) &&
        l.window.contains(t)) {
      f *= l.bandwidth_factor;
    }
  }
  return f;
}

double FaultPlan::injection_factor(int rank, VTime t) const {
  double f = 1.0;
  for (const auto& b : brownouts) {
    if (rank_matches(b.rank, rank) && b.window.contains(t)) {
      f *= b.injection_factor;
    }
  }
  return f;
}

double FaultPlan::compute_factor(int rank, VTime t) const {
  double f = 1.0;
  for (const auto& s : stragglers) {
    if (rank_matches(s.rank, rank) && s.window.contains(t)) f *= s.factor;
  }
  return f;
}

VTime FaultPlan::stretch_compute(int rank, VTime start, VTime work) const {
  if (stragglers.empty() || work <= 0) return work;

  // Earliest window edge strictly after t for this rank (kVTimeNever when
  // the factor is constant from t on).
  auto next_boundary = [&](VTime t) {
    VTime b = kVTimeNever;
    for (const auto& s : stragglers) {
      if (!rank_matches(s.rank, rank)) continue;
      if (s.window.from > t) b = std::min(b, s.window.from);
      if (s.window.until > t && s.window.until != kVTimeNever) {
        b = std::min(b, s.window.until);
      }
    }
    return b;
  };

  VTime t = start;
  double remaining = static_cast<double>(work);  // work still to run, in ns
  double elapsed = 0.0;                          // stretched virtual time
  while (remaining > 0.5) {
    const double f = compute_factor(rank, t);
    const VTime boundary = next_boundary(t);
    if (boundary == kVTimeNever || remaining * f <=
                                       static_cast<double>(boundary - t)) {
      elapsed += remaining * f;
      break;
    }
    // Consume the span up to the boundary at the current factor.
    const double span = static_cast<double>(boundary - t);
    elapsed += span;
    remaining -= span / f;
    t = boundary;
  }
  return static_cast<VTime>(elapsed + 0.5);
}

int FaultPlan::draw_eager_drops(Rng& rng) const {
  if (!eager_drop.enabled()) return 0;
  int drops = 0;
  while (drops < eager_drop.max_retries &&
         rng.next_double() < eager_drop.drop_prob) {
    ++drops;
  }
  return drops;
}

VTime FaultPlan::retransmission_delay(int drops) const {
  double delay = 0.0;
  double timeout = static_cast<double>(eager_drop.retransmit_timeout);
  for (int i = 0; i < drops; ++i) {
    delay += timeout;
    timeout *= eager_drop.backoff_factor;
  }
  return static_cast<VTime>(delay + 0.5);
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  for (const auto& l : links) {
    sep();
    os << "link:src=" << l.src << ",dst=" << l.dst
       << ",latency=" << fmt(l.latency_factor)
       << ",bandwidth=" << fmt(l.bandwidth_factor);
    append_window(os, l.window);
  }
  for (const auto& s : stragglers) {
    sep();
    os << "straggler:rank=" << s.rank << ",factor=" << fmt(s.factor);
    append_window(os, s.window);
  }
  for (const auto& b : brownouts) {
    sep();
    os << "brownout:rank=" << b.rank
       << ",injection=" << fmt(b.injection_factor);
    append_window(os, b.window);
  }
  if (eager_drop.enabled()) {
    sep();
    os << "drop:prob=" << fmt(eager_drop.drop_prob)
       << ",timeout=" << fmt(vtime_to_sec(eager_drop.retransmit_timeout))
       << ",backoff=" << fmt(eager_drop.backoff_factor)
       << ",retries=" << eager_drop.max_retries;
  }
  return os.str();
}

namespace {

[[noreturn]] void parse_error(const std::string& clause,
                              const std::string& why) {
  throw std::runtime_error("bad fault clause '" + clause + "': " + why);
}

/// Splits "key=value,key=value" into pairs; every value must be numeric.
std::vector<std::pair<std::string, double>> parse_kvs(
    const std::string& clause, const std::string& body) {
  std::vector<std::pair<std::string, double>> kvs;
  std::istringstream is(body);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto pos = item.find('=');
    if (pos == std::string::npos || pos == 0) {
      parse_error(clause, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, pos);
    const std::string val = item.substr(pos + 1);
    double v = 0.0;
    const auto st = support::parse_f64(val, &v);
    if (st != support::ParseNumStatus::kOk) {
      parse_error(clause,
                  std::string(support::parse_num_problem(
                      st, "non-numeric value")) +
                      " for '" + key + "'");
    }
    kvs.emplace_back(key, v);
  }
  return kvs;
}

Window take_window(std::vector<std::pair<std::string, double>>& kvs) {
  Window w;
  for (auto it = kvs.begin(); it != kvs.end();) {
    if (it->first == "from") {
      w.from = vtime_from_sec(it->second);
      it = kvs.erase(it);
    } else if (it->first == "until") {
      w.until = vtime_from_sec(it->second);
      it = kvs.erase(it);
    } else {
      ++it;
    }
  }
  return w;
}

double take(std::vector<std::pair<std::string, double>>& kvs,
            const std::string& key, double dflt) {
  for (auto it = kvs.begin(); it != kvs.end(); ++it) {
    if (it->first == key) {
      const double v = it->second;
      kvs.erase(it);
      return v;
    }
  }
  return dflt;
}

void expect_consumed(const std::string& clause,
                     const std::vector<std::pair<std::string, double>>& kvs) {
  if (!kvs.empty()) parse_error(clause, "unknown key '" + kvs.front().first + "'");
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::istringstream is(spec);
  std::string clause;
  while (std::getline(is, clause, ';')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      parse_error(clause, "expected kind:key=value,...");
    }
    const std::string kind = clause.substr(0, colon);
    auto kvs = parse_kvs(clause, clause.substr(colon + 1));
    if (kind == "link") {
      LinkDegradation l;
      l.window = take_window(kvs);
      l.src = static_cast<int>(take(kvs, "src", kAnyRank));
      l.dst = static_cast<int>(take(kvs, "dst", kAnyRank));
      l.latency_factor = take(kvs, "latency", 1.0);
      l.bandwidth_factor = take(kvs, "bandwidth", 1.0);
      expect_consumed(clause, kvs);
      plan.links.push_back(l);
    } else if (kind == "straggler") {
      ComputeSlowdown s;
      s.window = take_window(kvs);
      s.rank = static_cast<int>(take(kvs, "rank", kAnyRank));
      s.factor = take(kvs, "factor", 1.0);
      expect_consumed(clause, kvs);
      plan.stragglers.push_back(s);
    } else if (kind == "brownout") {
      NicBrownout b;
      b.window = take_window(kvs);
      b.rank = static_cast<int>(take(kvs, "rank", kAnyRank));
      b.injection_factor = take(kvs, "injection", 1.0);
      expect_consumed(clause, kvs);
      plan.brownouts.push_back(b);
    } else if (kind == "drop") {
      plan.eager_drop.drop_prob = take(kvs, "prob", 0.0);
      plan.eager_drop.retransmit_timeout =
          vtime_from_sec(take(kvs, "timeout", 500e-6));
      plan.eager_drop.backoff_factor = take(kvs, "backoff", 2.0);
      plan.eager_drop.max_retries = static_cast<int>(take(kvs, "retries", 8));
      expect_consumed(clause, kvs);
    } else {
      parse_error(clause, "unknown fault kind '" + kind + "'");
    }
  }
  plan.validate();
  return plan;
}

}  // namespace stgsim::fault
