// Deterministic fault injection for simulated runs.
//
// Production HPC simulators treat failure and resource exhaustion as
// first-class simulated phenomena; a simulator that can only model healthy
// machines cannot answer the questions (time-to-solution under a straggler
// node, collective behaviour over a degraded link) that motivate studying
// scales one cannot measure directly. A FaultPlan is a declarative, seeded
// description of the non-ideal conditions to inject into a run:
//
//   * link degradation  — latency/bandwidth multipliers on (src, dst)
//                         pairs over virtual-time windows;
//   * compute slowdown  — per-rank straggler factors over windows, applied
//                         to every compute/delay charge;
//   * NIC brownouts     — per-rank injection-rate reduction windows;
//   * eager-message drop— seeded loss of eager transfers with a modeled
//                         retransmission timeout and exponential backoff.
//
// All effects are pure functions of (plan, virtual time, sender RNG
// stream), so a run with the same seed and the same plan is bit-identical
// across the sequential and threaded conservative schedulers. Faults only
// ever *slow* traffic and computation — latency factors are >= 1 and
// bandwidth/injection factors are <= 1 — so the network's minimum-latency
// wildcard-safety bound remains a valid lower bound under any plan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/vtime.hpp"

namespace stgsim::fault {

inline constexpr int kAnyRank = -1;

/// Half-open virtual-time window [from, until).
struct Window {
  VTime from = 0;
  VTime until = kVTimeNever;

  bool contains(VTime t) const { return t >= from && t < until; }
};

/// Degrades traffic on matching (src, dst) links inside the window.
struct LinkDegradation {
  int src = kAnyRank;  ///< sending rank; kAnyRank matches every sender
  int dst = kAnyRank;  ///< receiving rank; kAnyRank matches every receiver
  Window window;
  double latency_factor = 1.0;    ///< multiplies wire latency (>= 1)
  double bandwidth_factor = 1.0;  ///< multiplies bandwidth (0 < f <= 1)
};

/// A straggler: matching ranks run computation `factor` times slower
/// inside the window.
struct ComputeSlowdown {
  int rank = kAnyRank;
  Window window;
  double factor = 1.0;  ///< >= 1
};

/// NIC brownout: a rank's NIC injects at `injection_factor` of its nominal
/// rate inside the window (applies to everything the rank sends).
struct NicBrownout {
  int rank = kAnyRank;
  Window window;
  double injection_factor = 1.0;  ///< 0 < f <= 1
};

/// Seeded loss of eager messages. A dropped message is retransmitted after
/// `retransmit_timeout`, doubling (backoff_factor) per attempt; after
/// `max_retries` drops the transfer goes through regardless, so injected
/// loss degrades a run but can never wedge it.
struct EagerDrop {
  double drop_prob = 0.0;  ///< per-transmission loss probability, [0, 1)
  VTime retransmit_timeout = vtime_from_us(500);
  double backoff_factor = 2.0;  ///< >= 1
  int max_retries = 8;          ///< >= 0

  bool enabled() const { return drop_prob > 0.0; }
};

/// A full deterministic fault schedule for one run.
struct FaultPlan {
  std::vector<LinkDegradation> links;
  std::vector<ComputeSlowdown> stragglers;
  std::vector<NicBrownout> brownouts;
  EagerDrop eager_drop;

  bool empty() const {
    return links.empty() && stragglers.empty() && brownouts.empty() &&
           !eager_drop.enabled();
  }

  /// Throws CheckError when any factor is outside its legal range (which
  /// would break the wildcard-safety lower bound or stall progress).
  void validate() const;

  // -- Aggregate factors at virtual time t (overlapping windows multiply) --

  double latency_factor(int src, int dst, VTime t) const;
  double bandwidth_factor(int src, int dst, VTime t) const;
  double injection_factor(int rank, VTime t) const;
  double compute_factor(int rank, VTime t) const;

  /// Virtual time a compute charge of `work` takes for `rank` starting at
  /// `start`, integrating piecewise across slowdown-window boundaries.
  VTime stretch_compute(int rank, VTime start, VTime work) const;

  /// Factor by which the plan provably raises *every* wire latency: the
  /// product of latency factors over clauses that match all traffic at all
  /// times (src = dst = kAnyRank, window [0, never)). Always >= 1. The
  /// threaded scheduler multiplies the network latency floor by this to
  /// widen its lookahead window; clauses scoped to specific links or time
  /// windows contribute nothing (they cannot raise the floor for traffic
  /// they do not cover).
  double latency_floor_factor() const;

  /// Draws the number of times an eager transmission is lost before one
  /// gets through (0 when drop injection is off). Consumes exactly one
  /// uniform variate per attempt from `rng` — callers pass the sender's
  /// per-process stream so draws replay identically across schedulers.
  int draw_eager_drops(Rng& rng) const;

  /// Added delivery delay for a transfer dropped `drops` times:
  /// sum of the (backed-off) retransmission timeouts.
  VTime retransmission_delay(int drops) const;

  /// Canonical spec string; parse_fault_plan(to_string()) round-trips.
  std::string to_string() const;
};

/// Parses the CLI fault-plan syntax: semicolon-separated clauses, each
/// `kind:key=value,...` with times in (fractional) seconds, e.g.
///   link:src=0,dst=1,latency=4,bandwidth=0.25,from=0,until=0.5;
///   straggler:rank=2,factor=2.5;brownout:rank=1,injection=0.1;
///   drop:prob=0.01,timeout=0.0005,backoff=2,retries=8
/// Throws std::runtime_error on malformed specs, CheckError on bad ranges.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace stgsim::fault
