#include "harness/affinity.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

namespace stgsim::harness {

namespace {

class VarEnv : public sym::Env {
 public:
  std::optional<sym::Value> lookup(const std::string& name) const override {
    auto it = vars.find(name);
    if (it == vars.end()) return std::nullopt;
    return it->second;
  }
  std::map<std::string, sym::Value> vars;
};

class Walker {
 public:
  Walker(const ir::Program& prog, int nprocs, int rank, simk::Affinity* aff)
      : prog_(prog), nprocs_(nprocs), rank_(rank), aff_(aff) {}

  void walk_block(const std::vector<ir::StmtP>& block) {
    for (const auto& s : block) walk(*s);
  }

 private:
  // Walks beyond this call depth are cut off; real target programs nest a
  // handful of loops, so only a recursive kCall chain could get here.
  static constexpr int kMaxDepth = 64;

  bool block_has_comm(const std::vector<ir::StmtP>& block) {
    for (const auto& s : block) {
      if (has_comm(*s)) return true;
    }
    return false;
  }

  bool has_comm(const ir::Stmt& s) {
    auto it = comm_memo_.find(&s);
    if (it != comm_memo_.end()) return it->second;
    bool r = false;
    switch (s.kind) {
      case ir::StmtKind::kSend:
      case ir::StmtKind::kRecv:
      case ir::StmtKind::kIsend:
      case ir::StmtKind::kIrecv:
        r = true;
        break;
      case ir::StmtKind::kCall: {
        const ir::Procedure* proc = prog_.find_procedure(s.name);
        r = proc != nullptr && block_has_comm(proc->body);
        break;
      }
      default:
        r = block_has_comm(s.body) || block_has_comm(s.else_body);
        break;
    }
    comm_memo_.emplace(&s, r);
    return r;
  }

  void record_comm(const ir::Stmt& s) {
    std::int64_t peer = 0;
    try {
      peer = s.e1.eval_int(env_);
    } catch (...) {
      return;  // peer depends on state the static walk cannot resolve
    }
    if (peer < 0 || peer >= nprocs_ || peer == rank_) return;
    double w = 1.0;
    try {
      const auto elems = static_cast<double>(s.e2.eval_int(env_));
      if (elems > 0) w = elems * static_cast<double>(s.elem_bytes);
    } catch (...) {
      // Unresolvable size: count the edge with unit weight.
    }
    aff_->add(rank_, static_cast<int>(peer), w);
  }

  void walk(const ir::Stmt& s) {
    if (depth_ > kMaxDepth) return;
    switch (s.kind) {
      case ir::StmtKind::kGetRank:
        env_.vars[s.name] = sym::Value(rank_);
        return;
      case ir::StmtKind::kGetSize:
        env_.vars[s.name] = sym::Value(nprocs_);
        return;
      case ir::StmtKind::kDeclScalar:
        if (s.has_init) {
          assign(s.name, s.e1);
        } else {
          env_.vars.erase(s.name);
        }
        return;
      case ir::StmtKind::kAssign:
        assign(s.name, s.e1);
        return;
      case ir::StmtKind::kReadParam:
        // Parameter values live in the smpi world, not the static frame.
        env_.vars.erase(s.name);
        return;
      case ir::StmtKind::kSend:
      case ir::StmtKind::kRecv:
      case ir::StmtKind::kIsend:
      case ir::StmtKind::kIrecv:
        record_comm(s);
        return;
      case ir::StmtKind::kFor:
        walk_for(s);
        return;
      case ir::StmtKind::kIf:
        walk_if(s);
        return;
      case ir::StmtKind::kCall: {
        const ir::Procedure* proc = prog_.find_procedure(s.name);
        if (proc != nullptr && block_has_comm(proc->body)) {
          ++depth_;
          walk_block(proc->body);
          --depth_;
        }
        return;
      }
      default:
        return;  // compute/collectives/timers: no placement signal
    }
  }

  void walk_for(const ir::Stmt& s) {
    if (!block_has_comm(s.body)) return;
    std::int64_t lo = 0, hi = 0;
    bool bounded = true;
    try {
      lo = s.e1.eval_int(env_);
      hi = s.e2.eval_int(env_);
    } catch (...) {
      bounded = false;
    }
    ++depth_;
    if (!bounded) {
      // Unknown trip space: walk the body once with the loop variable
      // unresolved, so peer expressions independent of it still evaluate.
      env_.vars.erase(s.name);
      walk_block(s.body);
    } else if (hi >= lo) {
      // Sample the boundary iterations: neighbour-exchange peers are
      // either loop-invariant or shift by one between iterations, so
      // {lo, lo+1, hi} covers the edge structure without executing the
      // full (possibly huge) trip count.
      const std::int64_t samples[3] = {lo, std::min(lo + 1, hi), hi};
      std::int64_t prev = lo - 1;
      for (std::int64_t v : samples) {
        if (v == prev) continue;
        prev = v;
        env_.vars[s.name] = sym::Value(v);
        walk_block(s.body);
      }
      env_.vars.erase(s.name);
    }
    --depth_;
  }

  void walk_if(const ir::Stmt& s) {
    bool taken = false;
    bool resolved = true;
    try {
      taken = s.e1.eval(env_).as_bool();
    } catch (...) {
      resolved = false;
    }
    ++depth_;
    if (resolved) {
      walk_block(taken ? s.body : s.else_body);
    } else {
      // Condition unknown: both branches may run for some rank; an edge
      // recorded from an untaken branch only perturbs the heuristic.
      walk_block(s.body);
      walk_block(s.else_body);
    }
    --depth_;
  }

  void assign(const std::string& name, const sym::Expr& e) {
    try {
      env_.vars[name] = e.eval(env_);
    } catch (...) {
      env_.vars.erase(name);  // rhs unresolvable: the name becomes unknown
    }
  }

  const ir::Program& prog_;
  const int nprocs_;
  const int rank_;
  simk::Affinity* aff_;
  VarEnv env_;
  std::unordered_map<const ir::Stmt*, bool> comm_memo_;
  int depth_ = 0;
};

}  // namespace

simk::Affinity comm_affinity(const ir::Program& prog, int nprocs) {
  simk::Affinity aff(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    Walker w(prog, nprocs, r, &aff);
    w.walk_block(prog.main());
  }
  return aff;
}

}  // namespace stgsim::harness
