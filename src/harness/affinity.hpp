// Static communication-affinity extraction for comm-aware partitioning.
//
// comm_affinity() walks the target program once per rank, evaluating the
// scalar environment far enough to resolve communication peers (kGetRank /
// kGetSize seed the frame; assignments and loop variables propagate), and
// accumulates an undirected rank-affinity graph weighted by transferred
// bytes. The walk is a *static heuristic*, not an execution: loops are
// sampled at their first, second and last iterations, both branches of an
// unresolvable kIf are visited, and any peer expression that does not
// evaluate is skipped. Collectives are ignored — their traffic touches all
// partitions regardless of the mapping, so they carry no placement signal.
//
// The result feeds simk::comm_partition (--partition=comm). Inaccuracy is
// harmless: the partition never affects simulated results, only which
// worker executes each rank.
#pragma once

#include "ir/program.hpp"
#include "sim/partition.hpp"

namespace stgsim::harness {

/// Builds the rank-affinity graph of `prog` on `nprocs` ranks.
simk::Affinity comm_affinity(const ir::Program& prog, int nprocs);

}  // namespace stgsim::harness
