#include "harness/config_json.hpp"

#include <stdexcept>

#include "apps/registry.hpp"
#include "fault/fault.hpp"
#include "harness/digest.hpp"
#include "harness/machines.hpp"
#include "sim/partition.hpp"
#include "support/errors.hpp"

namespace stgsim::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv64(const std::string& bytes) {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Stringifies a scenario/config option value the way it would be typed on
/// a command line: strings verbatim, numbers canonically, bools as 0/1.
std::string option_to_string(const std::string& key, const json::Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_number()) return json::format_double(v.as_number());
  if (v.is_bool()) return v.as_bool() ? "1" : "0";
  throw std::runtime_error("option '" + key +
                           "' must be a string, number or bool");
}

}  // namespace

const std::vector<std::string>& published_schema_versions() {
  // Every tag kSimulatorVersion has ever carried. The schema only grows
  // additively (new optional keys with defaults), so a document written
  // for any published version parses under the current reader; the list
  // exists to *reject* documents from the future, not to branch readers.
  static const std::vector<std::string> kVersions = {
      "stgsim-5", "stgsim-6", "stgsim-7", "stgsim-8"};
  return kVersions;
}

bool schema_version_supported(const std::string& name) {
  for (const std::string& v : published_schema_versions()) {
    if (v == name) return true;
  }
  return false;
}

const char* mode_key(Mode m) {
  switch (m) {
    case Mode::kMeasured: return "measured";
    case Mode::kDirectExec: return "de";
    case Mode::kAnalytical: return "am";
  }
  return "?";
}

Mode parse_mode(const std::string& key) {
  if (key == "measured") return Mode::kMeasured;
  if (key == "de") return Mode::kDirectExec;
  if (key == "am") return Mode::kAnalytical;
  throw std::runtime_error("unknown mode '" + key +
                           "' (expected measured|de|am)");
}

json::Value params_to_json(const std::map<std::string, double>& params) {
  json::Value out = json::Value::object();
  for (const auto& [name, value] : params) out.set(name, json::Value(value));
  return out;
}

std::map<std::string, double> params_from_json(const json::Value& v) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : v.as_object()) {
    out[name] = value.as_number();
  }
  return out;
}

json::Value run_config_to_json(const RunConfig& config) {
  json::Value out = json::Value::object();
  out.set("procs", json::Value(config.nprocs));
  out.set("mode", json::Value(mode_key(config.mode)));
  out.set("machine", json::Value(machine_spec_string(config.machine)));
  out.set("workers", json::Value(config.threads));
  out.set("partition",
          json::Value(simk::partition_mode_name(config.partition)));
  out.set("schedule", json::Value(schedule_name(config.schedule)));
  out.set("gvt_interval",
          json::Value(static_cast<double>(config.gvt_interval)));
  out.set("checkpoint_interval",
          json::Value(static_cast<double>(config.checkpoint_interval)));
  out.set("checkpoint_adaptive", json::Value(config.checkpoint_adaptive));
  out.set("speculation_window_sec",
          json::Value(config.speculation_window_sec));
  out.set("abstract_comm", json::Value(config.abstract_comm));
  out.set("memory_cap_mb",
          json::Value(static_cast<double>(config.memory_cap_bytes) /
                      (1024.0 * 1024.0)));
  out.set("fiber_stack_kb",
          json::Value(static_cast<double>(config.fiber_stack_bytes) / 1024.0));
  out.set("seed", json::Value(static_cast<double>(config.seed)));
  out.set("fault", json::Value(config.faults.to_string()));
  out.set("max_vtime_ns",
          json::Value(static_cast<double>(config.max_virtual_time)));
  out.set("max_messages",
          json::Value(static_cast<double>(config.max_messages)));
  out.set("max_host_sec", json::Value(config.max_host_seconds));
  out.set("params", params_to_json(config.params));
  return out;
}

namespace {

/// Applies one RunConfig schema key. Returns false when the key does not
/// belong to the RunConfig part of the schema (so RunSpec parsing can
/// route its own keys and reject true unknowns with a full key list).
bool apply_config_key(RunConfig* config, const std::string& key,
                      const json::Value& value) {
  if (key == "procs") {
    config->nprocs = static_cast<int>(value.as_int());
    if (config->nprocs <= 0) {
      throw std::runtime_error("procs must be positive");
    }
  } else if (key == "mode") {
    config->mode = parse_mode(value.as_string());
  } else if (key == "machine") {
    config->machine = parse_machine_spec(value.as_string());
  } else if (key == "workers") {
    config->threads = static_cast<int>(value.as_int());
  } else if (key == "partition") {
    if (!simk::parse_partition_mode(value.as_string(), &config->partition)) {
      throw std::runtime_error("unknown partition mode '" +
                               value.as_string() +
                               "' (expected block|interleave|comm)");
    }
  } else if (key == "schedule") {
    if (!parse_schedule(value.as_string(), &config->schedule)) {
      throw std::runtime_error("unknown schedule '" + value.as_string() +
                               "' (expected conservative|optimistic)");
    }
  } else if (key == "gvt_interval") {
    const std::int64_t n = value.as_int();
    if (n < 0) throw std::runtime_error("gvt_interval must be >= 0");
    config->gvt_interval = static_cast<std::uint64_t>(n);
  } else if (key == "checkpoint_interval") {
    const std::int64_t n = value.as_int();
    if (n < 0) throw std::runtime_error("checkpoint_interval must be >= 0");
    config->checkpoint_interval = static_cast<std::uint64_t>(n);
  } else if (key == "checkpoint_adaptive") {
    config->checkpoint_adaptive = value.as_bool();
  } else if (key == "speculation_window_sec") {
    config->speculation_window_sec = value.as_number();
    if (config->speculation_window_sec < 0.0) {
      throw std::runtime_error("speculation_window_sec must be >= 0");
    }
  } else if (key == "abstract_comm") {
    config->abstract_comm = value.as_bool();
  } else if (key == "memory_cap_mb") {
    config->memory_cap_bytes =
        static_cast<std::size_t>(value.as_number() * 1024.0 * 1024.0);
  } else if (key == "fiber_stack_kb") {
    config->fiber_stack_bytes =
        static_cast<std::size_t>(value.as_number() * 1024.0);
  } else if (key == "seed") {
    config->seed = static_cast<std::uint64_t>(value.as_number());
  } else if (key == "fault") {
    config->faults = value.as_string().empty()
                         ? fault::FaultPlan{}
                         : fault::parse_fault_plan(value.as_string());
  } else if (key == "max_vtime_ns") {
    config->max_virtual_time = static_cast<VTime>(value.as_number());
  } else if (key == "max_messages") {
    config->max_messages = static_cast<std::uint64_t>(value.as_number());
  } else if (key == "max_host_sec") {
    config->max_host_seconds = value.as_number();
  } else if (key == "params") {
    config->params = params_from_json(value);
  } else {
    return false;
  }
  return true;
}

}  // namespace

RunConfig run_config_from_json(const json::Value& v) {
  RunConfig config;
  for (const auto& [key, value] : v.as_object()) {
    if (!apply_config_key(&config, key, value)) {
      throw std::runtime_error("unknown RunConfig key '" + key + "'");
    }
  }
  return config;
}

json::Value run_spec_to_json(const RunSpec& spec) {
  json::Value out = run_config_to_json(spec.config);
  apps::AppSpec app;
  app.name = spec.app;
  app.options = spec.app_options;
  app = apps::canonical_app_spec(app);
  out.set("app", json::Value(app.name));
  json::Value opts = json::Value::object();
  for (const auto& [name, value] : app.options) {
    opts.set(name, json::Value(value));
  }
  out.set("options", opts);
  // `calibrate` describes how w_i params get produced, so it only means
  // something for analytical runs that do not carry them inline. Emitting 0
  // otherwise keeps it out of the digest: a de run swept with
  // "calibrate": 16 must hit the same cache entry as one without, and a
  // resolved analytical run is fully determined by its params.
  const bool calibration_relevant =
      spec.config.mode == Mode::kAnalytical && spec.config.params.empty();
  out.set("calibrate",
          json::Value(calibration_relevant ? spec.calibrate_procs : 0));
  return out;
}

RunSpec run_spec_from_json(const json::Value& v) {
  RunSpec spec;
  for (const auto& [key, value] : v.as_object()) {
    if (key == "schema") {
      // Optional explicit version tag (the canonical dump omits it so
      // digests and cache keys are version-bump events, not per-document
      // bytes). Unknown or future versions are rejected with structure:
      // a newer simulator's document must not be silently misread.
      const std::string& name = value.as_string();
      if (!schema_version_supported(name)) {
        json::Value supported = json::Value::array();
        for (const std::string& s : published_schema_versions()) {
          supported.push_back(json::Value(s));
        }
        json::Value detail = json::Value::object();
        detail.set("requested", json::Value(name));
        detail.set("supported", supported);
        throw errors::StructuredError(
            "usage.unsupported_schema", errors::kCategoryUsage,
            "run-spec schema '" + name +
                "' is not supported by this build (current: " +
                kSimulatorVersion + ")",
            detail);
      }
    } else if (key == "app") {
      spec.app = value.as_string();
    } else if (key == "options") {
      for (const auto& [name, ov] : value.as_object()) {
        spec.app_options[name] = option_to_string(name, ov);
      }
    } else if (key == "calibrate") {
      spec.calibrate_procs = static_cast<int>(value.as_int());
    } else if (!apply_config_key(&spec.config, key, value)) {
      throw std::runtime_error("unknown run-spec key '" + key + "'");
    }
  }
  if (spec.app.empty()) {
    throw std::runtime_error("run spec is missing required key 'app'");
  }
  // Canonicalize eagerly so a bad app name / option / value fails at parse
  // time, and so to_json(from_json(x)) is already in canonical form.
  apps::AppSpec app;
  app.name = spec.app;
  app.options = spec.app_options;
  spec.app_options = apps::canonical_app_spec(app).options;
  return spec;
}

std::uint64_t run_spec_digest(const RunSpec& spec) {
  return fnv64(run_spec_to_json(spec).dump() + "|" + kSimulatorVersion);
}

std::string run_spec_digest_hex(const RunSpec& spec) {
  return hex16(run_spec_digest(spec));
}

std::uint64_t calibration_digest(const RunSpec& spec) {
  // Only what the calibration run depends on: app (canonical options),
  // machine, seed, and the calibration process count. Target-run fields
  // (procs, workers, budgets, faults) deliberately excluded — every
  // analytical point of a sweep shares one calibration.
  json::Value key = json::Value::object();
  apps::AppSpec app;
  app.name = spec.app;
  app.options = spec.app_options;
  app = apps::canonical_app_spec(app);
  key.set("kind", json::Value("calibration"));
  key.set("app", json::Value(app.name));
  json::Value opts = json::Value::object();
  for (const auto& [name, value] : app.options) {
    opts.set(name, json::Value(value));
  }
  key.set("options", opts);
  key.set("machine", json::Value(machine_spec_string(spec.config.machine)));
  key.set("seed", json::Value(static_cast<double>(spec.config.seed)));
  key.set("procs", json::Value(spec.calibrate_procs));
  return fnv64(key.dump() + "|" + kSimulatorVersion);
}

std::string calibration_digest_hex(const RunSpec& spec) {
  return hex16(calibration_digest(spec));
}

// ---------------------------------------------------------------------------
// RunOutcome serialization

namespace {

json::Value rank_stats_to_json(const smpi::RankStats& s) {
  json::Value out = json::Value::object();
  out.set("compute_ns", json::Value(static_cast<double>(s.compute_time)));
  out.set("comm_ns", json::Value(static_cast<double>(s.comm_time)));
  out.set("sends", json::Value(static_cast<double>(s.sends)));
  out.set("recvs", json::Value(static_cast<double>(s.recvs)));
  out.set("collectives", json::Value(static_cast<double>(s.collectives)));
  out.set("delays", json::Value(static_cast<double>(s.delays)));
  out.set("bytes_sent", json::Value(static_cast<double>(s.bytes_sent)));
  return out;
}

smpi::RankStats rank_stats_from_json(const json::Value& v) {
  smpi::RankStats s;
  s.compute_time = static_cast<VTime>(v.at("compute_ns").as_number());
  s.comm_time = static_cast<VTime>(v.at("comm_ns").as_number());
  s.sends = static_cast<std::uint64_t>(v.at("sends").as_number());
  s.recvs = static_cast<std::uint64_t>(v.at("recvs").as_number());
  s.collectives =
      static_cast<std::uint64_t>(v.at("collectives").as_number());
  s.delays = static_cast<std::uint64_t>(v.at("delays").as_number());
  s.bytes_sent = static_cast<std::uint64_t>(v.at("bytes_sent").as_number());
  return s;
}

json::Value hist_to_json(const std::vector<std::uint64_t>& hist) {
  json::Value out = json::Value::array();
  for (const std::uint64_t v : hist) {
    out.push_back(json::Value(static_cast<double>(v)));
  }
  return out;
}

std::vector<std::uint64_t> hist_from_json(const json::Value& v) {
  std::vector<std::uint64_t> out;
  for (const auto& e : v.as_array()) {
    out.push_back(static_cast<std::uint64_t>(e.as_number()));
  }
  return out;
}

RunStatus parse_run_status(const std::string& name) {
  for (const RunStatus s :
       {RunStatus::kOk, RunStatus::kOutOfMemory, RunStatus::kDeadlock,
        RunStatus::kBudgetExceeded, RunStatus::kInternalError}) {
    if (name == run_status_name(s)) return s;
  }
  throw std::runtime_error("unknown run status '" + name + "'");
}

}  // namespace

json::Value outcome_to_json(const RunOutcome& outcome) {
  json::Value out = json::Value::object();
  out.set("status", json::Value(run_status_name(outcome.status)));
  out.set("diagnostic", json::Value(outcome.diagnostic));
  out.set("nprocs", json::Value(outcome.nprocs));
  out.set("predicted_ns",
          json::Value(static_cast<double>(outcome.predicted_time)));
  json::Value per_rank = json::Value::array();
  for (const VTime t : outcome.per_rank) {
    per_rank.push_back(json::Value(static_cast<double>(t)));
  }
  out.set("per_rank_ns", per_rank);
  out.set("messages", json::Value(static_cast<double>(outcome.messages)));
  out.set("slices", json::Value(static_cast<double>(outcome.slices)));
  out.set("peak_target_bytes",
          json::Value(static_cast<double>(outcome.peak_target_bytes)));
  out.set("sim_host_seconds", json::Value(outcome.sim_host_seconds));
  out.set("stats", rank_stats_to_json(outcome.stats));
  json::Value per_rank_stats = json::Value::array();
  for (const auto& s : outcome.per_rank_stats) {
    per_rank_stats.push_back(rank_stats_to_json(s));
  }
  out.set("per_rank_stats", per_rank_stats);

  json::Value metrics = json::Value::object();
  json::Value scalars = json::Value::object();
  for (const auto& [name, value] : outcome.metrics.scalars) {
    scalars.set(name, json::Value(value));
  }
  metrics.set("scalars", scalars);
  metrics.set("msg_size_hist", hist_to_json(outcome.metrics.msg_size_hist));
  metrics.set("window_advance_hist",
              hist_to_json(outcome.metrics.window_advance_hist));
  metrics.set("rollback_depth_hist",
              hist_to_json(outcome.metrics.rollback_depth_hist));
  metrics.set("hop_hist", hist_to_json(outcome.metrics.hop_hist));
  json::Value links = json::Value::array();
  for (const auto& l : outcome.metrics.links) {
    json::Value link = json::Value::object();
    link.set("name", json::Value(l.name));
    link.set("messages", json::Value(static_cast<double>(l.messages)));
    link.set("bytes", json::Value(static_cast<double>(l.bytes)));
    links.push_back(link);
  }
  metrics.set("links", links);
  out.set("metrics", metrics);

  out.set("digest", json::Value(run_digest_hex(outcome)));
  return out;
}

RunOutcome outcome_from_json(const json::Value& v) {
  RunOutcome out;
  out.status = parse_run_status(v.at("status").as_string());
  out.diagnostic = v.at("diagnostic").as_string();
  out.nprocs = static_cast<int>(v.at("nprocs").as_int());
  out.predicted_time = static_cast<VTime>(v.at("predicted_ns").as_number());
  for (const auto& t : v.at("per_rank_ns").as_array()) {
    out.per_rank.push_back(static_cast<VTime>(t.as_number()));
  }
  out.messages = static_cast<std::uint64_t>(v.at("messages").as_number());
  out.slices = static_cast<std::uint64_t>(v.at("slices").as_number());
  out.peak_target_bytes =
      static_cast<std::size_t>(v.at("peak_target_bytes").as_number());
  out.sim_host_seconds = v.at("sim_host_seconds").as_number();
  out.stats = rank_stats_from_json(v.at("stats"));
  for (const auto& s : v.at("per_rank_stats").as_array()) {
    out.per_rank_stats.push_back(rank_stats_from_json(s));
  }
  const json::Value& metrics = v.at("metrics");
  for (const auto& [name, value] : metrics.at("scalars").as_object()) {
    out.metrics.add(name, value.as_number());
  }
  out.metrics.msg_size_hist = hist_from_json(metrics.at("msg_size_hist"));
  out.metrics.window_advance_hist =
      hist_from_json(metrics.at("window_advance_hist"));
  if (const json::Value* h = metrics.find("rollback_depth_hist")) {
    out.metrics.rollback_depth_hist = hist_from_json(*h);
  }
  out.metrics.hop_hist = hist_from_json(metrics.at("hop_hist"));
  for (const auto& l : metrics.at("links").as_array()) {
    out.metrics.links.push_back(
        {l.at("name").as_string(),
         static_cast<std::uint64_t>(l.at("messages").as_number()),
         static_cast<std::uint64_t>(l.at("bytes").as_number())});
  }
  out.metrics.nranks = out.nprocs;
  return out;
}

// ---------------------------------------------------------------------------
// Published JSON Schemas (`stgsim schema`)

namespace {

json::Value schema_type(const char* type, const char* description = nullptr) {
  json::Value t = json::Value::object();
  t.set("type", json::Value(type));
  if (description != nullptr) t.set("description", json::Value(description));
  return t;
}

json::Value schema_enum(std::initializer_list<const char*> values,
                        const char* description) {
  json::Value t = schema_type("string", description);
  json::Value e = json::Value::array();
  for (const char* v : values) e.push_back(json::Value(v));
  t.set("enum", e);
  return t;
}

json::Value schema_required(std::initializer_list<const char*> keys) {
  json::Value r = json::Value::array();
  for (const char* k : keys) r.push_back(json::Value(k));
  return r;
}

json::Value number_array_schema(const char* description) {
  json::Value t = schema_type("array", description);
  t.set("items", schema_type("number"));
  return t;
}

}  // namespace

json::Value run_spec_schema_json() {
  json::Value props = json::Value::object();
  {
    json::Value schema_versions = json::Value::array();
    for (const std::string& v : published_schema_versions()) {
      schema_versions.push_back(json::Value(v));
    }
    json::Value s = schema_type(
        "string",
        "optional explicit schema version; unknown versions are rejected "
        "with a structured error");
    s.set("enum", schema_versions);
    props.set("schema", s);
  }
  props.set("app", schema_type("string", "app registry name"));
  {
    json::Value opts = schema_type(
        "object", "app options; values are strings, numbers or bools");
    opts.set("additionalProperties", json::Value(true));
    props.set("options", opts);
  }
  props.set("procs", schema_type("integer", "target process count (>= 1)"));
  props.set("mode", schema_enum({"measured", "de", "am"}, "execution mode"));
  props.set("machine",
            schema_type("string",
                        "machine registry name or spec string, e.g. "
                        "ibm_sp[topo=fattree,radix=16,algo.bcast=binomial]"));
  props.set("workers",
            schema_type("integer",
                        "host worker threads (0 = sequential scheduler)"));
  props.set("partition", schema_enum({"block", "interleave", "comm"},
                                     "rank->worker placement policy"));
  props.set("schedule", schema_enum({"conservative", "optimistic"},
                                    "synchronization protocol"));
  props.set("gvt_interval",
            schema_type("integer", "committed events between GVT passes"));
  props.set("checkpoint_interval",
            schema_type("integer",
                        "committed consumes between per-rank checkpoints "
                        "(0 disables checkpoints)"));
  props.set("checkpoint_adaptive",
            schema_type("boolean", "auto-tune the checkpoint interval"));
  props.set("speculation_window_sec",
            schema_type("number",
                        "bounded-speculation window (0 = unbounded)"));
  props.set("abstract_comm",
            schema_type("boolean", "abstract communication model"));
  props.set("memory_cap_mb", schema_type("number", "simulated-data cap"));
  props.set("fiber_stack_kb", schema_type("number", "per-rank fiber stack"));
  props.set("seed", schema_type("number", "RNG seed"));
  props.set("fault",
            schema_type("string", "fault-plan clause string (empty = none)"));
  props.set("max_vtime_ns", schema_type("number", "virtual-time budget"));
  props.set("max_messages", schema_type("number", "message-count budget"));
  props.set("max_host_sec",
            schema_type("number", "host wall-clock watchdog budget"));
  {
    json::Value params = schema_type(
        "object", "inline w_i table for analytical runs (name -> sec/iter)");
    params.set("additionalProperties", schema_type("number"));
    props.set("params", params);
  }
  props.set("calibrate",
            schema_type("integer",
                        "calibration process count for analytical runs "
                        "without inline params (0 = none)"));

  json::Value schema = json::Value::object();
  schema.set("$id", json::Value(std::string(kSimulatorVersion) + "/run-spec"));
  schema.set("title", json::Value("stgsim RunSpec"));
  schema.set("description",
             json::Value("One fully-described simulation run. Canonical form "
                         "(defaults resolved, keys sorted) plus "
                         "kSimulatorVersion digests to the campaign cache "
                         "key. Unknown keys are rejected."));
  schema.set("type", json::Value("object"));
  schema.set("properties", props);
  schema.set("required", schema_required({"app"}));
  schema.set("additionalProperties", json::Value(false));
  return schema;
}

json::Value run_outcome_schema_json() {
  json::Value rank_stats = json::Value::object();
  rank_stats.set("type", json::Value("object"));
  {
    json::Value sp = json::Value::object();
    for (const char* k : {"compute_ns", "comm_ns", "sends", "recvs",
                          "collectives", "delays", "bytes_sent"}) {
      sp.set(k, schema_type("number"));
    }
    rank_stats.set("properties", sp);
    rank_stats.set("required",
                   schema_required({"compute_ns", "comm_ns", "sends", "recvs",
                                    "collectives", "delays", "bytes_sent"}));
  }

  json::Value props = json::Value::object();
  props.set("status",
            schema_enum({"ok", "out_of_memory", "deadlock", "budget_exceeded",
                         "internal_error"},
                        "RunOutcome status taxonomy"));
  props.set("diagnostic",
            schema_type("string", "failure description (empty when ok)"));
  props.set("nprocs", schema_type("integer"));
  props.set("predicted_ns",
            schema_type("number", "predicted target execution time"));
  props.set("per_rank_ns", number_array_schema("final clock per rank"));
  props.set("messages", schema_type("number"));
  props.set("slices", schema_type("number"));
  props.set("peak_target_bytes", schema_type("number"));
  props.set("sim_host_seconds",
            schema_type("number",
                        "simulator wall-clock (host-dependent; excluded from "
                        "digests and deterministic reports)"));
  props.set("stats", rank_stats);
  {
    json::Value prs = schema_type("array", "per-rank protocol counters");
    prs.set("items", rank_stats);
    props.set("per_rank_stats", prs);
  }
  {
    json::Value metrics = schema_type(
        "object", "deterministic observability counters and histograms");
    json::Value mp = json::Value::object();
    json::Value scalars = schema_type("object");
    scalars.set("additionalProperties", schema_type("number"));
    mp.set("scalars", scalars);
    mp.set("msg_size_hist", number_array_schema("log2 message-size buckets"));
    mp.set("window_advance_hist", number_array_schema(nullptr));
    mp.set("rollback_depth_hist", number_array_schema(nullptr));
    mp.set("hop_hist", number_array_schema(nullptr));
    {
      json::Value link = json::Value::object();
      link.set("type", json::Value("object"));
      json::Value lp = json::Value::object();
      lp.set("name", schema_type("string"));
      lp.set("messages", schema_type("number"));
      lp.set("bytes", schema_type("number"));
      link.set("properties", lp);
      json::Value links = schema_type("array", "per-link utilization");
      links.set("items", link);
      mp.set("links", links);
    }
    metrics.set("properties", mp);
    props.set("metrics", metrics);
  }
  props.set("digest",
            schema_type("string",
                        "64-bit run digest (hex): bit-identity contract "
                        "across schedulers and hosts"));

  json::Value schema = json::Value::object();
  schema.set("$id",
             json::Value(std::string(kSimulatorVersion) + "/run-outcome"));
  schema.set("title", json::Value("stgsim RunOutcome"));
  schema.set("description",
             json::Value("How a run ended, in the form campaign reports and "
                         "serve responses embed. Round-trips everything "
                         "reports and digests need; host trace excluded."));
  schema.set("type", json::Value("object"));
  schema.set("properties", props);
  schema.set("required",
             schema_required({"status", "diagnostic", "nprocs", "predicted_ns",
                              "per_rank_ns", "messages", "slices",
                              "peak_target_bytes", "sim_host_seconds", "stats",
                              "per_rank_stats", "metrics", "digest"}));
  schema.set("additionalProperties", json::Value(false));
  return schema;
}

}  // namespace stgsim::harness
