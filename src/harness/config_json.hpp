// One JSON schema for a run, shared by every front end.
//
// A RunSpec is the serializable description of one simulation run: the
// target app (by registry name + options), the resolved RunConfig, and an
// optional calibration dependency for analytical-model runs. The same
// schema is read from three places — `stgsim run --config file.json`,
// campaign scenario files (where any field may be a sweep list), and the
// bench harness — so config plumbing lives here once instead of being
// re-implemented per consumer.
//
// Canonicalization contract:
//   * to_json(spec) emits every field with defaults resolved (app options
//     filled from the registry, machine rendered as its canonical spec
//     string, fault plan as its canonical clause string), keys sorted.
//   * from_json(to_json(spec)) reproduces the spec exactly (up to the
//     "calibrate" count, which is canonicalized to 0 when the run's
//     prediction cannot depend on it — see run_spec_to_json), and
//     to_json is idempotent: dump(to_json(from_json(j))) is a pure
//     function of the *meaning* of j, not its formatting.
//   * run_spec_digest() hashes that canonical dump plus the simulator
//     version — the campaign cache key. Any field that can change a
//     prediction (seed, machine override, fault plan, params, ...)
//     changes the digest; formatting of the input JSON never does.
//
// RunOutcome serialization round-trips everything the aggregate reports
// and the run digest need (per-rank clocks and stats, counters, metrics);
// host-side trace data is excluded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "support/json.hpp"

namespace stgsim::harness {

/// Bumped whenever simulated predictions can legitimately change (machine
/// models, protocol costs, app kernels). Part of every cache key, so stale
/// campaign caches invalidate wholesale instead of serving results from an
/// older simulator.
inline constexpr const char kSimulatorVersion[] = "stgsim-8";

/// The RunSpec/RunOutcome JSON is a *public wire schema*: clients of the
/// serve daemon and config files on disk both speak it. Published versions,
/// oldest first; the last entry is always kSimulatorVersion. A document may
/// carry an explicit "schema" key naming its version — run_spec_from_json
/// accepts any published version (the schema has only ever grown
/// additively, so older documents parse under the current reader) and
/// rejects unknown/future versions with a structured error listing the
/// supported set, instead of misreading a document written for a newer
/// simulator.
const std::vector<std::string>& published_schema_versions();

/// True iff `name` appears in published_schema_versions().
bool schema_version_supported(const std::string& name);

/// JSON Schema documents for the public wire surface, printed by
/// `stgsim schema`. Ids: "<kSimulatorVersion>/run-spec" and
/// "<kSimulatorVersion>/run-outcome".
json::Value run_spec_schema_json();
json::Value run_outcome_schema_json();

/// Short mode keys used by the CLI and all JSON schemas:
/// "measured" / "de" / "am" (mode_name() stays the display form).
const char* mode_key(Mode m);
Mode parse_mode(const std::string& key);  ///< throws on unknown keys

/// One fully-described run: target app + resolved configuration.
struct RunSpec {
  std::string app;  ///< registry name (apps/registry.hpp)
  std::map<std::string, std::string> app_options;
  RunConfig config;
  /// For kAnalytical runs with no inline params: calibrate w_i at this
  /// process count first (on the same machine and seed). 0 = none.
  int calibrate_procs = 0;
};

/// RunConfig <-> JSON (without the app — used inside RunSpec's schema).
json::Value run_config_to_json(const RunConfig& config);
RunConfig run_config_from_json(const json::Value& v);

/// RunSpec <-> JSON. from_json rejects unknown keys with a structured
/// error; to_json emits the canonical (defaults-resolved, sorted) form.
json::Value run_spec_to_json(const RunSpec& spec);
RunSpec run_spec_from_json(const json::Value& v);

/// Content-address of a run: FNV-1a over the canonical spec dump and
/// kSimulatorVersion. Two specs digest equally iff they would simulate
/// the same thing on this simulator version.
std::uint64_t run_spec_digest(const RunSpec& spec);
std::string run_spec_digest_hex(const RunSpec& spec);

/// Cache key of the calibration run a RunSpec depends on: the same app /
/// machine / seed, measured at `calibrate_procs` ranks with timers on.
std::uint64_t calibration_digest(const RunSpec& spec);
std::string calibration_digest_hex(const RunSpec& spec);

/// RunOutcome <-> JSON. Everything reports and digests need round-trips;
/// host_trace and the parallel protocol counters (host-timing dependent)
/// are excluded.
json::Value outcome_to_json(const RunOutcome& outcome);
RunOutcome outcome_from_json(const json::Value& v);

/// Params table (w_i) <-> JSON object.
json::Value params_to_json(const std::map<std::string, double>& params);
std::map<std::string, double> params_from_json(const json::Value& v);

}  // namespace stgsim::harness
