#include "harness/digest.hpp"

#include <algorithm>
#include <sstream>

namespace stgsim::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= kFnvPrime;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace

std::uint64_t run_digest(const RunOutcome& outcome) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(outcome.status));
  f.mix(static_cast<std::uint64_t>(outcome.nprocs));
  f.mix_signed(outcome.predicted_time);
  f.mix(static_cast<std::uint64_t>(outcome.per_rank.size()));
  for (VTime t : outcome.per_rank) f.mix_signed(t);
  f.mix(outcome.messages);
  f.mix(static_cast<std::uint64_t>(outcome.per_rank_stats.size()));
  for (const auto& s : outcome.per_rank_stats) {
    f.mix_signed(s.compute_time);
    f.mix_signed(s.comm_time);
    f.mix(s.sends);
    f.mix(s.recvs);
    f.mix(s.collectives);
    f.mix(s.delays);
    f.mix(s.bytes_sent);
  }
  return f.value();
}

std::string run_digest_hex(const RunOutcome& outcome) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t v = run_digest(outcome);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string describe_run_divergence(const RunOutcome& a, const RunOutcome& b) {
  // Mirrors run_digest's field coverage: every comparison below is over a
  // digest-covered quantity, so (digest(a) == digest(b)) iff this returns
  // the empty string.
  std::ostringstream os;
  int reported = 0;
  auto report = [&](const std::string& what, auto va, auto vb) {
    if (reported > 0) os << "; ";
    if (reported >= 8) return false;  // enough to act on
    os << what << ": " << va << " vs " << vb;
    ++reported;
    return true;
  };
  if (a.status != b.status) {
    report("status", run_status_name(a.status), run_status_name(b.status));
  }
  if (a.nprocs != b.nprocs) report("nprocs", a.nprocs, b.nprocs);
  if (a.predicted_time != b.predicted_time) {
    report("predicted completion vtime", a.predicted_time, b.predicted_time);
  }
  if (a.per_rank.size() != b.per_rank.size()) {
    report("per-rank clock count", a.per_rank.size(), b.per_rank.size());
  } else {
    for (std::size_t r = 0; r < a.per_rank.size(); ++r) {
      if (a.per_rank[r] != b.per_rank[r]) {
        report("rank " + std::to_string(r) + " completion", a.per_rank[r],
               b.per_rank[r]);
      }
    }
  }
  if (a.messages != b.messages) {
    report("messages delivered", a.messages, b.messages);
  }
  if (a.per_rank_stats.size() != b.per_rank_stats.size()) {
    report("per-rank stats count", a.per_rank_stats.size(),
           b.per_rank_stats.size());
  } else {
    for (std::size_t r = 0; r < a.per_rank_stats.size(); ++r) {
      const auto& sa = a.per_rank_stats[r];
      const auto& sb = b.per_rank_stats[r];
      const std::string p = "rank " + std::to_string(r) + " ";
      if (sa.compute_time != sb.compute_time) {
        report(p + "compute vtime", sa.compute_time, sb.compute_time);
      }
      if (sa.comm_time != sb.comm_time) {
        report(p + "comm vtime", sa.comm_time, sb.comm_time);
      }
      if (sa.sends != sb.sends) report(p + "sends", sa.sends, sb.sends);
      if (sa.recvs != sb.recvs) report(p + "recvs", sa.recvs, sb.recvs);
      if (sa.collectives != sb.collectives) {
        report(p + "collectives", sa.collectives, sb.collectives);
      }
      if (sa.delays != sb.delays) report(p + "delays", sa.delays, sb.delays);
      if (sa.bytes_sent != sb.bytes_sent) {
        report(p + "bytes sent", sa.bytes_sent, sb.bytes_sent);
      }
    }
  }
  std::string msg = os.str();
  if (msg.empty() && run_digest(a) != run_digest(b)) {
    msg = "digests differ but no covered field does (digest bug?)";
  }
  return msg;
}

std::uint64_t deadlock_report_key(
    const std::vector<simk::DeadlockError::BlockedRank>& blocked) {
  // Sort a copy by rank so the key is insensitive to report ordering
  // (worker-grouped in threaded runs, rank-ordered in sequential ones).
  std::vector<const simk::DeadlockError::BlockedRank*> sorted;
  sorted.reserve(blocked.size());
  for (const auto& b : blocked) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* x, const auto* y) { return x->rank < y->rank; });
  Fnv f;
  f.mix(static_cast<std::uint64_t>(sorted.size()));
  for (const auto* b : sorted) {
    f.mix_signed(b->rank);
    f.mix_signed(b->clock);
    f.mix_signed(b->waiting_src);
    f.mix_signed(b->waiting_tag);
    f.mix(static_cast<std::uint64_t>(b->waiting_what.size()));
    for (char c : b->waiting_what) {
      f.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    // home_worker deliberately excluded: host placement, not protocol.
  }
  return f.value();
}

}  // namespace stgsim::harness
