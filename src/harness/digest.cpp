#include "harness/digest.hpp"

namespace stgsim::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= kFnvPrime;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace

std::uint64_t run_digest(const RunOutcome& outcome) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(outcome.status));
  f.mix(static_cast<std::uint64_t>(outcome.nprocs));
  f.mix_signed(outcome.predicted_time);
  f.mix(static_cast<std::uint64_t>(outcome.per_rank.size()));
  for (VTime t : outcome.per_rank) f.mix_signed(t);
  f.mix(outcome.messages);
  f.mix(static_cast<std::uint64_t>(outcome.per_rank_stats.size()));
  for (const auto& s : outcome.per_rank_stats) {
    f.mix_signed(s.compute_time);
    f.mix_signed(s.comm_time);
    f.mix(s.sends);
    f.mix(s.recvs);
    f.mix(s.collectives);
    f.mix(s.delays);
    f.mix(s.bytes_sent);
  }
  return f.value();
}

std::string run_digest_hex(const RunOutcome& outcome) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t v = run_digest(outcome);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace stgsim::harness
