// Run digests: a stable 64-bit fingerprint of everything a simulation run
// *predicts* — per-rank final virtual clocks, per-rank operation counts and
// delivered bytes — deliberately excluding host-side timings. Two runs that
// produce the same digest made bit-identical predictions, so the digest is
// the contract the engine's hot-path refactors are held to: any change to
// scheduling, matching, message memory, or expression evaluation must leave
// digests untouched across all apps and both schedulers.
#pragma once

#include <cstdint>
#include <string>

#include "harness/runner.hpp"

namespace stgsim::harness {

/// FNV-1a style digest over the deterministic outputs of a run: status,
/// rank count, per-rank completion clocks, total delivered messages, and
/// per-rank stats (compute/comm virtual time, sends, recvs, collectives,
/// delays, bytes sent). Host wall-clock and trace data are excluded.
std::uint64_t run_digest(const RunOutcome& outcome);

/// run_digest rendered as 16 lowercase hex digits.
std::string run_digest_hex(const RunOutcome& outcome);

/// Human-readable account of why two outcomes digest differently: names
/// the first few differing digest-covered fields ("rank 2 completion:
/// 10400 vs 10700; rank 2 recvs: 6 vs 7"). Empty string when the digests
/// agree. Used by the protocol checker to turn a bare digest mismatch
/// into an actionable counterexample report.
std::string describe_run_divergence(const RunOutcome& a, const RunOutcome& b);

/// Fingerprint of a structured deadlock report: covers (rank, clock,
/// waiting_src, waiting_tag, waiting_what) for every blocked rank,
/// deliberately ignoring home_worker (a host-placement detail that varies
/// with --workers but never with the schedule). Two deadlocks with equal
/// keys blocked the same ranks at the same virtual times on the same
/// operations.
std::uint64_t deadlock_report_key(
    const std::vector<simk::DeadlockError::BlockedRank>& blocked);

}  // namespace stgsim::harness
