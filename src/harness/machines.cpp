#include "harness/machines.hpp"

#include <functional>
#include <stdexcept>

#include "support/json.hpp"
#include "support/numparse.hpp"

namespace stgsim::harness {

namespace {

/// One overridable field: how to read it from a spec value and how to
/// render it when it differs from the base machine. Declared in canonical
/// order — machine_spec_string emits overrides in this order.
struct Field {
  const char* key;
  const char* description;
  std::function<void(MachineSpec*, double)> apply;
  std::function<double(const MachineSpec&)> get;
};

const std::vector<Field>& fields() {
  static const std::vector<Field> f = {
      {"latency_us", "wire latency (microseconds)",
       [](MachineSpec* m, double v) { m->net.latency = vtime_from_us(v); },
       [](const MachineSpec& m) { return vtime_to_us(m.net.latency); }},
      {"bw", "sustained bandwidth (bytes/sec)",
       [](MachineSpec* m, double v) { m->net.bytes_per_sec = v; },
       [](const MachineSpec& m) { return m.net.bytes_per_sec; }},
      {"send_overhead_us", "sender CPU cost per message (microseconds)",
       [](MachineSpec* m, double v) { m->net.send_overhead = vtime_from_us(v); },
       [](const MachineSpec& m) { return vtime_to_us(m.net.send_overhead); }},
      {"recv_overhead_us", "receiver CPU cost per message (microseconds)",
       [](MachineSpec* m, double v) { m->net.recv_overhead = vtime_from_us(v); },
       [](const MachineSpec& m) { return vtime_to_us(m.net.recv_overhead); }},
      {"eager_threshold", "eager/rendezvous protocol switch (bytes)",
       [](MachineSpec* m, double v) {
         if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
           throw std::runtime_error("eager_threshold must be a whole byte count");
         }
         m->net.eager_threshold = static_cast<std::size_t>(v);
       },
       [](const MachineSpec& m) {
         return static_cast<double>(m.net.eager_threshold);
       }},
      {"flop_time_ns", "cost of one operation unit (nanoseconds)",
       [](MachineSpec* m, double v) { m->compute.flop_time_ns = v; },
       [](const MachineSpec& m) { return m.compute.flop_time_ns; }},
      {"cache_bytes", "effective cache capacity (bytes)",
       [](MachineSpec* m, double v) { m->compute.cache_bytes = v; },
       [](const MachineSpec& m) { return m.compute.cache_bytes; }},
      {"cache_penalty", "max slowdown factor when ws >> cache",
       [](MachineSpec* m, double v) { m->compute.cache_penalty = v; },
       [](const MachineSpec& m) { return m.compute.cache_penalty; }},
      {"net_jitter", "emulation-only wire noise stddev (fraction)",
       [](MachineSpec* m, double v) { m->emulation_net_jitter = v; },
       [](const MachineSpec& m) { return m.emulation_net_jitter; }},
      {"compute_jitter", "emulation-only per-task noise stddev (fraction)",
       [](MachineSpec* m, double v) { m->emulation_compute_jitter = v; },
       [](const MachineSpec& m) { return m.emulation_compute_jitter; }},
      {"contention", "emulation-only NIC serialization (0 or 1)",
       [](MachineSpec* m, double v) {
         if (v != 0.0 && v != 1.0) {
           throw std::runtime_error("contention must be 0 or 1");
         }
         m->emulation_contention = v != 0.0;
       },
       [](const MachineSpec& m) {
         return m.emulation_contention ? 1.0 : 0.0;
       }},
      {"hop_us", "per-switch-hop latency beyond the first link (microseconds)",
       [](MachineSpec* m, double v) {
         m->net.platform.hop_latency = vtime_from_us(v);
       },
       [](const MachineSpec& m) {
         return vtime_to_us(m.net.platform.hop_latency);
       }},
      {"radix", "fat-tree switch radix (even, >= 2)",
       [](MachineSpec* m, double v) {
         if (v < 2 || v != static_cast<double>(static_cast<int>(v))) {
           throw std::runtime_error("radix must be a whole number >= 2");
         }
         m->net.platform.fattree_radix = static_cast<int>(v);
       },
       [](const MachineSpec& m) {
         return static_cast<double>(m.net.platform.fattree_radix);
       }},
      {"df_routers", "dragonfly routers per group",
       [](MachineSpec* m, double v) {
         if (v < 1 || v != static_cast<double>(static_cast<int>(v))) {
           throw std::runtime_error("df_routers must be a whole number >= 1");
         }
         m->net.platform.df_routers = static_cast<int>(v);
       },
       [](const MachineSpec& m) {
         return static_cast<double>(m.net.platform.df_routers);
       }},
      {"df_hosts", "dragonfly hosts per router",
       [](MachineSpec* m, double v) {
         if (v < 1 || v != static_cast<double>(static_cast<int>(v))) {
           throw std::runtime_error("df_hosts must be a whole number >= 1");
         }
         m->net.platform.df_hosts = static_cast<int>(v);
       },
       [](const MachineSpec& m) {
         return static_cast<double>(m.net.platform.df_hosts);
       }},
      {"coll_ring_threshold",
       "auto collective algo: binomial below, ring at/above (bytes)",
       [](MachineSpec* m, double v) {
         if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
           throw std::runtime_error(
               "coll_ring_threshold must be a whole byte count");
         }
         m->coll.ring_threshold = static_cast<std::size_t>(v);
       },
       [](const MachineSpec& m) {
         return static_cast<double>(m.coll.ring_threshold);
       }},
  };
  return f;
}

/// One overridable string-valued field (topology / algorithm names), in
/// canonical order after the numeric fields.
struct StrField {
  std::string key;
  std::string description;
  std::function<void(MachineSpec*, const std::string&)> apply;
  std::function<std::string(const MachineSpec&)> get;
};

std::vector<int> parse_torus_dims(const std::string& value) {
  if (value == "auto") return {};
  std::vector<int> dims;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const auto x = value.find('x', pos);
    const std::string part =
        value.substr(pos, x == std::string::npos ? std::string::npos
                                                 : x - pos);
    long long n = 0;
    if (support::parse_i64(part, &n) != support::ParseNumStatus::kOk ||
        n < 1 || n > 1 << 20) {
      throw std::runtime_error(
          "torus_dims: expected 'auto' or positive extents like '4x4', got '" +
          value + "'");
    }
    dims.push_back(static_cast<int>(n));
    if (x == std::string::npos) break;
    pos = x + 1;
  }
  return dims;
}

std::string torus_dims_string(const std::vector<int>& dims) {
  if (dims.empty()) return "auto";
  std::string out;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i != 0) out += "x";
    out += std::to_string(dims[i]);
  }
  return out;
}

StrField coll_algo_str_field(const char* key, smpi::CollOp op) {
  // Descriptions enumerate the accepted names so the unknown-key error and
  // --list-machines output double as documentation.
  return {key,
          std::string(smpi::coll_op_name(op)) + " algorithm (" +
              smpi::coll_algo_choices(op) + ")",
          [op](MachineSpec* m, const std::string& v) {
            smpi::coll_algo_field(m->coll, op) = smpi::parse_coll_algo(op, v);
          },
          [op](const MachineSpec& m) {
            auto cfg = m.coll;
            return std::string(
                smpi::coll_algo_name(smpi::coll_algo_field(cfg, op)));
          }};
}

const std::vector<StrField>& str_fields() {
  static const std::vector<StrField> f = {
      {"topo", "platform topology (flat, torus, fattree, dragonfly)",
       [](MachineSpec* m, const std::string& v) {
         m->net.platform.topo = net::parse_topology(v);
       },
       [](const MachineSpec& m) {
         return std::string(net::topology_name(m.net.platform.topo));
       }},
      {"torus_dims", "torus extents ('4x4'; 'auto' = near-square 2D)",
       [](MachineSpec* m, const std::string& v) {
         m->net.platform.torus_dims = parse_torus_dims(v);
       },
       [](const MachineSpec& m) {
         return torus_dims_string(m.net.platform.torus_dims);
       }},
      coll_algo_str_field("algo.barrier", smpi::CollOp::kBarrier),
      coll_algo_str_field("algo.bcast", smpi::CollOp::kBcast),
      coll_algo_str_field("algo.reduce", smpi::CollOp::kReduce),
      coll_algo_str_field("algo.allreduce", smpi::CollOp::kAllreduce),
      coll_algo_str_field("algo.alltoall", smpi::CollOp::kAlltoall),
  };
  return f;
}

std::string known_keys() {
  std::string out;
  for (const auto& f : fields()) {
    if (!out.empty()) out += ", ";
    out += f.key;
  }
  for (const auto& f : str_fields()) {
    if (!out.empty()) out += ", ";
    out += f.key;
  }
  return out;
}

}  // namespace

std::vector<std::string> machine_names() { return {"ibm_sp", "origin2000"}; }

MachineSpec base_machine(const std::string& key) {
  if (key == "ibm_sp" || key == "sp") return ibm_sp_machine();
  if (key == "origin2000") return origin2000_machine();
  std::string known;
  for (const auto& n : machine_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::runtime_error("unknown machine '" + key +
                           "' (registered: " + known + ")");
}

const std::vector<std::pair<std::string, std::string>>&
machine_override_keys() {
  static const std::vector<std::pair<std::string, std::string>> keys = [] {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& f : fields()) out.emplace_back(f.key, f.description);
    for (const auto& f : str_fields()) out.emplace_back(f.key, f.description);
    return out;
  }();
  return keys;
}

MachineSpec parse_machine_spec(const std::string& spec) {
  const auto bracket = spec.find('[');
  if (bracket == std::string::npos) return base_machine(spec);
  if (spec.back() != ']') {
    throw std::runtime_error("malformed machine spec '" + spec +
                             "': missing closing ']'");
  }
  MachineSpec m = base_machine(spec.substr(0, bracket));
  const std::string body =
      spec.substr(bracket + 1, spec.size() - bracket - 2);
  if (body.empty()) return m;

  // Tolerates whitespace around items ("a=1, b=2") — spec strings written
  // by hand in JSON scenario files commonly space after commas.
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    return s.substr(b, s.find_last_not_of(" \t") - b + 1);
  };
  std::size_t pos = 0;
  bool overridden = false;
  while (pos <= body.size()) {
    const auto comma = body.find(',', pos);
    const std::string item =
        trim(body.substr(pos, comma == std::string::npos ? std::string::npos
                                                         : comma - pos));
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("malformed machine override '" + item +
                               "' (expected key=value)");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const Field* field = nullptr;
    for (const auto& f : fields()) {
      if (key == f.key) { field = &f; break; }
    }
    const StrField* sfield = nullptr;
    for (const auto& f : str_fields()) {
      if (key == f.key) { sfield = &f; break; }
    }
    if (field == nullptr && sfield == nullptr) {
      throw std::runtime_error("machine '" + m.key +
                               "' has no overridable field '" + key +
                               "' (accepted: " + known_keys() + ")");
    }
    if (field != nullptr) {
      double v = 0.0;
      const auto st = support::parse_f64(value, &v);
      if (st != support::ParseNumStatus::kOk) {
        throw std::runtime_error(
            "machine override '" + key + "': " +
            support::parse_num_problem(st, "expected a number") + ", got '" +
            value + "'");
      }
      field->apply(&m, v);
    } else {
      sfield->apply(&m, value);
    }
    overridden = true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (overridden) m.name += " [custom]";
  return m;
}

std::string machine_spec_string(const MachineSpec& m) {
  const MachineSpec base = base_machine(m.key);
  std::string overrides;
  for (const auto& f : fields()) {
    const double v = f.get(m);
    if (v == f.get(base)) continue;
    if (!overrides.empty()) overrides += ",";
    overrides += std::string(f.key) + "=" + json::format_double(v);
  }
  for (const auto& f : str_fields()) {
    const std::string v = f.get(m);
    if (v == f.get(base)) continue;
    if (!overrides.empty()) overrides += ",";
    overrides += f.key + "=" + v;
  }
  if (overrides.empty()) return m.key;
  return m.key + "[" + overrides + "]";
}

}  // namespace stgsim::harness
