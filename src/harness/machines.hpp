// Machine registry and spec-string parsing.
//
// The CLI and scenario files name target machines with a spec string:
//
//   "ibm_sp"                          — a registered base machine
//   "ibm_sp[latency_us=30,bw=120e6]"  — the base with field overrides
//
// Every NetworkParams / ComputeParams / emulation field is overridable, so
// a sweep can explore "what if the SP switch had half the latency" without
// recompiling. Unknown machine names and unknown override keys are
// structured errors listing the accepted alternatives — a typo must never
// silently fall back to a default machine (a campaign would cache the wrong
// prediction under the right-looking key).
//
// machine_spec_string() renders a MachineSpec back to its canonical spec:
// base key plus only the fields that differ from the registered base, in a
// fixed order, with shortest-round-trip numbers. parse_machine_spec() of
// that string reproduces the MachineSpec exactly, which makes the spec
// string safe to embed in cache keys and reports.
#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace stgsim::harness {

/// Keys of all registered base machines, in listing order.
std::vector<std::string> machine_names();

/// The registered base machine for `key` ("ibm_sp", "origin2000"; "sp" is
/// accepted as a legacy alias for "ibm_sp"). Throws std::runtime_error for
/// unknown keys.
MachineSpec base_machine(const std::string& key);

/// Override keys accepted inside [...] — for error messages and docs.
/// Each entry is {key, description}.
const std::vector<std::pair<std::string, std::string>>& machine_override_keys();

/// Parses "name" or "name[key=value,...]". Throws std::runtime_error with
/// the accepted keys on an unknown machine, an unknown override key, or a
/// malformed value.
MachineSpec parse_machine_spec(const std::string& spec);

/// Canonical spec string: base key, plus overrides for exactly the fields
/// that differ from the registered base. parse_machine_spec() round-trips.
std::string machine_spec_string(const MachineSpec& m);

}  // namespace stgsim::harness
