#include "harness/runner.hpp"

#include <algorithm>
#include <optional>

#include "harness/affinity.hpp"
#include "support/check.hpp"

namespace stgsim::harness {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kMeasured: return "measured";
    case Mode::kDirectExec: return "MPI-SIM-DE";
    case Mode::kAnalytical: return "MPI-SIM-AM";
  }
  return "?";
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kConservative: return "conservative";
    case Schedule::kOptimistic: return "optimistic";
  }
  return "?";
}

bool parse_schedule(const std::string& text, Schedule* out) {
  if (text == "conservative") {
    *out = Schedule::kConservative;
    return true;
  }
  if (text == "optimistic") {
    *out = Schedule::kOptimistic;
    return true;
  }
  return false;
}

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kOutOfMemory: return "out_of_memory";
    case RunStatus::kDeadlock: return "deadlock";
    case RunStatus::kBudgetExceeded: return "budget_exceeded";
    case RunStatus::kInternalError: return "internal_error";
  }
  return "?";
}

MachineSpec ibm_sp_machine() {
  MachineSpec m;
  m.name = "IBM SP";
  m.key = "ibm_sp";
  m.net = net::ibm_sp();
  m.compute = machine::ibm_sp_node();
  return m;
}

MachineSpec origin2000_machine() {
  MachineSpec m;
  m.name = "SGI Origin 2000";
  m.key = "origin2000";
  m.net = net::origin2000();
  m.compute = machine::origin2000_node();
  return m;
}

RunOutcome run_program(const ir::Program& prog, const RunConfig& config,
                       ir::TimerRecorder* timers, ir::BranchProfiler* branches,
                       ir::KernelMetaRecorder* kernel_meta) {
  STGSIM_CHECK_GT(config.nprocs, 0);

  smpi::World::Options wopts;
  wopts.net = config.machine.net;
  wopts.compute = config.machine.compute;
  if (config.mode == Mode::kMeasured) {
    // The "real machine" has the imperfections the simulator's model
    // ignores; this is where DE's (small) prediction error comes from.
    wopts.net.model_contention = config.machine.emulation_contention;
    wopts.net.jitter_frac = config.machine.emulation_net_jitter;
    wopts.compute.compute_jitter_frac = config.machine.emulation_compute_jitter;
  }

  if (config.abstract_comm) {
    wopts.comm_fidelity = smpi::World::Options::CommFidelity::kAbstract;
  }
  wopts.coll = config.machine.coll;
  wopts.faults = config.faults;
  wopts.obs = config.obs;
  wopts.unsafe_floor_slack = config.unsafe_floor_slack;

  simk::EngineConfig ec;
  ec.num_processes = config.nprocs;
  ec.memory_cap_bytes = config.memory_cap_bytes;
  ec.fiber_stack_bytes = config.fiber_stack_bytes;
  ec.seed = config.seed;
  ec.record_host_trace = config.record_host_trace;
  ec.max_virtual_time = config.max_virtual_time;
  ec.max_messages = config.max_messages;
  ec.max_host_seconds = config.max_host_seconds;
  ec.observer = config.obs;
  ec.oracle = config.oracle;
  ec.unsafe_wildcard_commit = config.unsafe_wildcard_commit;
  const bool optimistic = config.schedule == Schedule::kOptimistic;
  if (optimistic) {
    ec.optimistic = true;
    ec.unsafe_commit_before_gvt = config.unsafe_commit_before_gvt;
    if (config.gvt_interval > 0) ec.gvt_interval = config.gvt_interval;
    ec.checkpoint_interval = config.checkpoint_interval;
    ec.checkpoint_adaptive = config.checkpoint_adaptive;
    if (config.speculation_window_sec > 0.0) {
      ec.speculation_window = vtime_from_sec(config.speculation_window_sec);
    }
    STGSIM_CHECK(config.mode != Mode::kMeasured)
        << "optimistic schedule: emulation (contention/jitter state) cannot "
           "be rolled back";
    STGSIM_CHECK(timers == nullptr && branches == nullptr &&
                 kernel_meta == nullptr)
        << "optimistic schedule: calibration/profiling recorders cannot be "
           "rolled back";
    STGSIM_CHECK(!config.record_host_trace)
        << "optimistic schedule: host traces of rolled-back slices are "
           "meaningless";
  } else {
    STGSIM_CHECK(!config.unsafe_commit_before_gvt)
        << "unsafe_commit_before_gvt requires the optimistic schedule";
  }
  if (config.threads > 0) {
    ec.host_workers = config.threads;
    ec.use_threads = true;
    STGSIM_CHECK(timers == nullptr && branches == nullptr)
        << "calibration/profiling require the sequential scheduler";
    STGSIM_CHECK(config.mode != Mode::kMeasured)
        << "emulation (NIC contention state) is sequential-only";
    if (config.partition != simk::PartitionMode::kBlock &&
        config.threads > 1) {
      if (config.partition == simk::PartitionMode::kComm) {
        const simk::Affinity aff = comm_affinity(prog, config.nprocs);
        ec.partition = simk::make_partition(config.partition, config.nprocs,
                                            config.threads, &aff);
      } else {
        ec.partition = simk::make_partition(config.partition, config.nprocs,
                                            config.threads, nullptr);
      }
    }
  }

  simk::Engine engine(ec);
  ir::ExecOptions xopts;
  xopts.timers = timers;
  xopts.branches = branches;
  xopts.kernel_meta = kernel_meta;

  RunOutcome out;
  out.nprocs = config.nprocs;
  // World construction builds the routed platform, which validates the
  // topology parameters (torus extents vs rank count, fat-tree radix, ...)
  // and can throw — inside the try so a bad platform config becomes an
  // internal_error outcome, like any other model-check failure.
  std::optional<smpi::World> world;
  try {
    world.emplace(wopts, config.nprocs);
    for (const auto& [k, v] : config.params) world->set_param(k, v);
    if (config.obs != nullptr) {
      // Per-link utilization + hop histogram; relaxed atomic counters that
      // never feed back into timing, so digests stay identical.
      world->network().enable_link_stats();
    }
    // Wildcard (ANY_SOURCE/waitany) commits — and the threaded scheduler's
    // lookahead window — are gated on the latency floor; set it up front so
    // even a run whose first operation is a wildcard receive is bounded
    // correctly. The floor includes the fault plan's always-on global
    // latency factors (a sound, possibly larger bound that never changes
    // which candidate commits).
    engine.set_wildcard_min_latency(world->wildcard_latency_floor());
    if (optimistic) {
      // Rollback must also rewind the layers above the engine that keep
      // per-rank state: smpi protocol counters and the obs shard. Both are
      // rebuilt exactly by the coast-forward replay. (Comm itself lives on
      // the fiber stack and is recreated with the fiber.)
      engine.set_rollback_reset([&world, &config](int rank) {
        world->stats(rank) = smpi::RankStats{};
        if (config.obs != nullptr) config.obs->reset_rank(rank);
      });
    }
    engine.set_body([&](simk::Process& p) {
      smpi::Comm comm(*world, p);
      ir::execute(prog, comm, xopts);
    });
    simk::RunResult rr = engine.run();
    out.predicted_time = rr.completion;
    out.per_rank = std::move(rr.per_rank_completion);
    out.sim_host_seconds = rr.host_seconds;
    out.peak_target_bytes = rr.peak_target_bytes;
    out.messages = rr.messages_delivered;
    out.slices = rr.slices;
    out.stats = world->aggregate_stats();
    out.per_rank_stats = world->all_stats();
    if (config.record_host_trace) out.host_trace = engine.host_trace();
    out.parallel = engine.parallel_stats();
    if (config.obs != nullptr) {
      out.metrics = config.obs->snapshot();
      const auto ps = engine.payload_stats();
      const auto as = engine.arena_stats();
      out.metrics.add("pool.payload_outstanding",
                      static_cast<double>(ps.outstanding));
      out.metrics.add("pool.payload_retained_bytes",
                      static_cast<double>(ps.retained_bytes));
      out.metrics.add("pool.msg_arena_live", static_cast<double>(as.live));
      out.metrics.add("pool.msg_arena_capacity",
                      static_cast<double>(as.capacity));
      out.metrics.add("memory.peak_target_bytes",
                      static_cast<double>(rr.peak_target_bytes));
      out.metrics.add("engine.messages_delivered",
                      static_cast<double>(rr.messages_delivered));
      out.metrics.add("engine.fiber_slices", static_cast<double>(rr.slices));
      out.metrics.hop_hist = world->network().hop_hist();
      for (const auto& l : world->network().link_usage()) {
        out.metrics.links.push_back({l.name, l.messages, l.bytes});
      }
      if (config.threads > 1) {
        // Threaded-conservative protocol metrics. Message-locality counts
        // are deterministic for a fixed partition; rounds and the
        // mailbox/barrier split depend on host timing and are excluded
        // from digests.
        const simk::ParallelStats& ps2 = out.parallel;
        out.metrics.add("parallel.workers",
                        static_cast<double>(config.threads));
        out.metrics.add("parallel.rounds", static_cast<double>(ps2.rounds));
        out.metrics.add("parallel.intra_messages",
                        static_cast<double>(ps2.intra_messages));
        out.metrics.add("parallel.mailbox_messages",
                        static_cast<double>(ps2.mailbox_messages));
        out.metrics.add("parallel.barrier_messages",
                        static_cast<double>(ps2.barrier_messages));
        out.metrics.add("parallel.cross_messages",
                        static_cast<double>(ps2.cross_messages()));
        for (std::size_t w = 0; w < ps2.worker_busy_vtime.size(); ++w) {
          const std::string prefix =
              "parallel.worker" + std::to_string(w) + ".";
          const double busy = vtime_to_sec(ps2.worker_busy_vtime[w]);
          out.metrics.add(prefix + "busy_vtime_sec", busy);
          out.metrics.add(
              prefix + "idle_vtime_sec",
              std::max(0.0, vtime_to_sec(rr.completion) - busy));
          out.metrics.add(prefix + "slices",
                          static_cast<double>(ps2.worker_slices[w]));
        }
        out.metrics.window_advance_hist = ps2.window_advance_hist;
      }
      if (optimistic) {
        // Time Warp protocol counters. Deterministic for sequential-hosted
        // optimistic runs; under the threaded scheduler rollback counts
        // depend on host timing and are excluded from digests (like
        // rounds / the mailbox split above).
        const simk::ParallelStats& ps3 = out.parallel;
        out.metrics.add("parallel.rollbacks",
                        static_cast<double>(ps3.rollbacks));
        out.metrics.add("parallel.anti_messages",
                        static_cast<double>(ps3.anti_messages));
        out.metrics.add("parallel.gvt_passes",
                        static_cast<double>(ps3.gvt_passes));
        out.metrics.add("parallel.fossil_finalized",
                        static_cast<double>(ps3.fossil_finalized));
        out.metrics.add("parallel.checkpoints_taken",
                        static_cast<double>(ps3.checkpoints_taken));
        out.metrics.add("parallel.replayed_events",
                        static_cast<double>(ps3.replayed_events));
        out.metrics.add("parallel.log_bytes_peak",
                        static_cast<double>(ps3.log_bytes_peak));
        out.metrics.rollback_depth_hist = ps3.rollback_depth_hist;
      }
    }
  } catch (const MemoryCapExceeded& e) {
    out.status = RunStatus::kOutOfMemory;
    out.diagnostic = e.what();
    out.peak_target_bytes = engine.memory().peak_bytes();
  } catch (const simk::DeadlockError& e) {
    out.status = RunStatus::kDeadlock;
    out.diagnostic = e.what();
    out.blocked_ranks = e.blocked();
  } catch (const simk::BudgetExceededError& e) {
    out.status = RunStatus::kBudgetExceeded;
    out.diagnostic = std::string(simk::budget_kind_name(e.kind())) +
                     " budget: " + e.what();
  } catch (const smpi::TargetProgramError& e) {
    // Structured target-program fault (e.g. receive buffer too small):
    // reported as internal_error with the smpi-level diagnostic, no check
    // banner.
    out.status = RunStatus::kInternalError;
    out.diagnostic = e.what();
  } catch (const std::exception& e) {
    // Anything else is a defect in the *target* program (or a model check
    // it tripped); the simulator itself stays alive and reports it.
    out.status = RunStatus::kInternalError;
    out.diagnostic = e.what();
  }
  out.used_wildcard_recv = engine.saw_wildcard_recv();
  return out;
}

std::map<std::string, double> calibrate(
    const ir::Program& timer_program, int calib_procs,
    const MachineSpec& machine, const std::set<std::string>& required_params,
    std::uint64_t seed) {
  ir::TimerRecorder timers;
  RunConfig cfg;
  cfg.nprocs = calib_procs;
  cfg.machine = machine;
  cfg.mode = Mode::kMeasured;
  cfg.seed = seed;
  RunOutcome out = run_program(timer_program, cfg, &timers);
  STGSIM_CHECK(out.ok()) << "calibration run failed ("
                         << run_status_name(out.status)
                         << "): " << out.diagnostic;
  auto params = timers.to_params();
  for (const auto& name : required_params) {
    params.emplace(name, 0.0);  // unmeasured task: never ran at calibration
  }
  return params;
}

std::map<std::string, double> estimate_params(
    const ir::Program& original, int calib_procs, const MachineSpec& machine,
    const std::set<std::string>& required_params, std::uint64_t seed) {
  ir::KernelMetaRecorder meta;
  RunConfig cfg;
  cfg.nprocs = calib_procs;
  cfg.machine = machine;
  cfg.mode = Mode::kDirectExec;  // observe exact counts, without noise
  cfg.seed = seed;
  RunOutcome out =
      run_program(original, cfg, nullptr, nullptr, &meta);
  STGSIM_CHECK(out.ok()) << "estimation run failed ("
                         << run_status_name(out.status)
                         << "): " << out.diagnostic;

  std::map<std::string, double> params;
  for (const auto& [task, m] : meta.records()) {
    if (m.iters <= 0.0) continue;
    const double flops_avg = m.flops_weighted / m.iters;
    params["w_" + task] = machine::seconds_per_iteration(
        machine.compute, flops_avg, m.ws_bytes_max);
  }
  for (const auto& name : required_params) params.emplace(name, 0.0);
  return params;
}

double emulated_host_seconds(const RunOutcome& outcome, int workers,
                             const simk::HostModel& model) {
  STGSIM_CHECK(!outcome.host_trace.empty())
      << "run with record_host_trace=true to replay host schedules";
  return simk::replay_host_trace(outcome.host_trace, outcome.nprocs, workers,
                                 model);
}

}  // namespace stgsim::harness
