// Experiment harness: runs a target program under one of three modes and
// collects the quantities the paper's evaluation reports.
//
//   kMeasured  — stands in for "direct measurement" on the real machine:
//                the full program runs on the detailed machine model with
//                NIC contention and seeded noise enabled.
//   kDirectExec— MPI-SIM-DE: the full program under the simulator's clean
//                communication model (direct execution of computation).
//   kAnalytical— MPI-SIM-AM: the compiler-simplified program, parameterized
//                by w_i values measured at a calibration configuration.
//
// calibrate() implements the Figure-2 workflow: run the timer-instrumented
// program under kMeasured at the calibration configuration and return the
// w_i table.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "ir/interp.hpp"
#include "ir/program.hpp"
#include "machine/compute.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"
#include "smpi/smpi.hpp"

namespace stgsim::harness {

enum class Mode { kMeasured, kDirectExec, kAnalytical };

const char* mode_name(Mode m);

/// Parallel synchronization protocol for the simulation engine.
///   kConservative — never execute past the lookahead-window safe bound
///                   (sequential scheduler when threads == 0).
///   kOptimistic   — Time Warp: execute speculatively, roll back on
///                   stragglers/anti-messages, commit via GVT. Digests are
///                   bit-identical to the conservative schedulers.
enum class Schedule { kConservative, kOptimistic };

const char* schedule_name(Schedule s);
/// Parses "conservative"/"optimistic"; returns false on anything else.
bool parse_schedule(const std::string& text, Schedule* out);

/// A target machine: communication + compute models plus the emulation-only
/// imperfections that make kMeasured differ from the simulator's model.
struct MachineSpec {
  std::string name;  ///< display name ("IBM SP")
  std::string key;   ///< registry id ("ibm_sp") — see harness/machines.hpp
  net::NetworkParams net;  ///< includes the platform (topology) parameters
  machine::ComputeParams compute;
  /// Collective algorithm selection ("algo.*" spec-string fields).
  smpi::CollectiveConfig coll;
  double emulation_net_jitter = 0.03;
  double emulation_compute_jitter = 0.015;
  bool emulation_contention = true;
};

MachineSpec ibm_sp_machine();
MachineSpec origin2000_machine();

struct RunConfig {
  int nprocs = 1;
  MachineSpec machine = ibm_sp_machine();
  Mode mode = Mode::kDirectExec;

  /// w_i table for analytical-model runs (from calibrate()).
  std::map<std::string, double> params;

  /// Simulated-program data cap; 0 = uncapped. Runs that exceed it report
  /// out_of_memory instead of crashing (paper Figs. 10/11: "memory
  /// requirements restricted the largest target architecture").
  std::size_t memory_cap_bytes = 0;

  /// Record the slice trace for emulated parallel-host replays.
  bool record_host_trace = false;

  /// Run the threaded conservative scheduler with this many workers
  /// (0 = sequential scheduler).
  int threads = 0;

  /// Rank→worker placement policy for the threaded scheduler (ignored
  /// when threads == 0). kComm derives rank affinity from the program's
  /// communication structure (harness::comm_affinity) and partitions to
  /// minimize cross-worker traffic. Never affects simulated results.
  simk::PartitionMode partition = simk::PartitionMode::kBlock;

  /// Synchronization protocol. kOptimistic applies to both the sequential
  /// scheduler (threads == 0; speculative wildcard commits corrected by
  /// rollback) and the threaded scheduler (no lookahead window; workers
  /// run ahead freely and GVT commits behind them). Incompatible with
  /// kMeasured mode, calibration/profiling hooks, and host-trace
  /// recording — all of which carry state a rollback cannot restore.
  Schedule schedule = Schedule::kConservative;

  /// Replace the detailed communication simulation with the abstract
  /// communication model (paper §5's proposed extension).
  bool abstract_comm = false;

  // -- Optimistic-schedule tuning (ignored under kConservative). None of
  // these affect simulated results: digests are bit-identical across every
  // setting; they trade rollback re-execution cost against checkpoint and
  // log memory.

  /// Committed events between GVT passes on the sequential drivers
  /// (0 = engine default). The engine retunes the live interval around
  /// this value when gvt_adaptive is on.
  std::uint64_t gvt_interval = 0;

  /// Committed consumes between per-rank checkpoints (0 = checkpoints
  /// off: rollback replays from rank start and the consumption log is
  /// never pruned — the pre-checkpoint behaviour).
  std::uint64_t checkpoint_interval = 64;

  /// Auto-tune the per-rank checkpoint interval from observed rollback
  /// frequency (halve on rollback, grow while rollback-free).
  bool checkpoint_adaptive = true;

  /// Bounded-speculation window in seconds: a rank whose clock is more
  /// than this ahead of GVT is held back until GVT catches up
  /// (0 = unbounded). Ignored under model checking.
  double speculation_window_sec = 0.0;

  std::size_t fiber_stack_bytes = 256 * 1024;
  std::uint64_t seed = 20260704;

  /// Deterministic fault schedule injected into the run (empty = healthy
  /// machine). Same seed + same plan ⇒ identical RunOutcome under both the
  /// sequential and threaded conservative schedulers.
  fault::FaultPlan faults;

  // Run budgets (0 = unlimited); exceeding one yields kBudgetExceeded.
  VTime max_virtual_time = 0;
  std::uint64_t max_messages = 0;
  double max_host_seconds = 0.0;

  /// Observability sink (not owned; must outlive the run). When set it is
  /// attached both as the engine observer and as the smpi recorder, and
  /// RunOutcome::metrics is filled from it. Never changes simulated
  /// results: digests with and without a recorder are bit-identical.
  obs::Recorder* obs = nullptr;

  /// Schedule oracle for model-checking runs (not owned; must outlive the
  /// run). Under the sequential scheduler it switches the engine to MC
  /// mode (explicit delivery steps, forced wildcard parking); under the
  /// threaded scheduler it only perturbs mailbox drain order. See
  /// simk::ScheduleOracle.
  simk::ScheduleOracle* oracle = nullptr;

  /// Test-only fault injection: commit wildcard receives on sight,
  /// bypassing the conservative safety bound — reintroduces the wildcard
  /// race the bound exists to prevent, so `stgsim check` has a known bug
  /// to find. Never set outside tests/CI.
  bool unsafe_wildcard_commit = false;

  /// Test-only fault injection: inflate the wildcard latency floor by
  /// this much past the network's sound bound (smpi::World::Options::
  /// unsafe_floor_slack). A too-large floor commits wildcard receives
  /// that a slower sender could still beat, so regression tests can show
  /// the floor's soundness is load-bearing. Never set outside tests/CI.
  VTime unsafe_floor_slack = 0;

  /// Test-only fault injection (optimistic schedule only): finalize
  /// speculative wildcard commits immediately — no violation records, no
  /// straggler detection — i.e. commit before GVT has passed the commit
  /// point. Reintroduces the Time Warp race rollback exists to fix, so
  /// `stgsim check` has a known bug to rediscover on the optimistic path.
  bool unsafe_commit_before_gvt = false;
};

/// How a run ended. Every run — including pathological target programs and
/// fault-degraded ones — produces a reportable RunOutcome with one of
/// these statuses instead of crashing or hanging the simulator.
enum class RunStatus {
  kOk,
  kOutOfMemory,     ///< simulated data exceeded RunConfig::memory_cap_bytes
  kDeadlock,        ///< every unfinished rank blocked with nothing in flight
  kBudgetExceeded,  ///< a RunConfig::max_* budget fired
  kInternalError,   ///< target program error (e.g. buffer overrun check)
};

const char* run_status_name(RunStatus s);

struct RunOutcome {
  RunStatus status = RunStatus::kOk;
  /// Human-readable failure description (empty when status == kOk).
  std::string diagnostic;

  bool ok() const { return status == RunStatus::kOk; }
  bool out_of_memory() const { return status == RunStatus::kOutOfMemory; }

  VTime predicted_time = 0;  ///< target program execution time (max rank)
  double predicted_seconds() const { return vtime_to_sec(predicted_time); }
  std::vector<VTime> per_rank;

  double sim_host_seconds = 0.0;  ///< wall-clock the simulator itself took
  std::size_t peak_target_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t slices = 0;  ///< fiber resumptions (scheduling events)
  smpi::RankStats stats;         ///< aggregate across ranks
  std::vector<smpi::RankStats> per_rank_stats;  ///< indexed by rank

  std::vector<simk::Slice> host_trace;  ///< when record_host_trace
  int nprocs = 0;

  /// Threaded-conservative protocol counters (all zero for sequential
  /// runs and for threads == 1, which takes the sequential fast path).
  simk::ParallelStats parallel;

  /// Aggregated observability metrics; empty unless RunConfig::obs was
  /// set. Includes engine pool/arena occupancy appended by the harness.
  obs::MetricsSnapshot metrics;

  /// Structured per-rank blocking report when status == kDeadlock (the
  /// same data the diagnostic renders as text). Sorted by rank.
  std::vector<simk::DeadlockError::BlockedRank> blocked_ranks;

  /// True when any rank executed a wildcard (ANY_SOURCE/waitany) receive.
  /// The protocol checker uses this to pick the right independence
  /// relation for DPOR reduction.
  bool used_wildcard_recv = false;
};

/// Executes `prog` under `config`. Never throws for conditions arising in
/// the *target* program or machine — memory-cap overruns, deadlocks,
/// budget violations, and target-program errors are all reported through
/// RunOutcome::status. The instrumentation hooks may be null.
RunOutcome run_program(const ir::Program& prog, const RunConfig& config,
                       ir::TimerRecorder* timers = nullptr,
                       ir::BranchProfiler* branches = nullptr,
                       ir::KernelMetaRecorder* kernel_meta = nullptr);

/// Figure-2 calibration: runs `timer_program` under kMeasured on
/// `calib_procs` processes and returns the {w_<task> -> sec/iter} table.
///
/// `required_params` (typically SimplifyResult::params) names every
/// parameter the simplified program will read; tasks the measurement run
/// never executed — e.g. inside a branch not taken at the calibration
/// configuration — are filled with 0 so prediction can proceed (they
/// contributed nothing to the measured run either; an acknowledged
/// limitation of measurement-based parameterization, §3.3).
std::map<std::string, double> calibrate(
    const ir::Program& timer_program, int calib_procs,
    const MachineSpec& machine,
    const std::set<std::string>& required_params = {},
    std::uint64_t seed = 20260704);

/// §3.3 alternative (a): task times *estimated by the compiler's machine
/// model* instead of measured with timers. Runs the original program once
/// (direct execution, to observe actual iteration counts, branch
/// fractions and working sets) and derives each w_<task> analytically —
/// free of timer noise, but sharing the constant-w_i transfer limitation.
/// Run it at the *target* configuration to also remove the cache
/// working-set transfer error (at the cost of a full direct-execution
/// pass there).
std::map<std::string, double> estimate_params(
    const ir::Program& original, int calib_procs, const MachineSpec& machine,
    const std::set<std::string>& required_params = {},
    std::uint64_t seed = 20260704);

/// Predicted simulator wall-clock on `workers` host processors, from a
/// recorded host trace (our stand-in for running MPI-Sim's conservative
/// parallel protocols on a real multiprocessor host).
double emulated_host_seconds(const RunOutcome& outcome, int workers,
                             const simk::HostModel& model = {});

}  // namespace stgsim::harness
