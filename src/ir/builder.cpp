#include "ir/builder.hpp"

#include "support/check.hpp"

namespace stgsim::ir {

Program ProgramBuilder::take() {
  STGSIM_CHECK(!taken_) << "ProgramBuilder::take() called twice";
  STGSIM_CHECK_EQ(targets_.size(), 1u)
      << "unbalanced builder nesting at take()";
  taken_ = true;
  program_.validate();
  return std::move(program_);
}

Stmt& ProgramBuilder::append(StmtKind kind) {
  STGSIM_CHECK(!taken_);
  target()->push_back(program_.make_stmt(kind));
  return *target()->back();
}

sym::Expr ProgramBuilder::get_rank(const std::string& name) {
  append(StmtKind::kGetRank).name = name;
  return sym::Expr::var(name);
}

sym::Expr ProgramBuilder::get_size(const std::string& name) {
  append(StmtKind::kGetSize).name = name;
  return sym::Expr::var(name);
}

sym::Expr ProgramBuilder::decl_int(const std::string& name,
                                   const sym::Expr& init) {
  Stmt& s = append(StmtKind::kDeclScalar);
  s.name = name;
  s.e1 = init;
  s.has_init = true;
  return sym::Expr::var(name);
}

sym::Expr ProgramBuilder::decl_int(const std::string& name) {
  append(StmtKind::kDeclScalar).name = name;
  return sym::Expr::var(name);
}

sym::Expr ProgramBuilder::decl_real(const std::string& name,
                                    const sym::Expr& init) {
  Stmt& s = append(StmtKind::kDeclScalar);
  s.name = name;
  s.e1 = init;
  s.has_init = true;
  s.scalar_is_real = true;
  return sym::Expr::var(name);
}

sym::Expr ProgramBuilder::read_param(const std::string& name,
                                     const std::string& param) {
  Stmt& s = append(StmtKind::kReadParam);
  s.name = name;
  s.aux_name = param;
  return sym::Expr::var(name);
}

void ProgramBuilder::assign(const std::string& name, const sym::Expr& value) {
  Stmt& s = append(StmtKind::kAssign);
  s.name = name;
  s.e1 = value;
}

void ProgramBuilder::decl_array(const std::string& name,
                                std::vector<sym::Expr> extents,
                                std::size_t elem_bytes) {
  Stmt& s = append(StmtKind::kDeclArray);
  s.name = name;
  s.extents = std::move(extents);
  s.elem_bytes = elem_bytes;
}

void ProgramBuilder::for_loop(const std::string& var, const sym::Expr& lo,
                              const sym::Expr& hi,
                              const std::function<void(sym::Expr)>& body) {
  Stmt& s = append(StmtKind::kFor);
  s.name = var;
  s.e1 = lo;
  s.e2 = hi;
  targets_.push_back(&s.body);
  body(sym::Expr::var(var));
  targets_.pop_back();
}

void ProgramBuilder::if_then(const sym::Expr& cond,
                             const std::function<void()>& then_fn) {
  Stmt& s = append(StmtKind::kIf);
  s.e1 = cond;
  targets_.push_back(&s.body);
  then_fn();
  targets_.pop_back();
}

void ProgramBuilder::if_then_else(const sym::Expr& cond,
                                  const std::function<void()>& then_fn,
                                  const std::function<void()>& else_fn) {
  Stmt& s = append(StmtKind::kIf);
  s.e1 = cond;
  targets_.push_back(&s.body);
  then_fn();
  targets_.pop_back();
  targets_.push_back(&s.else_body);
  else_fn();
  targets_.pop_back();
}

void ProgramBuilder::compute(KernelSpec kernel) {
  STGSIM_CHECK(!kernel.task.empty()) << "compute kernel needs a task name";
  append(StmtKind::kCompute).kernel = std::move(kernel);
}

void ProgramBuilder::delay(const sym::Expr& seconds) {
  append(StmtKind::kDelay).e1 = seconds;
}

void ProgramBuilder::send(const std::string& array, const sym::Expr& dst,
                          const sym::Expr& count_elems,
                          const sym::Expr& offset_elems, int tag) {
  Stmt& s = append(StmtKind::kSend);
  s.name = array;
  s.e1 = dst;
  s.e2 = count_elems;
  s.e3 = offset_elems;
  s.tag = tag;
}

void ProgramBuilder::recv(const std::string& array, const sym::Expr& src,
                          const sym::Expr& count_elems,
                          const sym::Expr& offset_elems, int tag) {
  Stmt& s = append(StmtKind::kRecv);
  s.name = array;
  s.e1 = src;
  s.e2 = count_elems;
  s.e3 = offset_elems;
  s.tag = tag;
}

void ProgramBuilder::isend(const std::string& reqs, const std::string& array,
                           const sym::Expr& dst, const sym::Expr& count_elems,
                           const sym::Expr& offset_elems, int tag) {
  Stmt& s = append(StmtKind::kIsend);
  s.name = array;
  s.aux_name = reqs;
  s.e1 = dst;
  s.e2 = count_elems;
  s.e3 = offset_elems;
  s.tag = tag;
}

void ProgramBuilder::irecv(const std::string& reqs, const std::string& array,
                           const sym::Expr& src, const sym::Expr& count_elems,
                           const sym::Expr& offset_elems, int tag) {
  Stmt& s = append(StmtKind::kIrecv);
  s.name = array;
  s.aux_name = reqs;
  s.e1 = src;
  s.e2 = count_elems;
  s.e3 = offset_elems;
  s.tag = tag;
}

void ProgramBuilder::waitall(const std::string& reqs) {
  append(StmtKind::kWaitall).name = reqs;
}

void ProgramBuilder::barrier() { append(StmtKind::kBarrier); }

void ProgramBuilder::bcast(const std::string& array, const sym::Expr& root,
                           const sym::Expr& count_elems,
                           const sym::Expr& offset_elems) {
  Stmt& s = append(StmtKind::kBcast);
  s.name = array;
  s.e1 = root;
  s.e2 = count_elems;
  s.e3 = offset_elems;
}

void ProgramBuilder::allreduce_sum(const std::string& scalar) {
  append(StmtKind::kAllreduceSum).name = scalar;
}

void ProgramBuilder::allreduce_max(const std::string& scalar) {
  append(StmtKind::kAllreduceMax).name = scalar;
}

void ProgramBuilder::procedure(const std::string& name,
                               const std::function<void()>& body) {
  STGSIM_CHECK_EQ(targets_.size(), 1u)
      << "procedures must be defined at top level";
  Procedure& p = program_.add_procedure(name);
  targets_.push_back(&p.body);
  body();
  targets_.pop_back();
}

void ProgramBuilder::call(const std::string& name) {
  append(StmtKind::kCall).name = name;
}

}  // namespace stgsim::ir
