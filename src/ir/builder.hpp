// Fluent construction of IR programs.
//
// Target benchmarks (src/apps) are authored through this builder; nesting
// is expressed with lambdas so the C++ structure of the app source mirrors
// the loop structure of the generated IR.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace stgsim::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string program_name)
      : program_(std::move(program_name)) {
    targets_.push_back(&program_.main());
  }

  /// Finalizes and returns the program (builder becomes unusable).
  Program take();

  // -- Declarations / scalars ----------------------------------------------

  sym::Expr get_rank(const std::string& name = "myid");
  sym::Expr get_size(const std::string& name = "P");
  sym::Expr decl_int(const std::string& name, const sym::Expr& init);
  sym::Expr decl_int(const std::string& name);  // uninitialized
  sym::Expr decl_real(const std::string& name, const sym::Expr& init);
  sym::Expr read_param(const std::string& name, const std::string& param);
  void assign(const std::string& name, const sym::Expr& value);
  void decl_array(const std::string& name, std::vector<sym::Expr> extents,
                  std::size_t elem_bytes = sizeof(double));

  // -- Control flow ----------------------------------------------------------

  /// for var = lo .. hi (inclusive); `body` receives the loop variable.
  void for_loop(const std::string& var, const sym::Expr& lo,
                const sym::Expr& hi,
                const std::function<void(sym::Expr)>& body);
  void if_then(const sym::Expr& cond, const std::function<void()>& then_fn);
  void if_then_else(const sym::Expr& cond,
                    const std::function<void()>& then_fn,
                    const std::function<void()>& else_fn);

  // -- Computation -----------------------------------------------------------

  void compute(KernelSpec kernel);
  void delay(const sym::Expr& seconds);

  // -- Communication -----------------------------------------------------------

  void send(const std::string& array, const sym::Expr& dst,
            const sym::Expr& count_elems, const sym::Expr& offset_elems,
            int tag);
  void recv(const std::string& array, const sym::Expr& src,
            const sym::Expr& count_elems, const sym::Expr& offset_elems,
            int tag);
  void isend(const std::string& reqs, const std::string& array,
             const sym::Expr& dst, const sym::Expr& count_elems,
             const sym::Expr& offset_elems, int tag);
  void irecv(const std::string& reqs, const std::string& array,
             const sym::Expr& src, const sym::Expr& count_elems,
             const sym::Expr& offset_elems, int tag);
  void waitall(const std::string& reqs);
  void barrier();
  void bcast(const std::string& array, const sym::Expr& root,
             const sym::Expr& count_elems, const sym::Expr& offset_elems);
  void allreduce_sum(const std::string& scalar);
  void allreduce_max(const std::string& scalar);

  // -- Procedures -----------------------------------------------------------

  void procedure(const std::string& name, const std::function<void()>& body);
  void call(const std::string& name);

 private:
  Stmt& append(StmtKind kind);
  std::vector<StmtP>* target() { return targets_.back(); }

  Program program_;
  std::vector<std::vector<StmtP>*> targets_;
  bool taken_ = false;
};

}  // namespace stgsim::ir
