#include "ir/interp.hpp"

#include <algorithm>

#include "machine/compute.hpp"
#include "support/check.hpp"

namespace stgsim::ir {

void TimerRecorder::add(const std::string& task, double seconds,
                        double iters) {
  auto& r = records_[task];
  r.seconds += seconds;
  r.iters += iters;
}

std::map<std::string, double> TimerRecorder::to_params() const {
  std::map<std::string, double> params;
  for (const auto& [task, r] : records_) {
    STGSIM_CHECK_GT(r.iters, 0.0) << "task " << task << " never iterated";
    params["w_" + task] = r.seconds / r.iters;
  }
  return params;
}

namespace {

struct ArrayVal {
  TrackedBuffer buf;
  std::vector<std::int64_t> extents;
  std::size_t elems = 0;
  std::size_t elem_bytes = sizeof(double);
};

}  // namespace

/// Per-rank interpreter state: one flat frame of scalars, arrays and
/// request lists (the paper's single-procedure model).
class ExecState : public sym::Env {
 public:
  ExecState(const Program& prog, smpi::Comm& comm, const ExecOptions& options)
      : prog_(prog), comm_(comm), options_(options) {}

  void run() { exec_block(prog_.main()); }

  // sym::Env
  std::optional<sym::Value> lookup(const std::string& name) const override {
    auto it = scalars_.find(name);
    if (it == scalars_.end()) return std::nullopt;
    return it->second;
  }

  smpi::Comm& comm() { return comm_; }

  ArrayVal& array(const std::string& name) {
    auto it = arrays_.find(name);
    STGSIM_CHECK(it != arrays_.end()) << "unknown array '" << name << "'";
    return it->second;
  }
  const ArrayVal& array(const std::string& name) const {
    auto it = arrays_.find(name);
    STGSIM_CHECK(it != arrays_.end()) << "unknown array '" << name << "'";
    return it->second;
  }

  sym::Value scalar(const std::string& name) const {
    auto it = scalars_.find(name);
    STGSIM_CHECK(it != scalars_.end()) << "unknown scalar '" << name << "'";
    return it->second;
  }

  void set_scalar(const std::string& name, sym::Value v, bool must_exist) {
    if (must_exist) {
      auto it = scalars_.find(name);
      STGSIM_CHECK(it != scalars_.end())
          << "assignment to undeclared scalar '" << name << "'";
      if (it->second.is_int() && !v.is_int()) {
        // Keep declared integer scalars integral (Fortran INTEGER).
        it->second = sym::Value(v.as_int());
      } else {
        it->second = v;
      }
    } else {
      scalars_[name] = v;
    }
  }

 private:
  friend class KernelCtx;

  void exec_block(const std::vector<StmtP>& block) {
    for (const auto& s : block) exec_stmt(*s);
  }

  /// Resolves (array, offset_elems, count_elems) to a raw span for a
  /// communication statement, bounds-checked.
  std::uint8_t* comm_span(const Stmt& s, std::size_t* bytes_out) {
    ArrayVal& a = array(s.name);
    const std::int64_t count = s.e2.eval_int(*this);
    const std::int64_t offset = s.e3.eval_int(*this);
    STGSIM_CHECK_GE(count, 0);
    STGSIM_CHECK_GE(offset, 0);
    STGSIM_CHECK_LE(static_cast<std::size_t>(offset + count), a.elems)
        << "communication slice out of bounds on '" << s.name << "' (offset "
        << offset << " count " << count << " elems " << a.elems << ")";
    *bytes_out = static_cast<std::size_t>(count) * a.elem_bytes;
    return a.buf.data() + static_cast<std::size_t>(offset) * a.elem_bytes;
  }

  std::vector<smpi::Request>& reqs(const std::string& name) {
    return requests_[name];
  }

  void exec_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kDeclScalar: {
        sym::Value v = s.has_init ? s.e1.eval(*this) : sym::Value(0);
        if (s.scalar_is_real) v = sym::Value(v.as_real());
        set_scalar(s.name, v, /*must_exist=*/false);
        break;
      }
      case StmtKind::kDeclArray: {
        ArrayVal a;
        std::size_t elems = 1;
        for (const auto& e : s.extents) {
          const std::int64_t n = e.eval_int(*this);
          STGSIM_CHECK_GE(n, 0) << "negative array extent on " << s.name;
          a.extents.push_back(n);
          elems *= static_cast<std::size_t>(n);
        }
        a.elems = elems;
        a.elem_bytes = s.elem_bytes;
        a.buf = TrackedBuffer(&comm_.process().memory(), elems * s.elem_bytes);
        arrays_[s.name] = std::move(a);
        break;
      }
      case StmtKind::kAssign:
        set_scalar(s.name, s.e1.eval(*this), /*must_exist=*/true);
        break;
      case StmtKind::kFor: {
        const std::int64_t lo = s.e1.eval_int(*this);
        const std::int64_t hi = s.e2.eval_int(*this);
        for (std::int64_t i = lo; i <= hi; ++i) {
          set_scalar(s.name, sym::Value(i), /*must_exist=*/false);
          exec_block(s.body);
        }
        break;
      }
      case StmtKind::kIf: {
        const bool taken = s.e1.eval(*this).as_bool();
        if (options_.branches != nullptr) {
          options_.branches->record(s.id, taken);
        }
        if (taken) {
          exec_block(s.body);
        } else {
          exec_block(s.else_body);
        }
        break;
      }
      case StmtKind::kCompute:
        exec_kernel(s, s.kernel);
        break;
      case StmtKind::kSend: {
        std::size_t bytes = 0;
        const std::uint8_t* p = comm_span(s, &bytes);
        const auto dst = static_cast<int>(s.e1.eval_int(*this));
        const VTime t0 = comm_.now();
        comm_.send(dst, s.tag, p, bytes);
        observe_comm(s, dst, bytes, t0);
        break;
      }
      case StmtKind::kRecv: {
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, &bytes);
        const auto src = static_cast<int>(s.e1.eval_int(*this));
        const VTime t0 = comm_.now();
        comm_.recv(src, s.tag, p, bytes);
        observe_comm(s, src, bytes, t0);
        break;
      }
      case StmtKind::kIsend: {
        std::size_t bytes = 0;
        const std::uint8_t* p = comm_span(s, &bytes);
        const auto dst = static_cast<int>(s.e1.eval_int(*this));
        const VTime t0 = comm_.now();
        reqs(s.aux_name).push_back(comm_.isend(dst, s.tag, p, bytes));
        observe_comm(s, dst, bytes, t0);
        break;
      }
      case StmtKind::kIrecv: {
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, &bytes);
        const auto src = static_cast<int>(s.e1.eval_int(*this));
        const VTime t0 = comm_.now();
        reqs(s.aux_name).push_back(comm_.irecv(src, s.tag, p, bytes));
        observe_comm(s, src, bytes, t0);
        break;
      }
      case StmtKind::kWaitall: {
        auto& rs = reqs(s.name);
        comm_.waitall(rs);
        rs.clear();
        break;
      }
      case StmtKind::kBarrier: {
        const VTime t0 = comm_.now();
        comm_.barrier();
        observe_comm(s, -1, 0, t0);
        break;
      }
      case StmtKind::kBcast: {
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, &bytes);
        const auto root = static_cast<int>(s.e1.eval_int(*this));
        const VTime t0 = comm_.now();
        comm_.bcast(p, bytes, root);
        observe_comm(s, root, bytes, t0);
        break;
      }
      case StmtKind::kAllreduceSum: {
        double v = scalar(s.name).as_real();
        const VTime t0 = comm_.now();
        comm_.allreduce_sum(&v, 1);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/true);
        observe_comm(s, -1, sizeof(double), t0);
        break;
      }
      case StmtKind::kAllreduceMax: {
        double v = scalar(s.name).as_real();
        const VTime t0 = comm_.now();
        comm_.allreduce_max(&v, 1);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/true);
        observe_comm(s, -1, sizeof(double), t0);
        break;
      }
      case StmtKind::kGetRank:
        set_scalar(s.name, sym::Value(std::int64_t{comm_.rank()}),
                   /*must_exist=*/false);
        break;
      case StmtKind::kGetSize:
        set_scalar(s.name, sym::Value(std::int64_t{comm_.size()}),
                   /*must_exist=*/false);
        break;
      case StmtKind::kDelay: {
        const double sec = s.e1.eval_real(*this);
        STGSIM_CHECK_GE(sec, -1e-12)
            << "negative delay from scaling function: " << s.e1.to_string();
        comm_.delay_seconds(std::max(sec, 0.0));
        break;
      }
      case StmtKind::kReadParam: {
        const double v = comm_.read_param(s.aux_name);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/false);
        break;
      }
      case StmtKind::kTimerStart:
        open_timers_[s.name] = comm_.now();
        break;
      case StmtKind::kTimerStop: {
        auto it = open_timers_.find(s.name);
        STGSIM_CHECK(it != open_timers_.end())
            << "timer_stop without timer_start for task " << s.name;
        const VTime dt = comm_.now() - it->second;
        open_timers_.erase(it);
        if (options_.timers != nullptr) {
          options_.timers->add(s.name, vtime_to_sec(dt),
                               s.e1.eval_real(*this));
        }
        break;
      }
      case StmtKind::kCall: {
        const Procedure* p = prog_.find_procedure(s.name);
        STGSIM_CHECK(p != nullptr) << "unknown procedure " << s.name;
        exec_block(p->body);
        break;
      }
    }
  }

  void observe_comm(const Stmt& s, int peer, std::size_t bytes, VTime t0) {
    if (options_.observer != nullptr) {
      options_.observer->on_comm(comm_.rank(), s, peer, bytes, t0,
                                 comm_.now());
    }
  }

  void exec_kernel(const Stmt& stmt, const KernelSpec& k) {
    const VTime t_begin = comm_.now();
    const std::int64_t iters = k.iters.eval_int(*this);
    STGSIM_CHECK_GE(iters, 0) << "negative iteration count for " << k.task;

    KernelCtx ctx(*this, k, iters);
    if (k.body) k.body(ctx);

    double fraction = 0.0;
    if (k.branch_fraction) fraction = k.branch_fraction(ctx);
    STGSIM_DCHECK(fraction >= 0.0 && fraction <= 1.0);

    // Working set: every array the task touches, per the declared sets.
    double ws_bytes = 0.0;
    for (const auto* names : {&k.reads, &k.writes}) {
      for (const auto& n : *names) {
        auto it = arrays_.find(n);
        if (it != arrays_.end()) {
          ws_bytes += static_cast<double>(it->second.elems *
                                          it->second.elem_bytes);
        }
      }
    }

    const double flops_eff =
        k.flops_per_iter + fraction * k.extra_flops_per_iter;
    if (options_.kernel_meta != nullptr) {
      options_.kernel_meta->add(k.task, static_cast<double>(iters), flops_eff,
                                ws_bytes);
    }

    const auto& params = comm_.world().options().compute;
    const VTime cost =
        machine::kernel_cost(params, static_cast<double>(iters), flops_eff,
                             ws_bytes, &comm_.process().rng());
    comm_.compute(cost);
    if (options_.observer != nullptr) {
      options_.observer->on_compute(comm_.rank(), stmt, t_begin, comm_.now());
    }
  }

  const Program& prog_;
  smpi::Comm& comm_;
  ExecOptions options_;

  std::map<std::string, sym::Value> scalars_;
  std::map<std::string, ArrayVal> arrays_;
  std::map<std::string, std::vector<smpi::Request>> requests_;
  std::map<std::string, VTime> open_timers_;
};

// ---------------------------------------------------------------------------
// KernelCtx
// ---------------------------------------------------------------------------

KernelCtx::KernelCtx(ExecState& state, const KernelSpec& spec,
                     std::int64_t iters)
    : state_(state), spec_(spec), iters_(iters) {}

int KernelCtx::rank() const { return state_.comm().rank(); }
int KernelCtx::world_size() const { return state_.comm().size(); }

void KernelCtx::check_access(const std::string& name, bool write) const {
  const auto& allowed = write ? spec_.writes : spec_.reads;
  const bool in_primary =
      std::find(allowed.begin(), allowed.end(), name) != allowed.end();
  // Reading a variable you may write is fine (read-modify-write tasks).
  const bool in_writes =
      std::find(spec_.writes.begin(), spec_.writes.end(), name) !=
      spec_.writes.end();
  STGSIM_CHECK(in_primary || (!write && in_writes))
      << "kernel " << spec_.task << " accesses '" << name
      << "' outside its declared " << (write ? "write" : "read") << " set";
}

double* KernelCtx::array(const std::string& name) {
  // Conservative: grant pointer if the name is in either set; writes
  // through a read-only pointer are the kernel author's bug.
  check_access(name, /*write=*/false);
  ArrayVal& a = state_.array(name);
  STGSIM_CHECK_EQ(a.elem_bytes, sizeof(double))
      << "kernel array access requires double elements";
  return a.buf.as_doubles();
}

std::size_t KernelCtx::array_elems(const std::string& name) const {
  return state_.array(name).elems;
}

std::int64_t KernelCtx::array_extent(const std::string& name,
                                     std::size_t dim) const {
  const ArrayVal& a = state_.array(name);
  STGSIM_CHECK_LT(dim, a.extents.size());
  return a.extents[dim];
}

sym::Value KernelCtx::scalar(const std::string& name) const {
  check_access(name, /*write=*/false);
  return state_.scalar(name);
}

void KernelCtx::set_scalar(const std::string& name, sym::Value v) {
  check_access(name, /*write=*/true);
  state_.set_scalar(name, v, /*must_exist=*/true);
}

Rng& KernelCtx::rng() { return state_.comm().process().rng(); }

// ---------------------------------------------------------------------------

void execute(const Program& prog, smpi::Comm& comm,
             const ExecOptions& options) {
  ExecState state(prog, comm, options);
  state.run();
}

}  // namespace stgsim::ir
