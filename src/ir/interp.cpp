#include "ir/interp.hpp"

#include <algorithm>
#include <unordered_map>

#include "machine/compute.hpp"
#include "support/blob.hpp"
#include "support/check.hpp"
#include "symexpr/compiled.hpp"

namespace stgsim::ir {

void TimerRecorder::add(const std::string& task, double seconds,
                        double iters) {
  auto& r = records_[task];
  r.seconds += seconds;
  r.iters += iters;
}

std::map<std::string, double> TimerRecorder::to_params() const {
  std::map<std::string, double> params;
  for (const auto& [task, r] : records_) {
    STGSIM_CHECK_GT(r.iters, 0.0) << "task " << task << " never iterated";
    params["w_" + task] = r.seconds / r.iters;
  }
  return params;
}

namespace {

struct ArrayVal {
  TrackedBuffer buf;
  std::vector<std::int64_t> extents;
  std::size_t elems = 0;
  std::size_t elem_bytes = sizeof(double);
};

}  // namespace

/// Per-rank interpreter state: one flat frame of scalars, arrays and
/// request lists (the paper's single-procedure model).
///
/// Scalars live in a dense slot frame: each name resolves to an index once
/// (on declaration or first compiled-expression binding) and every read or
/// write thereafter is vector indexing. The hot expressions — kDelay
/// seconds, kFor bounds, kernel iteration counts — are compiled to
/// sym::CompiledExpr tapes on first execution (or taken pre-compiled from
/// the code generator) with their free variables bound to frame slots, so
/// the steady state performs no name lookups at all. Cold expressions
/// (declarations, extents, communication operands) keep the tree walker.
class ExecState : public sym::Env {
 public:
  ExecState(const Program& prog, smpi::Comm& comm, const ExecOptions& options)
      : prog_(prog), comm_(comm), options_(options) {
    stmt_cache_.resize(static_cast<std::size_t>(prog.next_id()));
  }

  void run() {
    simk::Process& proc = comm_.process();
    const std::vector<std::uint8_t>* blob = proc.pending_restore();
    if (blob == nullptr) {
      exec_block(prog_.main());
      return;
    }
    // Optimistic-mode rollback into a checkpoint: rebuild the captured
    // interpreter state, then re-enter the statement tree at the recorded
    // position. The engine feeds subsequent receives from its consumption
    // log (coast-forward replay), so execution from here reproduces the
    // pre-rollback state exactly.
    std::vector<PosFrame> pos;
    {
      BlobReader r(*blob);
      comm_.restore_state(r);
      deserialize_state(r, &pos);
      STGSIM_CHECK(r.done()) << "trailing bytes in checkpoint blob";
    }
    proc.clear_pending_restore();
    STGSIM_CHECK(!pos.empty()) << "checkpoint blob carries no position";
    exec_block_resume(prog_.main(), pos, 0);
  }

  // sym::Env
  std::optional<sym::Value> lookup(const std::string& name) const override {
    auto it = frame_index_.find(name);
    if (it == frame_index_.end() ||
        frame_defined_[static_cast<std::size_t>(it->second)] == 0) {
      return std::nullopt;
    }
    return frame_[static_cast<std::size_t>(it->second)];
  }

  smpi::Comm& comm() { return comm_; }

  ArrayVal& array(const std::string& name) {
    auto it = arrays_.find(name);
    STGSIM_CHECK(it != arrays_.end()) << "unknown array '" << name << "'";
    return it->second;
  }
  const ArrayVal& array(const std::string& name) const {
    auto it = arrays_.find(name);
    STGSIM_CHECK(it != arrays_.end()) << "unknown array '" << name << "'";
    return it->second;
  }

  sym::Value scalar(const std::string& name) const {
    auto it = frame_index_.find(name);
    STGSIM_CHECK(it != frame_index_.end() &&
                 frame_defined_[static_cast<std::size_t>(it->second)] != 0)
        << "unknown scalar '" << name << "'";
    return frame_[static_cast<std::size_t>(it->second)];
  }

  void set_scalar(const std::string& name, sym::Value v, bool must_exist) {
    if (must_exist) {
      auto it = frame_index_.find(name);
      STGSIM_CHECK(it != frame_index_.end() &&
                   frame_defined_[static_cast<std::size_t>(it->second)] != 0)
          << "assignment to undeclared scalar '" << name << "'";
      write_slot(static_cast<std::size_t>(it->second), v);
    } else {
      const auto slot = static_cast<std::size_t>(slot_of(name));
      frame_[slot] = v;
      frame_defined_[slot] = 1;
      ++frame_gen_[slot];
    }
  }

  /// Writes a defined slot, keeping declared integer scalars integral
  /// (Fortran INTEGER — same coercion as set_scalar with must_exist).
  void write_slot(std::size_t slot, const sym::Value& v) {
    sym::Value& cur = frame_[slot];
    if (cur.is_int() && !v.is_int()) {
      cur = sym::Value(v.as_int());
    } else {
      cur = v;
    }
    ++frame_gen_[slot];
  }

 private:
  friend class KernelCtx;

  /// Find-or-create the frame slot for a scalar name. A slot created here
  /// before its declaration executes stays undefined until then; compiled
  /// expressions leave undefined slots unbound, so reading one raises the
  /// same EvalError the tree walker would.
  int slot_of(const std::string& name) {
    auto [it, inserted] =
        frame_index_.try_emplace(name, static_cast<int>(frame_.size()));
    if (inserted) {
      frame_.emplace_back();
      frame_defined_.push_back(0);
      frame_gen_.push_back(0);
    }
    return it->second;
  }

  /// A compiled expression whose free variables have been resolved to
  /// frame slots (indices stay valid as the frame vector grows).
  /// Expressions with no slots are pure; they fold to a value at bind
  /// time and evaluation is a load.
  struct BoundExpr {
    std::shared_ptr<const sym::CompiledExpr> code;
    std::vector<int> frame_slots;  ///< frame index per code->free_slots()[i]
    bool is_const = false;
    bool is_var = false;  ///< single-load tape: read the frame directly
    sym::Value const_value;
    /// Memoized last result, valid while every input slot's write
    /// generation still matches gen_stamp. Most steady-state expressions
    /// (peer ranks, message counts, neighbor conditions, condensed delay
    /// costs) read only rank/size/configuration scalars that are written
    /// once, so revalidation is an integer compare per input instead of a
    /// tape run. Expressions are pure, so evaluation itself never moves a
    /// generation.
    bool has_cache = false;
    sym::Value cached_value;
    std::vector<std::uint64_t> gen_stamp;  ///< per frame_slots[i]
  };

  /// Lazily-built per-statement cache of bound hot expressions (kDelay e1,
  /// kFor lo/hi, kCompute iters, comm peer/count/offset, kIf condition,
  /// kAssign rhs) plus resolved name lookups (frame slot, array, request
  /// list — map/frame entries are never erased, so the pointers and
  /// indices stay valid). Indexed densely by statement id.
  struct StmtCache {
    BoundExpr a, b, c;
    ArrayVal* array = nullptr;
    std::vector<smpi::Request>* requests = nullptr;
    int var_slot = -1;
    bool ready = false;
  };

  StmtCache& cache_of(const Stmt& s) {
    STGSIM_DCHECK(s.id >= 0);
    const auto i = static_cast<std::size_t>(s.id);
    if (i >= stmt_cache_.size()) stmt_cache_.resize(i + 1);
    return stmt_cache_[i];
  }

  void bind(BoundExpr& be, const sym::Expr& tree,
            const std::shared_ptr<const sym::CompiledExpr>& precompiled) {
    be.code = precompiled != nullptr
                  ? precompiled
                  : std::make_shared<const sym::CompiledExpr>(
                        sym::CompiledExpr::compile(tree));
    be.frame_slots.reserve(be.code->free_slots().size());
    for (const int s : be.code->free_slots()) {
      be.frame_slots.push_back(
          slot_of(be.code->slot_names()[static_cast<std::size_t>(s)]));
    }
    if (be.code->num_slots() == 0) {
      be.code->prepare(scratch_);
      be.const_value = be.code->eval(scratch_);
      be.is_const = true;
    } else {
      be.is_var = be.code->single_load();
      be.gen_stamp.assign(be.frame_slots.size(), 0);
    }
  }

  /// Evaluates a bound expression against the current frame. The shared
  /// scratch is sized grow-only and NOT cleared between expressions: every
  /// loadable slot is explicitly written below (free slots) or managed by
  /// the tape itself (Sum binders), so stale entries from other
  /// expressions are unreachable.
  sym::Value eval_bound(BoundExpr& be) {
    if (be.is_const) return be.const_value;
    if (be.is_var) {
      const auto fi = static_cast<std::size_t>(be.frame_slots[0]);
      if (frame_defined_[fi] == 0) {
        throw sym::EvalError("unbound variable '" +
                             be.code->slot_names()[0] + "'");
      }
      return frame_[fi];
    }
    if (be.has_cache) {
      bool fresh = true;
      for (std::size_t i = 0; i < be.frame_slots.size(); ++i) {
        if (be.gen_stamp[i] !=
            frame_gen_[static_cast<std::size_t>(be.frame_slots[i])]) {
          fresh = false;
          break;
        }
      }
      if (fresh) return be.cached_value;
    }
    const auto n = static_cast<std::size_t>(be.code->num_slots());
    if (scratch_.slots.size() < n) {
      scratch_.slots.resize(n);
      scratch_.bound.resize(n);
    }
    const std::vector<int>& free = be.code->free_slots();
    for (std::size_t i = 0; i < free.size(); ++i) {
      const auto slot = static_cast<std::size_t>(free[i]);
      const auto fi = static_cast<std::size_t>(be.frame_slots[i]);
      if (frame_defined_[fi] != 0) {
        scratch_.slots[slot] = frame_[fi];
        scratch_.bound[slot] = 1;
      } else {
        scratch_.bound[slot] = 0;
      }
    }
    sym::Value v = be.code->eval(scratch_);
    for (std::size_t i = 0; i < be.frame_slots.size(); ++i) {
      be.gen_stamp[i] = frame_gen_[static_cast<std::size_t>(be.frame_slots[i])];
    }
    be.cached_value = v;
    be.has_cache = true;
    return v;
  }

  /// One level of the interpreter's position in the statement tree, as a
  /// plain restartable coordinate: the statement index within the block,
  /// plus — when that statement is the one being descended through — its
  /// in-progress state (kFor: current induction value and the bound as
  /// evaluated at loop entry, since the body may mutate its inputs; kIf:
  /// which arm was taken). Serialized into checkpoints; rollback resumes
  /// by re-descending the stack.
  struct PosFrame {
    std::uint32_t index = 0;
    std::int64_t loop_i = 0;
    std::int64_t loop_hi = 0;
    std::uint8_t branch = 0;
  };

  void exec_block(const std::vector<StmtP>& block) {
    const std::size_t d = pos_stack_.size();
    pos_stack_.emplace_back();
    for (std::size_t i = 0; i < block.size(); ++i) {
      // Index, never a held reference: nested exec_block calls grow the
      // stack and may reallocate it.
      pos_stack_[d].index = static_cast<std::uint32_t>(i);
      exec_stmt(*block[i]);
      maybe_checkpoint();
    }
    pos_stack_.pop_back();
  }

  /// Re-enters `block` at the checkpointed position `pos[depth...]`: the
  /// innermost frame's statement had completed when the checkpoint was
  /// taken, every outer frame's statement is in progress and is descended
  /// through; after the resumed statement the block continues normally.
  void exec_block_resume(const std::vector<StmtP>& block,
                         const std::vector<PosFrame>& pos,
                         std::size_t depth) {
    const std::size_t d = pos_stack_.size();
    pos_stack_.push_back(pos[depth]);
    std::size_t start = static_cast<std::size_t>(pos[depth].index) + 1;
    if (depth + 1 != pos.size()) {
      STGSIM_CHECK_LT(static_cast<std::size_t>(pos[depth].index),
                      block.size())
          << "checkpoint position out of range";
      exec_stmt_resume(*block[pos[depth].index], pos, depth);
    }
    for (std::size_t i = start; i < block.size(); ++i) {
      pos_stack_[d].index = static_cast<std::uint32_t>(i);
      exec_stmt(*block[i]);
      maybe_checkpoint();
    }
    pos_stack_.pop_back();
  }

  /// Descends into an in-progress block-bearing statement during resume.
  void exec_stmt_resume(const Stmt& s, const std::vector<PosFrame>& pos,
                        std::size_t depth) {
    const PosFrame f = pos[depth];
    switch (s.kind) {
      case StmtKind::kFor: {
        // The restored frame already holds the induction variable at
        // f.loop_i with its original write generation; finish the current
        // iteration, then run the remaining ones normally. The bound is
        // the one recorded at loop entry, never re-evaluated.
        const auto var = static_cast<std::size_t>(slot_of(s.name));
        {
          const std::size_t pd = pos_stack_.size() - 1;
          pos_stack_[pd].loop_i = f.loop_i;
          pos_stack_[pd].loop_hi = f.loop_hi;
          exec_block_resume(s.body, pos, depth + 1);
        }
        for (std::int64_t i = f.loop_i + 1; i <= f.loop_hi; ++i) {
          frame_[var] = sym::Value(i);
          frame_defined_[var] = 1;
          ++frame_gen_[var];
          const std::size_t pd = pos_stack_.size() - 1;
          pos_stack_[pd].loop_i = i;
          pos_stack_[pd].loop_hi = f.loop_hi;
          exec_block(s.body);
        }
        break;
      }
      case StmtKind::kIf:
        exec_block_resume(f.branch != 0 ? s.body : s.else_body, pos,
                          depth + 1);
        break;
      case StmtKind::kCall: {
        const Procedure* p = prog_.find_procedure(s.name);
        STGSIM_CHECK(p != nullptr) << "unknown procedure " << s.name;
        exec_block_resume(p->body, pos, depth + 1);
        break;
      }
      default:
        STGSIM_CHECK(false)
            << "checkpoint position descends through a non-block statement";
    }
  }

  /// Statement-boundary checkpoint poll (optimistic mode; a no-op flag
  /// read everywhere else). Captures only at quiescent boundaries — no
  /// outstanding Requests — because Request handles are deliberately not
  /// serialized.
  void maybe_checkpoint() {
    if (pending_requests_ != 0) return;
    simk::Process& proc = comm_.process();
    if (!proc.checkpoint_due()) return;
    std::vector<std::uint8_t> blob;
    // State size is near-constant across captures (same frame, same
    // arrays); reserving the previous size turns the write into a single
    // allocation instead of log2(bytes) grow-and-copy rounds.
    blob.reserve(last_blob_bytes_ + 256);
    BlobWriter w(blob);
    comm_.save_state(w);
    serialize_state(w);
    last_blob_bytes_ = blob.size();
    proc.take_checkpoint(std::move(blob));
  }

  /// Serializes everything a fresh ExecState needs to resume at the
  /// current position: the scalar frame (values, definedness, write
  /// generations, name->slot map), arrays with their payload bytes, open
  /// timers, and the position stack. Request lists are all empty at a
  /// quiescent boundary and stmt_cache_/scratch_ rebuild lazily.
  void serialize_state(BlobWriter& w) const {
    w.vec_pod(frame_);
    w.vec_pod(frame_defined_);
    w.vec_pod(frame_gen_);
    w.u64(frame_index_.size());
    for (const auto& [name, slot] : frame_index_) {
      w.str(name);
      w.u32(static_cast<std::uint32_t>(slot));
    }
    w.u64(arrays_.size());
    for (const auto& [name, a] : arrays_) {
      w.str(name);
      w.vec_pod(a.extents);
      w.u64(a.elems);
      w.u64(a.elem_bytes);
      w.u64(a.buf.size_bytes());
      w.raw(a.buf.data(), a.buf.size_bytes());
    }
    w.u64(open_timers_.size());
    for (const auto& [name, t] : open_timers_) {
      w.str(name);
      w.i64(t);
    }
    w.vec_pod(pos_stack_);
  }

  void deserialize_state(BlobReader& r, std::vector<PosFrame>* pos) {
    r.vec_pod(&frame_);
    r.vec_pod(&frame_defined_);
    r.vec_pod(&frame_gen_);
    frame_index_.clear();
    const std::uint64_t nslots = r.u64();
    for (std::uint64_t i = 0; i < nslots; ++i) {
      const std::string name = r.str();
      frame_index_[name] = static_cast<int>(r.u32());
    }
    arrays_.clear();
    const std::uint64_t narrays = r.u64();
    for (std::uint64_t i = 0; i < narrays; ++i) {
      const std::string name = r.str();
      ArrayVal a;
      r.vec_pod(&a.extents);
      a.elems = static_cast<std::size_t>(r.u64());
      a.elem_bytes = static_cast<std::size_t>(r.u64());
      const auto bytes = static_cast<std::size_t>(r.u64());
      a.buf = TrackedBuffer(&comm_.process().memory(), bytes);
      r.raw(a.buf.data(), bytes);
      arrays_[name] = std::move(a);
    }
    open_timers_.clear();
    const std::uint64_t ntimers = r.u64();
    for (std::uint64_t i = 0; i < ntimers; ++i) {
      const std::string name = r.str();
      open_timers_[name] = r.i64();
    }
    r.vec_pod(pos);
  }

  /// Binds the hot operands of a communication statement: e1 (peer/root),
  /// e2 (count), e3 (offset), the target array, and its request list.
  void prepare_comm(const Stmt& s, StmtCache& c) {
    bind(c.a, s.e1, nullptr);
    bind(c.b, s.e2, nullptr);
    bind(c.c, s.e3, nullptr);
    c.array = &array(s.name);
    if (s.kind == StmtKind::kIsend || s.kind == StmtKind::kIrecv) {
      c.requests = &requests_[s.aux_name];
    }
    c.ready = true;
  }

  /// Resolves (array, offset_elems, count_elems) to a raw span for a
  /// communication statement, bounds-checked. Payload-free statements
  /// (dummy-buffer transfers emitted by the code generator) return null:
  /// the wire size is still exact but no bytes are staged or copied.
  std::uint8_t* comm_span(const Stmt& s, StmtCache& c,
                          std::size_t* bytes_out) {
    ArrayVal& a = *c.array;
    const std::int64_t count = eval_bound(c.b).as_int();
    const std::int64_t offset = eval_bound(c.c).as_int();
    STGSIM_CHECK_GE(count, 0);
    STGSIM_CHECK_GE(offset, 0);
    STGSIM_CHECK_LE(static_cast<std::size_t>(offset + count), a.elems)
        << "communication slice out of bounds on '" << s.name << "' (offset "
        << offset << " count " << count << " elems " << a.elems << ")";
    *bytes_out = static_cast<std::size_t>(count) * a.elem_bytes;
    if (s.payload_free) return nullptr;
    return a.buf.data() + static_cast<std::size_t>(offset) * a.elem_bytes;
  }

  std::vector<smpi::Request>& reqs(const std::string& name) {
    return requests_[name];
  }

  void exec_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kDeclScalar: {
        sym::Value v = s.has_init ? s.e1.eval(*this) : sym::Value(0);
        if (s.scalar_is_real) v = sym::Value(v.as_real());
        set_scalar(s.name, v, /*must_exist=*/false);
        break;
      }
      case StmtKind::kDeclArray: {
        ArrayVal a;
        std::size_t elems = 1;
        for (const auto& e : s.extents) {
          const std::int64_t n = e.eval_int(*this);
          STGSIM_CHECK_GE(n, 0) << "negative array extent on " << s.name;
          a.extents.push_back(n);
          elems *= static_cast<std::size_t>(n);
        }
        a.elems = elems;
        a.elem_bytes = s.elem_bytes;
        a.buf = TrackedBuffer(&comm_.process().memory(), elems * s.elem_bytes);
        arrays_[s.name] = std::move(a);
        break;
      }
      case StmtKind::kAssign: {
        StmtCache& c = cache_of(s);
        if (!c.ready) {
          bind(c.a, s.e1, nullptr);
          c.ready = true;
        }
        sym::Value v = eval_bound(c.a);
        if (c.var_slot < 0) {
          set_scalar(s.name, v, /*must_exist=*/true);  // checks declaration
          c.var_slot = frame_index_.find(s.name)->second;
        } else {
          write_slot(static_cast<std::size_t>(c.var_slot), v);
        }
        break;
      }
      case StmtKind::kFor: {
        StmtCache& c = cache_of(s);
        if (!c.ready) {
          bind(c.a, s.e1, nullptr);
          bind(c.b, s.e2, nullptr);
          c.var_slot = slot_of(s.name);
          c.ready = true;
        }
        const std::int64_t lo = eval_bound(c.a).as_int();
        const std::int64_t hi = eval_bound(c.b).as_int();
        const auto var = static_cast<std::size_t>(c.var_slot);
        for (std::int64_t i = lo; i <= hi; ++i) {
          frame_[var] = sym::Value(i);
          frame_defined_[var] = 1;
          ++frame_gen_[var];
          const std::size_t pd = pos_stack_.size() - 1;
          pos_stack_[pd].loop_i = i;
          pos_stack_[pd].loop_hi = hi;
          exec_block(s.body);
        }
        break;
      }
      case StmtKind::kIf: {
        StmtCache& c = cache_of(s);
        if (!c.ready) {
          bind(c.a, s.e1, nullptr);
          c.ready = true;
        }
        const bool taken = eval_bound(c.a).as_bool();
        if (options_.branches != nullptr) {
          options_.branches->record(s.id, taken);
        }
        pos_stack_[pos_stack_.size() - 1].branch = taken ? 1 : 0;
        if (taken) {
          exec_block(s.body);
        } else {
          exec_block(s.else_body);
        }
        break;
      }
      case StmtKind::kCompute:
        exec_kernel(s, s.kernel);
        break;
      case StmtKind::kSend: {
        StmtCache& c = cache_of(s);
        if (!c.ready) prepare_comm(s, c);
        std::size_t bytes = 0;
        const std::uint8_t* p = comm_span(s, c, &bytes);
        const auto dst = static_cast<int>(eval_bound(c.a).as_int());
        const VTime t0 = comm_.now();
        comm_.send(dst, s.tag, p, bytes);
        observe_comm(s, dst, bytes, t0);
        break;
      }
      case StmtKind::kRecv: {
        StmtCache& c = cache_of(s);
        if (!c.ready) prepare_comm(s, c);
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, c, &bytes);
        const auto src = static_cast<int>(eval_bound(c.a).as_int());
        const VTime t0 = comm_.now();
        comm_.recv(src, s.tag, p, bytes);
        observe_comm(s, src, bytes, t0);
        break;
      }
      case StmtKind::kIsend: {
        StmtCache& c = cache_of(s);
        if (!c.ready) prepare_comm(s, c);
        std::size_t bytes = 0;
        const std::uint8_t* p = comm_span(s, c, &bytes);
        const auto dst = static_cast<int>(eval_bound(c.a).as_int());
        const VTime t0 = comm_.now();
        c.requests->push_back(comm_.isend(dst, s.tag, p, bytes));
        ++pending_requests_;
        observe_comm(s, dst, bytes, t0);
        break;
      }
      case StmtKind::kIrecv: {
        StmtCache& c = cache_of(s);
        if (!c.ready) prepare_comm(s, c);
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, c, &bytes);
        const auto src = static_cast<int>(eval_bound(c.a).as_int());
        const VTime t0 = comm_.now();
        c.requests->push_back(comm_.irecv(src, s.tag, p, bytes));
        ++pending_requests_;
        observe_comm(s, src, bytes, t0);
        break;
      }
      case StmtKind::kWaitall: {
        auto& rs = reqs(s.name);
        comm_.waitall(rs);
        pending_requests_ -= rs.size();
        rs.clear();
        break;
      }
      case StmtKind::kBarrier: {
        const VTime t0 = comm_.now();
        comm_.barrier();
        observe_comm(s, -1, 0, t0);
        break;
      }
      case StmtKind::kBcast: {
        StmtCache& c = cache_of(s);
        if (!c.ready) prepare_comm(s, c);
        std::size_t bytes = 0;
        std::uint8_t* p = comm_span(s, c, &bytes);
        const auto root = static_cast<int>(eval_bound(c.a).as_int());
        const VTime t0 = comm_.now();
        comm_.bcast(p, bytes, root);
        observe_comm(s, root, bytes, t0);
        break;
      }
      case StmtKind::kAllreduceSum: {
        double v = scalar(s.name).as_real();
        const VTime t0 = comm_.now();
        comm_.allreduce_sum(&v, 1);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/true);
        observe_comm(s, -1, sizeof(double), t0);
        break;
      }
      case StmtKind::kAllreduceMax: {
        double v = scalar(s.name).as_real();
        const VTime t0 = comm_.now();
        comm_.allreduce_max(&v, 1);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/true);
        observe_comm(s, -1, sizeof(double), t0);
        break;
      }
      case StmtKind::kGetRank:
        set_scalar(s.name, sym::Value(std::int64_t{comm_.rank()}),
                   /*must_exist=*/false);
        break;
      case StmtKind::kGetSize:
        set_scalar(s.name, sym::Value(std::int64_t{comm_.size()}),
                   /*must_exist=*/false);
        break;
      case StmtKind::kDelay: {
        StmtCache& c = cache_of(s);
        if (!c.ready) {
          bind(c.a, s.e1, s.e1_compiled);
          c.ready = true;
        }
        const double sec = eval_bound(c.a).as_real();
        STGSIM_CHECK_GE(sec, -1e-12)
            << "negative delay from scaling function: " << s.e1.to_string();
        comm_.delay_seconds(std::max(sec, 0.0));
        break;
      }
      case StmtKind::kReadParam: {
        const double v = comm_.read_param(s.aux_name);
        set_scalar(s.name, sym::Value(v), /*must_exist=*/false);
        break;
      }
      case StmtKind::kTimerStart:
        open_timers_[s.name] = comm_.now();
        break;
      case StmtKind::kTimerStop: {
        auto it = open_timers_.find(s.name);
        STGSIM_CHECK(it != open_timers_.end())
            << "timer_stop without timer_start for task " << s.name;
        const VTime dt = comm_.now() - it->second;
        open_timers_.erase(it);
        if (options_.timers != nullptr) {
          options_.timers->add(s.name, vtime_to_sec(dt),
                               s.e1.eval_real(*this));
        }
        break;
      }
      case StmtKind::kCall: {
        const Procedure* p = prog_.find_procedure(s.name);
        STGSIM_CHECK(p != nullptr) << "unknown procedure " << s.name;
        exec_block(p->body);
        break;
      }
    }
  }

  void observe_comm(const Stmt& s, int peer, std::size_t bytes, VTime t0) {
    if (options_.observer != nullptr) {
      options_.observer->on_comm(comm_.rank(), s, peer, bytes, t0,
                                 comm_.now());
    }
  }

  void exec_kernel(const Stmt& stmt, const KernelSpec& k) {
    const VTime t_begin = comm_.now();
    StmtCache& c = cache_of(stmt);
    if (!c.ready) {
      bind(c.a, k.iters, nullptr);
      c.ready = true;
    }
    const std::int64_t iters = eval_bound(c.a).as_int();
    STGSIM_CHECK_GE(iters, 0) << "negative iteration count for " << k.task;

    KernelCtx ctx(*this, k, iters);
    if (k.body) k.body(ctx);

    double fraction = 0.0;
    if (k.branch_fraction) fraction = k.branch_fraction(ctx);
    STGSIM_DCHECK(fraction >= 0.0 && fraction <= 1.0);

    // Working set: every array the task touches, per the declared sets.
    double ws_bytes = 0.0;
    for (const auto* names : {&k.reads, &k.writes}) {
      for (const auto& n : *names) {
        auto it = arrays_.find(n);
        if (it != arrays_.end()) {
          ws_bytes += static_cast<double>(it->second.elems *
                                          it->second.elem_bytes);
        }
      }
    }

    const double flops_eff =
        k.flops_per_iter + fraction * k.extra_flops_per_iter;
    if (options_.kernel_meta != nullptr) {
      options_.kernel_meta->add(k.task, static_cast<double>(iters), flops_eff,
                                ws_bytes);
    }

    const auto& params = comm_.world().options().compute;
    const VTime cost =
        machine::kernel_cost(params, static_cast<double>(iters), flops_eff,
                             ws_bytes, &comm_.process().rng());
    comm_.compute(cost);
    if (options_.observer != nullptr) {
      options_.observer->on_compute(comm_.rank(), stmt, t_begin, comm_.now());
    }
  }

  const Program& prog_;
  smpi::Comm& comm_;
  ExecOptions options_;

  // Scalar slot frame (see class comment).
  std::vector<sym::Value> frame_;
  std::vector<std::uint8_t> frame_defined_;
  std::vector<std::uint64_t> frame_gen_;  ///< write generation per slot
  std::unordered_map<std::string, int> frame_index_;

  std::vector<StmtCache> stmt_cache_;  ///< indexed by Stmt::id
  sym::CompiledExpr::Scratch scratch_;

  std::map<std::string, ArrayVal> arrays_;
  std::map<std::string, std::vector<smpi::Request>> requests_;
  std::map<std::string, VTime> open_timers_;

  /// Live position in the statement tree (see PosFrame); one frame per
  /// open block. Serialized into checkpoints.
  std::vector<PosFrame> pos_stack_;
  /// Outstanding isend/irecv handles across statements; checkpoints are
  /// only taken while this is zero.
  std::size_t pending_requests_ = 0;
  /// Size of the last checkpoint blob, used to pre-reserve the next one.
  std::size_t last_blob_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// KernelCtx
// ---------------------------------------------------------------------------

KernelCtx::KernelCtx(ExecState& state, const KernelSpec& spec,
                     std::int64_t iters)
    : state_(state), spec_(spec), iters_(iters) {}

int KernelCtx::rank() const { return state_.comm().rank(); }
int KernelCtx::world_size() const { return state_.comm().size(); }

void KernelCtx::check_access(const std::string& name, bool write) const {
  const auto& allowed = write ? spec_.writes : spec_.reads;
  const bool in_primary =
      std::find(allowed.begin(), allowed.end(), name) != allowed.end();
  // Reading a variable you may write is fine (read-modify-write tasks).
  const bool in_writes =
      std::find(spec_.writes.begin(), spec_.writes.end(), name) !=
      spec_.writes.end();
  STGSIM_CHECK(in_primary || (!write && in_writes))
      << "kernel " << spec_.task << " accesses '" << name
      << "' outside its declared " << (write ? "write" : "read") << " set";
}

double* KernelCtx::array(const std::string& name) {
  // Conservative: grant pointer if the name is in either set; writes
  // through a read-only pointer are the kernel author's bug.
  check_access(name, /*write=*/false);
  ArrayVal& a = state_.array(name);
  STGSIM_CHECK_EQ(a.elem_bytes, sizeof(double))
      << "kernel array access requires double elements";
  return a.buf.as_doubles();
}

std::size_t KernelCtx::array_elems(const std::string& name) const {
  return state_.array(name).elems;
}

std::int64_t KernelCtx::array_extent(const std::string& name,
                                     std::size_t dim) const {
  const ArrayVal& a = state_.array(name);
  STGSIM_CHECK_LT(dim, a.extents.size());
  return a.extents[dim];
}

sym::Value KernelCtx::scalar(const std::string& name) const {
  check_access(name, /*write=*/false);
  return state_.scalar(name);
}

void KernelCtx::set_scalar(const std::string& name, sym::Value v) {
  check_access(name, /*write=*/true);
  state_.set_scalar(name, v, /*must_exist=*/true);
}

Rng& KernelCtx::rng() { return state_.comm().process().rng(); }

// ---------------------------------------------------------------------------

void execute(const Program& prog, smpi::Comm& comm,
             const ExecOptions& options) {
  ExecState state(prog, comm, options);
  state.run();
}

}  // namespace stgsim::ir
