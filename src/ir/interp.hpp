// IR interpreter — the direct-execution side of MPI-Sim.
//
// Executes an IR program for one rank on top of smpi::Comm: scalar code and
// control flow are interpreted, compute kernels run their native bodies on
// real (tracked) arrays, and every kernel invocation charges the machine
// model's cost for its *actual* iteration count — that is "direct
// execution" in the paper's sense. The same interpreter also runs
// compiler-simplified programs, whose kernels have been replaced by
// delay() statements, and timer-instrumented programs, which feed a
// TimerRecorder with the w_i measurements (Figure 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "smpi/smpi.hpp"
#include "support/memtrack.hpp"

namespace stgsim::ir {

/// Accumulates task-time measurements from timer-instrumented runs.
/// w_<task> = total measured seconds / total iterations (paper §3.3).
class TimerRecorder {
 public:
  void add(const std::string& task, double seconds, double iters);

  struct Record {
    double seconds = 0.0;
    double iters = 0.0;
  };
  const std::map<std::string, Record>& records() const { return records_; }

  /// Parameter table for World::set_param: {"w_<task>" -> sec/iter}.
  std::map<std::string, double> to_params() const;

 private:
  std::map<std::string, Record> records_;
};

/// Records branch outcomes per kIf statement, feeding the profiled branch
/// probabilities the code generator can fold eliminated branches with
/// ("we can use profiling to estimate the branching probabilities of
/// eliminated branches", §3.1).
class BranchProfiler {
 public:
  void record(int stmt_id, bool taken) {
    auto& c = counts_[stmt_id];
    ++c.first;
    if (taken) ++c.second;
  }

  /// {stmt id -> taken fraction} for every branch seen at least once.
  std::map<int, double> probabilities() const {
    std::map<int, double> out;
    for (const auto& [id, c] : counts_) {
      out[id] = static_cast<double>(c.second) / static_cast<double>(c.first);
    }
    return out;
  }

 private:
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> counts_;
};

/// Records what the machine model was fed for each task — its effective
/// operation weight (including the observed data-dependent branch
/// fraction) and working set. This is the information a compiler-side
/// analytical task-time estimator works from (paper §3.3, alternative (a)
/// to direct measurement).
class KernelMetaRecorder {
 public:
  struct Meta {
    double iters = 0.0;
    double flops_weighted = 0.0;  ///< sum over calls of iters * flops_eff
    double ws_bytes_max = 0.0;
  };

  void add(const std::string& task, double iters, double flops_eff,
           double ws_bytes) {
    auto& m = records_[task];
    m.iters += iters;
    m.flops_weighted += iters * flops_eff;
    m.ws_bytes_max = std::max(m.ws_bytes_max, ws_bytes);
  }

  const std::map<std::string, Meta>& records() const { return records_; }

 private:
  std::map<std::string, Meta> records_;
};

/// Callback interface for observing executed statements with their
/// evaluated operands — the raw material for dynamic task graphs
/// (core::DtgRecorder) or custom tracing.
class StmtObserver {
 public:
  virtual ~StmtObserver() = default;

  virtual void on_compute(int rank, const Stmt& stmt, VTime start,
                          VTime end) = 0;

  /// peer: evaluated partner rank (root for collectives, -1 if n/a);
  /// bytes: evaluated wire size.
  virtual void on_comm(int rank, const Stmt& stmt, int peer,
                       std::size_t bytes, VTime start, VTime end) = 0;
};

struct ExecOptions {
  /// When set, kTimerStart/kTimerStop feed this recorder. Shared across
  /// ranks; only valid with the sequential scheduler.
  TimerRecorder* timers = nullptr;

  /// When set, compute and communication statements are reported with
  /// their evaluated operands (sequential scheduler only).
  StmtObserver* observer = nullptr;

  /// When set, every kIf outcome is recorded (sequential scheduler only).
  BranchProfiler* branches = nullptr;

  /// When set, every executed kernel reports its model inputs (sequential
  /// scheduler only).
  KernelMetaRecorder* kernel_meta = nullptr;
};

class ExecState;

/// What a kernel's native body may touch: its declared arrays and scalars
/// plus the evaluated iteration count. Access outside the declared
/// read/write sets is a programming error the tests assert on.
class KernelCtx {
 public:
  KernelCtx(ExecState& state, const KernelSpec& spec, std::int64_t iters);

  int rank() const;
  int world_size() const;
  std::int64_t iters() const { return iters_; }

  /// Array payload as doubles (all app arrays are doubles).
  double* array(const std::string& name);
  std::size_t array_elems(const std::string& name) const;
  std::int64_t array_extent(const std::string& name, std::size_t dim) const;

  sym::Value scalar(const std::string& name) const;
  void set_scalar(const std::string& name, sym::Value v);

  Rng& rng();

 private:
  void check_access(const std::string& name, bool write) const;

  ExecState& state_;
  const KernelSpec& spec_;
  std::int64_t iters_;
};

/// Runs `prog` for the rank bound to `comm`; returns when main completes.
void execute(const Program& prog, smpi::Comm& comm,
             const ExecOptions& options = {});

}  // namespace stgsim::ir
