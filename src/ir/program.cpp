#include "ir/program.hpp"

#include <set>
#include <sstream>

#include "support/check.hpp"

namespace stgsim::ir {

const char* stmt_kind_name(StmtKind k) {
  switch (k) {
    case StmtKind::kDeclScalar: return "decl";
    case StmtKind::kDeclArray: return "decl_array";
    case StmtKind::kAssign: return "assign";
    case StmtKind::kFor: return "for";
    case StmtKind::kIf: return "if";
    case StmtKind::kCompute: return "compute";
    case StmtKind::kSend: return "send";
    case StmtKind::kRecv: return "recv";
    case StmtKind::kIsend: return "isend";
    case StmtKind::kIrecv: return "irecv";
    case StmtKind::kWaitall: return "waitall";
    case StmtKind::kBarrier: return "barrier";
    case StmtKind::kBcast: return "bcast";
    case StmtKind::kAllreduceSum: return "allreduce_sum";
    case StmtKind::kAllreduceMax: return "allreduce_max";
    case StmtKind::kGetRank: return "get_rank";
    case StmtKind::kGetSize: return "get_size";
    case StmtKind::kDelay: return "delay";
    case StmtKind::kReadParam: return "read_param";
    case StmtKind::kTimerStart: return "timer_start";
    case StmtKind::kTimerStop: return "timer_stop";
    case StmtKind::kCall: return "call";
  }
  return "?";
}

namespace {

void add_vars(const sym::Expr& e, std::vector<std::string>* out) {
  for (const auto& v : e.free_vars()) out->push_back(v);
}

}  // namespace

StmtEffects stmt_effects(const Stmt& s) {
  StmtEffects fx;
  switch (s.kind) {
    case StmtKind::kDeclScalar:
      fx.defs.push_back(s.name);
      if (s.has_init) add_vars(s.e1, &fx.uses);
      break;
    case StmtKind::kDeclArray:
      fx.defs.push_back(s.name);
      for (const auto& e : s.extents) add_vars(e, &fx.uses);
      break;
    case StmtKind::kAssign:
      fx.defs.push_back(s.name);
      add_vars(s.e1, &fx.uses);
      break;
    case StmtKind::kFor:
      fx.defs.push_back(s.name);
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      break;
    case StmtKind::kIf:
      add_vars(s.e1, &fx.uses);
      break;
    case StmtKind::kCompute:
      for (const auto& w : s.kernel.writes) fx.defs.push_back(w);
      for (const auto& r : s.kernel.reads) fx.uses.push_back(r);
      add_vars(s.kernel.iters, &fx.uses);
      break;
    case StmtKind::kSend:
      fx.uses.push_back(s.name);  // payload array
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      add_vars(s.e3, &fx.uses);
      break;
    case StmtKind::kRecv:
      fx.defs.push_back(s.name);  // destination array
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      add_vars(s.e3, &fx.uses);
      break;
    case StmtKind::kIsend:
      fx.uses.push_back(s.name);
      fx.defs.push_back(s.aux_name);  // request list grows
      fx.uses.push_back(s.aux_name);
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      add_vars(s.e3, &fx.uses);
      break;
    case StmtKind::kIrecv:
      fx.defs.push_back(s.name);
      fx.defs.push_back(s.aux_name);
      fx.uses.push_back(s.aux_name);
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      add_vars(s.e3, &fx.uses);
      break;
    case StmtKind::kWaitall:
      fx.defs.push_back(s.name);  // drains the list
      fx.uses.push_back(s.name);
      break;
    case StmtKind::kBarrier:
      break;
    case StmtKind::kBcast:
      fx.defs.push_back(s.name);
      fx.uses.push_back(s.name);
      add_vars(s.e1, &fx.uses);
      add_vars(s.e2, &fx.uses);
      add_vars(s.e3, &fx.uses);
      break;
    case StmtKind::kAllreduceSum:
    case StmtKind::kAllreduceMax:
      fx.defs.push_back(s.name);
      fx.uses.push_back(s.name);
      break;
    case StmtKind::kGetRank:
    case StmtKind::kGetSize:
    case StmtKind::kReadParam:
      fx.defs.push_back(s.name);
      break;
    case StmtKind::kDelay:
      add_vars(s.e1, &fx.uses);
      break;
    case StmtKind::kTimerStart:
      break;
    case StmtKind::kTimerStop:
      add_vars(s.e1, &fx.uses);
      break;
    case StmtKind::kCall:
      break;  // callee effects are accounted by walking its body
  }
  return fx;
}

Procedure& Program::add_procedure(const std::string& name) {
  STGSIM_CHECK(find_procedure(name) == nullptr)
      << "duplicate procedure " << name;
  procs_.push_back(Procedure{name, {}});
  return procs_.back();
}

const Procedure* Program::find_procedure(const std::string& name) const {
  for (const auto& p : procs_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

StmtP Program::make_stmt(StmtKind kind) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->id = next_id_++;
  return s;
}

namespace {

StmtP clone_stmt(const Stmt& s);

std::vector<StmtP> clone_block(const std::vector<StmtP>& block) {
  std::vector<StmtP> out;
  out.reserve(block.size());
  for (const auto& s : block) out.push_back(clone_stmt(*s));
  return out;
}

StmtP clone_stmt(const Stmt& s) {
  auto c = std::make_unique<Stmt>();
  c->kind = s.kind;
  c->id = s.id;
  c->name = s.name;
  c->aux_name = s.aux_name;
  c->scalar_is_real = s.scalar_is_real;
  c->has_init = s.has_init;
  c->payload_free = s.payload_free;
  c->elem_bytes = s.elem_bytes;
  c->tag = s.tag;
  c->e1 = s.e1;
  c->e2 = s.e2;
  c->e3 = s.e3;
  c->e1_compiled = s.e1_compiled;
  c->extents = s.extents;
  c->kernel = s.kernel;
  c->body = clone_block(s.body);
  c->else_body = clone_block(s.else_body);
  return c;
}

}  // namespace

Program Program::clone() const {
  Program out(name_);
  out.main_ = clone_block(main_);
  for (const auto& p : procs_) {
    out.procs_.push_back(Procedure{p.name, clone_block(p.body)});
  }
  out.next_id_ = next_id_;
  return out;
}

namespace {

void print_block(const std::vector<StmtP>& block, int indent,
                 std::ostringstream& os);

void print_stmt(const Stmt& s, int indent, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad;
  switch (s.kind) {
    case StmtKind::kDeclScalar:
      os << (s.scalar_is_real ? "real " : "int ") << s.name;
      if (s.has_init) os << " = " << s.e1.to_string();
      os << '\n';
      break;
    case StmtKind::kDeclArray: {
      os << "array<" << s.elem_bytes << "B> " << s.name << "[";
      for (std::size_t i = 0; i < s.extents.size(); ++i) {
        os << (i != 0 ? ", " : "") << s.extents[i].to_string();
      }
      os << "]\n";
      break;
    }
    case StmtKind::kAssign:
      os << s.name << " = " << s.e1.to_string() << '\n';
      break;
    case StmtKind::kFor:
      os << "for " << s.name << " = " << s.e1.to_string() << " .. "
         << s.e2.to_string() << " {\n";
      print_block(s.body, indent + 1, os);
      os << pad << "}\n";
      break;
    case StmtKind::kIf:
      os << "if " << s.e1.to_string() << " {\n";
      print_block(s.body, indent + 1, os);
      if (!s.else_body.empty()) {
        os << pad << "} else {\n";
        print_block(s.else_body, indent + 1, os);
      }
      os << pad << "}\n";
      break;
    case StmtKind::kCompute: {
      os << "compute " << s.kernel.task << " iters=("
         << s.kernel.iters.to_string() << ") flops/iter="
         << s.kernel.flops_per_iter << " reads={";
      for (std::size_t i = 0; i < s.kernel.reads.size(); ++i) {
        os << (i != 0 ? "," : "") << s.kernel.reads[i];
      }
      os << "} writes={";
      for (std::size_t i = 0; i < s.kernel.writes.size(); ++i) {
        os << (i != 0 ? "," : "") << s.kernel.writes[i];
      }
      os << "}\n";
      break;
    }
    case StmtKind::kSend:
    case StmtKind::kIsend:
      os << stmt_kind_name(s.kind) << " " << s.name << "["
         << s.e3.to_string() << " +: " << s.e2.to_string() << "] -> ("
         << s.e1.to_string() << ") tag " << s.tag;
      if (!s.aux_name.empty()) os << " req " << s.aux_name;
      os << '\n';
      break;
    case StmtKind::kRecv:
    case StmtKind::kIrecv:
      os << stmt_kind_name(s.kind) << " " << s.name << "["
         << s.e3.to_string() << " +: " << s.e2.to_string() << "] <- ("
         << s.e1.to_string() << ") tag " << s.tag;
      if (!s.aux_name.empty()) os << " req " << s.aux_name;
      os << '\n';
      break;
    case StmtKind::kWaitall:
      os << "waitall " << s.name << '\n';
      break;
    case StmtKind::kBarrier:
      os << "barrier\n";
      break;
    case StmtKind::kBcast:
      os << "bcast " << s.name << "[" << s.e3.to_string() << " +: "
         << s.e2.to_string() << "] root " << s.e1.to_string() << '\n';
      break;
    case StmtKind::kAllreduceSum:
      os << "allreduce_sum " << s.name << '\n';
      break;
    case StmtKind::kAllreduceMax:
      os << "allreduce_max " << s.name << '\n';
      break;
    case StmtKind::kGetRank:
      os << s.name << " = mpi_comm_rank()\n";
      break;
    case StmtKind::kGetSize:
      os << s.name << " = mpi_comm_size()\n";
      break;
    case StmtKind::kDelay:
      os << "delay(" << s.e1.to_string() << ")\n";
      break;
    case StmtKind::kReadParam:
      os << s.name << " = read_and_broadcast(\"" << s.aux_name << "\")\n";
      break;
    case StmtKind::kTimerStart:
      os << "timer_start " << s.name << '\n';
      break;
    case StmtKind::kTimerStop:
      os << "timer_stop " << s.name << " iters=(" << s.e1.to_string()
         << ")\n";
      break;
    case StmtKind::kCall:
      os << "call " << s.name << "()\n";
      break;
  }
}

void print_block(const std::vector<StmtP>& block, int indent,
                 std::ostringstream& os) {
  for (const auto& s : block) print_stmt(*s, indent, os);
}

}  // namespace

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program " << name_ << " {\n";
  print_block(main_, 1, os);
  os << "}\n";
  for (const auto& p : procs_) {
    os << "proc " << p.name << " {\n";
    print_block(p.body, 1, os);
    os << "}\n";
  }
  return os.str();
}

void for_each_stmt(const std::vector<StmtP>& block,
                   const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : block) {
    fn(*s);
    for_each_stmt(s->body, fn);
    for_each_stmt(s->else_body, fn);
  }
}

void for_each_stmt(const Program& prog,
                   const std::function<void(const Stmt&)>& fn) {
  for_each_stmt(prog.main(), fn);
  for (const auto& p : prog.procedures()) for_each_stmt(p.body, fn);
}

void Program::validate() const {
  std::set<int> ids;
  for_each_stmt(*this, [&](const Stmt& s) {
    STGSIM_CHECK(s.id >= 0) << "statement without id";
    STGSIM_CHECK(ids.insert(s.id).second) << "duplicate stmt id " << s.id;
    switch (s.kind) {
      case StmtKind::kFor:
        STGSIM_CHECK(!s.name.empty()) << "for-loop without variable";
        break;
      case StmtKind::kCompute:
        STGSIM_CHECK(!s.kernel.task.empty()) << "kernel without task name";
        break;
      case StmtKind::kCall:
        STGSIM_CHECK(find_procedure(s.name) != nullptr)
            << "call to unknown procedure " << s.name;
        break;
      default:
        break;
    }
  });
}

}  // namespace stgsim::ir
