// Program IR for message-passing target programs.
//
// This plays the role of the Fortran/MPI source level in the paper: target
// benchmarks are authored in this IR, the interpreter *directly executes*
// them (MPI-Sim-DE), and the compiler in src/core analyses and rewrites
// them into simplified programs (MPI-SIM-AM).
//
// The IR deliberately separates what a real compiler can see from what it
// cannot: scalar computation, control flow, and communication are explicit
// statements with full def/use information, while the arithmetic inside a
// computational task is an opaque native kernel carrying exactly the
// metadata dHPF attaches to an STG compute node — a symbolic iteration
// count (scaling function), an operation weight, and declared read/write
// sets (paper §2.2, §3.1). The compiler may not peek inside kernel bodies.
//
// Statement field usage by kind (unused fields ignored):
//   kDeclScalar : name, e1 = init (optional), scalar_is_real
//   kDeclArray  : name, extents[] (element counts per dim), elem_bytes
//   kAssign     : name = e1
//   kFor        : name = loop var, e1 = lo, e2 = hi (inclusive), body
//   kIf         : e1 = condition, body, else_body
//   kCompute    : kernel
//   kSend/kIsend: name = array, e1 = peer, e2 = count (elems),
//                 e3 = offset (elems), tag, aux_name = request list (isend)
//   kRecv/kIrecv: like send; name = destination array; e1 may be -1 (any)
//   kWaitall    : name = request list
//   kBarrier    : —
//   kBcast      : name = array, e1 = root, e2 = count, e3 = offset
//   kAllreduceSum/kAllreduceMax : name = scalar (double)
//   kGetRank/kGetSize : name = scalar to define
//   kDelay      : e1 = seconds (real-valued expression)
//   kReadParam  : name = scalar to define, aux_name = parameter name
//   kTimerStart : name = task id
//   kTimerStop  : name = task id, e1 = iteration-count expression
//   kCall       : name = procedure (executed in the caller's frame, the
//                 paper's single-frame "limited interprocedural" model)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "symexpr/expr.hpp"

namespace stgsim::sym {
class CompiledExpr;
}

namespace stgsim::ir {

class KernelCtx;

/// Metadata + native body of one computational task. `iters` is the
/// symbolic scaling function; `flops_per_iter` the operation weight; the
/// optional `branch_fraction` models a data-dependent branch inside the
/// task (Sweep3D's flux fixup, §3.1): direct execution evaluates the real
/// fraction from array contents, adding `extra_flops_per_iter` per taken
/// iteration.
struct KernelSpec {
  std::string task;  ///< calibration-parameter identity (w_<task>)
  sym::Expr iters = sym::Expr::integer(1);
  double flops_per_iter = 1.0;
  double extra_flops_per_iter = 0.0;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  std::function<void(KernelCtx&)> body;                ///< optional
  std::function<double(KernelCtx&)> branch_fraction;   ///< optional
};

enum class StmtKind {
  kDeclScalar,
  kDeclArray,
  kAssign,
  kFor,
  kIf,
  kCompute,
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWaitall,
  kBarrier,
  kBcast,
  kAllreduceSum,
  kAllreduceMax,
  kGetRank,
  kGetSize,
  kDelay,
  kReadParam,
  kTimerStart,
  kTimerStop,
  kCall,
};

const char* stmt_kind_name(StmtKind k);

struct Stmt;
using StmtP = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind{};
  int id = -1;  ///< unique within a Program (assigned by Program)

  std::string name;
  std::string aux_name;
  bool scalar_is_real = false;
  bool has_init = false;

  /// Set by the code generator on communication statements it redirected
  /// to the shared dummy buffer: the transfer must be modeled with the
  /// correct wire size and timing, but the bytes moved carry no meaning,
  /// so the interpreter passes a null span and no payload is copied.
  bool payload_free = false;
  std::size_t elem_bytes = sizeof(double);
  int tag = 0;

  sym::Expr e1, e2, e3;
  std::vector<sym::Expr> extents;
  KernelSpec kernel;

  /// Optional precompiled form of e1, set by the code generator for kDelay
  /// statements: the condensed scaling expression is compiled to a slot
  /// tape once and shared (immutably) by every rank's interpreter instead
  /// of being re-walked as an Expr DAG per evaluation. clone() preserves
  /// the pointer.
  std::shared_ptr<const sym::CompiledExpr> e1_compiled;

  std::vector<StmtP> body;
  std::vector<StmtP> else_body;
};

struct Procedure {
  std::string name;
  std::vector<StmtP> body;
};

/// Variables a statement defines/uses — the raw material for slicing.
/// Arrays, scalars and request lists share one name space.
struct StmtEffects {
  std::vector<std::string> defs;
  std::vector<std::string> uses;
};

StmtEffects stmt_effects(const Stmt& s);

/// A whole target program: `main` plus named procedures, all sharing one
/// variable frame (the paper handles single-procedure benchmarks with
/// limited interprocedural effects; kCall gives the same semantics).
class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }

  std::vector<StmtP>& main() { return main_; }
  const std::vector<StmtP>& main() const { return main_; }

  Procedure& add_procedure(const std::string& name);
  const Procedure* find_procedure(const std::string& name) const;
  const std::vector<Procedure>& procedures() const { return procs_; }
  std::vector<Procedure>& procedures() { return procs_; }

  /// Creates a statement owned by nobody yet (caller inserts it into a
  /// body); ids are unique across the program.
  StmtP make_stmt(StmtKind kind);

  int next_id() const { return next_id_; }

  /// Deep copy (fresh ids preserved one-to-one — clone keeps stmt ids so
  /// analyses done on the original remain meaningful on the clone).
  Program clone() const;

  /// Pretty-printed source-like listing.
  std::string to_string() const;

  /// Structural sanity: unique ids, declared-before-use names, loops
  /// non-empty vars, etc. Throws CheckError on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<StmtP> main_;
  std::vector<Procedure> procs_;
  int next_id_ = 0;
};

/// Walks every statement (pre-order, including nested bodies) in `block`.
void for_each_stmt(const std::vector<StmtP>& block,
                   const std::function<void(const Stmt&)>& fn);
void for_each_stmt(const Program& prog,
                   const std::function<void(const Stmt&)>& fn);

}  // namespace stgsim::ir
