#include "machine/compute.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace stgsim::machine {

ComputeParams ibm_sp_node() {
  ComputeParams p;
  p.flop_time_ns = 8.0;
  p.cache_bytes = 2.0 * 1024 * 1024;
  p.cache_penalty = 0.35;
  return p;
}

ComputeParams origin2000_node() {
  ComputeParams p;
  p.flop_time_ns = 5.0;
  p.cache_bytes = 4.0 * 1024 * 1024;
  p.cache_penalty = 0.30;
  return p;
}

double cache_factor(const ComputeParams& p, double ws_bytes) {
  STGSIM_DCHECK(ws_bytes >= 0.0);
  if (ws_bytes <= 0.0) return 1.0;
  return 1.0 + p.cache_penalty * ws_bytes / (ws_bytes + p.cache_bytes);
}

double seconds_per_iteration(const ComputeParams& p, double flops_per_iter,
                             double ws_bytes) {
  return flops_per_iter * p.flop_time_ns * 1e-9 * cache_factor(p, ws_bytes);
}

VTime kernel_cost(const ComputeParams& p, double iters, double flops_per_iter,
                  double ws_bytes, Rng* rng) {
  double sec = iters * seconds_per_iteration(p, flops_per_iter, ws_bytes);
  if (p.compute_jitter_frac > 0.0 && rng != nullptr) {
    sec *= std::max(0.5, 1.0 + p.compute_jitter_frac * rng->next_gaussian());
  }
  return vtime_from_sec(sec);
}

}  // namespace stgsim::machine
