// Target-processor compute cost model.
//
// Direct execution charges each computational task its *exact* iteration
// count times a per-iteration cost that depends on the task's arithmetic
// intensity and its cache behaviour. The analytical model (paper §3.3)
// instead uses a constant per-iteration time w_i measured at one
// configuration — it deliberately does NOT track how the cache working set
// changes with problem size or process count. The cache term below is what
// makes that a real approximation, reproducing the paper's residual errors.
#pragma once

#include "support/rng.hpp"
#include "support/vtime.hpp"

namespace stgsim::machine {

struct ComputeParams {
  double flop_time_ns = 8.0;      ///< cost of one operation unit (cache hit)
  double cache_bytes = 2.0 * 1024 * 1024;  ///< effective cache capacity
  double cache_penalty = 0.35;    ///< max slowdown factor when ws >> cache
  double compute_jitter_frac = 0.0;  ///< emulation-only per-task noise
};

/// IBM SP node (P2SC-class): ~125 sustained "Mflop units"/s.
ComputeParams ibm_sp_node();

/// SGI Origin 2000 node (R10000): faster clock, larger L2.
ComputeParams origin2000_node();

/// Multiplicative slowdown for a working set of `ws_bytes`:
/// 1 + penalty * ws/(ws + cache). Smooth, monotone, in [1, 1+penalty).
double cache_factor(const ComputeParams& p, double ws_bytes);

/// Cost of `iters` iterations at `flops_per_iter` operation units each,
/// over a working set of `ws_bytes`. `rng` supplies emulation noise and
/// may be null when compute_jitter_frac == 0.
VTime kernel_cost(const ComputeParams& p, double iters, double flops_per_iter,
                  double ws_bytes, Rng* rng = nullptr);

/// Per-iteration cost in seconds — the quantity the timer-instrumented
/// program measures as w_i.
double seconds_per_iteration(const ComputeParams& p, double flops_per_iter,
                             double ws_bytes);

}  // namespace stgsim::machine
