#include "mc/checker.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "mc/oracles.hpp"
#include "mc/schedule.hpp"
#include "support/check.hpp"

namespace stgsim::mc {

using harness::RunConfig;
using harness::RunOutcome;
using harness::RunStatus;

namespace {

std::string format_blocked(
    const std::vector<simk::DeadlockError::BlockedRank>& blocked) {
  std::vector<const simk::DeadlockError::BlockedRank*> sorted;
  for (const auto& b : blocked) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* x, const auto* y) { return x->rank < y->rank; });
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto* b = sorted[i];
    if (i > 0) os << ", ";
    os << "rank " << b->rank << " " << b->waiting_what << "(src=";
    if (b->waiting_src == simk::MatchSpec::kAnySource) {
      os << "ANY";
    } else {
      os << b->waiting_src;
    }
    os << ",tag=" << b->waiting_tag << ")@" << b->clock;
  }
  os << "}";
  return os.str();
}

std::vector<simk::ChoiceOption> committed_schedule(
    const RecordingOracle& oracle) {
  std::vector<simk::ChoiceOption> steps;
  steps.reserve(oracle.log().size());
  for (const StepLog& s : oracle.log()) steps.push_back(s.chosen);
  return steps;
}

}  // namespace

const char* divergence_kind_name(Divergence::Kind k) {
  switch (k) {
    case Divergence::Kind::kDigest: return "digest";
    case Divergence::Kind::kStatus: return "status";
    case Divergence::Kind::kDeadlockReport: return "deadlock_report";
    case Divergence::Kind::kThreadedDigest: return "threaded_digest";
  }
  return "?";
}

CheckReport check_program(const ir::Program& prog, const CheckOptions& opts) {
  CheckReport rep;
  if (opts.base.mode == harness::Mode::kMeasured) {
    rep.error =
        "check requires --mode de or am: measured mode's seeded noise and "
        "NIC contention state are order-dependent by design, so digest "
        "invariance is not a checkable claim there";
    return rep;
  }
  if (opts.base.nprocs > 8) {
    rep.error = "check supports at most 8 ranks (got " +
                std::to_string(opts.base.nprocs) +
                "); schedule spaces beyond that are not exhaustively "
                "explorable";
    return rep;
  }

  // Exploration-run configuration: sequential scheduler under oracle
  // control, no per-run wall budget (schedule-nondeterministic — the
  // exploration-level deadline below bounds total time), no host trace.
  RunConfig mc_cfg = opts.base;
  mc_cfg.threads = 0;
  mc_cfg.record_host_trace = false;
  mc_cfg.max_host_seconds = 0.0;
  mc_cfg.obs = nullptr;
  mc_cfg.oracle = nullptr;

  // Canonical reference: the plain sequential scheduler, same config
  // (including any injected fault such as unsafe_wildcard_commit — the
  // check asserts schedule-invariance of the engine *as configured*).
  // Exception: when checking the optimistic schedule the contract is
  // "optimistic commits the *conservative* sequential digest", so the
  // canonical run drops the optimistic schedule (and its injection) and
  // every explored/threaded run keeps it.
  RunConfig canon_cfg = mc_cfg;
  if (opts.base.schedule == harness::Schedule::kOptimistic) {
    canon_cfg.schedule = harness::Schedule::kConservative;
    canon_cfg.unsafe_commit_before_gvt = false;
  }
  rep.canonical = harness::run_program(prog, canon_cfg);
  rep.canonical_digest = harness::run_digest_hex(rep.canonical);
  rep.used_wildcard_recv = rep.canonical.used_wildcard_recv;
  if (rep.canonical.status != RunStatus::kOk &&
      rep.canonical.status != RunStatus::kDeadlock) {
    rep.error = std::string("canonical run ended in ") +
                harness::run_status_name(rep.canonical.status) + ": " +
                rep.canonical.diagnostic;
    return rep;
  }
  const std::uint64_t canon_digest = harness::run_digest(rep.canonical);
  const std::uint64_t canon_deadlock_key =
      harness::deadlock_report_key(rep.canonical.blocked_ranks);

  std::set<std::uint64_t> digests;
  auto run_one = [&](RecordingOracle& oracle) -> bool {
    RunConfig rc = mc_cfg;
    rc.oracle = &oracle;
    RunOutcome out;
    try {
      out = harness::run_program(prog, rc);
    } catch (const ScheduleAbandoned&) {
      return true;  // pruned prefix; nothing to check
    } catch (const DepthExceeded&) {
      return true;  // clipped run; terminal state unknown, skip the gate
    }
    digests.insert(harness::run_digest(out));

    Divergence d;
    bool diverged = false;
    if (out.status != rep.canonical.status) {
      d.kind = Divergence::Kind::kStatus;
      d.description = std::string("terminal status: ") +
                      harness::run_status_name(rep.canonical.status) +
                      " vs " + harness::run_status_name(out.status) +
                      (out.diagnostic.empty() ? "" : " (" + out.diagnostic +
                                                         ")");
      diverged = true;
    } else if (rep.canonical.status == RunStatus::kDeadlock) {
      if (harness::deadlock_report_key(out.blocked_ranks) !=
          canon_deadlock_key) {
        d.kind = Divergence::Kind::kDeadlockReport;
        d.description = "blocked-rank report: " +
                        format_blocked(rep.canonical.blocked_ranks) + " vs " +
                        format_blocked(out.blocked_ranks);
        diverged = true;
      }
    } else if (harness::run_digest(out) != canon_digest) {
      d.kind = Divergence::Kind::kDigest;
      d.description = harness::describe_run_divergence(rep.canonical, out);
      diverged = true;
    }
    if (diverged) {
      d.schedule = committed_schedule(oracle);
      d.observed = std::move(out);
      rep.divergences.push_back(std::move(d));
      if (!opts.keep_going) return false;
    }
    return true;
  };

  ExploreOptions eo;
  eo.max_schedules = opts.max_schedules;
  eo.max_depth = opts.max_depth;
  eo.max_host_seconds = opts.max_host_seconds;
  eo.use_dpor = opts.use_dpor;
  eo.indep = make_independence(rep.used_wildcard_recv);
  rep.stats = explore(run_one, eo);
  rep.distinct_schedule_digests = digests.size();

  // Threaded cross-check: the conservative threaded scheduler promises
  // bit-identical results for any mailbox drain order; perturb it.
  if (opts.threaded_workers >= 2 && rep.divergences.empty()) {
    for (int trial = 0; trial < opts.threaded_trials; ++trial) {
      const std::uint64_t seed =
          opts.drain_seed + static_cast<std::uint64_t>(trial);
      DrainPermuteOracle oracle(seed, opts.threaded_workers);
      RunConfig tc = mc_cfg;
      tc.threads = opts.threaded_workers;
      tc.oracle = &oracle;
      RunOutcome out = harness::run_program(prog, tc);
      ++rep.threaded_trials_run;
      bool diverged = false;
      Divergence d;
      d.kind = Divergence::Kind::kThreadedDigest;
      d.drain_seed = seed;
      d.workers = opts.threaded_workers;
      if (out.status != rep.canonical.status) {
        d.description = std::string("terminal status: ") +
                        harness::run_status_name(rep.canonical.status) +
                        " vs " + harness::run_status_name(out.status);
        diverged = true;
      } else if (rep.canonical.status == RunStatus::kDeadlock) {
        if (harness::deadlock_report_key(out.blocked_ranks) !=
            canon_deadlock_key) {
          d.description = "blocked-rank report: " +
                          format_blocked(rep.canonical.blocked_ranks) +
                          " vs " + format_blocked(out.blocked_ranks);
          diverged = true;
        }
      } else if (harness::run_digest(out) != canon_digest) {
        d.description = harness::describe_run_divergence(rep.canonical, out);
        diverged = true;
      }
      if (diverged) {
        d.observed = std::move(out);
        rep.divergences.push_back(std::move(d));
        if (!opts.keep_going) break;
      }
    }
  }
  return rep;
}

json::Value counterexample_to_json(const Divergence& d,
                                   const CheckReport& report,
                                   const json::Value& spec) {
  json::Value doc = json::Value::object();
  doc.set("version", 1);
  doc.set("kind", "stgsim-schedule");
  doc.set("divergence", divergence_kind_name(d.kind));
  doc.set("description", d.description);

  json::Value canon = json::Value::object();
  canon.set("digest", report.canonical_digest);
  canon.set("status", harness::run_status_name(report.canonical.status));
  doc.set("canonical", std::move(canon));

  json::Value obs = json::Value::object();
  obs.set("digest", harness::run_digest_hex(d.observed));
  obs.set("status", harness::run_status_name(d.observed.status));
  if (!d.observed.diagnostic.empty()) {
    obs.set("diagnostic", d.observed.diagnostic);
  }
  doc.set("observed", std::move(obs));

  if (d.kind == Divergence::Kind::kThreadedDigest) {
    doc.set("workers", d.workers);
    doc.set("drain_seed", static_cast<std::uint64_t>(d.drain_seed));
  } else {
    doc.set("steps", schedule_to_json(d.schedule));
  }
  if (!spec.is_null()) doc.set("spec", spec);
  return doc;
}

}  // namespace stgsim::mc
