// The protocol checker behind `stgsim check`.
//
// For small configurations (≤ 8 ranks) it systematically explores the
// engine's message-delivery and match orderings and asserts, across every
// explored schedule:
//   (1) digest invariance — the committed run digest is bit-identical to
//       the plain sequential scheduler's, and
//   (2) deadlock determinism — every schedule terminates; or, when the
//       program deadlocks, every schedule deadlocks with the same
//       structured blocked-rank report (home_worker excluded).
// A threaded cross-check then perturbs the mailbox drain order under
// --workers N and requires the same digest again.
//
// Divergences carry the full committed schedule so they serialize into
// counterexample files that `stgsim check --replay` reproduces
// deterministically. See DESIGN.md §13.
#pragma once

#include <string>
#include <vector>

#include "harness/digest.hpp"
#include "harness/runner.hpp"
#include "ir/program.hpp"
#include "mc/explorer.hpp"
#include "support/json.hpp"

namespace stgsim::mc {

struct CheckOptions {
  /// Base run configuration. The checker forces threads=0, oracle,
  /// record_host_trace=false and max_host_seconds=0 for exploration runs
  /// (a per-run wall budget is schedule-nondeterministic; the exploration
  /// wall budget below bounds total time instead). mode must be
  /// kDirectExec or kAnalytical: kMeasured's seeded noise and NIC
  /// contention state are order-dependent by design, so digest
  /// invariance does not hold there and is not a checkable claim.
  harness::RunConfig base;

  std::uint64_t max_schedules = 256;
  std::size_t max_depth = 0;        ///< 0 = unlimited
  double max_host_seconds = 20.0;   ///< whole-exploration wall budget
  bool use_dpor = true;
  bool keep_going = false;  ///< record all divergences, not just the first

  /// Threaded cross-check: run the threaded scheduler with this many
  /// workers under `trials` seeded drain-order permutations and require
  /// the canonical digest each time. 0 workers skips the cross-check.
  int threaded_workers = 2;
  int threaded_trials = 4;
  std::uint64_t drain_seed = 1;
};

struct Divergence {
  enum class Kind {
    kDigest,           ///< explored schedule committed a different digest
    kStatus,           ///< different terminal status than canonical
    kDeadlockReport,   ///< deadlocked, but with a different blocked set
    kThreadedDigest,   ///< threaded drain-permutation trial diverged
  };

  Kind kind = Kind::kDigest;
  std::string description;  ///< first differing fields, human-readable
  /// The committed schedule (empty for threaded trials, which are
  /// identified by drain_seed/workers instead).
  std::vector<simk::ChoiceOption> schedule;
  std::uint64_t drain_seed = 0;  ///< kThreadedDigest only
  int workers = 0;               ///< kThreadedDigest only
  harness::RunOutcome observed;
};

const char* divergence_kind_name(Divergence::Kind k);

struct CheckReport {
  /// Non-empty when the check could not run at all (canonical run ended
  /// in a status other than ok/deadlock, unsupported mode, ...). The CLI
  /// maps this to the internal-error exit code.
  std::string error;

  harness::RunOutcome canonical;  ///< plain sequential run, no oracle
  std::string canonical_digest;
  bool used_wildcard_recv = false;
  ExploreStats stats;
  std::uint64_t distinct_schedule_digests = 0;
  int threaded_trials_run = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return error.empty() && divergences.empty(); }
};

/// Runs the full check. Never throws for target-program conditions; setup
/// errors are reported via CheckReport::error.
CheckReport check_program(const ir::Program& prog, const CheckOptions& opts);

/// Serializes one divergence into the counterexample envelope consumed by
/// `stgsim check --replay` (DESIGN.md §13). `spec` is the CLI's RunSpec
/// document (app + options) so the replay can rebuild the identical run;
/// pass a null Value if unavailable.
json::Value counterexample_to_json(const Divergence& d,
                                   const CheckReport& report,
                                   const json::Value& spec);

}  // namespace stgsim::mc
