#include "mc/explorer.hpp"

#include <algorithm>
#include <chrono>

#include "mc/schedule.hpp"
#include "support/check.hpp"

namespace stgsim::mc {

using simk::ChoiceOption;

namespace {

double steady_now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool contains(const std::vector<ChoiceOption>& set, const ChoiceOption& o) {
  return std::find(set.begin(), set.end(), o) != set.end();
}

/// One node on the DFS path: the choice point's enabled set, the sleep
/// set it was entered with, the choices already fully explored here, and
/// the choice the current path takes.
struct Frame {
  std::vector<ChoiceOption> options;
  std::vector<ChoiceOption> sleep;
  std::vector<ChoiceOption> done;
  ChoiceOption chosen;
};

}  // namespace

ExploreStats explore(const RunScheduleFn& run, const ExploreOptions& opts) {
  IndependenceFn indep = opts.indep;
  if (!opts.use_dpor || !indep) {
    indep = [](const ChoiceOption&, const ChoiceOption&) { return false; };
  }

  ExploreStats stats;
  std::vector<Frame> path;
  std::vector<ChoiceOption> prefix;
  std::vector<ChoiceOption> start_sleep;
  const double deadline =
      opts.max_host_seconds > 0.0 ? steady_now_sec() + opts.max_host_seconds
                                  : 0.0;

  for (;;) {
    RecordingOracle oracle(prefix, start_sleep, indep, opts.max_depth);
    const bool keep_going = run(oracle);
    const std::vector<StepLog>& log = oracle.log();

    // Determinism gate: the replayed part of the run must present exactly
    // the option sets recorded when the path was first walked.
    STGSIM_CHECK_GE(log.size(), path.size())
        << "run ended before finishing its recorded prefix";
    for (std::size_t i = 0; i < path.size(); ++i) {
      STGSIM_CHECK(log[i].options == path[i].options)
          << "engine produced a different enabled set at step " << i
          << " when replaying a recorded prefix";
    }
    // Extend the path with the fresh choice points this run discovered.
    for (std::size_t i = path.size(); i < log.size(); ++i) {
      path.push_back(Frame{log[i].options, log[i].sleep, {}, log[i].chosen});
    }

    if (oracle.depth_clipped()) {
      ++stats.depth_clipped;
    } else if (oracle.abandoned()) {
      ++stats.pruned;
    } else {
      ++stats.schedules;
    }
    stats.max_depth_seen = std::max(stats.max_depth_seen, log.size());

    if (!keep_going) {
      stats.budget_reason = "stopped by caller";
      return stats;
    }
    if (opts.max_schedules != 0 && stats.schedules >= opts.max_schedules) {
      stats.budget_reason = "max-schedules budget reached";
      return stats;
    }
    if (deadline != 0.0 && steady_now_sec() >= deadline) {
      stats.budget_reason = "wall-clock budget reached";
      return stats;
    }

    // Backtrack: retire the current choice at the deepest frame and pick
    // the next unexplored, not-asleep sibling; pop frames with none left.
    bool descended = false;
    while (!path.empty()) {
      Frame& f = path.back();
      f.done.push_back(f.chosen);
      const ChoiceOption* next = nullptr;
      for (const ChoiceOption& o : f.options) {
        if (!contains(f.done, o) && !contains(f.sleep, o)) {
          next = &o;
          break;
        }
      }
      if (next != nullptr) {
        f.chosen = *next;
        prefix.clear();
        for (const Frame& fr : path) prefix.push_back(fr.chosen);
        // Child sleep set: everything asleep here or already explored
        // here survives into the sibling iff it commutes with the new
        // choice (it is then still covered by the earlier schedules).
        start_sleep.clear();
        for (const ChoiceOption& u : f.sleep) {
          if (indep(u, f.chosen)) start_sleep.push_back(u);
        }
        for (const ChoiceOption& u : f.done) {
          if (!(u == f.chosen) && indep(u, f.chosen)) {
            start_sleep.push_back(u);
          }
        }
        descended = true;
        break;
      }
      path.pop_back();
    }
    if (!descended) {
      stats.complete = true;
      return stats;
    }
  }
}

}  // namespace stgsim::mc
