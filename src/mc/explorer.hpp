// Stateless DFS schedule exploration with sleep-set reduction.
//
// The explorer owns no engine state: every schedule is a fresh run of the
// target program under a RecordingOracle that replays the DFS path prefix
// by label and then continues greedily. Between runs the explorer keeps
// only the path stack — enabled options, sleep set, and the set of
// already-explored choices per depth — which is what makes exploration
// memory-bounded in the depth of the run, not the size of the state space.
//
// Reduction is sleep sets over mc::make_independence (DPOR's commutativity
// relation on (sender,receiver,tag)): a choice moved to sleep after being
// explored at a node is provably covered by the schedules already run, so
// any fresh run finding all options asleep is pruned without executing to
// completion. Sleep sets preserve every Mazurkiewicz trace, hence every
// terminal state and every deadlock — the two invariants the checker
// gates on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mc/oracles.hpp"

namespace stgsim::mc {

struct ExploreOptions {
  std::uint64_t max_schedules = 0;  ///< 0 = unlimited
  std::size_t max_depth = 0;        ///< choice points per run; 0 = unlimited
  double max_host_seconds = 0.0;    ///< whole-exploration wall budget; 0 = ∞
  bool use_dpor = true;  ///< false: empty independence → plain DFS
  IndependenceFn indep;  ///< required when use_dpor (make_independence)
};

struct ExploreStats {
  std::uint64_t schedules = 0;      ///< complete runs executed
  std::uint64_t pruned = 0;         ///< sleep-set-abandoned prefixes
  std::uint64_t depth_clipped = 0;  ///< runs cut by max_depth
  std::size_t max_depth_seen = 0;   ///< longest schedule, in choice points
  bool complete = false;  ///< DFS exhausted the schedule space
  std::string budget_reason;  ///< why exploration stopped early, if it did
};

/// Executes the target program once under `oracle`; returns false to stop
/// exploration (e.g. first divergence with --keep-going off). The callee
/// must install the oracle in its RunConfig and must let ScheduleAbandoned
/// and DepthExceeded propagate back out of harness::run_program (they do
/// not derive from std::exception precisely so they can).
using RunScheduleFn = std::function<bool(RecordingOracle& oracle)>;

/// Runs the DFS. `run` is invoked once per schedule (or pruned prefix);
/// exploration ends when the space is exhausted, a budget fires, or `run`
/// returns false.
ExploreStats explore(const RunScheduleFn& run, const ExploreOptions& opts);

}  // namespace stgsim::mc
