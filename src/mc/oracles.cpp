#include "mc/oracles.hpp"

#include <algorithm>

#include "mc/schedule.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace stgsim::mc {

using simk::ChoiceOption;

namespace {

bool contains(const std::vector<ChoiceOption>& set, const ChoiceOption& o) {
  return std::find(set.begin(), set.end(), o) != set.end();
}

}  // namespace

IndependenceFn make_independence(bool program_has_wildcards) {
  return [program_has_wildcards](const ChoiceOption& a,
                                 const ChoiceOption& b) {
    using K = ChoiceOption::Kind;
    if (a.kind == K::kWildcard || b.kind == K::kWildcard) return false;
    if (a.kind == K::kResume && b.kind == K::kResume) {
      return a.rank != b.rank;
    }
    if (a.kind == K::kDeliver && b.kind == K::kDeliver) {
      if (a.dst != b.dst) return true;
      return a.src != b.src && !program_has_wildcards;
    }
    // One resume, one deliver: a delivery only mutates the destination
    // rank's inbox/wake state, and a resume of the *sender* pushes to the
    // lane tail while delivery pops its head — FIFO, so they commute.
    const ChoiceOption& r = (a.kind == K::kResume) ? a : b;
    const ChoiceOption& d = (a.kind == K::kResume) ? b : a;
    return r.rank != d.dst;
  };
}

RecordingOracle::RecordingOracle(std::vector<ChoiceOption> prefix,
                                 std::vector<ChoiceOption> start_sleep,
                                 IndependenceFn indep, std::size_t max_depth)
    : prefix_(std::move(prefix)),
      sleep_(std::move(start_sleep)),
      indep_(std::move(indep)),
      max_depth_(max_depth) {}

std::size_t RecordingOracle::choose(const std::vector<ChoiceOption>& options) {
  STGSIM_CHECK(!options.empty());
  if (max_depth_ != 0 && step_ >= max_depth_) {
    depth_clipped_ = true;
    throw DepthExceeded{};
  }

  std::size_t pick = options.size();
  std::vector<ChoiceOption> sleep_at_entry;
  if (step_ < prefix_.size()) {
    // Replay: match the recorded label. A miss means the engine is not
    // deterministic up to the controlled choices — a checker-invariant
    // violation in its own right, reported loudly.
    const ChoiceOption& want = prefix_[step_];
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i] == want) {
        pick = i;
        break;
      }
    }
    STGSIM_CHECK_LT(pick, options.size())
        << "schedule replay diverged at step " << step_ << ": recorded "
        << option_label(want) << " is not enabled (engine nondeterminism "
        << "outside the controlled choice points?)";
  } else {
    // Fresh territory: first enabled option not in the sleep set.
    sleep_at_entry = sleep_;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (!contains(sleep_, options[i])) {
        pick = i;
        break;
      }
    }
    if (pick == options.size()) {
      // Every continuation from here is covered by an already-explored
      // schedule; abandon the run.
      abandoned_ = true;
      throw ScheduleAbandoned{};
    }
    // Sleep-set propagation: only entries independent of the chosen step
    // stay asleep in the successor state.
    const ChoiceOption chosen = options[pick];
    sleep_.erase(std::remove_if(sleep_.begin(), sleep_.end(),
                                [&](const ChoiceOption& u) {
                                  return !indep_(u, chosen);
                                }),
                 sleep_.end());
  }

  log_.push_back(StepLog{options, std::move(sleep_at_entry), options[pick]});
  ++step_;
  return pick;
}

std::size_t ReplayOracle::choose(const std::vector<ChoiceOption>& options) {
  STGSIM_CHECK_LT(step_, schedule_.size())
      << "replay schedule exhausted after " << schedule_.size()
      << " steps but the engine asked for another choice";
  const ChoiceOption& want = schedule_[step_];
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (options[i] == want) {
      ++step_;
      return i;
    }
  }
  STGSIM_CHECK(false) << "replay diverged at step " << step_ << ": "
                      << option_label(want) << " is not enabled";
  return 0;  // unreachable
}

DrainPermuteOracle::DrainPermuteOracle(std::uint64_t seed, int workers)
    : seed_(seed), counters_(static_cast<std::size_t>(workers), 0) {}

std::size_t DrainPermuteOracle::choose(
    const std::vector<ChoiceOption>& options) {
  STGSIM_CHECK(false) << "DrainPermuteOracle drives only the threaded "
                      << "scheduler; choose() must never be reached";
  return options.size();  // unreachable
}

void DrainPermuteOracle::permute_drain_order(int worker,
                                             std::vector<int>& from_workers) {
  auto& counter = counters_.at(static_cast<std::size_t>(worker));
  // Key the stream on (seed, worker, call counter) so every drain gets an
  // independent deterministic permutation.
  SplitMix64 key(seed_);
  std::uint64_t k = key.next() ^
                    (static_cast<std::uint64_t>(worker) * 0x9e3779b97f4a7c15ULL) ^
                    (counter << 20);
  ++counter;
  SplitMix64 stream(k);
  for (std::size_t i = from_workers.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(stream.next() % static_cast<std::uint64_t>(i));
    std::swap(from_workers[i - 1], from_workers[j]);
  }
}

}  // namespace stgsim::mc
