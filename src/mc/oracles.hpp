// ScheduleOracle implementations used by the protocol checker.
//
//  * RecordingOracle — replays a recorded choice prefix by label, then
//    continues greedily under a sleep set, logging every choice point for
//    the DFS explorer to branch on. The engine side of stateless
//    model checking: one oracle instance drives exactly one run.
//  * ReplayOracle — replays one complete serialized schedule (the
//    `--replay <file>` path); any label mismatch is a hard error naming
//    the step, since it means the engine diverged from the recording.
//  * DrainPermuteOracle — threaded-scheduler cross-check: deterministic
//    seeded permutation of each worker's mailbox drain order. Simulated
//    results must not depend on drain order; perturbing it proves that.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace stgsim::mc {

/// Thrown by RecordingOracle when every enabled option at a fresh choice
/// point is in the sleep set: the continuation is provably equivalent to
/// an already-explored schedule, so the run is abandoned and counted as
/// pruned. Deliberately NOT derived from std::exception — it must pass
/// through harness::run_program's catch(std::exception) untouched and be
/// handled by the checker's run loop alone.
struct ScheduleAbandoned {};

/// Thrown by RecordingOracle when a run exceeds the exploration depth
/// budget (ExploreOptions::max_depth). Like ScheduleAbandoned, bypasses
/// run_program's catch clauses.
struct DepthExceeded {};

/// Independence relation over choice options: returns true when the two
/// steps commute (executing them in either order from any state where
/// both are enabled yields the same state). Used both to filter sleep
/// sets during a run and to seed child sleep sets when branching.
using IndependenceFn =
    std::function<bool(const simk::ChoiceOption&, const simk::ChoiceOption&)>;

/// The checker's independence relation, keyed on (sender,receiver,tag)
/// commutativity:
///   resume(r)      ⫫ resume(r')       iff r != r'
///   resume(r)      ⫫ deliver(s,d)     iff r != d
///   deliver(s,d)   ⫫ deliver(s',d')   iff d != d', or s != s' when the
///                                     program performed no wildcard
///                                     receives (`program_has_wildcards`)
///   wildcard(r)    dependent with everything (conservative: promotion
///                                     order among ties is exactly the
///                                     race class under test)
/// When the program uses wildcard receives, same-destination deliveries
/// are kept dependent even though the engine's arrival-time matching is
/// believed order-insensitive — the checker must not assume the property
/// it exists to verify.
IndependenceFn make_independence(bool program_has_wildcards);

/// One logged choice point from a RecordingOracle run.
struct StepLog {
  std::vector<simk::ChoiceOption> options;  ///< enabled set, engine order
  std::vector<simk::ChoiceOption> sleep;    ///< sleep set on entry
  simk::ChoiceOption chosen;
};

class RecordingOracle : public simk::ScheduleOracle {
 public:
  /// `prefix`: choices to replay by label (the DFS path down to and
  /// including the new branch). `start_sleep`: sleep set in effect at the
  /// first fresh choice point after the prefix. `indep`: independence
  /// relation for sleep propagation; pass one that always returns false
  /// to disable reduction. `max_depth`: 0 = unlimited.
  RecordingOracle(std::vector<simk::ChoiceOption> prefix,
                  std::vector<simk::ChoiceOption> start_sleep,
                  IndependenceFn indep, std::size_t max_depth = 0);

  std::size_t choose(const std::vector<simk::ChoiceOption>& options) override;

  const std::vector<StepLog>& log() const { return log_; }
  bool abandoned() const { return abandoned_; }
  bool depth_clipped() const { return depth_clipped_; }

 private:
  std::vector<simk::ChoiceOption> prefix_;
  std::vector<simk::ChoiceOption> sleep_;  ///< live sleep set past prefix
  IndependenceFn indep_;
  std::size_t max_depth_ = 0;
  std::size_t step_ = 0;
  std::vector<StepLog> log_;
  bool abandoned_ = false;
  bool depth_clipped_ = false;
};

class ReplayOracle : public simk::ScheduleOracle {
 public:
  explicit ReplayOracle(std::vector<simk::ChoiceOption> schedule)
      : schedule_(std::move(schedule)) {}

  std::size_t choose(const std::vector<simk::ChoiceOption>& options) override;

  std::size_t steps_replayed() const { return step_; }

 private:
  std::vector<simk::ChoiceOption> schedule_;
  std::size_t step_ = 0;
};

class DrainPermuteOracle : public simk::ScheduleOracle {
 public:
  DrainPermuteOracle(std::uint64_t seed, int workers);

  /// Never called: the threaded scheduler does not run in MC mode.
  std::size_t choose(const std::vector<simk::ChoiceOption>& options) override;

  /// Fisher–Yates permutation from a SplitMix64 stream keyed on
  /// (seed, worker, per-worker call counter). Each worker thread touches
  /// only its own counter, so no synchronization is needed.
  void permute_drain_order(int worker,
                           std::vector<int>& from_workers) override;

 private:
  std::uint64_t seed_;
  std::vector<std::uint64_t> counters_;  ///< indexed by worker
};

}  // namespace stgsim::mc
