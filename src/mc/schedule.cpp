#include "mc/schedule.hpp"

#include <stdexcept>

namespace stgsim::mc {

using simk::ChoiceOption;

std::string option_label(const ChoiceOption& o) {
  switch (o.kind) {
    case ChoiceOption::Kind::kResume:
      return "resume(" + std::to_string(o.rank) + ")";
    case ChoiceOption::Kind::kDeliver:
      return "deliver(" + std::to_string(o.src) + "->" +
             std::to_string(o.dst) + " tag " + std::to_string(o.tag) + ")";
    case ChoiceOption::Kind::kWildcard:
      return "wildcard(" + std::to_string(o.rank) + ")";
  }
  return "?";
}

json::Value option_to_json(const ChoiceOption& o) {
  json::Value v = json::Value::object();
  switch (o.kind) {
    case ChoiceOption::Kind::kResume:
      v.set("k", "resume");
      v.set("rank", o.rank);
      break;
    case ChoiceOption::Kind::kDeliver:
      v.set("k", "deliver");
      v.set("src", o.src);
      v.set("dst", o.dst);
      v.set("tag", o.tag);
      break;
    case ChoiceOption::Kind::kWildcard:
      v.set("k", "wildcard");
      v.set("rank", o.rank);
      break;
  }
  return v;
}

ChoiceOption option_from_json(const json::Value& v) {
  const std::string& k = v.at("k").as_string();
  ChoiceOption o;
  if (k == "resume") {
    o.kind = ChoiceOption::Kind::kResume;
    o.rank = static_cast<int>(v.at("rank").as_int());
  } else if (k == "deliver") {
    o.kind = ChoiceOption::Kind::kDeliver;
    o.src = static_cast<int>(v.at("src").as_int());
    o.dst = static_cast<int>(v.at("dst").as_int());
    o.tag = static_cast<int>(v.at("tag").as_int());
  } else if (k == "wildcard") {
    o.kind = ChoiceOption::Kind::kWildcard;
    o.rank = static_cast<int>(v.at("rank").as_int());
  } else {
    throw std::runtime_error("unknown schedule step kind '" + k + "'");
  }
  return o;
}

json::Value schedule_to_json(const std::vector<ChoiceOption>& steps) {
  json::Value arr = json::Value::array();
  for (const auto& s : steps) arr.push_back(option_to_json(s));
  return arr;
}

std::vector<ChoiceOption> schedule_from_json(const json::Value& v) {
  std::vector<ChoiceOption> steps;
  steps.reserve(v.as_array().size());
  for (const auto& e : v.as_array()) steps.push_back(option_from_json(e));
  return steps;
}

}  // namespace stgsim::mc
