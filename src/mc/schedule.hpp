// Schedule serialization for the protocol checker.
//
// A schedule is the sequence of ChoiceOption labels an exploration run
// committed at the engine's choice points. Because options are labels
// (matched by value on replay, not by index), a serialized schedule stays
// a valid counterexample as long as the engine is deterministic up to the
// controlled choices — the property the checker itself verifies.
//
// On-disk format (see DESIGN.md §13): a JSON array of step objects,
//   {"k":"resume","rank":0}
//   {"k":"deliver","src":1,"dst":0,"tag":7}
//   {"k":"wildcard","rank":2}
// embedded in a counterexample envelope produced by mc::check_program and
// consumed by `stgsim check --replay`.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "support/json.hpp"

namespace stgsim::mc {

/// Compact human-readable rendering of one option, e.g. "resume(3)",
/// "deliver(1->0 tag 7)", "wildcard(2)". Used in logs and diagnostics.
std::string option_label(const simk::ChoiceOption& o);

json::Value option_to_json(const simk::ChoiceOption& o);

/// Inverse of option_to_json. Throws std::runtime_error on malformed or
/// unknown-kind steps so a hand-edited counterexample fails loudly.
simk::ChoiceOption option_from_json(const json::Value& v);

json::Value schedule_to_json(const std::vector<simk::ChoiceOption>& steps);

std::vector<simk::ChoiceOption> schedule_from_json(const json::Value& v);

}  // namespace stgsim::mc
