#include "net/network.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace stgsim::net {

NetworkParams ibm_sp() {
  NetworkParams p;
  p.latency = vtime_from_us(25);
  p.bytes_per_sec = 90e6;
  p.send_overhead = vtime_from_us(6);
  p.recv_overhead = vtime_from_us(6);
  p.eager_threshold = 16 * 1024;
  return p;
}

NetworkParams origin2000() {
  NetworkParams p;
  p.latency = vtime_from_us(12);
  p.bytes_per_sec = 150e6;
  p.send_overhead = vtime_from_us(3);
  p.recv_overhead = vtime_from_us(3);
  p.eager_threshold = 8 * 1024;
  return p;
}

Network::Network(const NetworkParams& params, int nranks) : params_(params) {
  STGSIM_CHECK_GT(nranks, 0);
  STGSIM_CHECK_GT(params_.bytes_per_sec, 0.0);
  if (params_.model_contention) {
    nic_free_.assign(static_cast<std::size_t>(nranks), 0);
  }
}

void Network::set_fault_plan(const fault::FaultPlan& plan) {
  plan.validate();
  faults_ = plan;
  has_faults_ = !plan.empty();
}

VTime Network::wire_time(std::size_t bytes) const {
  return params_.latency +
         vtime_from_sec(static_cast<double>(bytes) / params_.bytes_per_sec);
}

VTime Network::arrival(int src, int dst, VTime ready, std::size_t bytes,
                       Rng& rng, TransferKind kind) {
  VTime start = ready;

  // Effective link parameters at injection time. Degradation factors are
  // sampled once, at `ready` — a transfer straddling a window boundary uses
  // the conditions under which it was injected.
  VTime latency = params_.latency;
  double bytes_per_sec = params_.bytes_per_sec;
  if (has_faults_) {
    latency = vtime_from_sec(vtime_to_sec(latency) *
                             faults_.latency_factor(src, dst, ready));
    bytes_per_sec *= faults_.bandwidth_factor(src, dst, ready);
    bytes_per_sec *= faults_.injection_factor(src, ready);
  }
  const VTime serialize =
      vtime_from_sec(static_cast<double>(bytes) / bytes_per_sec);

  if (params_.model_contention) {
    auto& nic = nic_free_[static_cast<std::size_t>(src)];
    start = std::max(start, nic);
    nic = start + serialize;
  }

  VTime flight = latency + serialize;
  if (params_.jitter_frac > 0.0) {
    const double factor =
        std::max(0.2, 1.0 + params_.jitter_frac * rng.next_gaussian());
    flight = vtime_from_sec(vtime_to_sec(flight) * factor);
    flight = std::max(flight, params_.latency / 2);
  }

  if (has_faults_ && kind == TransferKind::kEager &&
      faults_.eager_drop.enabled()) {
    flight += faults_.retransmission_delay(faults_.draw_eager_drops(rng));
  }
  return start + flight;
}

}  // namespace stgsim::net
