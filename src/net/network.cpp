#include "net/network.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace stgsim::net {

NetworkParams ibm_sp() {
  NetworkParams p;
  p.latency = vtime_from_us(25);
  p.bytes_per_sec = 90e6;
  p.send_overhead = vtime_from_us(6);
  p.recv_overhead = vtime_from_us(6);
  p.eager_threshold = 16 * 1024;
  return p;
}

NetworkParams origin2000() {
  NetworkParams p;
  p.latency = vtime_from_us(12);
  p.bytes_per_sec = 150e6;
  p.send_overhead = vtime_from_us(3);
  p.recv_overhead = vtime_from_us(3);
  p.eager_threshold = 8 * 1024;
  return p;
}

Network::Network(const NetworkParams& params, int nranks)
    : params_(params), platform_(params.platform, params.latency, nranks) {
  STGSIM_CHECK_GT(nranks, 0);
  STGSIM_CHECK_GT(params_.bytes_per_sec, 0.0);
  // The advertised floor: minimum routed path latency, halved under
  // emulation jitter because the jitter clamp floors each flight at half
  // its (unscaled) path latency. Platform construction already verified
  // that every pair routes at or above min_path_latency().
  min_latency_ = platform_.min_path_latency();
  if (params_.jitter_frac > 0.0) min_latency_ /= 2;
  if (params_.model_contention) {
    link_free_.assign(static_cast<std::size_t>(platform_.link_count()), 0);
  }
}

void Network::set_fault_plan(const fault::FaultPlan& plan) {
  plan.validate();
  // Plan-install soundness: degradation can only raise latency, so the
  // platform floor survives any installed plan.
  STGSIM_CHECK_GE(plan.latency_floor_factor(), 1.0)
      << "fault plan would lower the latency floor";
  faults_ = plan;
  has_faults_ = !plan.empty();
}

void Network::enable_link_stats() {
  if (link_stats_enabled_) return;
  link_stats_enabled_ = true;
  hop_hist_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(platform_.max_hops()) + 1);
  link_msgs_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(platform_.link_count()));
  link_bytes_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(platform_.link_count()));
}

std::vector<std::uint64_t> Network::hop_hist() const {
  std::vector<std::uint64_t> out(hop_hist_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = hop_hist_[i].load(std::memory_order_relaxed);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<LinkUse> Network::link_usage() const {
  std::vector<LinkUse> out;
  for (std::size_t i = 0; i < link_msgs_.size(); ++i) {
    const std::uint64_t msgs = link_msgs_[i].load(std::memory_order_relaxed);
    if (msgs == 0) continue;
    out.push_back({platform_.link_name(static_cast<int>(i)), msgs,
                   link_bytes_[i].load(std::memory_order_relaxed)});
  }
  return out;
}

VTime Network::wire_time(std::size_t bytes) const {
  return params_.latency +
         vtime_from_sec(static_cast<double>(bytes) / params_.bytes_per_sec);
}

VTime Network::arrival(int src, int dst, VTime ready, std::size_t bytes,
                       Rng& rng, TransferKind kind) {
  const Platform::PathCost path = platform_.cost(src, dst);
  VTime start = ready;

  // Effective routed-path parameters at injection time. Degradation
  // factors are sampled once, at `ready` — a transfer straddling a window
  // boundary uses the conditions under which it was injected.
  VTime latency = path.latency;
  double bytes_per_sec = params_.bytes_per_sec;
  if (has_faults_) {
    latency = vtime_from_sec(vtime_to_sec(latency) *
                             faults_.latency_factor(src, dst, ready));
    bytes_per_sec *= faults_.bandwidth_factor(src, dst, ready);
    bytes_per_sec *= faults_.injection_factor(src, ready);
  }
  const VTime serialize =
      vtime_from_sec(static_cast<double>(bytes) / bytes_per_sec);

  if (params_.model_contention || link_stats_enabled_) {
    // Materialized links are only needed for stateful occupancy and the
    // utilization counters; the routed cost above never touches them.
    thread_local std::vector<int> links;
    platform_.route(src, dst, &links);
    if (params_.model_contention) {
      // Emulation-only (sequential): the message occupies each link along
      // its path for the serialization time; a busy link pushes the
      // injection back. On flat this is exactly the legacy per-source NIC
      // queue (the single path link is the source's egress NIC).
      for (int l : links) {
        auto& free_at = link_free_[static_cast<std::size_t>(l)];
        start = std::max(start, free_at);
        free_at = start + serialize;
      }
    }
    if (link_stats_enabled_) {
      const std::size_t h = std::min(static_cast<std::size_t>(path.hops),
                                     hop_hist_.size() - 1);
      hop_hist_[h].fetch_add(1, std::memory_order_relaxed);
      for (int l : links) {
        link_msgs_[static_cast<std::size_t>(l)].fetch_add(
            1, std::memory_order_relaxed);
        link_bytes_[static_cast<std::size_t>(l)].fetch_add(
            bytes, std::memory_order_relaxed);
      }
    }
  }

  VTime flight = latency + serialize;
  if (params_.jitter_frac > 0.0) {
    const double factor =
        std::max(0.2, 1.0 + params_.jitter_frac * rng.next_gaussian());
    flight = vtime_from_sec(vtime_to_sec(flight) * factor);
    flight = std::max(flight, path.latency / 2);
  }

  if (has_faults_ && kind == TransferKind::kEager &&
      faults_.eager_drop.enabled()) {
    flight += faults_.retransmission_delay(faults_.draw_eager_drops(rng));
  }
  return start + flight;
}

}  // namespace stgsim::net
