// Communication machine models.
//
// MPI-Sim traps communication calls and predicts their cost on the target
// architecture with a per-machine model (paper §2.1). We use a LogGP-style
// parameterization: software send/receive overheads, wire latency, and
// bandwidth, plus an eager/rendezvous protocol threshold like the IBM and
// SGI MPI implementations the paper validated against.
//
// The same parameter set drives two fidelities:
//   * simulation (DE/AM): contention-free, noise-free — the model MPI-Sim
//     itself used;
//   * emulation ("direct measurement" stand-in): per-rank NIC serialization
//     and seeded multiplicative jitter, so the emulated machine differs
//     from the simulator's model the way real hardware differed from it.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault.hpp"
#include "support/rng.hpp"
#include "support/vtime.hpp"

namespace stgsim::net {

struct NetworkParams {
  VTime latency = vtime_from_us(25);      ///< alpha: end-to-end wire latency
  double bytes_per_sec = 90e6;            ///< beta^-1: sustained bandwidth
  VTime send_overhead = vtime_from_us(6); ///< o_s: sender CPU cost per msg
  VTime recv_overhead = vtime_from_us(6); ///< o_r: receiver CPU cost per msg
  std::size_t eager_threshold = 16 * 1024; ///< bytes; above this: rendezvous

  // Emulation-only switches ("the real machine" differs from the model):
  bool model_contention = false;  ///< serialize injection per source NIC
  double jitter_frac = 0.0;       ///< stddev of multiplicative wire noise
};

/// IBM SP (thin nodes, SP switch) — the paper's distributed-memory target.
NetworkParams ibm_sp();

/// SGI Origin 2000 running MPI over shared memory — the SAMPLE target.
NetworkParams origin2000();

/// What a transfer carries, for fault purposes: injected message loss
/// applies only to eager payloads — control traffic (RTS/CTS) and
/// rendezvous bulk data are modeled as reliable.
enum class TransferKind { kEager, kControl, kRendezvousData };

/// Per-world communication state (NIC availability for contention).
class Network {
 public:
  Network(const NetworkParams& params, int nranks);

  const NetworkParams& params() const { return params_; }

  /// Installs a fault plan (validated; the Network keeps its own copy).
  /// Degradation factors apply to every subsequent arrival() call.
  void set_fault_plan(const fault::FaultPlan& plan);

  const fault::FaultPlan& fault_plan() const { return faults_; }

  /// Pure wire time for `bytes` (no overheads): latency + bytes/bandwidth.
  VTime wire_time(std::size_t bytes) const;

  /// Arrival time at `dst` for a message whose injection becomes ready at
  /// `ready` on `src`. Applies contention and jitter when enabled, plus any
  /// installed fault plan: link latency/bandwidth degradation, sender NIC
  /// brownouts, and (for kEager transfers) seeded drop + retransmission.
  /// All random draws come from `rng`, which must be the sender's stream so
  /// runs stay deterministic across schedulers.
  VTime arrival(int src, int dst, VTime ready, std::size_t bytes, Rng& rng,
                TransferKind kind = TransferKind::kEager);

  /// Lower bound on any future message's flight time (wildcard safety).
  /// Faults only ever slow traffic (latency factors >= 1, bandwidth and
  /// injection factors <= 1), so this stays valid under any plan.
  VTime min_latency() const { return params_.latency; }

  bool uses_rendezvous(std::size_t bytes) const {
    return bytes > params_.eager_threshold;
  }

 private:
  NetworkParams params_;
  fault::FaultPlan faults_;
  bool has_faults_ = false;
  std::vector<VTime> nic_free_;
};

}  // namespace stgsim::net
