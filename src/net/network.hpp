// Communication machine models.
//
// MPI-Sim traps communication calls and predicts their cost on the target
// architecture with a per-machine model (paper §2.1). We use a LogGP-style
// parameterization: software send/receive overheads, wire latency, and
// bandwidth, plus an eager/rendezvous protocol threshold like the IBM and
// SGI MPI implementations the paper validated against. On top of the
// single-link constants sits a platform topology (net::Platform): arrival()
// routes src -> dst over the platform's deterministic path and charges the
// routed latency, so a fat-tree or torus machine prices distance while the
// flat preset reproduces the legacy single-hop closed form bit-for-bit.
//
// The same parameter set drives two fidelities:
//   * simulation (DE/AM): contention-free, noise-free — the routed path
//     cost is a pure function of (src, dst), which keeps digests
//     bit-identical across the sequential and threaded schedulers;
//   * emulation ("direct measurement" stand-in): per-link serialization
//     along the routed path (per-source NIC on flat) and seeded
//     multiplicative jitter, so the emulated machine differs from the
//     simulator's model the way real hardware differed from it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"
#include "support/vtime.hpp"

namespace stgsim::net {

struct NetworkParams {
  VTime latency = vtime_from_us(25);      ///< alpha: end-to-end wire latency
  double bytes_per_sec = 90e6;            ///< beta^-1: sustained bandwidth
  VTime send_overhead = vtime_from_us(6); ///< o_s: sender CPU cost per msg
  VTime recv_overhead = vtime_from_us(6); ///< o_r: receiver CPU cost per msg
  std::size_t eager_threshold = 16 * 1024; ///< bytes; above this: rendezvous

  /// Interconnect topology; the default (flat) is the legacy model.
  PlatformParams platform;

  // Emulation-only switches ("the real machine" differs from the model):
  bool model_contention = false;  ///< serialize each link along the path
  double jitter_frac = 0.0;       ///< stddev of multiplicative wire noise
};

/// IBM SP (thin nodes, SP switch) — the paper's distributed-memory target.
NetworkParams ibm_sp();

/// SGI Origin 2000 running MPI over shared memory — the SAMPLE target.
NetworkParams origin2000();

/// What a transfer carries, for fault purposes: injected message loss
/// applies only to eager payloads — control traffic (RTS/CTS) and
/// rendezvous bulk data are modeled as reliable.
enum class TransferKind { kEager, kControl, kRendezvousData };

/// Per-link utilization counters (observability output).
struct LinkUse {
  std::string name;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Per-world communication state: the routed platform, per-link occupancy
/// (emulation contention) and optional per-link utilization counters.
class Network {
 public:
  Network(const NetworkParams& params, int nranks);

  const NetworkParams& params() const { return params_; }
  const Platform& platform() const { return platform_; }

  /// Installs a fault plan (validated; the Network keeps its own copy).
  /// Degradation factors apply to every subsequent arrival() call. Checks
  /// at install time that the plan cannot lower the advertised latency
  /// floor (latency factors >= 1 by FaultPlan::validate()).
  void set_fault_plan(const fault::FaultPlan& plan);

  const fault::FaultPlan& fault_plan() const { return faults_; }

  /// Pure single-link wire time for `bytes` (no overheads, no routing):
  /// latency + bytes/bandwidth. Used by compute-side estimators that want
  /// the base link constants rather than a routed pair cost.
  VTime wire_time(std::size_t bytes) const;

  /// Arrival time at `dst` for a message whose injection becomes ready at
  /// `ready` on `src`. Charges the platform's routed path latency, then
  /// applies per-link contention and jitter when enabled, plus any
  /// installed fault plan: link latency/bandwidth degradation, sender NIC
  /// brownouts, and (for kEager transfers) seeded drop + retransmission.
  /// All random draws come from `rng`, which must be the sender's stream so
  /// runs stay deterministic across schedulers.
  VTime arrival(int src, int dst, VTime ready, std::size_t bytes, Rng& rng,
                TransferKind kind = TransferKind::kEager);

  /// Lower bound on any future message's flight time (wildcard safety),
  /// hop- and jitter-aware by construction: the platform's minimum routed
  /// path latency, halved when emulation jitter is enabled (the jitter
  /// clamp floors each flight at half its path latency). Faults only ever
  /// slow traffic (latency factors >= 1, bandwidth and injection factors
  /// <= 1), so this stays valid under any plan; the constructor runs
  /// Platform::verify_floor() so no configuration can advertise a floor a
  /// routed pair undercuts.
  VTime min_latency() const { return min_latency_; }

  bool uses_rendezvous(std::size_t bytes) const {
    return bytes > params_.eager_threshold;
  }

  // -- Per-link observability ----------------------------------------------
  // Counters use relaxed atomics: threaded workers call arrival()
  // concurrently, and sums commute, so totals stay deterministic.

  /// Enables hop-count and per-link counters (disabled by default; the
  /// stats path costs a route materialization per message). Call before
  /// the run starts.
  void enable_link_stats();
  bool link_stats_enabled() const { return link_stats_enabled_; }

  /// Messages by routed hop count; bucket k = messages whose path had k
  /// hops. Empty when stats are disabled or nothing was sent.
  std::vector<std::uint64_t> hop_hist() const;

  /// Per-link {messages, bytes} for every link with traffic, in link-id
  /// order. Empty when stats are disabled.
  std::vector<LinkUse> link_usage() const;

 private:
  NetworkParams params_;
  Platform platform_;
  VTime min_latency_ = 0;
  fault::FaultPlan faults_;
  bool has_faults_ = false;

  std::vector<VTime> link_free_;        ///< emulation contention occupancy
  std::vector<int> contention_path_;    ///< scratch (sequential-only path)

  bool link_stats_enabled_ = false;
  std::vector<std::atomic<std::uint64_t>> hop_hist_;
  std::vector<std::atomic<std::uint64_t>> link_msgs_;
  std::vector<std::atomic<std::uint64_t>> link_bytes_;
};

}  // namespace stgsim::net
