#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/check.hpp"

namespace stgsim::net {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kFlat: return "flat";
    case Topology::kTorus: return "torus";
    case Topology::kFatTree: return "fattree";
    case Topology::kDragonfly: return "dragonfly";
  }
  return "?";
}

Topology parse_topology(const std::string& name) {
  if (name == "flat") return Topology::kFlat;
  if (name == "torus") return Topology::kTorus;
  if (name == "fattree") return Topology::kFatTree;
  if (name == "dragonfly") return Topology::kDragonfly;
  throw std::runtime_error("unknown topology '" + name +
                           "' (accepted: flat, torus, fattree, dragonfly)");
}

namespace {

/// Near-square factorization P = a*b with a <= b and a maximal — the
/// default torus shape when no extents are given.
std::vector<int> near_square_dims(int p) {
  int a = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (a > 1 && p % a != 0) --a;
  if (a <= 1) return {p};  // prime (or 1): a ring
  return {a, p / a};
}

}  // namespace

Platform::Platform(const PlatformParams& params, VTime base_latency,
                   int nranks)
    : params_(params), base_latency_(base_latency), nranks_(nranks) {
  STGSIM_CHECK_GT(nranks, 0);
  if (params_.hop_latency < 0) {
    throw std::runtime_error("machine platform: hop latency must be >= 0");
  }

  switch (params_.topo) {
    case Topology::kFlat: {
      // One egress link per rank, shared by all destinations — the same
      // serialization point the legacy per-source NIC model used.
      link_count_ = nranks_;
      min_hops_ = max_hops_ = 1;
      break;
    }
    case Topology::kTorus: {
      dims_ = params_.torus_dims.empty() ? near_square_dims(nranks_)
                                         : params_.torus_dims;
      long long product = 1;
      for (int d : dims_) {
        if (d <= 0) {
          throw std::runtime_error(
              "machine platform: torus extents must be positive");
        }
        product *= d;
      }
      if (product != nranks_) {
        std::ostringstream os;
        os << "machine platform: torus extents (";
        for (std::size_t i = 0; i < dims_.size(); ++i) {
          os << (i ? "x" : "") << dims_[i];
        }
        os << ") multiply to " << product << ", not the rank count "
           << nranks_;
        throw std::runtime_error(os.str());
      }
      strides_.resize(dims_.size());
      int stride = 1;
      for (std::size_t i = 0; i < dims_.size(); ++i) {
        strides_[i] = stride;
        stride *= dims_[i];
      }
      // Directed links: (node, dimension, +/-).
      link_count_ = nranks_ * static_cast<int>(dims_.size()) * 2;
      min_hops_ = 1;
      max_hops_ = 0;
      for (int d : dims_) max_hops_ += d / 2;
      max_hops_ = std::max(max_hops_, 1);
      break;
    }
    case Topology::kFatTree: {
      if (params_.fattree_radix < 2 || params_.fattree_radix % 2 != 0) {
        throw std::runtime_error(
            "machine platform: fat-tree radix must be an even number >= 2");
      }
      ft_hosts_per_leaf_ = params_.fattree_radix / 2;
      ft_spines_ = params_.fattree_radix / 2;
      ft_leaves_ = (nranks_ + ft_hosts_per_leaf_ - 1) / ft_hosts_per_leaf_;
      // host-up, host-down, leaf->spine, spine->leaf.
      link_count_ = 2 * nranks_ + 2 * ft_leaves_ * ft_spines_;
      min_hops_ = ft_hosts_per_leaf_ > 1 && nranks_ > 1 ? 2 : (nranks_ > 1 ? 4 : 2);
      max_hops_ = ft_leaves_ > 1 ? 4 : 2;
      min_hops_ = std::min(min_hops_, max_hops_);
      break;
    }
    case Topology::kDragonfly: {
      if (params_.df_routers < 1 || params_.df_hosts < 1) {
        throw std::runtime_error(
            "machine platform: dragonfly routers/hosts must be >= 1");
      }
      df_group_size_ = params_.df_routers * params_.df_hosts;
      df_groups_ = (nranks_ + df_group_size_ - 1) / df_group_size_;
      df_nrouters_ = df_groups_ * params_.df_routers;
      // host-up, host-down, intra-group router pairs, inter-group pairs.
      link_count_ = 2 * nranks_ + df_nrouters_ * params_.df_routers +
                    df_groups_ * df_groups_;
      // Minimal routing: host-up + [local] + global + [local] + host-down,
      // i.e. 2 hops same-router, 3 same-group, 3-5 cross-group (with a
      // single router per group, every router is its own gateway: 3).
      min_hops_ = (nranks_ > 1 && params_.df_hosts == 1) ? 3 : 2;
      max_hops_ = df_groups_ > 1 ? (params_.df_routers > 1 ? 5 : 3)
                                 : (params_.df_routers > 1 ? 3 : 2);
      min_hops_ = std::min(min_hops_, max_hops_);
      break;
    }
  }

  min_path_latency_ =
      base_latency_ + static_cast<VTime>(min_hops_ - 1) * params_.hop_latency;
  diameter_latency_ =
      base_latency_ + static_cast<VTime>(max_hops_ - 1) * params_.hop_latency;
  verify_floor(min_path_latency_);
}

int Platform::torus_hops(int src, int dst) const {
  int hops = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const int a = (src / strides_[i]) % dims_[i];
    const int b = (dst / strides_[i]) % dims_[i];
    const int d = std::abs(a - b);
    hops += std::min(d, dims_[i] - d);
  }
  return hops;
}

Platform::PathCost Platform::cost(int src, int dst) const {
  PathCost out;
  if (src == dst) {
    // Loopback through the nearest switch level: exactly the floor, so a
    // self-send can never undercut the advertised minimum latency.
    out.hops = min_hops_;
    out.latency = min_path_latency_;
    return out;
  }
  switch (params_.topo) {
    case Topology::kFlat:
      out.hops = 1;
      break;
    case Topology::kTorus:
      out.hops = std::max(torus_hops(src, dst), 1);
      break;
    case Topology::kFatTree:
      out.hops = (src / ft_hosts_per_leaf_ == dst / ft_hosts_per_leaf_) ? 2 : 4;
      break;
    case Topology::kDragonfly: {
      const int rs = src / params_.df_hosts, rd = dst / params_.df_hosts;
      if (rs == rd) {
        out.hops = 2;
      } else {
        const int gs = src / df_group_size_, gd = dst / df_group_size_;
        if (gs == gd) {
          out.hops = 3;
        } else {
          // Gateway routers for the (gs, gd) global link.
          const int gw_s = gs * params_.df_routers + gd % params_.df_routers;
          const int gw_d = gd * params_.df_routers + gs % params_.df_routers;
          out.hops = 3 + (rs != gw_s ? 1 : 0) + (rd != gw_d ? 1 : 0);
        }
      }
      break;
    }
  }
  out.latency =
      base_latency_ + static_cast<VTime>(out.hops - 1) * params_.hop_latency;
  return out;
}

void Platform::route(int src, int dst, std::vector<int>* links) const {
  links->clear();
  switch (params_.topo) {
    case Topology::kFlat:
      // The source's egress NIC — shared across destinations, so contention
      // serializes per source exactly like the legacy model.
      links->push_back(src);
      return;
    case Topology::kTorus: {
      if (src == dst) return;
      const int ndims = static_cast<int>(dims_.size());
      int node = src;
      for (int i = 0; i < ndims; ++i) {
        const int a = (node / strides_[i]) % dims_[i];
        const int b = (dst / strides_[i]) % dims_[i];
        if (a == b) continue;
        const int fwd = (b - a + dims_[i]) % dims_[i];
        const int bwd = dims_[i] - fwd;
        const int dir = fwd <= bwd ? 0 : 1;  // tie: positive direction
        const int steps = std::min(fwd, bwd);
        // Walk the ring one step at a time; each directed link belongs to
        // the node the step leaves from.
        int cur = a;
        int here = node;
        for (int s = 0; s < steps; ++s) {
          links->push_back((here * ndims + i) * 2 + dir);
          const int next = dir == 0 ? (cur + 1) % dims_[i]
                                    : (cur - 1 + dims_[i]) % dims_[i];
          here += (next - cur) * strides_[i];
          cur = next;
        }
        node = here;
      }
      return;
    }
    case Topology::kFatTree: {
      if (src == dst) return;
      const int leaf_s = src / ft_hosts_per_leaf_;
      const int leaf_d = dst / ft_hosts_per_leaf_;
      links->push_back(src);                // host up
      if (leaf_s != leaf_d) {
        const int spine = dst % ft_spines_;  // destination-mod spine choice
        links->push_back(2 * nranks_ + leaf_s * ft_spines_ + spine);
        links->push_back(2 * nranks_ + ft_leaves_ * ft_spines_ +
                         spine * ft_leaves_ + leaf_d);
      }
      links->push_back(nranks_ + dst);      // host down
      return;
    }
    case Topology::kDragonfly: {
      if (src == dst) return;
      const int a = params_.df_routers;
      const int rs = src / params_.df_hosts, rd = dst / params_.df_hosts;
      const int local_base = 2 * nranks_;
      const int global_base = local_base + df_nrouters_ * a;
      links->push_back(src);  // host up
      if (rs != rd) {
        const int gs = src / df_group_size_, gd = dst / df_group_size_;
        if (gs == gd) {
          links->push_back(local_base + rs * a + rd % a);
        } else {
          const int gw_s = gs * a + gd % a;
          const int gw_d = gd * a + gs % a;
          if (rs != gw_s) links->push_back(local_base + rs * a + gw_s % a);
          links->push_back(global_base + gs * df_groups_ + gd);
          if (rd != gw_d) links->push_back(local_base + gw_d * a + rd % a);
        }
      }
      links->push_back(nranks_ + dst);  // host down
      return;
    }
  }
}

std::string Platform::link_name(int id) const {
  std::ostringstream os;
  switch (params_.topo) {
    case Topology::kFlat:
      os << "nic" << id;
      return os.str();
    case Topology::kTorus: {
      const int ndims = static_cast<int>(dims_.size());
      const int dir = id % 2;
      const int dim = (id / 2) % ndims;
      const int node = id / (2 * ndims);
      os << "torus.n" << node << ".d" << dim << (dir == 0 ? "+" : "-");
      return os.str();
    }
    case Topology::kFatTree: {
      if (id < nranks_) {
        os << "host" << id << ".up";
      } else if (id < 2 * nranks_) {
        os << "host" << (id - nranks_) << ".down";
      } else if (id < 2 * nranks_ + ft_leaves_ * ft_spines_) {
        const int k = id - 2 * nranks_;
        os << "leaf" << (k / ft_spines_) << ".spine" << (k % ft_spines_);
      } else {
        const int k = id - 2 * nranks_ - ft_leaves_ * ft_spines_;
        os << "spine" << (k / ft_leaves_) << ".leaf" << (k % ft_leaves_);
      }
      return os.str();
    }
    case Topology::kDragonfly: {
      const int a = params_.df_routers;
      const int local_base = 2 * nranks_;
      const int global_base = local_base + df_nrouters_ * a;
      if (id < nranks_) {
        os << "host" << id << ".up";
      } else if (id < local_base) {
        os << "host" << (id - nranks_) << ".down";
      } else if (id < global_base) {
        const int k = id - local_base;
        os << "df.r" << (k / a) << ".l" << (k % a);
      } else {
        const int k = id - global_base;
        os << "df.g" << (k / df_groups_) << ".g" << (k % df_groups_);
      }
      return os.str();
    }
  }
  return "?";
}

void Platform::verify_floor(VTime floor) const {
  // Self-delivery is charged min_path_latency_ by construction; check it
  // explicitly, then every distinct ordered pair (exhaustively for small
  // platforms, structurally via min_hops_ beyond).
  STGSIM_CHECK_GE(min_path_latency_, floor)
      << "platform floor " << floor << "ns exceeds the self-delivery path";
  const VTime structural_min =
      base_latency_ + static_cast<VTime>(min_hops_ - 1) * params_.hop_latency;
  STGSIM_CHECK_GE(structural_min, floor)
      << "platform floor " << floor
      << "ns exceeds the structural minimum path latency " << structural_min
      << "ns (" << topology_name(params_.topo) << ", min " << min_hops_
      << " hops)";
  if (nranks_ > 512) return;
  for (int s = 0; s < nranks_; ++s) {
    for (int d = 0; d < nranks_; ++d) {
      const PathCost pc = cost(s, d);
      STGSIM_CHECK_GE(pc.latency, floor)
          << "pair (" << s << " -> " << d << ") routes below the advertised "
          << "latency floor: " << pc.latency << "ns < " << floor << "ns";
    }
  }
}

}  // namespace stgsim::net
