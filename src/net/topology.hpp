// Platform topology layer: the machine's interconnect as a graph.
//
// The LogGP parameters in NetworkParams describe a single link; real
// machines route messages over a topology, and at scale the dominant
// prediction error comes from path length and per-link contention, not
// from the single-hop constants (ROADMAP; SimGrid's validated piecewise
// models make the same argument). A Platform turns (src, dst) into a
// deterministic routed path:
//
//   * flat      — every pair is one direct hop (the legacy model; the
//                 routed cost reproduces the old closed form bit-for-bit);
//   * torus     — k-ary n-cube, dimension-order routing over per-node
//                 directional links;
//   * fattree   — two-level fat-tree (leaf + spine), destination-mod
//                 spine selection;
//   * dragonfly — groups of routers with all-to-all global links,
//                 minimal local-global-local routing.
//
// A path's cost is closed-form — base end-to-end latency for the first
// hop plus `hop_latency` per additional switch traversal — so simulation
// fidelity stays a pure function of (src, dst): no shared state, which is
// what keeps digests bit-identical across the sequential and threaded
// schedulers. Stateful per-link occupancy (contention) and per-link
// utilization counters use the materialized link ids and are confined to
// emulation / observability, where ordering either is sequential or only
// feeds commutative sums.
//
// The minimum path latency over all pairs is computed at build time and
// is the wildcard-parking / threaded-lookahead floor; verify_floor()
// asserts no pair can undercut it. Self-delivery (src == dst) is charged
// exactly that minimum path — loopback through the nearest switch level —
// so the floor stays sound by construction even for self-sends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/vtime.hpp"

namespace stgsim::net {

enum class Topology : std::uint8_t { kFlat, kTorus, kFatTree, kDragonfly };

const char* topology_name(Topology t);
/// Parses "flat" / "torus" / "fattree" / "dragonfly"; throws
/// std::runtime_error listing the accepted names otherwise.
Topology parse_topology(const std::string& name);

/// Topology shape parameters. The per-hop constants live here; the
/// single-link LogGP constants stay in NetworkParams, so a flat platform
/// is exactly the legacy model.
struct PlatformParams {
  Topology topo = Topology::kFlat;

  /// Torus extents, e.g. {4, 4, 2}. Empty = near-square 2D factorization
  /// of the rank count. When given, the product must equal nranks.
  std::vector<int> torus_dims;

  /// Fat-tree switch radix: radix/2 hosts per leaf, radix/2 spines.
  int fattree_radix = 16;

  /// Dragonfly shape: routers per group and hosts per router.
  int df_routers = 4;
  int df_hosts = 4;

  /// Extra latency per hop beyond the first (switch traversal + wire).
  /// The first hop is charged NetworkParams::latency, which keeps the
  /// flat preset's path cost identical to the legacy closed form.
  VTime hop_latency = vtime_from_us(1);

  bool operator==(const PlatformParams&) const = default;
};

/// Immutable routed view of a PlatformParams for a fixed rank count.
/// Construction validates the shape (throws std::runtime_error with a
/// structured message on e.g. a torus whose extents don't multiply to the
/// rank count) and precomputes the latency floor.
class Platform {
 public:
  Platform(const PlatformParams& params, VTime base_latency, int nranks);

  /// Closed-form routed path cost — a pure function of (src, dst).
  struct PathCost {
    int hops = 1;
    VTime latency = 0;  ///< base_latency + (hops - 1) * hop_latency
  };
  PathCost cost(int src, int dst) const;

  /// Materializes the link ids along the routed path, in traversal
  /// order, into `links` (cleared first). Self-delivery routes over no
  /// links except on flat, where it occupies the source NIC exactly as
  /// the legacy contention model did.
  void route(int src, int dst, std::vector<int>* links) const;

  int nranks() const { return nranks_; }
  Topology topo() const { return params_.topo; }
  const PlatformParams& params() const { return params_; }
  const std::vector<int>& torus_dims() const { return dims_; }

  /// Total directed links (dense id space for occupancy / stats arrays).
  int link_count() const { return link_count_; }
  /// Stable human-readable name for a link id (obs output).
  std::string link_name(int id) const;

  /// min / max over ordered pairs of cost().latency; the min is the
  /// wildcard floor, the max feeds the abstract collective cost model.
  VTime min_path_latency() const { return min_path_latency_; }
  VTime diameter_latency() const { return diameter_latency_; }
  int min_hops() const { return min_hops_; }
  int max_hops() const { return max_hops_; }

  /// Asserts (STGSIM_CHECK) that no ordered pair — including src == dst —
  /// has a path latency below `floor`. Exhaustive up to 512 ranks,
  /// structural beyond. A floor tightened past min_path_latency() trips
  /// this; the Network constructor runs it on every build.
  void verify_floor(VTime floor) const;

 private:
  int torus_hops(int src, int dst) const;

  PlatformParams params_;
  VTime base_latency_ = 0;
  int nranks_ = 0;
  std::vector<int> dims_;     ///< resolved torus extents
  std::vector<int> strides_;  ///< mixed-radix strides for dims_

  // Fat-tree shape.
  int ft_hosts_per_leaf_ = 0, ft_leaves_ = 0, ft_spines_ = 0;
  // Dragonfly shape.
  int df_group_size_ = 0, df_groups_ = 0, df_nrouters_ = 0;

  int link_count_ = 0;
  int min_hops_ = 1, max_hops_ = 1;
  VTime min_path_latency_ = 0, diameter_latency_ = 0;
};

}  // namespace stgsim::net
