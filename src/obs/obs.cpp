#include "obs/obs.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string_view>

#include "support/check.hpp"
#include "support/json.hpp"

namespace stgsim::obs {

namespace {

std::size_t size_bucket(std::uint64_t bytes) {
  std::size_t b = 0;
  while (bytes > 1 && b + 1 < Recorder::kHistBuckets) {
    bytes >>= 1;
    ++b;
  }
  return b;
}

/// Doubles print round-trip-exact but compactly (counters are integers
/// almost everywhere, so most values render without a decimal point).
void write_number(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    os << static_cast<long long>(v);
  } else {
    const auto prec = os.precision(17);
    os << v;
    os.precision(prec);
  }
}

void write_matrix(std::ostream& os, const std::vector<std::uint64_t>& m,
                  int nranks) {
  os << "[";
  for (int r = 0; r < nranks; ++r) {
    os << (r == 0 ? "\n    [" : ",\n    [");
    for (int c = 0; c < nranks; ++c) {
      if (c != 0) os << ", ";
      os << m[static_cast<std::size_t>(r) * static_cast<std::size_t>(nranks) +
              static_cast<std::size_t>(c)];
    }
    os << "]";
  }
  os << "\n  ]";
}

}  // namespace

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
    case OpKind::kIsend: return "isend";
    case OpKind::kIrecv: return "irecv";
    case OpKind::kWait: return "wait";
    case OpKind::kWaitall: return "waitall";
    case OpKind::kWaitany: return "waitany";
    case OpKind::kSendrecv: return "sendrecv";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kBcast: return "bcast";
    case OpKind::kReduce: return "reduce";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kGather: return "gather";
    case OpKind::kScatter: return "scatter";
    case OpKind::kAlltoall: return "alltoall";
    case OpKind::kCompute: return "compute";
    case OpKind::kDelay: return "delay";
    case OpKind::kCount_: break;
  }
  return "?";
}

const char* op_kind_category(OpKind k) {
  switch (k) {
    case OpKind::kSend:
    case OpKind::kRecv:
    case OpKind::kIsend:
    case OpKind::kIrecv:
    case OpKind::kSendrecv:
      return "p2p";
    case OpKind::kWait:
    case OpKind::kWaitall:
    case OpKind::kWaitany:
      return "sync";
    case OpKind::kBarrier:
    case OpKind::kBcast:
    case OpKind::kReduce:
    case OpKind::kAllreduce:
    case OpKind::kGather:
    case OpKind::kScatter:
    case OpKind::kAlltoall:
      return "collective";
    case OpKind::kCompute:
    case OpKind::kDelay:
      return "compute";
    case OpKind::kCount_:
      break;
  }
  return "?";
}

Recorder::Recorder(Options opts, int nranks)
    : opts_(opts), nranks_(nranks),
      shards_(static_cast<std::size_t>(nranks)) {
  STGSIM_CHECK_GT(nranks, 0);
  if (opts_.comm_matrix) {
    for (auto& s : shards_) {
      s.p2p_msgs_row.assign(static_cast<std::size_t>(nranks), 0);
      s.p2p_bytes_row.assign(static_cast<std::size_t>(nranks), 0);
      s.coll_msgs_row.assign(static_cast<std::size_t>(nranks), 0);
      s.coll_bytes_row.assign(static_cast<std::size_t>(nranks), 0);
    }
  }
}

void Recorder::reset_rank(int rank) {
  RankShard& s = shard_mut(rank);
  s = RankShard{};
  if (opts_.comm_matrix) {
    s.p2p_msgs_row.assign(static_cast<std::size_t>(nranks_), 0);
    s.p2p_bytes_row.assign(static_cast<std::size_t>(nranks_), 0);
    s.coll_msgs_row.assign(static_cast<std::size_t>(nranks_), 0);
    s.coll_bytes_row.assign(static_cast<std::size_t>(nranks_), 0);
  }
}

void Recorder::save_rank(int rank, BlobWriter& w) const {
  const RankShard& s = shard(rank);
  w.u64(s.slices);
  w.u64(s.blocks);
  w.u64(s.wakeups);
  w.u64(s.match_attempts);
  w.u64(s.match_probes);
  w.u64(s.match_hits);
  w.u64(s.msgs_sent);
  w.u64(s.wire_bytes);
  for (std::size_t i = 0; i < kOpKindCount; ++i) w.u64(s.op_count[i]);
  for (std::size_t i = 0; i < kOpKindCount; ++i) w.i64(s.op_time[i]);
  w.u64(s.eager_msgs);
  w.u64(s.eager_bytes);
  w.u64(s.rndv_msgs);
  w.u64(s.rndv_bytes);
  for (std::size_t i = 0; i < kHistBuckets; ++i) w.u64(s.size_hist[i]);
  w.vec_pod(s.p2p_msgs_row);
  w.vec_pod(s.p2p_bytes_row);
  w.vec_pod(s.coll_msgs_row);
  w.vec_pod(s.coll_bytes_row);
  w.vec_pod(s.spans);
  w.vec_pod(s.block_spans);
  w.u8(s.block_open ? 1 : 0);
}

void Recorder::restore_rank(int rank, BlobReader& r) {
  RankShard& s = shard_mut(rank);
  s.slices = r.u64();
  s.blocks = r.u64();
  s.wakeups = r.u64();
  s.match_attempts = r.u64();
  s.match_probes = r.u64();
  s.match_hits = r.u64();
  s.msgs_sent = r.u64();
  s.wire_bytes = r.u64();
  for (std::size_t i = 0; i < kOpKindCount; ++i) s.op_count[i] = r.u64();
  for (std::size_t i = 0; i < kOpKindCount; ++i) s.op_time[i] = r.i64();
  s.eager_msgs = r.u64();
  s.eager_bytes = r.u64();
  s.rndv_msgs = r.u64();
  s.rndv_bytes = r.u64();
  for (std::size_t i = 0; i < kHistBuckets; ++i) s.size_hist[i] = r.u64();
  r.vec_pod(&s.p2p_msgs_row);
  r.vec_pod(&s.p2p_bytes_row);
  r.vec_pod(&s.coll_msgs_row);
  r.vec_pod(&s.coll_bytes_row);
  r.vec_pod(&s.spans);
  r.vec_pod(&s.block_spans);
  s.block_open = r.u8() != 0;
}

void Recorder::record_op(int rank, OpKind k, int peer, std::uint64_t bytes,
                         VTime begin, VTime end) {
  RankShard& s = shard_mut(rank);
  const auto ki = static_cast<std::size_t>(k);
  s.op_count[ki] += 1;
  s.op_time[ki] += end - begin;
  if (opts_.trace) {
    s.spans.push_back(Span{k, peer, bytes, begin, end});
  }
}

void Recorder::count_p2p(int rank, int dst, std::uint64_t bytes,
                         bool rendezvous) {
  RankShard& s = shard_mut(rank);
  if (rendezvous) {
    s.rndv_msgs += 1;
    s.rndv_bytes += bytes;
  } else {
    s.eager_msgs += 1;
    s.eager_bytes += bytes;
  }
  s.size_hist[size_bucket(bytes)] += 1;
  if (opts_.comm_matrix) {
    s.p2p_msgs_row[static_cast<std::size_t>(dst)] += 1;
    s.p2p_bytes_row[static_cast<std::size_t>(dst)] += bytes;
  }
}

void Recorder::count_coll_msg(int rank, int dst, std::uint64_t bytes) {
  if (!opts_.comm_matrix) return;
  RankShard& s = shard_mut(rank);
  s.coll_msgs_row[static_cast<std::size_t>(dst)] += 1;
  s.coll_bytes_row[static_cast<std::size_t>(dst)] += bytes;
}

void Recorder::on_resume(int rank, VTime clock) {
  (void)clock;
  shard_mut(rank).slices += 1;
}

void Recorder::on_block(int rank, VTime clock, const simk::MatchSpec& spec) {
  (void)spec;
  RankShard& s = shard_mut(rank);
  s.blocks += 1;
  if (opts_.trace) {
    s.block_spans.push_back(Span{OpKind::kCount_, -1, 0, clock, clock});
    s.block_open = true;
  }
}

void Recorder::on_wake(int rank, VTime clock, VTime arrival) {
  (void)clock;
  RankShard& s = shard_mut(rank);
  s.wakeups += 1;
  if (opts_.trace && s.block_open) {
    Span& sp = s.block_spans.back();
    // The blocked interval ends when the waking message is available (or
    // at the blocking clock itself when it was already queued).
    sp.end = std::max(sp.begin,
                      arrival == kVTimeNever ? sp.begin : arrival);
    s.block_open = false;
  }
}

void Recorder::on_send(const simk::Message& m) {
  RankShard& s = shard_mut(m.src);
  s.msgs_sent += 1;
  s.wire_bytes += m.wire_bytes;
}

void Recorder::on_match(int rank, std::uint64_t probes, bool hit) {
  RankShard& s = shard_mut(rank);
  s.match_attempts += 1;
  s.match_probes += probes;
  if (hit) s.match_hits += 1;
}

MetricsSnapshot Recorder::snapshot() const {
  MetricsSnapshot out;
  out.nranks = nranks_;

  RankShard tot;  // matrix rows unused; scalar sums only
  std::uint64_t hist[kHistBuckets] = {};
  VTime comm_time = 0, compute_time = 0;
  std::uint64_t spans = 0;
  for (const auto& s : shards_) {
    tot.slices += s.slices;
    tot.blocks += s.blocks;
    tot.wakeups += s.wakeups;
    tot.match_attempts += s.match_attempts;
    tot.match_probes += s.match_probes;
    tot.match_hits += s.match_hits;
    tot.msgs_sent += s.msgs_sent;
    tot.wire_bytes += s.wire_bytes;
    tot.eager_msgs += s.eager_msgs;
    tot.eager_bytes += s.eager_bytes;
    tot.rndv_msgs += s.rndv_msgs;
    tot.rndv_bytes += s.rndv_bytes;
    for (std::size_t i = 0; i < kOpKindCount; ++i) {
      tot.op_count[i] += s.op_count[i];
      tot.op_time[i] += s.op_time[i];
      const auto k = static_cast<OpKind>(i);
      if (op_kind_category(k) == std::string_view("compute")) {
        compute_time += s.op_time[i];
      } else {
        comm_time += s.op_time[i];
      }
    }
    for (std::size_t i = 0; i < kHistBuckets; ++i) hist[i] += s.size_hist[i];
    spans += s.spans.size() + s.block_spans.size();
  }

  out.add("engine.slices", static_cast<double>(tot.slices));
  out.add("engine.blocks", static_cast<double>(tot.blocks));
  out.add("engine.wakeups", static_cast<double>(tot.wakeups));
  out.add("engine.match_attempts", static_cast<double>(tot.match_attempts));
  out.add("engine.match_probes", static_cast<double>(tot.match_probes));
  out.add("engine.match_hits", static_cast<double>(tot.match_hits));
  out.add("engine.messages_sent", static_cast<double>(tot.msgs_sent));
  out.add("engine.wire_bytes", static_cast<double>(tot.wire_bytes));
  out.add("smpi.eager_msgs", static_cast<double>(tot.eager_msgs));
  out.add("smpi.eager_bytes", static_cast<double>(tot.eager_bytes));
  out.add("smpi.rendezvous_msgs", static_cast<double>(tot.rndv_msgs));
  out.add("smpi.rendezvous_bytes", static_cast<double>(tot.rndv_bytes));
  out.add("smpi.comm_time_sec", vtime_to_sec(comm_time));
  out.add("smpi.compute_time_sec", vtime_to_sec(compute_time));
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const auto k = static_cast<OpKind>(i);
    if (tot.op_count[i] == 0) continue;
    out.add(std::string("op.") + op_kind_name(k) + ".count",
            static_cast<double>(tot.op_count[i]));
    out.add(std::string("op.") + op_kind_name(k) + ".time_sec",
            vtime_to_sec(tot.op_time[i]));
  }
  if (opts_.trace) out.add("trace.spans", static_cast<double>(spans));

  // Trim the histogram to the last non-empty bucket.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (hist[i] != 0) last = i + 1;
  }
  out.msg_size_hist.assign(hist, hist + last);

  if (opts_.comm_matrix) {
    const auto n = static_cast<std::size_t>(nranks_);
    out.p2p_messages.assign(n * n, 0);
    out.p2p_bytes.assign(n * n, 0);
    out.coll_messages.assign(n * n, 0);
    out.coll_bytes.assign(n * n, 0);
    for (std::size_t r = 0; r < n; ++r) {
      const RankShard& s = shards_[r];
      for (std::size_t c = 0; c < n; ++c) {
        out.p2p_messages[r * n + c] = s.p2p_msgs_row[c];
        out.p2p_bytes[r * n + c] = s.p2p_bytes_row[c];
        out.coll_messages[r * n + c] = s.coll_msgs_row[c];
        out.coll_bytes[r * n + c] = s.coll_bytes_row[c];
      }
    }
  }
  return out;
}

double MetricsSnapshot::value(const std::string& name, bool* found) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) {
      if (found != nullptr) *found = true;
      return v;
    }
  }
  if (found != nullptr) *found = false;
  return 0.0;
}

namespace {

void merge_hist(std::vector<std::uint64_t>* dst,
                const std::vector<std::uint64_t>& src) {
  if (dst->size() < src.size()) dst->resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) (*dst)[i] += src[i];
}

}  // namespace

void merge_metrics(MetricsSnapshot* dst, const MetricsSnapshot& src) {
  for (const auto& [name, value] : src.scalars) {
    bool found = false;
    for (auto& [n, v] : dst->scalars) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) dst->add(name, value);
  }
  merge_hist(&dst->msg_size_hist, src.msg_size_hist);
  merge_hist(&dst->window_advance_hist, src.window_advance_hist);
  merge_hist(&dst->rollback_depth_hist, src.rollback_depth_hist);
  merge_hist(&dst->hop_hist, src.hop_hist);
  // Links merge by name: cross-run rollups only make sense when the runs
  // share a platform, but summing by name is harmless either way.
  for (const auto& l : src.links) {
    bool found = false;
    for (auto& d : dst->links) {
      if (d.name == l.name) {
        d.messages += l.messages;
        d.bytes += l.bytes;
        found = true;
        break;
      }
    }
    if (!found) dst->links.push_back(l);
  }
  if (dst->nranks == src.nranks && !src.p2p_messages.empty() &&
      dst->p2p_messages.size() == src.p2p_messages.size()) {
    merge_hist(&dst->p2p_messages, src.p2p_messages);
    merge_hist(&dst->p2p_bytes, src.p2p_bytes);
    merge_hist(&dst->coll_messages, src.coll_messages);
    merge_hist(&dst->coll_bytes, src.coll_bytes);
  }
}

void Recorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](int rank, const char* name, const char* cat,
                  const Span& sp) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << name << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"X\",\"ts\":" << vtime_to_us(sp.begin)
       << ",\"dur\":" << vtime_to_us(sp.end - sp.begin)
       << ",\"pid\":0,\"tid\":" << rank << ",\"args\":{\"peer\":" << sp.peer
       << ",\"bytes\":" << sp.bytes << "}}";
  };
  for (int r = 0; r < nranks_; ++r) {
    const RankShard& s = shard(r);
    // Thread-name metadata rows make Perfetto label timelines "rank N".
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
    for (const Span& sp : s.spans) {
      emit(r, op_kind_name(sp.kind), op_kind_category(sp.kind), sp);
    }
    for (const Span& sp : s.block_spans) {
      if (sp.end < sp.begin) continue;  // open interval at teardown
      emit(r, "blocked", "engine", sp);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Recorder::write_metrics_json(std::ostream& os,
                                  const MetricsSnapshot& s) {
  os << "{\n  \"metrics\": {";
  for (std::size_t i = 0; i < s.scalars.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << s.scalars[i].first
       << "\": ";
    write_number(os, s.scalars[i].second);
  }
  os << "\n  },\n  \"msg_size_hist\": [";
  for (std::size_t i = 0; i < s.msg_size_hist.size(); ++i) {
    if (i != 0) os << ", ";
    os << s.msg_size_hist[i];
  }
  os << "]";
  if (!s.window_advance_hist.empty()) {
    os << ",\n  \"window_advance_hist\": [";
    for (std::size_t i = 0; i < s.window_advance_hist.size(); ++i) {
      if (i != 0) os << ", ";
      os << s.window_advance_hist[i];
    }
    os << "]";
  }
  if (!s.rollback_depth_hist.empty()) {
    os << ",\n  \"rollback_depth_hist\": [";
    for (std::size_t i = 0; i < s.rollback_depth_hist.size(); ++i) {
      if (i != 0) os << ", ";
      os << s.rollback_depth_hist[i];
    }
    os << "]";
  }
  if (!s.hop_hist.empty()) {
    os << ",\n  \"hop_hist\": [";
    for (std::size_t i = 0; i < s.hop_hist.size(); ++i) {
      if (i != 0) os << ", ";
      os << s.hop_hist[i];
    }
    os << "]";
  }
  if (!s.p2p_messages.empty()) {
    os << ",\n  \"comm_matrix\": ";
    std::ostringstream tmp;
    write_comm_matrix_json(tmp, s);
    // Indent the nested document by re-emitting it verbatim; it is already
    // a standalone JSON object.
    os << tmp.str();
  }
  os << "\n}\n";
}

void Recorder::write_comm_matrix_json(std::ostream& os,
                                      const MetricsSnapshot& s) {
  os << "{\n  \"nranks\": " << s.nranks;
  os << ",\n  \"p2p_messages\": ";
  write_matrix(os, s.p2p_messages, s.nranks);
  os << ",\n  \"p2p_bytes\": ";
  write_matrix(os, s.p2p_bytes, s.nranks);
  os << ",\n  \"coll_messages\": ";
  write_matrix(os, s.coll_messages, s.nranks);
  os << ",\n  \"coll_bytes\": ";
  write_matrix(os, s.coll_bytes, s.nranks);
  os << "\n}";
}

void Recorder::write_link_stats_json(std::ostream& os,
                                     const MetricsSnapshot& s) {
  os << "{\n  \"hop_hist\": [";
  for (std::size_t i = 0; i < s.hop_hist.size(); ++i) {
    if (i != 0) os << ", ";
    os << s.hop_hist[i];
  }
  os << "],\n  \"links\": [";
  for (std::size_t i = 0; i < s.links.size(); ++i) {
    const auto& l = s.links[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << l.name
       << "\", \"messages\": " << l.messages << ", \"bytes\": " << l.bytes
       << "}";
  }
  os << "\n  ]\n}\n";
}

void Recorder::write_divergence_json(
    std::ostream& os, const std::string& description,
    const std::vector<std::pair<std::string, std::string>>& canonical,
    const std::vector<std::pair<std::string, std::string>>& observed) {
  // Built through json::Value for canonical escaping/ordering; field pairs
  // land in sorted-key objects, which is fine — names are already unique.
  json::Value doc = json::Value::object();
  doc.set("kind", "stgsim-divergence");
  doc.set("description", description);
  auto fields_to_json = [](const std::vector<std::pair<std::string,
                                                       std::string>>& fs) {
    json::Value o = json::Value::object();
    for (const auto& [name, value] : fs) o.set(name, json::Value(value));
    return o;
  };
  doc.set("canonical", fields_to_json(canonical));
  doc.set("observed", fields_to_json(observed));
  os << doc.dump(2) << '\n';
}

}  // namespace stgsim::obs
