// Observability layer: virtual-time tracing, a metrics registry, and the
// rank×rank communication matrix.
//
// The paper's methodology (Figure 2) parameterizes scaling functions from
// *measured per-task breakdowns* and validates predictions against them
// (Figs. 3–16); reproducing that workflow needs visibility inside a run,
// not just end-of-run scalars. The Recorder here is that instrument: it
// plugs into the engine as a simk::EngineObserver (block/wake/slice/match
// events) and into smpi::Comm at the same call sites that feed CommTrace
// and RankStats (per-operation virtual-time spans, protocol counters).
//
// Design rules:
//  * Zero cost when absent — every producer call site is guarded by a
//    null-pointer check; no Recorder, no work.
//  * Observation never perturbs simulation — the Recorder only copies
//    values out; enabling it leaves run digests bit-identical.
//  * Per-rank shards — all state is keyed by rank and written from the
//    context that owns that rank (its partition's worker thread, or the
//    scheduler between rounds), so the threaded scheduler needs no locks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "support/blob.hpp"
#include "support/vtime.hpp"

namespace stgsim::obs {

/// User-level operation kinds for trace spans and per-op counters. Wider
/// than smpi::CommEvent::Kind because the timeline wants compute/delay
/// intervals and per-collective breakdowns that the correctness-contract
/// trace deliberately excludes.
enum class OpKind : std::uint8_t {
  kSend, kRecv, kIsend, kIrecv, kWait, kWaitall, kWaitany, kSendrecv,
  kBarrier, kBcast, kReduce, kAllreduce, kGather, kScatter, kAlltoall,
  kCompute, kDelay,
  kCount_  // sentinel
};

inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kCount_);

const char* op_kind_name(OpKind k);
/// Chrome trace-event category: "p2p", "collective", "compute" or "sync".
const char* op_kind_category(OpKind k);

/// What the Recorder collects. Metrics are cheap (fixed-size counters);
/// tracing grows with the number of operations; the comm matrix costs
/// O(ranks^2) words per enabled plane.
struct Options {
  bool trace = false;        ///< record per-rank virtual-time spans
  bool metrics = true;       ///< counters + histograms
  bool comm_matrix = false;  ///< rank×rank messages/bytes
};

/// One closed virtual-time interval on a rank's timeline.
struct Span {
  OpKind kind{};
  int peer = -1;           ///< destination / source / root; -1 where n/a
  std::uint64_t bytes = 0;
  VTime begin = 0;
  VTime end = 0;
};

/// Point-in-time aggregate of everything the Recorder counted, plus any
/// scalars the harness attaches (pool occupancy, peak memory). Scalars are
/// an ordered name->value list so writers emit them deterministically.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> scalars;

  /// Message-size histogram: bucket k counts user messages with
  /// bytes in [2^k, 2^(k+1)); bucket 0 also holds zero-byte messages.
  std::vector<std::uint64_t> msg_size_hist;

  /// Threaded-scheduler window-advance histogram (empty for sequential
  /// runs): bucket k>0 counts rounds whose safe-window base advanced by
  /// [2^(k-1), 2^k) ns over the previous round; bucket 0 counts
  /// zero-advance rounds. Appended by the harness from
  /// simk::ParallelStats.
  std::vector<std::uint64_t> window_advance_hist;

  /// Optimistic-rollback depth histogram (empty for conservative runs):
  /// bucket k>0 counts rollbacks that discarded [2^(k-1), 2^k) consumed
  /// log entries; bucket 0 counts rollbacks that discarded none.
  /// Appended by the harness from simk::ParallelStats.
  std::vector<std::uint64_t> rollback_depth_hist;

  /// Hop-count histogram from the routed platform: bucket h counts
  /// messages whose path crossed h links. Empty unless the run enabled
  /// link stats (harness --links-out / campaign link artifacts).
  std::vector<std::uint64_t> hop_hist;

  /// Per-link utilization (messages/bytes carried), in platform link-id
  /// order, zero-traffic links omitted. Empty unless link stats enabled.
  struct LinkStat {
    std::string name;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<LinkStat> links;

  int nranks = 0;
  /// Rank-major nranks×nranks planes; empty unless comm_matrix enabled.
  /// p2p planes count user point-to-point messages (send/isend); coll
  /// planes count the collective algorithms' internal messages.
  std::vector<std::uint64_t> p2p_messages, p2p_bytes;
  std::vector<std::uint64_t> coll_messages, coll_bytes;

  void add(const std::string& name, double value) {
    scalars.emplace_back(name, value);
  }
  /// Value of a named scalar; 0.0 (and found=false) when absent.
  double value(const std::string& name, bool* found = nullptr) const;
};

/// Accumulates `src` into `dst`: scalars sum by name (new names append in
/// src order), histograms sum element-wise (growing dst as needed), comm
/// matrices sum only when both sides describe the same rank count —
/// cross-campaign rollups mix runs of different sizes, where a summed
/// matrix would be meaningless, so mismatched planes are dropped. Used by
/// the campaign runner to publish one per-campaign metrics rollup.
void merge_metrics(MetricsSnapshot* dst, const MetricsSnapshot& src);

/// The observability sink: engine observer + smpi instrumentation target.
/// One Recorder instruments one run; counters only reset per-rank, and
/// only when the optimistic scheduler rolls that rank back (reset_rank).
class Recorder : public simk::EngineObserver {
 public:
  /// Log2 buckets in the message-size histogram (covers up to 2^39 B).
  static constexpr std::size_t kHistBuckets = 40;

  Recorder(Options opts, int nranks);

  const Options& options() const { return opts_; }
  int nranks() const { return nranks_; }

  // -- smpi-layer hooks ----------------------------------------------------

  /// One user-level operation by `rank` spanning [begin, end] of virtual
  /// time. Feeds the per-op counters, comm-time breakdown and (when
  /// tracing) the rank's timeline.
  void record_op(int rank, OpKind k, int peer, std::uint64_t bytes,
                 VTime begin, VTime end);

  /// One user point-to-point message `rank` -> `dst` (send/isend issue).
  void count_p2p(int rank, int dst, std::uint64_t bytes, bool rendezvous);

  /// One collective-internal message `rank` -> `dst`.
  void count_coll_msg(int rank, int dst, std::uint64_t bytes);

  // -- simk::EngineObserver ------------------------------------------------

  void on_resume(int rank, VTime clock) override;
  void on_block(int rank, VTime clock, const simk::MatchSpec& spec) override;
  void on_wake(int rank, VTime clock, VTime arrival) override;
  void on_send(const simk::Message& m) override;
  void on_match(int rank, std::uint64_t probes, bool hit) override;

  /// Optimistic-rollback hook: discard everything recorded for `rank`.
  /// Coast-forward replay then re-records the rank's surviving history, so
  /// after the run the shard describes exactly the committed execution.
  void reset_rank(int rank);

  /// Checkpoint twins of reset_rank: serialize / overwrite one rank's
  /// shard. A rollback that restores from a checkpoint rewinds the shard
  /// to the capture point instead of zeroing it; replay from the
  /// checkpoint then re-records only the surviving suffix.
  void save_rank(int rank, BlobWriter& w) const;
  void restore_rank(int rank, BlobReader& r);

  // -- output --------------------------------------------------------------

  /// Aggregates every shard into a snapshot. The harness may append
  /// engine-level scalars (pool/arena stats, peak memory) afterwards.
  MetricsSnapshot snapshot() const;

  /// Chrome trace-event JSON ("X" duration events, ts/dur in microseconds
  /// of virtual time, tid = rank) — loadable by Perfetto / about:tracing.
  void write_chrome_trace(std::ostream& os) const;

  static void write_metrics_json(std::ostream& os, const MetricsSnapshot& s);
  static void write_comm_matrix_json(std::ostream& os,
                                     const MetricsSnapshot& s);
  /// Per-link utilization + hop histogram ("--links-out" artifact).
  static void write_link_stats_json(std::ostream& os,
                                    const MetricsSnapshot& s);

  /// Per-schedule divergence dump (`stgsim check --replay
  /// --divergence-out`): a canonical-vs-observed field comparison plus a
  /// human-readable description. Fields are ordered (name, value) pairs
  /// rendered as JSON objects in the given order; the caller decides what
  /// to compare (digests, statuses, per-rank clocks, ...).
  static void write_divergence_json(
      std::ostream& os, const std::string& description,
      const std::vector<std::pair<std::string, std::string>>& canonical,
      const std::vector<std::pair<std::string, std::string>>& observed);

  /// Per-rank storage; public so tests can assert against a single rank.
  struct RankShard {
    // Engine-level counters.
    std::uint64_t slices = 0;
    std::uint64_t blocks = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t match_attempts = 0;
    std::uint64_t match_probes = 0;
    std::uint64_t match_hits = 0;
    std::uint64_t msgs_sent = 0;    ///< engine messages (incl. protocol)
    std::uint64_t wire_bytes = 0;   ///< engine-level wire bytes

    // smpi-level counters.
    std::uint64_t op_count[kOpKindCount] = {};
    VTime op_time[kOpKindCount] = {};
    std::uint64_t eager_msgs = 0, eager_bytes = 0;
    std::uint64_t rndv_msgs = 0, rndv_bytes = 0;
    std::uint64_t size_hist[kHistBuckets] = {};

    // Comm-matrix rows (length nranks when enabled, else empty).
    std::vector<std::uint64_t> p2p_msgs_row, p2p_bytes_row;
    std::vector<std::uint64_t> coll_msgs_row, coll_bytes_row;

    // Timeline (trace only). Open block intervals close at the next wake.
    std::vector<Span> spans;
    std::vector<Span> block_spans;
    bool block_open = false;
  };
  const RankShard& shard(int rank) const {
    return shards_[static_cast<std::size_t>(rank)];
  }

 private:
  RankShard& shard_mut(int rank) {
    return shards_[static_cast<std::size_t>(rank)];
  }

  Options opts_;
  int nranks_ = 0;
  std::vector<RankShard> shards_;
};

}  // namespace stgsim::obs
