#include "serve/daemon.hpp"

#include <vector>

#include "support/errors.hpp"

namespace stgsim::serve {

int category_http_status(const std::string& category) {
  if (category == errors::kCategoryUsage) return 400;
  if (category == errors::kCategoryBudgetExceeded) return 503;
  return 500;
}

namespace {

/// Reassembles the bare envelope {"error": {...}} from an error frame so
/// the HTTP body is byte-identical to the CLI's --json-errors output.
json::Value envelope_from_frame(const json::Value& f) {
  json::Value env = json::Value::object();
  if (const json::Value* inner = f.find("error")) {
    env.set("error", *inner);
  }
  return env;
}

std::string error_category(const json::Value& f) {
  if (const json::Value* inner = f.find("error")) {
    if (const json::Value* cat = inner->find("category")) {
      if (cat->is_string()) return cat->as_string();
    }
  }
  return errors::kCategoryInternalError;
}

void respond_frames(Service& service, const std::string& body,
                    ResponseWriter& w) {
  // Peek at "stream" before dispatching: a streaming request writes its
  // headers up front and emits frames as they happen; a plain request
  // answers with exactly the terminal frame.
  bool stream = false;
  try {
    const json::Value doc = json::Value::parse(body);
    if (const json::Value* s = doc.find("stream")) stream = s->as_bool();
  } catch (const std::exception&) {
    // Malformed body: fall through, handle_text emits the error frame.
  }

  if (stream) {
    w.begin_stream(200, "application/x-ndjson");
    service.handle_text(body, [&](const json::Value& frame) {
      w.write(frame.dump() + "\n");
    });
    return;
  }

  std::vector<json::Value> frames;
  service.handle_text(
      body, [&](const json::Value& frame) { frames.push_back(frame); });
  if (frames.empty()) {  // cannot happen; defensive
    w.finish(500, "application/json", "{}\n");
    return;
  }
  const json::Value& last = frames.back();
  const json::Value* event = last.find("event");
  if (event != nullptr && event->is_string() &&
      event->as_string() == "error") {
    w.finish(category_http_status(error_category(last)), "application/json",
             envelope_from_frame(last).dump(2) + "\n");
  } else {
    w.finish(200, "application/json", last.dump(2) + "\n");
  }
}

}  // namespace

HttpServer::Handler make_http_handler(Service& service) {
  return [&service](const HttpRequest& req, ResponseWriter& w) {
    if (req.path == "/v1/request") {
      if (req.method != "POST") {
        w.finish(405, "text/plain", "POST required\n");
        return;
      }
      respond_frames(service, req.body, w);
      return;
    }
    if (req.path == "/v1/status" && req.method == "GET") {
      w.finish(200, "application/json",
               service.status_json().dump(2) + "\n");
      return;
    }
    if (req.path == "/v1/metrics" && req.method == "GET") {
      const obs::MetricsSnapshot m = service.metrics_snapshot();
      json::Value scalars = json::Value::object();
      for (const auto& [name, value] : m.scalars) scalars.set(name, value);
      json::Value doc = json::Value::object();
      doc.set("scalars", std::move(scalars));
      w.finish(200, "application/json", doc.dump(2) + "\n");
      return;
    }
    if (req.path == "/v1/shutdown" && req.method == "POST") {
      Request shutdown;
      shutdown.kind = RequestKind::kShutdown;
      respond_frames(service, request_to_json(shutdown).dump(), w);
      return;
    }
    w.finish(404, "text/plain", "unknown route " + req.path + "\n");
  };
}

}  // namespace stgsim::serve
