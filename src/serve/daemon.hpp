// HTTP glue between the Service and the socket layer — the routing table
// `stgsim serve` mounts and the in-process tests drive.
//
// Routes (all bodies are JSON; kServeProto defines the shapes):
//   POST /v1/request   generic wire request. stream=false -> one JSON
//                      document: the terminal frame on success, the bare
//                      structured-error envelope (byte-identical to
//                      `--json-errors` output) on failure. stream=true ->
//                      close-delimited NDJSON frames, one per line.
//   GET  /v1/status    Service::status_json()
//   GET  /v1/metrics   {"scalars": {...}} service metrics
//   POST /v1/shutdown  begin drain; responds like a shutdown request
//
// Non-streaming HTTP status mapping: 200 for results; errors use the
// envelope's category (usage -> 400, budget_exceeded -> 503, others ->
// 500). Streaming responses are always 200 — errors arrive as frames.
#pragma once

#include <string>

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace stgsim::serve {

/// HTTP status for an error envelope's category.
int category_http_status(const std::string& category);

/// The daemon's request handler, bound to `service` (which must outlive
/// the returned handler / the server it is mounted on).
HttpServer::Handler make_http_handler(Service& service);

}  // namespace stgsim::serve
