#include "serve/http.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace stgsim::serve {

namespace {

/// send() the whole buffer; MSG_NOSIGNAL so a hung-up client is an error
/// return, never a SIGPIPE that kills the daemon.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string head(int status, const std::string& content_type,
                 bool with_length, std::size_t length) {
  std::string h = "HTTP/1.1 " + std::to_string(status) + " " +
                  status_text(status) + "\r\n";
  h += "Content-Type: " + content_type + "\r\n";
  if (with_length) h += "Content-Length: " + std::to_string(length) + "\r\n";
  h += "Connection: close\r\n\r\n";
  return h;
}

/// Case-insensitive ASCII compare for header names.
bool iequals(const std::string& a, const char* b) {
  std::size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] - 'A' + 'a' : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] - 'A' + 'a' : b[i];
    if (ca != cb) return false;
  }
  return i == a.size() && b[i] == '\0';
}

/// Reads one request (request line + headers + Content-Length body).
/// Returns false on malformed input or a closed connection.
bool read_request(int fd, HttpRequest* out) {
  std::string buf;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
    if (buf.size() > (1u << 20) && header_end == std::string::npos) {
      return false;  // runaway header block
    }
  }

  const std::string header = buf.substr(0, header_end);
  const std::size_t line_end = header.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? header : header.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out->method = request_line.substr(0, sp1);
  out->path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t content_length = 0;
  std::size_t pos = line_end == std::string::npos ? header.size()
                                                  : line_end + 2;
  while (pos < header.size()) {
    std::size_t eol = header.find("\r\n", pos);
    if (eol == std::string::npos) eol = header.size();
    const std::string line = header.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = line.substr(0, colon);
    std::size_t v = colon + 1;
    while (v < line.size() && line[v] == ' ') ++v;
    if (iequals(name, "content-length")) {
      content_length = static_cast<std::size_t>(
          std::strtoull(line.c_str() + v, nullptr, 10));
      if (content_length > (64u << 20)) return false;  // refuse huge bodies
    }
  }

  out->body = buf.substr(header_end + 4);
  while (out->body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    out->body.append(chunk, static_cast<std::size_t>(n));
  }
  out->body.resize(content_length);
  return true;
}

int connect_to(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    throw std::runtime_error("cannot resolve " + host + ":" + service);
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw std::runtime_error("cannot connect to " + host + ":" + service);
  }
  return fd;
}

std::string request_head(const std::string& method, const std::string& path,
                         const std::string& host, std::size_t body_len) {
  std::string h = method + " " + path + " HTTP/1.1\r\n";
  h += "Host: " + host + "\r\n";
  h += "Content-Type: application/json\r\n";
  h += "Content-Length: " + std::to_string(body_len) + "\r\n";
  h += "Connection: close\r\n\r\n";
  return h;
}

/// Parses a response's status line + headers out of `buf` (which must
/// contain the full header block). Returns the body offset.
std::size_t parse_response_head(const std::string& buf, int* status,
                                long* content_length) {
  *status = 0;
  *content_length = -1;
  const std::size_t header_end = buf.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::string::npos;
  const std::size_t sp = buf.find(' ');
  if (sp != std::string::npos && sp + 4 <= header_end) {
    *status = std::atoi(buf.c_str() + sp + 1);
  }
  std::size_t pos = buf.find("\r\n") + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (iequals(line.substr(0, colon), "content-length")) {
      std::size_t v = colon + 1;
      while (v < line.size() && line[v] == ' ') ++v;
      *content_length = std::strtol(line.c_str() + v, nullptr, 10);
    }
  }
  return header_end + 4;
}

}  // namespace

void ResponseWriter::begin_stream(int status,
                                  const std::string& content_type) {
  begun_ = true;
  const std::string h = head(status, content_type, /*with_length=*/false, 0);
  send_all(fd_, h.data(), h.size());
}

bool ResponseWriter::write(const std::string& chunk) {
  return send_all(fd_, chunk.data(), chunk.size());
}

void ResponseWriter::finish(int status, const std::string& content_type,
                            const std::string& body) {
  begun_ = true;
  const std::string h =
      head(status, content_type, /*with_length=*/true, body.size());
  send_all(fd_, h.data(), h.size());
  send_all(fd_, body.data(), body.size());
}

int HttpServer::start(const Options& options, Handler handler) {
  handler_ = std::move(handler);

  addrinfo hints{};
  hints.ai_family = AF_INET;  // loopback service; v4 keeps the port file simple
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(options.port);
  if (::getaddrinfo(options.host.c_str(), service.c_str(), &hints, &res) !=
          0 ||
      res == nullptr) {
    throw std::runtime_error("cannot resolve bind address " + options.host);
  }
  listen_fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(res);
    throw std::runtime_error("cannot create listening socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, res->ai_addr, res->ai_addrlen) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::freeaddrinfo(res);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind " + options.host + ":" + service +
                             ": " + err);
  }
  ::freeaddrinfo(res);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard lk(conn_mu_);
    conns_.emplace_back([this, fd] {
      HttpRequest req;
      if (read_request(fd, &req)) {
        ResponseWriter w(fd);
        try {
          handler_(req, w);
          if (!w.begun()) w.finish(404, "text/plain", "not found\n");
        } catch (const std::exception& e) {
          if (!w.begun()) {
            w.finish(500, "text/plain", std::string(e.what()) + "\n");
          }
        }
      }
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    });
  }
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    std::lock_guard lk(conn_mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

HttpResponse http_request(const std::string& host, int port,
                          const std::string& method, const std::string& path,
                          const std::string& body) {
  const int fd = connect_to(host, port);
  const std::string h = request_head(method, path, host, body.size());
  if (!send_all(fd, h.data(), h.size()) ||
      !send_all(fd, body.data(), body.size())) {
    ::close(fd);
    throw std::runtime_error("connection lost while sending request");
  }

  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpResponse resp;
  long content_length = -1;
  const std::size_t body_off =
      parse_response_head(buf, &resp.status, &content_length);
  if (body_off == std::string::npos) {
    throw std::runtime_error("malformed HTTP response");
  }
  resp.body = buf.substr(body_off);
  if (content_length >= 0 &&
      resp.body.size() > static_cast<std::size_t>(content_length)) {
    resp.body.resize(static_cast<std::size_t>(content_length));
  }
  return resp;
}

int http_request_stream(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body,
    const std::function<void(const std::string&)>& on_line) {
  const int fd = connect_to(host, port);
  const std::string h = request_head(method, path, host, body.size());
  if (!send_all(fd, h.data(), h.size()) ||
      !send_all(fd, body.data(), body.size())) {
    ::close(fd);
    throw std::runtime_error("connection lost while sending request");
  }

  std::string buf;
  char chunk[4096];
  int status = 0;
  long content_length = -1;
  std::size_t body_off = std::string::npos;
  // Header block first, then deliver body lines as they arrive.
  std::size_t consumed = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (body_off == std::string::npos) {
      body_off = parse_response_head(buf, &status, &content_length);
      if (body_off == std::string::npos) continue;
      consumed = body_off;
    }
    for (;;) {
      const std::size_t nl = buf.find('\n', consumed);
      if (nl == std::string::npos) break;
      on_line(buf.substr(consumed, nl - consumed));
      consumed = nl + 1;
    }
  }
  ::close(fd);
  if (body_off == std::string::npos) {
    throw std::runtime_error("malformed HTTP response");
  }
  if (consumed < buf.size()) on_line(buf.substr(consumed));
  return status;
}

}  // namespace stgsim::serve
