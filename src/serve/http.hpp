// Minimal HTTP/1.1 over POSIX sockets — just enough transport for the
// serve daemon and its CLI clients, with zero dependencies.
//
// Scope is deliberately narrow: loopback-oriented (the daemon binds
// 127.0.0.1 by default and is not an internet-facing server), one request
// per connection ("Connection: close"), bodies delimited by
// Content-Length on requests and by Content-Length *or* connection close
// on responses. Close-delimited responses are what makes streaming
// trivial: the daemon writes headers without a length, emits one JSON
// frame per line as work progresses (NDJSON), and the closed socket is
// the end-of-stream marker.
//
// The server runs one accept loop (poll()-interruptible so stop() is
// prompt) and a thread per connection; the handler decides per request
// whether to stream (ResponseWriter::begin_stream + write) or answer in
// one shot (ResponseWriter::finish).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stgsim::serve {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< request-target, e.g. "/v1/request"
  std::string body;
};

/// Writes one response on a connection. Exactly one of begin_stream() /
/// finish() may be used; write() is only valid after begin_stream().
class ResponseWriter {
 public:
  explicit ResponseWriter(int fd) : fd_(fd) {}

  /// Sends status + headers for a close-delimited streaming response.
  void begin_stream(int status, const std::string& content_type);
  /// Appends raw bytes to a streaming response. Returns false once the
  /// peer has gone away (the handler should stop producing).
  bool write(const std::string& chunk);
  /// One-shot response with Content-Length.
  void finish(int status, const std::string& content_type,
              const std::string& body);

  bool begun() const { return begun_; }

 private:
  int fd_;
  bool begun_ = false;
};

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; the bound port is returned by start
  };
  using Handler = std::function<void(const HttpRequest&, ResponseWriter&)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept loop. Returns the bound port.
  /// Throws std::runtime_error when the socket cannot be set up.
  int start(const Options& options, Handler handler);
  /// Stops accepting, closes the listener, and joins every connection
  /// thread (in-flight handlers run to completion). Idempotent.
  void stop();

  int port() const { return port_; }

 private:
  void accept_loop();

  int listen_fd_ = -1;
  int port_ = 0;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conns_;
};

/// Blocking client helpers (the CLI's submit/status side).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// One-shot request; the whole response body is collected (Content-Length
/// or close-delimited). Throws std::runtime_error on connection failure.
HttpResponse http_request(const std::string& host, int port,
                          const std::string& method, const std::string& path,
                          const std::string& body);

/// POST whose response body is consumed line-by-line as it arrives
/// (NDJSON streaming). `on_line` receives each newline-terminated line
/// without its terminator; a final unterminated line is delivered too.
/// Returns the HTTP status.
int http_request_stream(const std::string& host, int port,
                        const std::string& method, const std::string& path,
                        const std::string& body,
                        const std::function<void(const std::string&)>& on_line);

}  // namespace stgsim::serve
