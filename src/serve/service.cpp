#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "campaign/exec.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "support/errors.hpp"

namespace stgsim::serve {

namespace {

campaign::Executor::Options executor_options(const Service::Options& o) {
  campaign::Executor::Options eo;
  eo.cache_dir = o.cache_dir;
  eo.max_concurrency = o.jobs;
  eo.with_metrics = o.with_metrics;
  return eo;
}

const char* source_name(campaign::Executor::Source s) {
  switch (s) {
    case campaign::Executor::Source::kExecuted: return "executed";
    case campaign::Executor::Source::kCacheHit: return "cache_hit";
    case campaign::Executor::Source::kDedupJoined: return "dedup_joined";
  }
  return "?";
}

}  // namespace

/// RAII admission ticket: counts the request while active, throws the
/// structured rejection when admission fails (in which case no ticket is
/// held and the destructor never runs).
struct Service::Admission {
  Service& s;
  std::string client;

  Admission(Service& service, std::string client_name)
      : s(service), client(std::move(client_name)) {
    std::lock_guard lk(s.mu_);
    if (s.draining_) {
      ++s.rejected_draining_;
      ++s.rejections_by_client_[client];
      throw errors::StructuredError(
          "serve.draining", errors::kCategoryBudgetExceeded,
          "daemon is draining and not admitting new work");
    }
    if (s.options_.max_active_requests > 0 &&
        s.active_ >= s.options_.max_active_requests) {
      ++s.rejected_queue_full_;
      ++s.rejections_by_client_[client];
      json::Value detail = json::Value::object();
      detail.set("max_active_requests", s.options_.max_active_requests);
      throw errors::StructuredError(
          "serve.queue_full", errors::kCategoryBudgetExceeded,
          "request queue is full (" +
              std::to_string(s.options_.max_active_requests) +
              " active requests)",
          std::move(detail));
    }
    int& mine = s.active_by_client_[client];
    if (s.options_.max_inflight_per_client > 0 &&
        mine >= s.options_.max_inflight_per_client) {
      ++s.rejected_client_budget_;
      ++s.rejections_by_client_[client];
      json::Value detail = json::Value::object();
      detail.set("client", client);
      detail.set("max_inflight_per_client",
                 s.options_.max_inflight_per_client);
      throw errors::StructuredError(
          "serve.client_budget", errors::kCategoryBudgetExceeded,
          "client '" + client + "' is at its in-flight budget (" +
              std::to_string(s.options_.max_inflight_per_client) + ")",
          std::move(detail));
    }
    ++s.active_;
    ++mine;
  }

  ~Admission() {
    std::lock_guard lk(s.mu_);
    --s.active_;
    auto it = s.active_by_client_.find(client);
    if (it != s.active_by_client_.end() && --it->second <= 0) {
      s.active_by_client_.erase(it);
    }
    s.idle_cv_.notify_all();
  }
};

Service::Service(Options options)
    : options_(std::move(options)), executor_(executor_options(options_)) {}

void Service::handle(const Request& req, const Emit& emit) {
  {
    std::lock_guard lk(mu_);
    ++requests_total_;
  }
  try {
    switch (req.kind) {
      case RequestKind::kStatus: {
        json::Value f = frame("result");
        f.set("kind", "status");
        f.set("status", status_json());
        emit(f);
        return;
      }
      case RequestKind::kMetrics: {
        const obs::MetricsSnapshot m = metrics_snapshot();
        json::Value scalars = json::Value::object();
        for (const auto& [name, value] : m.scalars) scalars.set(name, value);
        json::Value metrics = json::Value::object();
        metrics.set("scalars", std::move(scalars));
        json::Value f = frame("result");
        f.set("kind", "metrics");
        f.set("metrics", std::move(metrics));
        emit(f);
        return;
      }
      case RequestKind::kShutdown: {
        begin_drain();
        {
          std::lock_guard lk(mu_);
          shutdown_requested_ = true;
        }
        json::Value f = frame("result");
        f.set("kind", "shutdown");
        f.set("draining", true);
        emit(f);
        return;
      }
      case RequestKind::kRun: {
        Admission ticket(*this, req.client);
        handle_run(req, emit);
        return;
      }
      case RequestKind::kCampaign: {
        Admission ticket(*this, req.client);
        handle_campaign(req, emit);
        return;
      }
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard lk(mu_);
      ++errors_emitted_;
    }
    emit(error_frame(errors::error_envelope_for(
        e, "serve.internal_error", errors::kCategoryInternalError)));
  }
}

void Service::handle_text(const std::string& body, const Emit& emit) {
  Request req;
  try {
    req = request_from_json(json::Value::parse(body));
  } catch (const std::exception& e) {
    {
      std::lock_guard lk(mu_);
      ++requests_total_;
      ++errors_emitted_;
    }
    emit(error_frame(errors::error_envelope_for(
        e, "serve.malformed_request", errors::kCategoryUsage)));
    return;
  }
  handle(req, emit);
}

void Service::handle_run(const Request& req, const Emit& emit) {
  harness::RunSpec spec;
  try {
    spec = harness::run_spec_from_json(req.payload);
  } catch (const errors::StructuredError&) {
    throw;
  } catch (const std::exception& e) {
    throw errors::StructuredError("serve.invalid_payload",
                                  errors::kCategoryUsage, e.what());
  }

  // Per-request watchdog (PR 1 budget machinery): budgets are canonical
  // spec fields, so the clamp changes the cache key — which is correct,
  // a budgeted run is a different experiment.
  if (options_.max_run_host_seconds > 0 &&
      (spec.config.max_host_seconds <= 0 ||
       spec.config.max_host_seconds > options_.max_run_host_seconds)) {
    spec.config.max_host_seconds = options_.max_run_host_seconds;
  }

  std::map<std::string, double> calib_params;
  const std::map<std::string, double>* params = nullptr;
  if (spec.calibrate_procs > 0) {
    if (req.stream) {
      json::Value f = frame("calibrating");
      f.set("digest", harness::calibration_digest_hex(spec));
      emit(f);
    }
    calib_params = executor_.calibration(spec);
    params = &calib_params;
  }
  const harness::RunSpec resolved = campaign::resolve_spec(spec, params);

  if (req.stream) {
    json::Value f = frame("accepted");
    f.set("kind", "run");
    f.set("digest", harness::run_spec_digest_hex(resolved));
    emit(f);
  }

  const campaign::Executor::Result r =
      executor_.run_resolved(resolved, req.retry_failed);

  json::Value f = frame("result");
  f.set("kind", "run");
  f.set("digest", r.digest_hex);
  f.set("source", source_name(r.source));
  f.set("spec", harness::run_spec_to_json(resolved));
  f.set("outcome", harness::outcome_to_json(r.outcome));
  emit(f);
  {
    std::lock_guard lk(mu_);
    ++runs_served_;
  }
}

void Service::handle_campaign(const Request& req, const Emit& emit) {
  campaign::Scenario scenario;
  try {
    scenario = campaign::parse_scenario(req.payload);
  } catch (const errors::StructuredError&) {
    throw;
  } catch (const std::exception& e) {
    throw errors::StructuredError("serve.invalid_payload",
                                  errors::kCategoryUsage, e.what());
  }

  if (req.stream) {
    json::Value f = frame("accepted");
    f.set("kind", "campaign");
    f.set("campaign", scenario.name);
    f.set("total", static_cast<std::int64_t>(scenario.runs.size()));
    f.set("calibrations",
          static_cast<std::int64_t>(scenario.calibrations.size()));
    emit(f);
  }

  campaign::CampaignOptions copts;
  copts.jobs = std::max(1, options_.jobs);
  copts.cache_dir = options_.cache_dir;
  copts.retry_failed = req.retry_failed;
  copts.with_metrics = options_.with_metrics;
  copts.executor = &executor_;
  if (req.stream) {
    copts.on_run_done = [&](const campaign::RunReport& r, std::size_t done,
                            std::size_t total) {
      json::Value f = frame("run_done");
      f.set("id", r.id);
      f.set("digest", r.digest_hex);
      f.set("status", harness::run_status_name(r.outcome.status));
      f.set("cache_hit", r.cache_hit);
      f.set("done", static_cast<std::int64_t>(done));
      f.set("total", static_cast<std::int64_t>(total));
      emit(f);
    };
  }

  const campaign::CampaignResult result = run_campaign(scenario, copts);

  json::Value f = frame("result");
  f.set("kind", "campaign");
  // `report` is the exact object `stgsim campaign` writes to report.json;
  // a client re-dumping it with indent 2 reproduces the file's bytes.
  f.set("report", campaign::report_json(result));
  f.set("report_csv", campaign::report_csv(result));
  json::Value summary = json::Value::object();
  summary.set("campaign", result.name);
  summary.set("runs", static_cast<std::int64_t>(result.runs.size()));
  summary.set("cache_hits", static_cast<std::int64_t>(result.cache_hits));
  summary.set("executed", static_cast<std::int64_t>(result.executed));
  summary.set("calibrations_run",
              static_cast<std::int64_t>(result.calibrations_run));
  summary.set("calibrations_cached",
              static_cast<std::int64_t>(result.calibrations_cached));
  f.set("summary", std::move(summary));
  emit(f);
  {
    std::lock_guard lk(mu_);
    ++campaigns_served_;
  }
}

void Service::begin_drain() {
  std::lock_guard lk(mu_);
  draining_ = true;
}

bool Service::draining() const {
  std::lock_guard lk(mu_);
  return draining_;
}

bool Service::shutdown_requested() const {
  std::lock_guard lk(mu_);
  return shutdown_requested_;
}

void Service::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [&] { return active_ == 0; });
}

json::Value Service::status_json() const {
  const campaign::Executor::Stats st = executor_.stats();
  std::lock_guard lk(mu_);
  json::Value doc = json::Value::object();
  doc.set("proto", kServeProto);
  doc.set("draining", draining_);
  doc.set("active_requests", active_);
  json::Value clients = json::Value::object();
  for (const auto& [name, n] : active_by_client_) clients.set(name, n);
  doc.set("active_by_client", std::move(clients));
  doc.set("requests_total", static_cast<std::int64_t>(requests_total_));
  doc.set("runs_served", static_cast<std::int64_t>(runs_served_));
  doc.set("campaigns_served",
          static_cast<std::int64_t>(campaigns_served_));
  doc.set("errors", static_cast<std::int64_t>(errors_emitted_));

  json::Value rejected = json::Value::object();
  rejected.set("draining", static_cast<std::int64_t>(rejected_draining_));
  rejected.set("queue_full",
               static_cast<std::int64_t>(rejected_queue_full_));
  rejected.set("client_budget",
               static_cast<std::int64_t>(rejected_client_budget_));
  doc.set("rejected", std::move(rejected));

  json::Value ex = json::Value::object();
  ex.set("executed", static_cast<std::int64_t>(st.executed));
  ex.set("cache_hits", static_cast<std::int64_t>(st.cache_hits));
  ex.set("dedup_joined", static_cast<std::int64_t>(st.dedup_joined));
  ex.set("calibrations_run",
         static_cast<std::int64_t>(st.calibrations_run));
  ex.set("calibrations_cached",
         static_cast<std::int64_t>(st.calibrations_cached));
  ex.set("calibrations_joined",
         static_cast<std::int64_t>(st.calibrations_joined));
  ex.set("in_flight", static_cast<std::int64_t>(st.in_flight));
  ex.set("queue_depth", static_cast<std::int64_t>(st.queue_waiting));
  doc.set("executor", std::move(ex));

  json::Value limits = json::Value::object();
  limits.set("cache_dir", options_.cache_dir);
  limits.set("jobs", options_.jobs);
  limits.set("max_active_requests", options_.max_active_requests);
  limits.set("max_inflight_per_client", options_.max_inflight_per_client);
  limits.set("max_run_host_seconds", options_.max_run_host_seconds);
  doc.set("limits", std::move(limits));
  return doc;
}

obs::MetricsSnapshot Service::metrics_snapshot() const {
  const campaign::Executor::Stats st = executor_.stats();
  std::lock_guard lk(mu_);
  obs::MetricsSnapshot m;
  m.add("serve.requests_total", static_cast<double>(requests_total_));
  m.add("serve.runs", static_cast<double>(runs_served_));
  m.add("serve.campaigns", static_cast<double>(campaigns_served_));
  m.add("serve.errors", static_cast<double>(errors_emitted_));
  m.add("serve.active_requests", static_cast<double>(active_));
  m.add("serve.queue_depth", static_cast<double>(st.queue_waiting));
  m.add("serve.in_flight", static_cast<double>(st.in_flight));
  m.add("serve.executed", static_cast<double>(st.executed));
  m.add("serve.cache_hits", static_cast<double>(st.cache_hits));
  m.add("serve.dedup_joined", static_cast<double>(st.dedup_joined));
  m.add("serve.calibrations_run", static_cast<double>(st.calibrations_run));
  m.add("serve.calibrations_cached",
        static_cast<double>(st.calibrations_cached));
  m.add("serve.calibrations_joined",
        static_cast<double>(st.calibrations_joined));
  const double lookups = static_cast<double>(st.executed + st.cache_hits +
                                             st.dedup_joined);
  m.add("serve.cache_hit_rate",
        lookups > 0 ? static_cast<double>(st.cache_hits + st.dedup_joined) /
                          lookups
                    : 0.0);
  m.add("serve.rejected.draining", static_cast<double>(rejected_draining_));
  m.add("serve.rejected.queue_full",
        static_cast<double>(rejected_queue_full_));
  m.add("serve.rejected.client_budget",
        static_cast<double>(rejected_client_budget_));
  for (const auto& [client, n] : rejections_by_client_) {
    m.add("serve.rejections.client." + client, static_cast<double>(n));
  }
  return m;
}

}  // namespace stgsim::serve
