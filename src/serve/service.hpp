// The campaign service: validated admission, deduped execution, streamed
// progress — everything `stgsim serve` does except the socket.
//
// Service is transport-agnostic on purpose: a request comes in as a wire
// Request (serve/wire.hpp) plus an Emit callback that receives response
// frames; the HTTP layer and the in-process tests drive the same object
// through the same entry point, so the concurrency tests need no sockets.
//
// Admission contract (checked in order, all rejections are structured
// errors in the budget_exceeded category → exit code 4):
//   1. draining daemon          -> "serve.draining"
//   2. global active-request cap -> "serve.queue_full"
//   3. per-client in-flight cap  -> "serve.client_budget"
// status / metrics / shutdown requests bypass admission — an operator must
// always be able to observe and drain a saturated daemon.
//
// Execution funnels through one shared campaign::Executor: identical
// in-flight RunSpecs execute once with every requester receiving the same
// stored bytes, campaign requests dedup against single-run requests, and
// the executor's permit pool bounds simulation concurrency daemon-wide.
//
// The optional run watchdog (Options::max_run_host_seconds, PR 1 budget
// machinery) clamps a single-run request's max_host_sec. Budgets are part
// of the canonical spec — clamping legitimately changes the cache key, so
// the clamp defaults to off and campaign payloads keep their scenario's
// budgets verbatim (serve and offline campaigns stay byte-identical).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "campaign/executor.hpp"
#include "obs/obs.hpp"
#include "serve/wire.hpp"
#include "support/json.hpp"

namespace stgsim::serve {

class Service {
 public:
  struct Options {
    std::string cache_dir = ".stgsim-cache";
    /// Simulation concurrency: executor permits AND per-campaign job-pool
    /// width. 0 = one permit per request (unbounded).
    int jobs = 2;
    /// Admission cap on simultaneously-active run/campaign requests.
    int max_active_requests = 16;
    /// Per-client in-flight request budget.
    int max_inflight_per_client = 4;
    /// When > 0: clamp single-run requests' host wall-clock budget
    /// (RunConfig::max_host_seconds watchdog) to this many seconds.
    double max_run_host_seconds = 0.0;
    bool with_metrics = true;
  };

  using Emit = std::function<void(const json::Value& frame)>;

  explicit Service(Options options);

  /// Dispatches one request, emitting progress frames (when req.stream)
  /// and exactly one terminal frame (event "result" or "error"). Never
  /// throws: every failure becomes an error frame carrying the shared
  /// structured-error envelope. Thread-safe; blocks until the request
  /// completes.
  void handle(const Request& req, const Emit& emit);

  /// Parses `body` as a request envelope and dispatches it. Parse errors
  /// emit an error frame too.
  void handle_text(const std::string& body, const Emit& emit);

  /// Stops admitting run/campaign work ("serve.draining" rejections);
  /// in-flight requests finish normally.
  void begin_drain();
  bool draining() const;
  /// True once a shutdown request has been served (after begin_drain).
  bool shutdown_requested() const;
  /// Blocks until no run/campaign request is active.
  void wait_idle();

  /// Operator surfaces (also reachable via status/metrics requests).
  json::Value status_json() const;
  obs::MetricsSnapshot metrics_snapshot() const;

  campaign::Executor& executor() { return executor_; }
  const Options& options() const { return options_; }

 private:
  struct Admission;  // RAII active-count ticket

  void handle_run(const Request& req, const Emit& emit);
  void handle_campaign(const Request& req, const Emit& emit);

  Options options_;
  campaign::Executor executor_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  bool draining_ = false;
  bool shutdown_requested_ = false;
  int active_ = 0;
  std::map<std::string, int> active_by_client_;

  // Monotonic service counters (metrics_snapshot publishes them).
  std::uint64_t requests_total_ = 0;
  std::uint64_t runs_served_ = 0;
  std::uint64_t campaigns_served_ = 0;
  std::uint64_t errors_emitted_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_client_budget_ = 0;
  std::map<std::string, std::uint64_t> rejections_by_client_;
};

}  // namespace stgsim::serve
