#include "serve/wire.hpp"

#include <utility>

#include "support/errors.hpp"

namespace stgsim::serve {

const std::vector<std::string>& published_protos() {
  static const std::vector<std::string> kProtos = {"stgsim-serve-1"};
  return kProtos;
}

bool proto_supported(const std::string& name) {
  for (const std::string& p : published_protos()) {
    if (p == name) return true;
  }
  return false;
}

const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kRun: return "run";
    case RequestKind::kCampaign: return "campaign";
    case RequestKind::kStatus: return "status";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kShutdown: return "shutdown";
  }
  return "?";
}

namespace {

RequestKind parse_kind(const std::string& name) {
  for (const RequestKind k :
       {RequestKind::kRun, RequestKind::kCampaign, RequestKind::kStatus,
        RequestKind::kMetrics, RequestKind::kShutdown}) {
    if (name == request_kind_name(k)) return k;
  }
  json::Value detail = json::Value::object();
  json::Value kinds = json::Value::array();
  for (const RequestKind k :
       {RequestKind::kRun, RequestKind::kCampaign, RequestKind::kStatus,
        RequestKind::kMetrics, RequestKind::kShutdown}) {
    kinds.push_back(std::string(request_kind_name(k)));
  }
  detail.set("supported", std::move(kinds));
  throw errors::StructuredError("serve.unknown_kind", errors::kCategoryUsage,
                                "unknown request kind '" + name + "'",
                                std::move(detail));
}

}  // namespace

Request request_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw errors::StructuredError("serve.malformed_request",
                                  errors::kCategoryUsage,
                                  "request must be a JSON object");
  }
  const json::Value* proto = doc.find("proto");
  if (proto == nullptr || !proto->is_string()) {
    throw errors::StructuredError(
        "serve.missing_proto", errors::kCategoryUsage,
        "request is missing the required \"proto\" version tag");
  }
  if (!proto_supported(proto->as_string())) {
    json::Value detail = json::Value::object();
    detail.set("requested", proto->as_string());
    json::Value supported = json::Value::array();
    for (const std::string& p : published_protos()) supported.push_back(p);
    detail.set("supported", std::move(supported));
    throw errors::StructuredError(
        "serve.unsupported_proto", errors::kCategoryUsage,
        "unsupported wire protocol '" + proto->as_string() +
            "' (this daemon speaks up to " + kServeProto + ")",
        std::move(detail));
  }

  Request req;
  bool have_kind = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "proto") {
      continue;
    } else if (key == "kind") {
      req.kind = parse_kind(value.as_string());
      have_kind = true;
    } else if (key == "client") {
      req.client = value.as_string();
      if (req.client.empty()) req.client = "anon";
    } else if (key == "stream") {
      req.stream = value.as_bool();
    } else if (key == "payload") {
      req.payload = value;
    } else if (key == "retry_failed") {
      req.retry_failed = value.as_bool();
    } else {
      throw errors::StructuredError(
          "serve.unknown_request_key", errors::kCategoryUsage,
          "unknown request key '" + key + "'");
    }
  }
  if (!have_kind) {
    throw errors::StructuredError("serve.missing_kind", errors::kCategoryUsage,
                                  "request is missing \"kind\"");
  }
  const bool needs_payload =
      req.kind == RequestKind::kRun || req.kind == RequestKind::kCampaign;
  if (needs_payload && !req.payload.is_object()) {
    throw errors::StructuredError(
        "serve.missing_payload", errors::kCategoryUsage,
        std::string("a \"") + request_kind_name(req.kind) +
            "\" request needs an object \"payload\"");
  }
  return req;
}

json::Value request_to_json(const Request& req) {
  json::Value doc = json::Value::object();
  doc.set("proto", kServeProto);
  doc.set("kind", request_kind_name(req.kind));
  if (req.client != "anon") doc.set("client", req.client);
  if (req.stream) doc.set("stream", true);
  if (!req.payload.is_null()) doc.set("payload", req.payload);
  if (req.retry_failed) doc.set("retry_failed", true);
  return doc;
}

json::Value frame(const std::string& event) {
  json::Value f = json::Value::object();
  f.set("proto", kServeProto);
  f.set("event", event);
  return f;
}

json::Value error_frame(const json::Value& envelope) {
  json::Value f = frame("error");
  // The envelope is {"error": {...}}; lift the inner object so the frame
  // reads {"event":"error","error":{api,category,code,...}} and the inner
  // object stays byte-identical to the CLI's --json-errors output.
  if (const json::Value* inner = envelope.find("error")) {
    f.set("error", *inner);
  } else {
    f.set("error", envelope);
  }
  return f;
}

namespace {

json::Value schema_type(const char* type, const char* description) {
  json::Value v = json::Value::object();
  v.set("type", type);
  v.set("description", description);
  return v;
}

}  // namespace

json::Value request_schema_json() {
  json::Value s = json::Value::object();
  s.set("$id", std::string(kServeProto) + "/request");
  s.set("title", "stgsim serve request envelope");
  s.set("type", "object");

  json::Value props = json::Value::object();
  json::Value proto = json::Value::object();
  proto.set("type", "string");
  json::Value protos = json::Value::array();
  for (const std::string& p : published_protos()) protos.push_back(p);
  proto.set("enum", std::move(protos));
  props.set("proto", std::move(proto));

  json::Value kind = json::Value::object();
  kind.set("type", "string");
  json::Value kinds = json::Value::array();
  for (const RequestKind k :
       {RequestKind::kRun, RequestKind::kCampaign, RequestKind::kStatus,
        RequestKind::kMetrics, RequestKind::kShutdown}) {
    kinds.push_back(std::string(request_kind_name(k)));
  }
  kind.set("enum", std::move(kinds));
  props.set("kind", std::move(kind));

  props.set("client", schema_type("string", "admission-accounting identity"));
  props.set("stream", schema_type("boolean", "NDJSON progress frames"));
  json::Value payload = json::Value::object();
  payload.set("type", "object");
  payload.set("description",
              "RunSpec document (kind=run, see <version>/run-spec) or "
              "campaign scenario document (kind=campaign)");
  props.set("payload", std::move(payload));
  props.set("retry_failed",
            schema_type("boolean", "re-execute cached non-ok outcomes"));
  s.set("properties", std::move(props));

  json::Value required = json::Value::array();
  required.push_back(std::string("proto"));
  required.push_back(std::string("kind"));
  s.set("required", std::move(required));
  s.set("additionalProperties", false);
  return s;
}

json::Value frame_schema_json() {
  json::Value s = json::Value::object();
  s.set("$id", std::string(kServeProto) + "/frame");
  s.set("title", "stgsim serve response frame");
  s.set("type", "object");

  json::Value props = json::Value::object();
  props.set("proto", schema_type("string", "wire protocol version"));
  json::Value event = json::Value::object();
  event.set("type", "string");
  json::Value events = json::Value::array();
  for (const char* e :
       {"accepted", "calibrating", "run_done", "result", "error"}) {
    events.push_back(std::string(e));
  }
  event.set("enum", std::move(events));
  props.set("event", std::move(event));
  json::Value error = json::Value::object();
  error.set("type", "object");
  error.set("description",
            "structured-error envelope body (see stgsim-error-1), present "
            "on event=error");
  props.set("error", std::move(error));
  s.set("properties", std::move(props));

  json::Value required = json::Value::array();
  required.push_back(std::string("event"));
  required.push_back(std::string("proto"));
  s.set("required", std::move(required));
  // Frames grow additive per-event fields (result payloads, run_done
  // progress counters) — deliberately open.
  s.set("additionalProperties", true);
  return s;
}

}  // namespace stgsim::serve
