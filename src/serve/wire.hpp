// The serve daemon's versioned wire protocol ("stgsim-serve-1").
//
// A request is one JSON object:
//
//   {"proto": "stgsim-serve-1",          // required; unknown -> rejected
//    "kind":  "run" | "campaign" | "status" | "metrics" | "shutdown",
//    "client": "ci-warm",                // admission-accounting identity
//    "stream": true,                     // NDJSON progress frames?
//    "payload": {...}}                   // RunSpec / scenario document
//
// The payload reuses the *published* RunSpec / scenario schemas verbatim —
// the daemon does not invent a second way to describe a run. Responses are
// "frames": JSON objects with an "event" discriminator ("accepted",
// "calibrating", "run_done", "result", "error"). A non-streaming exchange
// returns exactly one frame (result or error); a streaming exchange
// returns newline-delimited frames, close-terminated, ending with result
// or error. Error frames embed the shared structured-error envelope
// (support/errors.hpp) unchanged, so a daemon rejection and a CLI
// --json-errors failure are byte-for-byte the same object.
//
// Versioning policy matches the RunSpec schema: additive fields may appear
// within a proto version; anything shape-breaking bumps kServeProto, and a
// request naming an unknown proto is rejected with a structured error
// listing the supported set (never best-effort parsed).
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace stgsim::serve {

inline constexpr const char kServeProto[] = "stgsim-serve-1";

/// Protocol versions this daemon speaks, oldest first; the last entry is
/// always kServeProto.
const std::vector<std::string>& published_protos();
bool proto_supported(const std::string& name);

enum class RequestKind { kRun, kCampaign, kStatus, kMetrics, kShutdown };

const char* request_kind_name(RequestKind k);

struct Request {
  RequestKind kind = RequestKind::kStatus;
  /// Admission-accounting identity; defaults to "anon". Per-client
  /// in-flight budgets are keyed by it.
  std::string client = "anon";
  /// Stream progress frames (NDJSON) instead of one result frame.
  bool stream = false;
  /// RunSpec document (kind=run) or scenario document (kind=campaign);
  /// null otherwise. Optional request knobs ("retry_failed") ride beside
  /// it in the envelope, not inside the payload.
  json::Value payload;
  /// kind=run/campaign: re-execute cached outcomes whose status != ok.
  bool retry_failed = false;
};

/// Parses a request envelope. Throws errors::StructuredError for an
/// unknown proto ("serve.unsupported_proto"), unknown kind, malformed
/// envelope, or unknown envelope keys — payload validation happens later,
/// at dispatch, so envelope errors are distinguishable from spec errors.
Request request_from_json(const json::Value& doc);
json::Value request_to_json(const Request& req);

/// Frame builders. Every frame carries {"proto": kServeProto, "event": e}.
json::Value frame(const std::string& event);
json::Value error_frame(const json::Value& envelope);

/// JSON Schemas for the request envelope and response frames, printed by
/// `stgsim schema`. Ids: "stgsim-serve-1/request", "stgsim-serve-1/frame".
json::Value request_schema_json();
json::Value frame_schema_json();

}  // namespace stgsim::serve
