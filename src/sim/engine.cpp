#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "sim/worker_pool.hpp"

namespace stgsim::simk {

namespace {

thread_local int g_current_worker = 0;

/// The process whose fiber this thread is currently executing (null in
/// scheduler context). Used to assert a rank never rolls itself back.
thread_local void* g_current_proc = nullptr;

double steady_now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by this thread. Slice durations use this rather than
/// wall time so preemption by other host processes cannot poison the
/// recorded trace (a slice on a dedicated parallel host would not be
/// preempted).
double thread_cpu_sec() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::~Process() {
  // Unconsumed messages (legal at exit, like unmatched MPI sends) go back
  // to the engine's arena; the arena outlives procs_ by declaration order.
  if (engine_ == nullptr) return;
  for (auto& ch : channels_) {
    MsgNode* n = ch.head;
    while (n != nullptr) {
      MsgNode* next = n->next;
      engine_->msg_arena_.recycle(n);
      n = next;
    }
    ch.head = ch.tail = nullptr;
  }
}

int Process::world_size() const { return engine_->config().num_processes; }

MemoryTracker& Process::memory() { return engine_->memory(); }

PayloadBuf Process::make_payload(const void* data, std::size_t n) {
  return engine_->payload_pool_.make(data, n);
}

void Process::send(Message msg) {
  STGSIM_DCHECK(msg.src == rank_);
  STGSIM_DCHECK(msg.dst >= 0 && msg.dst < world_size());
  STGSIM_DCHECK(msg.arrival >= msg.sent_at);
  msg.seq = next_seq_for(msg.dst);
  if (engine_->config().record_host_trace) {
    msg.producer_slice = current_slice_;
    msg.producer_offset_sec = thread_cpu_sec() - slice_begin_sec_;
  }
  if (engine_->observer_ != nullptr) engine_->observer_->on_send(msg);
  if (engine_->config_.optimistic) {
    const std::uint64_t ord = opt_.send_ordinal++;
    if (ord < opt_.suppress_below) {
      // Coast-forward replay of a rolled-back prefix: this send was
      // already delivered (and logged) by the original execution, so
      // re-issuing it would duplicate the message. Verify the replay
      // reproduces the log, then drop it. Ordinals below send_base were
      // fossil-collected (committed past GVT) and are dropped unchecked.
      if (ord >= opt_.send_base) {
        const SendRecord& sr =
            opt_.sends[static_cast<std::size_t>(ord - opt_.send_base)];
        STGSIM_CHECK(sr.dst == msg.dst && sr.seq == msg.seq)
            << "optimistic replay diverged on rank " << rank_ << ": send #"
            << ord << " went to " << msg.dst << " seq " << msg.seq
            << ", log has dst " << sr.dst << " seq " << sr.seq;
      }
      return;
    }
    opt_.sends.push_back(
        SendRecord{msg.dst, msg.seq, msg.sent_at, msg.arrival});
  }
  engine_->deliver(std::move(msg));
}

bool Process::try_match(const MatchSpec& spec, Message* out) {
  if (engine_->config_.optimistic && opt_.replaying()) {
    // Rollback replay: consumptions come from the log, not the inbox
    // (saw_wildcard_recv_ was already set by the original execution).
    return engine_->opt_feed_replay(*this, spec, out);
  }
  auto take = [&](Channel& ch, MsgNode* node, MsgNode* prev) {
    if (prev != nullptr) {
      prev->next = node->next;
    } else {
      ch.head = node->next;
    }
    if (ch.tail == node) ch.tail = prev;
    --inbox_size_;
    *out = engine_->msg_arena_.release(node);
    if (engine_->config_.optimistic) {
      // Consumption log: the replay feed and the anti-message lookup both
      // need the message back after the fiber has destroyed its copy.
      // clone_message shares the payload (refcount bump, no byte copy).
      ConsumedEntry e;
      e.msg = engine_->clone_message(*out);
      e.sends_before = opt_.send_ordinal;
      engine_->opt_log_charge(*this, e.msg);
      opt_.consumed.push_back(std::move(e));
      engine_->opt_note_consume(*this);
    }
    if (engine_->config().record_host_trace) {
      // Consuming a message is a dependency point: end the current slice
      // here and begin a new one gated on the message's production point.
      // (On a parallel host this is exactly where the process could have
      // had to block, letting its worker run other processes meanwhile.)
      engine_->split_slice(*this);
      engine_->trace_[current_slice_].deps.push_back(
          {out->producer_slice, out->producer_offset_sec, out->src});
    }
  };

  // Probe accounting for the observer: one local increment per inspected
  // node, reported once per attempt (never per node).
  std::uint64_t probes = 0;
  auto report = [&](bool hit) {
    if (engine_->observer_ != nullptr) {
      engine_->observer_->on_match(rank_, probes, hit);
    }
    return hit;
  };

  if (spec.src != MatchSpec::kAnySource && spec.any_of == nullptr) {
    Channel* ch = find_channel(spec.src);
    if (ch == nullptr) return report(false);
    MsgNode* prev = nullptr;
    for (MsgNode* n = ch->head; n != nullptr; prev = n, n = n->next) {
      ++probes;
      if (spec.accepts(n->value)) {
        take(*ch, n, prev);
        return report(true);
      }
    }
    return report(false);
  }

  // Wildcard: per MPI, messages from one source are matched in send order;
  // across sources we pick the earliest arrival (ties by source id) among
  // each channel's first acceptable message. The explicit tie-break makes
  // channel iteration order irrelevant.
  engine_->saw_wildcard_recv_.store(true, std::memory_order_relaxed);
  Channel* best_ch = nullptr;
  MsgNode* best_node = nullptr;
  MsgNode* best_prev = nullptr;
  VTime best_arrival = kVTimeNever;
  int best_src = -1;
  for (auto& ch : channels_) {
    MsgNode* prev = nullptr;
    for (MsgNode* n = ch.head; n != nullptr; prev = n, n = n->next) {
      ++probes;
      if (spec.accepts(n->value)) {
        if (n->value.arrival < best_arrival ||
            (n->value.arrival == best_arrival && ch.src < best_src)) {
          best_ch = &ch;
          best_node = n;
          best_prev = prev;
          best_arrival = n->value.arrival;
          best_src = ch.src;
        }
        break;  // only the first acceptable message per channel competes
      }
    }
  }
  if (best_ch == nullptr) return report(false);
  take(*best_ch, best_node, best_prev);
  return report(true);
}

bool Process::peek_match(const MatchSpec& spec, VTime* arrival) const {
  if (engine_->config_.optimistic && opt_.replaying()) {
    // Replay: probes must see what the original execution saw — the next
    // logged consumption — not the inbox (which holds messages that were
    // unconsumed at rollback, possibly matching a different request).
    const Message& m = opt_.entry(opt_.replay_next).msg;
    if (!spec.accepts(m)) return false;
    if (arrival != nullptr) *arrival = m.arrival;
    return true;
  }
  VTime best = kVTimeNever;
  for (const auto& ch : channels_) {
    if (spec.src != MatchSpec::kAnySource && spec.src != ch.src) continue;
    for (const MsgNode* n = ch.head; n != nullptr; n = n->next) {
      if (spec.accepts(n->value)) {
        best = std::min(best, n->value.arrival);
        break;  // send order: only the first acceptable per channel
      }
    }
  }
  if (best == kVTimeNever) return false;
  if (arrival != nullptr) *arrival = best;
  return true;
}

Message Process::blocking_match(const MatchSpec& spec) {
  Message out;
  if (engine_->config_.optimistic) {
    // Optimistic mode: commit on sight. A wildcard commit is speculative —
    // record it so a straggler that would have won the (arrival, src)
    // choice triggers rollback (the conservative safety bound, enforced
    // after the fact). The loop re-probes after every wake: the waking
    // message may have been annihilated by an anti-message before this
    // fiber actually ran.
    for (;;) {
      const bool fed = opt_.replaying();
      if (try_match(spec, &out)) {
        if (!fed && spec.is_wildcard()) {
          engine_->opt_record_wildcard(*this, spec, out);
        }
        return out;
      }
      blocked_ = true;
      waiting_on_ = &spec;
      if (engine_->observer_ != nullptr) {
        engine_->observer_->on_block(rank_, clock_, spec);
      }
      Fiber::yield_to_scheduler();
      if (engine_->aborting_ || opt_.rollback_abort) throw FiberAborted{};
    }
  }
  if (!spec.is_wildcard()) {
    if (try_match(spec, &out)) return out;
    blocked_ = true;
    waiting_on_ = &spec;
  } else {
    // A wildcard receive may only commit when no slower-clocked process
    // can still produce an earlier-arriving match. If the best queued
    // candidate is not yet bound-safe (or we are inside a threaded round,
    // where the bound cannot be evaluated), block and park for promotion.
    VTime arrival = kVTimeNever;
    if (peek_match(spec, &arrival) &&
        engine_->wildcard_commit_safe(*this, arrival)) {
      STGSIM_CHECK(try_match(spec, &out));
      return out;
    }
    blocked_ = true;
    waiting_on_ = &spec;
    if (arrival != kVTimeNever) engine_->park_wildcard(*this);
  }
  if (engine_->observer_ != nullptr) {
    engine_->observer_->on_block(rank_, clock_, spec);
  }
  Fiber::yield_to_scheduler();
  if (engine_->aborting_) throw FiberAborted{};
  // The engine only wakes us when a match is available.
  STGSIM_CHECK(try_match(spec, &out))
      << "process " << rank_ << " woke without a matching message";
  return out;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config) : config_(config) {
  STGSIM_CHECK_GT(config_.num_processes, 0);
  STGSIM_CHECK_GT(config_.host_workers, 0);
  memory_.set_cap(config_.memory_cap_bytes);
  observer_ = config_.observer;
  oracle_ = config_.oracle;
  mc_active_ =
      oracle_ != nullptr && !(config_.use_threads && config_.host_workers > 1);
  if (mc_active_) {
    STGSIM_CHECK(!config_.record_host_trace)
        << "host-trace recording is meaningless under MC schedule control";
  }
  if (config_.use_threads) {
    STGSIM_CHECK(!config_.record_host_trace)
        << "host-trace recording requires the sequential scheduler";
  }
  if (config_.optimistic) {
    STGSIM_CHECK(!config_.record_host_trace)
        << "host-trace recording requires the conservative sequential "
           "scheduler (rollback replay would double-count slices)";
    STGSIM_CHECK(!config_.unsafe_wildcard_commit)
        << "unsafe-wildcard injection targets the conservative safety "
           "bound; use unsafe_commit_before_gvt against the optimistic "
           "scheduler";
    if (config_.gvt_interval == 0) config_.gvt_interval = 256;
  } else {
    STGSIM_CHECK(!config_.unsafe_commit_before_gvt)
        << "commit-before-gvt injection requires the optimistic scheduler";
  }
}

Engine::~Engine() = default;

VTime Engine::wildcard_safe_bound(VTime min_latency, int exclude_rank) const {
  VTime lo = kVTimeNever;
  for (const auto& p : procs_) {
    if (p->finished_ || p->rank_ == exclude_rank) continue;
    lo = std::min(lo, p->clock_);
  }
  if (lo == kVTimeNever) return kVTimeNever;
  return lo + min_latency;
}

bool Engine::wildcard_commit_safe(const Process& p, VTime arrival) const {
  if (config_.optimistic) {
    // Optimistic mode never uses the conservative bound: cross-source
    // choices must flow through blocking_match so the commit is recorded
    // for straggler detection (the smpi waitany fast path commits only
    // single-candidate, fixed-source completions, which are not choices).
    return false;
  }
  if (config_.unsafe_wildcard_commit) {
    // Test-only fault injection: commit on sight, reproducing the racy
    // pre-safety-bound behavior for the schedule checker to rediscover.
    return true;
  }
  if (threaded_phase_) return false;  // clocks race during a round
  if (mc_active_) {
    // MC mode: never commit mid-slice. Wildcards park and are promoted
    // only when every in-flight lane is drained, so the candidate set the
    // promotion scan evaluates is final (mirrors the threaded barrier).
    return false;
  }
  const VTime bound = wildcard_safe_bound(
      wildcard_min_latency_.load(std::memory_order_relaxed), p.rank_);
  // kVTimeNever: no other unfinished process exists, so the queued message
  // set is final and any match is safe.
  return bound == kVTimeNever || arrival < bound;
}

double Engine::now_host_sec() const { return steady_now_sec() - host_t0_sec_; }

void Engine::deliver(Message&& msg, bool redelivery) {
  Process& dst = *procs_[static_cast<std::size_t>(msg.dst)];

  if (threaded_phase_) {
    const int w = g_current_worker;
    if (dst.home_worker_ != w) {
      // Cross-partition. In-window messages ride the SPSC mailbox so the
      // owning worker can consume them this round; the rest wait for the
      // end-of-round barrier. Once one message on a (sender worker,
      // destination worker) lane spills to the outbox, every later
      // message on that lane must follow it this round — the barrier
      // flushes outboxes after mailboxes, and per-(src,dst) channel FIFO
      // must survive the split. (Payload buffers allocated on this worker
      // travel with the message; the pool is spinlocked.)
      WorkerStat& ws = worker_stats_[static_cast<std::size_t>(w)];
      const std::size_t lane =
          static_cast<std::size_t>(w) *
              static_cast<std::size_t>(config_.host_workers) +
          static_cast<std::size_t>(dst.home_worker_);
      if (config_.optimistic) {
        // Asynchronous GVT: record the smallest arrival this worker has
        // put in transit since the last barrier (monotone min, reset at
        // the barrier), so mid-round estimates account for messages the
        // destination has not drained yet.
        std::atomic<VTime>& om = opt_out_min_[static_cast<std::size_t>(w)];
        VTime cur = om.load(std::memory_order_relaxed);
        while (msg.arrival < cur &&
               !om.compare_exchange_weak(cur, msg.arrival,
                                         std::memory_order_relaxed)) {
        }
      }
      if (spill_epoch_[lane] != round_epoch_ &&
          msg.arrival <= window_bound_ &&
          mailboxes_[lane]->try_push(std::move(msg))) {
        ++ws.mailbox;
      } else {
        spill_epoch_[lane] = round_epoch_;
        ++ws.barrier;
        round_outboxes_[static_cast<std::size_t>(w)].push_back(
            std::move(msg));
      }
      return;
    }
    if (!redelivery) ++worker_stats_[static_cast<std::size_t>(w)].intra;
  }

  if (mc_active_) {
    // MC mode: the message becomes *in flight*. Handing it to the inbox is
    // a separate schedulable step so the oracle can explore delivery
    // orders across lanes (per-lane FIFO is preserved by the deque).
    InflightLane& lane = inflight_lane(msg.src, msg.dst);
    lane.q.push_back(std::move(msg));
    ++inflight_total_;
    return;
  }

  deliver_now(std::move(msg));
}

Engine::InflightLane& Engine::inflight_lane(int src, int dst) {
  auto it = inflight_.begin();
  for (; it != inflight_.end(); ++it) {
    if (it->src == src && it->dst == dst) return *it;
    if (it->src > src || (it->src == src && it->dst > dst)) break;
  }
  it = inflight_.insert(it, InflightLane(src, dst));
  return *it;
}

void Engine::deliver_now(Message&& msg) {
  Process& dst = *procs_[static_cast<std::size_t>(msg.dst)];

  if (config_.optimistic && msg.anti) {
    opt_apply_anti(dst, msg);
    opt_flush_antis();
    return;
  }

  MsgNode* node;
  if (config_.optimistic) {
    // Seq-sorted insert, not tail-append: a rollback at the *receiver* can
    // requeue higher-seq messages, after which a re-sent (post-replay)
    // message from the same source arrives with a lower seq.
    node = opt_insert_sorted(dst, std::move(msg));
  } else {
    Process::Channel& ch = dst.channel(msg.src);
    STGSIM_DCHECK(ch.tail == nullptr || ch.tail->value.seq < msg.seq)
        << "FIFO violation on channel " << msg.src << "->" << msg.dst;
    node = msg_arena_.acquire(std::move(msg));
    if (ch.tail != nullptr) {
      ch.tail->next = node;
    } else {
      ch.head = node;
    }
    ch.tail = node;
    ++dst.inbox_size_;
  }
  const std::uint64_t delivered = ++messages_delivered_;
  if (config_.max_messages > 0 && delivered > config_.max_messages) {
    if (threaded_phase_ && Fiber::current() == nullptr) {
      // Mailbox drain on a worker thread: raising here would tear down
      // fibers owned by other workers. Record the violation; every worker
      // sees has_error_ and ends its round, and the scheduler aborts at
      // the barrier.
      note_error(std::make_exception_ptr(BudgetExceededError(
          BudgetExceededError::Kind::kMessages,
          "message budget exceeded: " + std::to_string(delivered) +
              " messages delivered (cap " +
              std::to_string(config_.max_messages) + ")")));
    } else {
      raise_budget(BudgetExceededError::Kind::kMessages,
                   "message budget exceeded: " + std::to_string(delivered) +
                       " messages delivered (cap " +
                       std::to_string(config_.max_messages) + ")");
    }
  }

  if (config_.optimistic && opt_check_violation(dst, node)) {
    // The message landed in dst's past: opt_check_violation rolled dst
    // back (scheduling included) and the queued message will be matched
    // by the re-execution. Drain any cascade the rollback started.
    opt_flush_antis();
    return;
  }

  if (dst.blocked_) {
    // Wake only if the newly available message completes a match, so a
    // process never context-switches spuriously.
    const MatchSpec& spec = *dst.waiting_on_;
    const Message& m = node->value;
    bool can_match = false;
    if (spec.src == MatchSpec::kAnySource || spec.src == m.src ||
        spec.any_of != nullptr) {
      // The new message is last in its channel; it can only be matched if
      // no earlier message in the same channel also matches (that one
      // would have woken us already) — so testing the new message alone
      // is exact.
      can_match = spec.accepts(m);
    }
    if (can_match) {
      if (!config_.optimistic && spec.is_wildcard() &&
          (threaded_run_ || !wildcard_commit_safe(dst, m.arrival))) {
        // Conservative: a slower-clocked rank could still send an
        // earlier-arriving match (or, in a threaded round, we cannot
        // tell): defer the wakeup until the safety bound passes. If an
        // already-queued candidate has an even earlier arrival, it is
        // safe whenever this one is, and try_match picks it on resume.
        // (Optimistic mode never parks: it commits on sight and corrects
        // with rollback.)
        park_wildcard(dst);
        return;
      }
      wake_process(dst, m.arrival);
    }
  }
}

void Engine::wake_process(Process& p, VTime arrival) {
  p.blocked_ = false;
  p.waiting_on_ = nullptr;
  p.wildcard_parked_ = false;
  if (observer_ != nullptr) observer_->on_wake(p.rank_, p.clock_, arrival);
  if (threaded_run_) {
    // Local deliveries happen on the destination's own worker; flush
    // deliveries and promotions happen between rounds — both may touch
    // this list.
    worker_ready_[static_cast<std::size_t>(p.home_worker_)].push_back(
        p.rank_);
  } else {
    ready_.push_back(p.rank_);
  }
}

void Engine::park_wildcard(Process& p) {
  STGSIM_DCHECK(p.blocked_ && p.waiting_on_ != nullptr);
  if (p.wildcard_parked_) return;
  p.wildcard_parked_ = true;
  if (threaded_phase_) {
    worker_wildcard_pending_[static_cast<std::size_t>(g_current_worker)]
        .push_back(p.rank_);
  } else {
    wildcard_pending_.push_back(p.rank_);
  }
}

// ---------------------------------------------------------------------------
// Optimistic (Time Warp) mode. See DESIGN.md §15 for the protocol.
// ---------------------------------------------------------------------------

void Engine::attach_fresh_fiber(Process& p) {
  Process* raw = &p;
  p.fiber_ = std::make_unique<Fiber>(
      [this, raw] {
        try {
          body_(*raw);
        } catch (const FiberAborted&) {
          // Clean teardown: unwound by Engine::abort_run or a rollback.
        } catch (...) {
          note_error(std::current_exception());
        }
      },
      config_.fiber_stack_bytes);
  p.opt_.fresh = true;
}

Message Engine::clone_message(const Message& m) {
  Message c;
  c.src = m.src;
  c.dst = m.dst;
  c.tag = m.tag;
  c.kind = m.kind;
  c.anti = m.anti;
  c.sent_at = m.sent_at;
  c.arrival = m.arrival;
  c.seq = m.seq;
  c.aux = m.aux;
  c.wire_bytes = m.wire_bytes;
  // Refcount-share the payload instead of deep-cloning: payload bytes are
  // immutable after creation, so the log's copy and the receiver's copy
  // can alias the same pooled storage.
  c.payload = m.payload.share();
  return c;
}

Engine::WorkerStat& Engine::opt_stat() {
  return worker_stats_[threaded_run_
                           ? static_cast<std::size_t>(g_current_worker)
                           : 0];
}

bool Engine::opt_feed_replay(Process& p, const MatchSpec& spec,
                             Message* out) {
  OptState& o = p.opt_;
  const ConsumedEntry& e = o.entry(o.replay_next);
  STGSIM_CHECK(spec.accepts(e.msg))
      << "optimistic replay diverged on rank " << p.rank_ << ": receive #"
      << o.replay_next << " does not accept the logged message (src "
      << e.msg.src << " tag " << e.msg.tag << ")";
  *out = clone_message(e.msg);
  ++o.replay_next;
  ++opt_stat().replayed;
  opt_note_consume(p);
  if (observer_ != nullptr) observer_->on_match(p.rank_, 1, true);
  return true;
}

void Engine::opt_note_consume(Process& p) {
  OptState& o = p.opt_;
  ++o.consumes_since_rollback;
  const std::uint64_t iv = o.effective_interval;
  if (iv == 0) return;  // checkpointing disabled
  if (++o.since_checkpoint < iv) return;
  o.checkpoint_due = true;
  // Adaptive growth: after a long rollback-free stretch the restore points
  // are pure overhead — stretch the interval back out (capped at 8x the
  // configured value; rollback halves it again, see opt_rollback).
  if (config_.checkpoint_adaptive &&
      o.consumes_since_rollback >= 8 * iv &&
      iv < 8 * config_.checkpoint_interval) {
    o.effective_interval = std::min(iv * 2, 8 * config_.checkpoint_interval);
  }
}

std::size_t Engine::opt_entry_bytes(const Message& m) {
  return sizeof(ConsumedEntry) + m.payload.size();
}

void Engine::opt_log_charge(Process& p, const Message& m) {
  // Plain per-rank counter: a rank's log is only ever touched by its
  // owning worker (or the lone sequential thread). The global figure is
  // folded from the per-rank counters at GVT passes and at run end — see
  // opt_fold_log_bytes — so the per-message cost is one add instead of
  // two contended atomic RMWs. The reported peak is therefore sampled at
  // fold points, which is where the log is largest anyway (a fold runs
  // immediately before fossil collection prunes it).
  p.opt_.log_bytes += opt_entry_bytes(m);
}

void Engine::opt_log_release(Process& p, const Message& m) {
  const std::size_t n = opt_entry_bytes(m);
  STGSIM_DCHECK(p.opt_.log_bytes >= n);
  p.opt_.log_bytes -= n;
}

std::uint64_t Engine::opt_fold_log_bytes() {
  // Scheduler thread only (sequential drivers, or the threaded driver at
  // a barrier / before its own fossil sweep): workers are quiesced, so
  // plain reads of the per-rank counters and plain stores of the global
  // are race-free.
  std::uint64_t sum = 0;
  for (const auto& p : procs_) sum += p->opt_.log_bytes;
  opt_log_bytes_.store(sum, std::memory_order_relaxed);
  if (sum > opt_log_bytes_peak_.load(std::memory_order_relaxed)) {
    opt_log_bytes_peak_.store(sum, std::memory_order_relaxed);
  }
  return sum;
}

void Process::take_checkpoint(std::vector<std::uint8_t> app_blob) {
  engine_->opt_take_checkpoint(*this, std::move(app_blob));
}

void Engine::opt_take_checkpoint(Process& p, std::vector<std::uint8_t> blob) {
  OptState& o = p.opt_;
  STGSIM_DCHECK(config_.optimistic && o.checkpoint_due);
  Checkpoint cp;
  cp.cursor = o.cursor();
  // send_ordinal is absolute within every incarnation: a restored fiber
  // starts at its checkpoint's ordinal, a from-zero replay starts at 0, so
  // the running counter is the capture value in all cases (mid-replay
  // included).
  cp.send_ordinal = o.send_ordinal;
  cp.clock = p.clock_;
  cp.rng = p.rng_.state();
  cp.next_seq = p.next_seq_;
  cp.app_blob = std::move(blob);
  // Cursor-ordered by construction (the consume cursor is monotone within
  // one incarnation and rollback pops checkpoints past its target), but a
  // replaying incarnation may re-reach a cursor an older checkpoint
  // already covers; keep the log strictly increasing.
  while (!o.checkpoints.empty() && o.checkpoints.back().cursor >= cp.cursor) {
    o.checkpoints.pop_back();
  }
  o.checkpoints.push_back(std::move(cp));
  ++o.checkpoints_taken;
  o.since_checkpoint = 0;
  o.checkpoint_due = false;
}

void Engine::opt_record_wildcard(Process& p, const MatchSpec& spec,
                                 const Message& m) {
  if (config_.unsafe_commit_before_gvt) {
    // Injected fault: the commit is finalized on the spot, so no straggler
    // can ever correct it — the race `stgsim check` must rediscover.
    return;
  }
  WildcardRecord rec;
  if (spec.any_of != nullptr) {
    rec.alts.assign(spec.any_of, spec.any_of + spec.any_of_count);
    for (MatchSpec& a : rec.alts) {
      STGSIM_DCHECK(a.any_of == nullptr) << "nested waitany unions";
      a.any_of = nullptr;
    }
  } else {
    rec.spec = spec;
  }
  rec.arrival = m.arrival;
  rec.src = m.src;
  STGSIM_DCHECK(!p.opt_.consumed.empty());
  rec.consumed_index = p.opt_.consumed_base + p.opt_.consumed.size() - 1;
  p.opt_.records.push_back(std::move(rec));
}

bool Engine::opt_check_violation(Process& dst, const MsgNode* node) {
  if (config_.unsafe_commit_before_gvt) return false;
  OptState& o = dst.opt_;
  if (o.records.empty()) return false;
  const Message& m = node->value;
  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  std::uint64_t k = kNone;
  for (const WildcardRecord& rec : o.records) {
    // The commit rule is min (arrival, src) over each channel's first
    // acceptable message; m landed in the record's past iff it would have
    // won that comparison.
    if (!(m.arrival < rec.arrival ||
          (m.arrival == rec.arrival && m.src < rec.src))) {
      continue;
    }
    if (!rec.accepts(m)) continue;
    // Shadow check: if an earlier queued message in m's channel is also
    // acceptable, the commit scan would pick that one, not m — and it
    // already passed (or predates) this record's check.
    bool shadowed = false;
    for (const MsgNode* n = dst.find_channel(m.src)->head;
         n != nullptr && n != node; n = n->next) {
      if (rec.accepts(n->value)) {
        shadowed = true;
        break;
      }
    }
    if (shadowed) continue;
    if (k == kNone || rec.consumed_index < k) k = rec.consumed_index;
  }
  if (k == kNone) return false;
  opt_rollback(dst, k, /*drop_entry=*/false);
  return true;
}

void Engine::opt_apply_anti(Process& dst, const Message& anti) {
  STGSIM_DCHECK(anti.anti);
  // Still queued? Per-lane FIFO guarantees the anti arrived after its
  // positive counterpart, so the message is either in the inbox or in the
  // consumption log.
  if (Process::Channel* ch = dst.find_channel(anti.src)) {
    MsgNode* prev = nullptr;
    for (MsgNode* n = ch->head; n != nullptr; prev = n, n = n->next) {
      if (n->value.seq == anti.seq) {
        if (prev != nullptr) {
          prev->next = n->next;
        } else {
          ch->head = n->next;
        }
        if (ch->tail == n) ch->tail = prev;
        --dst.inbox_size_;
        msg_arena_.recycle(n);
        messages_delivered_.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      if (n->value.seq > anti.seq) break;  // channels stay seq-sorted
    }
  }
  // Retained log scan only: pruned entries are committed below GVT, and a
  // committed consumption can never be annihilated (its anti would have
  // had to be sent from a rollback below GVT).
  const auto& log = dst.opt_.consumed;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const Message& cm = log[i].msg;
    if (cm.src == anti.src && cm.seq == anti.seq) {
      messages_delivered_.fetch_sub(1, std::memory_order_relaxed);
      opt_rollback(dst, dst.opt_.consumed_base + static_cast<std::uint64_t>(i),
                   /*drop_entry=*/true);
      return;
    }
  }
  STGSIM_CHECK(false) << "anti-message " << anti.src << "->" << anti.dst
                      << " seq " << anti.seq
                      << " has no positive counterpart";
}

MsgNode* Engine::opt_insert_sorted(Process& p, Message&& m) {
  Process::Channel& ch = p.channel(m.src);
  // In-order arrival (the no-rollback common case) appends at the tail in
  // O(1) — same cost as the conservative channel plus one compare. Only a
  // receiver-side rollback requeue can put a higher-seq message ahead of
  // a re-sent lower-seq one, forcing the head scan.
  if (ch.tail == nullptr || ch.tail->value.seq < m.seq) {
    MsgNode* node = msg_arena_.acquire(std::move(m));
    if (ch.tail != nullptr) {
      ch.tail->next = node;
    } else {
      ch.head = node;
    }
    ch.tail = node;
    ++p.inbox_size_;
    return node;
  }
  MsgNode* prev = nullptr;
  MsgNode* n = ch.head;
  while (n != nullptr && n->value.seq < m.seq) {
    prev = n;
    n = n->next;
  }
  STGSIM_DCHECK(n == nullptr || n->value.seq != m.seq);
  MsgNode* node = msg_arena_.acquire(std::move(m));
  node->next = n;
  if (prev != nullptr) {
    prev->next = node;
  } else {
    ch.head = node;
  }
  if (n == nullptr) ch.tail = node;
  ++p.inbox_size_;
  return node;
}

void Engine::opt_make_ready(Process& p) {
  if (threaded_run_) {
    worker_ready_[static_cast<std::size_t>(p.home_worker_)].push_back(
        p.rank_);
  } else {
    ready_.push_back(p.rank_);
  }
}

void Engine::opt_rollback(Process& p, std::uint64_t k, bool drop_entry) {
  STGSIM_DCHECK(g_current_proc != static_cast<void*>(&p))
      << "rank " << p.rank_ << " cannot roll itself back mid-slice";
  OptState& o = p.opt_;
  STGSIM_CHECK(k >= o.consumed_base &&
               k < o.consumed_base + o.consumed.size())
      << "rollback target " << k << " outside retained log ["
      << o.consumed_base << ", "
      << o.consumed_base + o.consumed.size() << ") on rank " << p.rank_;
  {
    WorkerStat& ws = opt_stat();
    ++ws.rollbacks;
    const std::uint64_t depth = o.consumed_base + o.consumed.size() - k;
    int bucket = 0;
    while (bucket + 1 < WorkerStat::kDepthBuckets &&
           (std::uint64_t{1} << bucket) <= depth) {
      ++bucket;
    }
    if (depth == 0) bucket = 0;
    ++ws.depth_hist[bucket];
  }
  // Adaptive shrink: a rollback means up to effective_interval entries of
  // replay; frequent rollbacks favor closer restore points.
  if (config_.checkpoint_adaptive && o.effective_interval > 1) {
    o.effective_interval /= 2;
  }
  o.consumes_since_rollback = 0;

  // 1) Cancel speculative output: every send issued at or after the
  //    rolled-back consumption gets an anti-message. Queued (not sent
  //    inline) so an annihilation cascade unwinds iteratively; per-lane
  //    FIFO still puts each anti behind its positive and ahead of any
  //    post-replay re-send.
  const std::uint64_t s_k = o.entry(k).sends_before;
  STGSIM_CHECK(s_k >= o.send_base)
      << "rollback past the fossil-collected send horizon on rank "
      << p.rank_;
  const std::size_t keep = static_cast<std::size_t>(s_k - o.send_base);
  auto& queue = opt_anti_queues_[threaded_run_
                                     ? static_cast<std::size_t>(
                                           g_current_worker)
                                     : 0];
  for (std::size_t i = keep; i < o.sends.size(); ++i) {
    const SendRecord& sr = o.sends[i];
    Message a;
    a.src = p.rank_;
    a.dst = sr.dst;
    a.seq = sr.seq;
    a.anti = true;
    a.sent_at = sr.sent_at;
    a.arrival = sr.arrival;
    ++opt_stat().antis;
    queue.push_back(std::move(a));
  }
  o.sends.resize(keep);

  // 2) Un-consume: requeue every logged message from index k on (dropping
  //    entry k itself when it was annihilated by an anti). Reinserted in
  //    seq order per channel — rolled-back seqs can interleave with
  //    still-queued ones a wildcard receive skipped.
  const std::size_t k_rel = static_cast<std::size_t>(k - o.consumed_base);
  for (std::size_t i = o.consumed.size(); i-- > k_rel;) {
    ConsumedEntry& e = o.consumed[i];
    opt_log_release(p, e.msg);
    if (drop_entry && i == k_rel) continue;
    opt_insert_sorted(p, std::move(e.msg));
  }
  o.consumed.resize(k_rel);

  // 3) Speculative wildcard commits at or past the rollback point are
  //    gone; the re-execution re-decides them against the corrected inbox.
  o.records.erase(
      std::remove_if(o.records.begin(), o.records.end(),
                     [k](const WildcardRecord& r) {
                       return r.consumed_index >= k;
                     }),
      o.records.end());

  // 4) Reset execution state for coast-forward replay. Checkpoints past
  //    the rollback point capture state the rollback just discarded; pop
  //    them, then replay from the newest survivor (or from rank start
  //    while none exists yet — only possible before the first checkpoint,
  //    when consumed_base is still 0, so the full feed is retained).
  while (!o.checkpoints.empty() && o.checkpoints.back().cursor > k) {
    o.checkpoints.pop_back();
  }
  o.replay_limit = k;
  o.suppress_below = s_k;
  o.fossil_cursor = std::min(o.fossil_cursor, k);
  o.since_checkpoint = 0;
  o.checkpoint_due = false;
  p.watchdog_countdown_ = Process::kWatchdogStride;
  if (!o.checkpoints.empty()) {
    const Checkpoint& cp = o.checkpoints.back();
    o.replay_next = cp.cursor;
    o.send_ordinal = cp.send_ordinal;
    p.next_seq_ = cp.next_seq;
    p.clock_ = cp.clock;
    p.rng_.set_state(cp.rng);
    // Copy, don't alias: a checkpoint taken mid-replay may reallocate the
    // checkpoints vector while the blob is still being consumed.
    o.restore_blob = cp.app_blob;
    o.restore_armed = true;
  } else {
    STGSIM_CHECK(o.consumed_base == 0)
        << "rank " << p.rank_
        << ": log pruned without a checkpoint to replay from";
    o.replay_next = 0;
    o.send_ordinal = 0;
    o.restore_armed = false;
    o.restore_blob.clear();
    p.next_seq_.clear();
    p.clock_ = 0;
    p.rng_.reseed(o.rng_seed);
  }
  if (p.fiber_ != nullptr && p.fiber_->finished()) {
    attach_fresh_fiber(p);  // ran to completion; nothing to unwind
  } else if (!o.fresh) {
    // The speculative incarnation is suspended on its own stack; ucontext
    // switches only happen from scheduler context, so defer the unwind to
    // the next resume. (A second rollback before that just lands here
    // again.) A fresh fiber has never run and needs nothing.
    o.pending_unwind = true;
  }
  // The reset hook zeroes layered per-rank state (smpi stats, obs shard)
  // that a from-zero replay rebuilds; a checkpoint restore instead
  // overwrites that state from the blob, so the hook would only be
  // redundant work (the blob is applied before anything records).
  if (!o.restore_armed && rollback_reset_) rollback_reset_(p.rank_);

  // 5) Scheduling: make the rank runnable exactly once.
  const bool was_queued = !p.blocked_ && !p.finished_;
  if (p.finished_) {
    p.finished_ = false;
    opt_unfinished_delta_.fetch_add(1, std::memory_order_relaxed);
  }
  p.blocked_ = false;
  p.waiting_on_ = nullptr;
  p.wildcard_parked_ = false;
  if (!was_queued) opt_make_ready(p);
}

void Engine::opt_finish_unwind(Process& p) {
  OptState& o = p.opt_;
  o.pending_unwind = false;
  o.rollback_abort = true;
  p.fiber_->resume();  // throws FiberAborted at the suspended yield point
  STGSIM_CHECK(p.fiber_->finished())
      << "rolled-back fiber on rank " << p.rank_ << " did not unwind";
  o.rollback_abort = false;
  attach_fresh_fiber(p);
}

void Engine::opt_flush_antis() {
  const std::size_t w =
      threaded_run_ ? static_cast<std::size_t>(g_current_worker) : 0;
  if (opt_flushing_[w]) return;  // already draining further up the stack
  auto& q = opt_anti_queues_[w];
  if (q.empty()) return;
  opt_flushing_[w] = 1;
  // Index-based walk: applying an anti can trigger a cascading rollback
  // that appends more antis (and reallocates q).
  std::size_t i = 0;
  while (i < q.size()) {
    Message a = std::move(q[i++]);
    deliver(std::move(a));
  }
  q.clear();
  opt_flushing_[w] = 0;
}

Engine::OptDebug Engine::opt_debug(int rank) const {
  const OptState& o = procs_[static_cast<std::size_t>(rank)]->opt_;
  OptDebug d;
  d.consumed_base = o.consumed_base;
  d.consumed_size = o.consumed.size();
  d.fossil_cursor = o.fossil_cursor;
  d.log_bytes = o.log_bytes;
  d.checkpoint_cursors.reserve(o.checkpoints.size());
  for (const Checkpoint& cp : o.checkpoints) {
    d.checkpoint_cursors.push_back(cp.cursor);
  }
  return d;
}

bool Engine::opt_throttled(const Process& p) const {
  const VTime w = config_.speculation_window;
  if (w <= 0 || mc_active_) return false;
  if (opt_throttle_override_.load(std::memory_order_relaxed)) return false;
  const VTime g = gvt_.load(std::memory_order_relaxed);
  if (g > kVTimeNever - w) return false;  // saturate instead of overflow
  return p.clock_ > g + w;
}

void Engine::opt_retune_gvt() {
  if (config_.gvt_adaptive) {
    const std::uint64_t cur =
        opt_log_bytes_.load(std::memory_order_relaxed);
    // Log pressure rising past 1 MiB: fossil-collect more aggressively.
    // Pressure flat or falling: back off toward (and past) the configured
    // cadence, up to 4x — GVT passes are O(P) and pure overhead when the
    // logs stay small. Inputs are virtual-state byte counts, not host
    // timing, so the cadence (and the run) stays deterministic.
    if (cur > opt_log_bytes_last_pass_ && cur > opt_gvt_pressure_bytes_) {
      opt_gvt_interval_ = std::max<std::uint64_t>(16, opt_gvt_interval_ / 2);
    } else if (opt_gvt_interval_ < 4 * opt_gvt_base_) {
      opt_gvt_interval_ =
          std::min(4 * opt_gvt_base_,
                   opt_gvt_interval_ + opt_gvt_interval_ / 4 + 1);
    }
    opt_log_bytes_last_pass_ = cur;
  }
  opt_gvt_countdown_ = opt_gvt_interval_;
}

void Engine::opt_gvt_pass() {
  // Capture the retained-log high-water mark before fossil collection
  // below shrinks it; the retune that follows the pass reads the fold.
  opt_fold_log_bytes();
  VTime g = kVTimeNever;
  for (const auto& p : procs_) {
    if (!p->finished_) g = std::min(g, p->clock_);
  }
  // MC mode: messages parked in in-flight lanes (including antis) are
  // in transit and bound future deliveries.
  for (const auto& lane : inflight_) {
    for (const Message& m : lane.q) g = std::min(g, m.arrival);
  }
  if (g == kVTimeNever) return;
  if (g <= gvt_.load(std::memory_order_relaxed)) return;
  gvt_.store(g, std::memory_order_relaxed);
  gvt_passes_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& p : procs_) opt_fossil_rank(*p, g);
}

void Engine::opt_fossil_rank(Process& p, VTime g) {
  OptState& o = p.opt_;
  if (!o.records.empty()) {
    // A record with arrival < g is final: any message still to come has
    // timestamp >= g and can no longer win the (arrival, src) choice.
    auto it = std::remove_if(
        o.records.begin(), o.records.end(),
        [g](const WildcardRecord& r) { return r.arrival < g; });
    opt_stat().fossil += static_cast<std::uint64_t>(o.records.end() - it);
    o.records.erase(it, o.records.end());
  }
  // Send-log pruning. Every future rollback targets a consumed entry with
  // arrival >= g (violations target live records; anti-cancellations
  // target entries whose anti — in transit or yet to be sent — has
  // arrival >= g), so sends issued before the first such entry can never
  // need an anti-message. Skip ranks mid-replay: their send_ordinal is
  // transiently rewound.
  if (o.replaying() || o.pending_unwind) return;
  const std::uint64_t log_end = o.consumed_base + o.consumed.size();
  while (o.fossil_cursor < log_end &&
         o.entry(o.fossil_cursor).msg.arrival < g) {
    ++o.fossil_cursor;
  }
  const std::uint64_t keep_from = o.fossil_cursor < log_end
                                      ? o.entry(o.fossil_cursor).sends_before
                                      : o.send_ordinal;
  if (keep_from > o.send_base) {
    const std::size_t drop =
        static_cast<std::size_t>(keep_from - o.send_base);
    STGSIM_DCHECK(drop <= o.sends.size());
    o.sends.erase(o.sends.begin(),
                  o.sends.begin() + static_cast<std::ptrdiff_t>(drop));
    o.send_base = keep_from;
  }
  // Consumption-log pruning, gated on checkpoints. Every future rollback
  // target k satisfies k >= fossil_cursor, and the restore point for k is
  // the newest checkpoint with cursor <= k — which is at or after the
  // newest checkpoint with cursor <= fossil_cursor. Entries below *that*
  // checkpoint can therefore never be replayed again: free them (payload
  // refcounts drop with the entries) and advance consumed_base. Older
  // checkpoints are superseded at the same time. Peak retained log is
  // O(checkpoint interval + per-statement fan-in), not O(history).
  if (o.checkpoints.empty()) return;
  std::size_t ci = o.checkpoints.size();
  while (ci > 0 && o.checkpoints[ci - 1].cursor > o.fossil_cursor) --ci;
  if (ci == 0) return;  // no committed checkpoint yet
  const std::uint64_t new_base = o.checkpoints[ci - 1].cursor;
  if (ci > 1) {
    o.checkpoints.erase(o.checkpoints.begin(),
                        o.checkpoints.begin() +
                            static_cast<std::ptrdiff_t>(ci - 1));
  }
  if (new_base > o.consumed_base) {
    const std::size_t n = static_cast<std::size_t>(new_base - o.consumed_base);
    for (std::size_t i = 0; i < n; ++i) {
      opt_log_release(p, o.consumed[i].msg);
    }
    o.consumed.erase(o.consumed.begin(),
                     o.consumed.begin() + static_cast<std::ptrdiff_t>(n));
    o.consumed_base = new_base;
  }
}

void Engine::promote_safe_wildcards(bool stuck) {
  // One O(P) scan gives the two smallest unfinished clocks; excluding the
  // parked receiver itself then costs O(1) per candidate.
  VTime min1 = kVTimeNever, min2 = kVTimeNever;
  int argmin = -1;
  for (const auto& q : procs_) {
    if (q->finished_) continue;
    if (q->clock_ < min1) {
      min2 = min1;
      min1 = q->clock_;
      argmin = q->rank_;
    } else if (q->clock_ < min2) {
      // Covers duplicates of min1 too: excluding argmin still leaves a
      // process at that clock, so min2 must equal min1 then.
      min2 = q->clock_;
    }
  }
  const VTime lat = wildcard_min_latency_.load(std::memory_order_relaxed);

  bool promoted = false;
  VTime best_arrival = kVTimeNever;
  int best_rank = -1;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < wildcard_pending_.size(); ++i) {
    const int rank = wildcard_pending_[i];
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    if (!p.blocked_ || !p.wildcard_parked_) continue;  // woken since; drop
    VTime arrival = kVTimeNever;
    STGSIM_CHECK(p.peek_match(*p.waiting_on_, &arrival))
        << "parked wildcard receive on rank " << rank
        << " lost its queued candidate";
    const VTime lo = (p.rank_ == argmin) ? min2 : min1;
    if (lo == kVTimeNever || arrival < lo + lat) {
      wake_process(p, arrival);
      promoted = true;
      continue;
    }
    if (arrival < best_arrival ||
        (arrival == best_arrival && rank < best_rank)) {
      best_arrival = arrival;
      best_rank = rank;
    }
    wildcard_pending_[keep++] = rank;
  }
  wildcard_pending_.resize(keep);

  if (!promoted && stuck && best_rank >= 0) {
    // Nothing can run, so no further message will ever be queued: the
    // earliest-arrival candidate is exactly what the safety bound would
    // eventually admit. Wake only that one; its commit may unblock others
    // for real (bound-safe) promotion later.
    if (mc_active_) {
      // Several parked ranks tied at the same candidate arrival is the one
      // point where the (arrival, rank) rule is a genuine tie-break rather
      // than a timestamp-forced choice. Expose the tie to the oracle so
      // the checker can prove the committed results do not depend on it.
      std::vector<ChoiceOption> tied;
      for (int rank : wildcard_pending_) {
        Process& q = *procs_[static_cast<std::size_t>(rank)];
        VTime arrival = kVTimeNever;
        STGSIM_CHECK(q.peek_match(*q.waiting_on_, &arrival));
        if (arrival == best_arrival) {
          ChoiceOption c;
          c.kind = ChoiceOption::Kind::kWildcard;
          c.rank = rank;
          tied.push_back(c);
        }
      }
      if (tied.size() > 1) {
        best_rank = tied[oracle_choose(tied)].rank;
      }
    }
    Process& p = *procs_[static_cast<std::size_t>(best_rank)];
    wake_process(p, best_arrival);
    wildcard_pending_.erase(
        std::find(wildcard_pending_.begin(), wildcard_pending_.end(),
                  best_rank));
  }
}

void Engine::resume_process(Process& p) {
  if (config_.optimistic && p.opt_.pending_unwind) opt_finish_unwind(p);
  STGSIM_DCHECK(!p.finished_ && !p.blocked_);
  if (observer_ != nullptr) observer_->on_resume(p.rank_, p.clock_);
  slices_.fetch_add(1, std::memory_order_relaxed);
  if (config_.record_host_trace) {
    p.current_slice_ = trace_.size();
    trace_.push_back(Slice{p.rank_, 0.0, {}});
    p.slice_begin_sec_ = thread_cpu_sec();
  }
  p.opt_.fresh = false;
  g_current_proc = &p;
  p.fiber_->resume();
  g_current_proc = nullptr;
  if (config_.record_host_trace) {
    trace_[p.current_slice_].duration_sec =
        thread_cpu_sec() - p.slice_begin_sec_;
  }
  if (p.fiber_->finished()) {
    p.finished_ = true;
  } else {
    STGSIM_CHECK(p.blocked_)
        << "process " << p.rank_ << " yielded without blocking or finishing";
  }
}

void Engine::split_slice(Process& p) {
  const double now = thread_cpu_sec();
  trace_[p.current_slice_].duration_sec = now - p.slice_begin_sec_;
  p.current_slice_ = trace_.size();
  trace_.push_back(Slice{p.rank_, 0.0, {}});
  p.slice_begin_sec_ = now;
}

void Engine::note_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::move(e);
  has_error_.store(true, std::memory_order_release);
}

void Engine::abort_run(std::exception_ptr fallback) {
  aborting_ = true;
  // Unwind every suspended fiber so its RAII state (arrays, requests,
  // inbox payloads) is destroyed; never-started fibers hold no state.
  for (auto& p : procs_) {
    if (p->finished_ || p->fiber_ == nullptr) continue;
    if (config_.optimistic && p->opt_.pending_unwind) {
      // Rolled back but never re-resumed: the old incarnation is still
      // suspended on its stack. Unwind it the same way (FiberAborted at
      // the yield point); no fresh fiber is attached during an abort.
      p->opt_.pending_unwind = false;
      p->opt_.rollback_abort = true;
      p->blocked_ = false;
      p->waiting_on_ = nullptr;
      p->fiber_->resume();
      p->finished_ = true;
      continue;
    }
    if (!p->blocked_) continue;
    p->blocked_ = false;
    p->waiting_on_ = nullptr;
    p->fiber_->resume();
    p->finished_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::move(fallback);
  }
  std::rethrow_exception(error_);
}

void Engine::raise_deadlock() {
  std::vector<DeadlockError::BlockedRank> blocked;
  for (const auto& p : procs_) {
    if (p->finished_) continue;
    DeadlockError::BlockedRank b;
    b.rank = p->rank_;
    b.clock = p->clock_;
    b.home_worker = p->home_worker_;
    if (p->waiting_on_ != nullptr) {
      b.waiting_src = p->waiting_on_->src;
      b.waiting_tag = p->waiting_on_->user_tag;
      b.waiting_what = p->waiting_on_->what;
    } else {
      b.waiting_what = "(not blocked)";
    }
    blocked.push_back(std::move(b));
  }

  auto describe = [](std::ostream& os, const DeadlockError::BlockedRank& b) {
    os << " rank " << b.rank << " @" << vtime_to_string(b.clock) << " in "
       << b.waiting_what << "(src=";
    if (b.waiting_src == MatchSpec::kAnySource) {
      os << "ANY";
    } else {
      os << b.waiting_src;
    }
    os << ", tag=";
    if (b.waiting_tag < 0) {
      os << "ANY";
    } else {
      os << b.waiting_tag;
    }
    os << ");";
  };

  std::ostringstream os;
  os << "simulation deadlock: " << blocked.size()
     << " unfinished process(es) blocked with no matching message in flight"
     << " and no future wakeup;";
  if (threaded_run_) {
    // Per-partition detail: which worker owns the blocked ranks and what
    // each is waiting on, so a parallel deadlock report reads like the
    // sequential one instead of an undifferentiated rank list.
    std::map<int, std::vector<const DeadlockError::BlockedRank*>> by_worker;
    for (const auto& b : blocked) by_worker[b.home_worker].push_back(&b);
    for (const auto& [w, ranks] : by_worker) {
      os << " worker " << w << " (" << ranks.size() << " blocked):";
      std::size_t shown = 0;
      for (const auto* b : ranks) {
        if (shown++ == 4) {
          os << " ... (" << ranks.size() - 4 << " more);";
          break;
        }
        describe(os, *b);
      }
    }
  } else {
    std::size_t shown = 0;
    for (const auto& b : blocked) {
      if (shown++ == 8) {
        os << " ... (" << blocked.size() - 8 << " more)";
        break;
      }
      describe(os, b);
    }
  }
  abort_run(std::make_exception_ptr(DeadlockError(os.str(), std::move(blocked))));
}

void Engine::raise_budget(BudgetExceededError::Kind kind,
                          const std::string& what) {
  auto err = std::make_exception_ptr(BudgetExceededError(kind, what));
  if (Fiber::current() != nullptr) {
    // In fiber context: unwind this process body; the wrapper records the
    // error and the scheduler aborts the rest of the run.
    std::rethrow_exception(err);
  }
  abort_run(std::move(err));
}

bool Engine::host_budget_exhausted() const {
  return config_.max_host_seconds > 0.0 &&
         now_host_sec() > config_.max_host_seconds;
}

RunResult Engine::run() {
  STGSIM_CHECK(!ran_) << "Engine::run() is single-shot";
  ran_ = true;
  STGSIM_CHECK(body_ != nullptr) << "set_body() before run()";

  procs_.reserve(static_cast<std::size_t>(config_.num_processes));
  SplitMix64 seeder(config_.seed);
  for (int r = 0; r < config_.num_processes; ++r) {
    auto p = std::make_unique<Process>();
    p->engine_ = this;
    p->rank_ = r;
    if (config_.max_virtual_time > 0) {
      p->vtime_budget_ = config_.max_virtual_time;
    }
    const std::uint64_t rank_seed = seeder.next();
    p->rng_.reseed(rank_seed);
    p->opt_.rng_seed = rank_seed;
    if (!config_.partition.empty()) {
      STGSIM_CHECK_EQ(config_.partition.size(),
                      static_cast<std::size_t>(config_.num_processes));
      const int w = config_.partition[static_cast<std::size_t>(r)];
      STGSIM_CHECK(w >= 0 && w < config_.host_workers)
          << "partition maps rank " << r << " to worker " << w;
      p->home_worker_ = w;
    } else {
      p->home_worker_ = static_cast<int>(
          static_cast<long long>(r) * config_.host_workers /
          config_.num_processes);
    }
    attach_fresh_fiber(*p);
    procs_.push_back(std::move(p));
  }

  if (config_.optimistic) {
    const auto nctx = static_cast<std::size_t>(
        (config_.use_threads && config_.host_workers > 1)
            ? config_.host_workers
            : 1);
    opt_anti_queues_.clear();
    opt_anti_queues_.resize(nctx);
    opt_flushing_.assign(nctx, 0);
    opt_floor_ = std::make_unique<std::atomic<VTime>[]>(nctx);
    opt_out_min_ = std::make_unique<std::atomic<VTime>[]>(nctx);
    for (std::size_t i = 0; i < nctx; ++i) {
      opt_floor_[i].store(0, std::memory_order_relaxed);
      opt_out_min_[i].store(kVTimeNever, std::memory_order_relaxed);
    }
    if (worker_stats_.empty()) worker_stats_.assign(1, WorkerStat{});
    for (auto& p : procs_) {
      p->opt_.effective_interval = config_.checkpoint_interval;
    }
    // Fixed cadence honors the configured interval exactly; adaptive
    // mode raises the baseline to the rank count so the O(P) pass costs
    // O(1) amortized per scheduler pop regardless of scale, and treats
    // ~16 KiB of logged state per rank as steady-state (one in-flight
    // eager message each), not memory pressure.
    opt_gvt_base_ = config_.gvt_interval;
    if (config_.gvt_adaptive) {
      opt_gvt_base_ = std::max<std::uint64_t>(
          opt_gvt_base_, static_cast<std::uint64_t>(config_.num_processes));
    }
    opt_gvt_pressure_bytes_ = std::max<std::uint64_t>(
        std::uint64_t{1} << 20,
        (std::uint64_t{16} << 10) *
            static_cast<std::uint64_t>(config_.num_processes));
    opt_gvt_interval_ = opt_gvt_base_;
    opt_gvt_countdown_ = opt_gvt_interval_;
    opt_log_bytes_last_pass_ = 0;
    opt_log_bytes_.store(0, std::memory_order_relaxed);
    opt_log_bytes_peak_.store(0, std::memory_order_relaxed);
    opt_throttled_.clear();
    opt_throttle_override_.store(false, std::memory_order_relaxed);
    opt_release_exempt_ = -1;
  }

  host_t0_sec_ = steady_now_sec();

  if (config_.use_threads && config_.host_workers > 1) {
    run_threaded();
  } else if (mc_active_) {
    run_sequential_mc();
  } else {
    run_sequential();
  }

  if (config_.optimistic) {
    pstats_.rollback_depth_hist.assign(WorkerStat::kDepthBuckets, 0);
    for (const auto& ws : worker_stats_) {
      pstats_.rollbacks += ws.rollbacks;
      pstats_.anti_messages += ws.antis;
      pstats_.fossil_finalized += ws.fossil;
      pstats_.replayed_events += ws.replayed;
      for (int b = 0; b < WorkerStat::kDepthBuckets; ++b) {
        pstats_.rollback_depth_hist[static_cast<std::size_t>(b)] +=
            ws.depth_hist[b];
      }
    }
    while (!pstats_.rollback_depth_hist.empty() &&
           pstats_.rollback_depth_hist.back() == 0) {
      pstats_.rollback_depth_hist.pop_back();
    }
    for (const auto& p : procs_) {
      pstats_.checkpoints_taken += p->opt_.checkpoints_taken;
    }
    pstats_.gvt_passes = gvt_passes_.load(std::memory_order_relaxed);
    // Final fold: a run whose last stretch never hit a GVT pass (or that
    // disabled checkpointing and grew the log to the end) still reports
    // its true high-water mark.
    opt_fold_log_bytes();
    pstats_.log_bytes_peak =
        opt_log_bytes_peak_.load(std::memory_order_relaxed);
  }

  RunResult res;
  res.per_rank_completion.reserve(procs_.size());
  for (const auto& p : procs_) {
    STGSIM_CHECK(p->finished_);
    res.per_rank_completion.push_back(p->clock_);
    res.completion = std::max(res.completion, p->clock_);
  }
  res.host_seconds = now_host_sec();
  res.messages_delivered = messages_delivered_;
  res.slices = config_.record_host_trace
                   ? trace_.size()
                   : slices_.load(std::memory_order_relaxed);
  res.peak_target_bytes = memory_.peak_bytes();
  res.final_target_bytes = memory_.current_bytes();
  return res;
}

void Engine::run_sequential() {
  // Runnable processes keyed by virtual clock; clocks are frozen while a
  // process is ready, so entries never go stale. (key, id) pop order
  // matches the std::priority_queue<pair> the heap replaced.
  IndexedMinHeap<VTime> heap(config_.num_processes);
  ready_.reserve(procs_.size());
  for (const auto& p : procs_) heap.push(p->rank_, p->clock_);

  std::size_t remaining = procs_.size();
  std::uint64_t iter = 0;
  while (remaining > 0) {
    if (!wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/heap.empty());
      for (int woken : ready_) {
        heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
      }
      ready_.clear();
    }
    if (config_.optimistic && heap.empty() && !opt_throttled_.empty()) {
      // Every runnable rank has sped past the speculation window. Advance
      // GVT, then re-admit ranks back inside the (new) window. If none
      // qualify — the GVT-minimum rank may itself be blocked on a message
      // a throttled peer has yet to send — release the earliest-clock one
      // unconditionally so progress resumes.
      opt_gvt_pass();
      opt_retune_gvt();
      const VTime g = gvt_.load(std::memory_order_relaxed);
      const VTime w = config_.speculation_window;
      std::size_t kept = 0;
      std::size_t min_at = 0;
      VTime min_clock = kVTimeNever;
      for (const int r : opt_throttled_) {
        Process& t = *procs_[static_cast<std::size_t>(r)];
        if (g > kVTimeNever - w || t.clock_ <= g + w) {
          heap.push(r, t.clock_);
          continue;
        }
        if (t.clock_ < min_clock) {
          min_clock = t.clock_;
          min_at = kept;
        }
        opt_throttled_[kept++] = r;
      }
      opt_throttled_.resize(kept);
      if (heap.empty() && kept > 0) {
        const int r = opt_throttled_[min_at];
        opt_throttled_.erase(opt_throttled_.begin() +
                             static_cast<std::ptrdiff_t>(min_at));
        heap.push(r, procs_[static_cast<std::size_t>(r)]->clock_);
        // The forced release must survive the throttle re-check at pop
        // time, or the loop spins without running anything.
        opt_release_exempt_ = r;
      }
      for (int woken : ready_) {
        heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
      }
      ready_.clear();
    }
    if (heap.empty()) raise_deadlock();
    // A process that blocks immediately never runs advance(), so its
    // in-fiber watchdog never fires; probe from the scheduler too.
    if ((++iter & 1023U) == 0 && host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired in scheduler");
    }
    if (config_.optimistic && --opt_gvt_countdown_ == 0) {
      opt_gvt_pass();
      opt_retune_gvt();
    }
    const int rank = heap.pop();
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    const bool release_exempt = (rank == opt_release_exempt_);
    if (release_exempt) opt_release_exempt_ = -1;
    if (config_.optimistic && !release_exempt && opt_throttled(p)) {
      // Past the speculation window: hold the rank out of the schedule
      // until GVT catches up (see the re-admission block above the
      // deadlock check).
      opt_throttled_.push_back(rank);
      continue;
    }
    resume_process(p);
    if (error_) abort_run(error_);
    if (config_.optimistic) {
      // Rollbacks during the slice may have resurrected finished ranks.
      remaining += static_cast<std::size_t>(
          opt_unfinished_delta_.exchange(0, std::memory_order_relaxed));
    }
    if (p.finished_) --remaining;
    // Deliveries during the slice queued wakeups into ready_.
    for (int woken : ready_) {
      heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
    }
    ready_.clear();
  }
}

std::size_t Engine::oracle_choose(const std::vector<ChoiceOption>& options) {
  STGSIM_DCHECK(!options.empty());
  try {
    const std::size_t idx = oracle_->choose(options);
    STGSIM_CHECK_LT(idx, options.size())
        << "schedule oracle chose out of range";
    return idx;
  } catch (...) {
    // Unwind suspended fibers before the oracle's exception (typically a
    // deliberate prefix-abandon) leaves Engine::run().
    abort_run(std::current_exception());
  }
}

void Engine::run_sequential_mc() {
  // Ready ranks in a sorted vector (not the clock-ordered heap): in MC
  // mode *which* ready rank runs next is the oracle's choice, and the
  // sorted order gives the option list a canonical shape.
  std::vector<int> ready_set;
  auto add_ready = [&](int rank) {
    ready_set.insert(
        std::lower_bound(ready_set.begin(), ready_set.end(), rank), rank);
  };
  for (const auto& p : procs_) ready_set.push_back(p->rank_);

  std::size_t remaining = procs_.size();
  std::uint64_t iter = 0;
  std::vector<ChoiceOption> options;
  // Optimistic mode cannot declare the run complete while messages are
  // still in flight: an undelivered anti-message (or a straggling
  // positive) can roll a *finished* rank back, so the lanes must drain
  // before the final state is certified.
  while (remaining > 0 || (config_.optimistic && inflight_total_ > 0)) {
    // Promotion point: with every lane drained no further message can
    // appear without some rank running first, so parked wildcard
    // candidate sets are final — the same quiescent condition the
    // threaded scheduler's barrier establishes before it promotes.
    if (inflight_total_ == 0 && !wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/ready_set.empty());
      for (int woken : ready_) add_ready(woken);
      ready_.clear();
    }
    if ((++iter & 255U) == 0 && host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired in MC scheduler");
    }
    if (config_.optimistic && --opt_gvt_countdown_ == 0) {
      opt_gvt_pass();
      opt_retune_gvt();
    }

    options.clear();
    for (int rank : ready_set) {
      ChoiceOption c;
      c.kind = ChoiceOption::Kind::kResume;
      c.rank = rank;
      options.push_back(c);
    }
    for (const auto& lane : inflight_) {
      if (lane.q.empty()) continue;
      ChoiceOption c;
      c.kind = ChoiceOption::Kind::kDeliver;
      c.src = lane.src;
      c.dst = lane.dst;
      c.tag = lane.q.front().tag;
      options.push_back(c);
    }
    if (options.empty()) raise_deadlock();

    const ChoiceOption& c = options[oracle_choose(options)];
    if (c.kind == ChoiceOption::Kind::kResume) {
      ready_set.erase(
          std::find(ready_set.begin(), ready_set.end(), c.rank));
      Process& p = *procs_[static_cast<std::size_t>(c.rank)];
      resume_process(p);
      if (error_) abort_run(error_);
      if (p.finished_) --remaining;
    } else {
      InflightLane& lane = inflight_lane(c.src, c.dst);
      STGSIM_CHECK(!lane.q.empty());
      Message m = std::move(lane.q.front());
      lane.q.pop_front();
      --inflight_total_;
      deliver_now(std::move(m));
    }
    if (config_.optimistic) {
      remaining += static_cast<std::size_t>(
          opt_unfinished_delta_.exchange(0, std::memory_order_relaxed));
    }
    for (int woken : ready_) add_ready(woken);
    ready_.clear();
  }
}

bool Engine::drain_mailboxes(int worker, bool redelivery) {
  const int workers = config_.host_workers;
  bool any = false;
  Message m;
  auto drain_from = [&](int u) {
    SpscRing<Message>& ring =
        *mailboxes_[static_cast<std::size_t>(u) *
                        static_cast<std::size_t>(workers) +
                    static_cast<std::size_t>(worker)];
    while (ring.try_pop(&m)) {
      deliver(std::move(m), redelivery);
      any = true;
    }
  };
  if (oracle_ != nullptr) {
    // Schedule-checker hook: the claim the drain order is held to is that
    // it never affects simulated results (every cross-channel choice has
    // an explicit tie-break). Let the oracle permute it; validate that the
    // result is still a permutation of the sender set.
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(workers) - 1);
    for (int u = 0; u < workers; ++u) {
      if (u != worker) order.push_back(u);
    }
    const std::size_t n = order.size();
    oracle_->permute_drain_order(worker, order);
    STGSIM_CHECK_EQ(order.size(), n) << "drain order must stay a permutation";
    std::uint64_t seen = 0;
    for (int u : order) {
      STGSIM_CHECK(u >= 0 && u < workers && u != worker &&
                   (seen & (1ULL << u)) == 0)
          << "drain order must stay a permutation of the sender set";
      seen |= 1ULL << u;
      drain_from(u);
    }
    return any;
  }
  for (int u = 0; u < workers; ++u) {
    if (u == worker) continue;
    drain_from(u);
  }
  return any;
}

void Engine::run_partition_round(int worker) {
  g_current_worker = worker;
  IndexedMinHeap<VTime>& heap = worker_heaps_[static_cast<std::size_t>(worker)];
  std::vector<int>& local_ready = worker_ready_[static_cast<std::size_t>(worker)];
  WorkerStat& ws = worker_stats_[static_cast<std::size_t>(worker)];

  // round_running_ counts workers that currently have (or may produce)
  // local work. A worker leaves the count when its heap and mailboxes are
  // both empty, rejoins if a mailbox delivery wakes one of its ranks, and
  // exits the round when the count hits zero — at that point every worker
  // is idle, so only barrier-deferred messages remain.
  bool active = true;
  std::uint64_t iter = 0;
  const int workers = config_.host_workers;
  VTime opt_fossil_seen =
      config_.optimistic ? gvt_.load(std::memory_order_relaxed) : 0;
  // Ranks held out of this round because they ran past the speculation
  // window; re-queued for the next round at exit (GVT will have advanced
  // at the barrier). The scheduler thread sets opt_throttle_override_ when
  // a whole round is throttled into making no progress.
  std::vector<int> throttled;
  // Mid-round GVT publish (optimistic mode). Each worker periodically
  // publishes a single word: min(its unfinished ranks' clocks, the
  // smallest arrival it has put in transit since the barrier). One
  // combined value — not two separately-read atomics — so a reader can
  // never pair a fresh (high) clock floor with a stale (missing) in-
  // transit entry from the same worker. By induction over send chains,
  // every published value lower-bounds every in-flight and future message
  // arrival, so min over all workers is a sound (lagging) GVT estimate;
  // the barrier recomputes it exactly.
  auto opt_publish_and_fossil = [&] {
    VTime f = opt_out_min_[static_cast<std::size_t>(worker)].load(
        std::memory_order_relaxed);
    for (const auto& pp : procs_) {
      if (pp->home_worker_ == worker && !pp->finished_) {
        f = std::min(f, pp->clock_);
      }
    }
    opt_floor_[static_cast<std::size_t>(worker)].store(
        f, std::memory_order_release);
    VTime g = kVTimeNever;
    for (int v = 0; v < workers; ++v) {
      g = std::min(g, opt_floor_[static_cast<std::size_t>(v)].load(
                          std::memory_order_acquire));
    }
    if (g != kVTimeNever) {
      VTime cur = gvt_.load(std::memory_order_relaxed);
      while (g > cur) {
        if (gvt_.compare_exchange_weak(cur, g,
                                       std::memory_order_relaxed)) {
          gvt_passes_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    const VTime seen = gvt_.load(std::memory_order_relaxed);
    if (seen > opt_fossil_seen) {
      opt_fossil_seen = seen;
      for (const auto& pp : procs_) {
        if (pp->home_worker_ == worker) opt_fossil_rank(*pp, seen);
      }
    }
  };
  for (;;) {
    // In-window cross-partition messages delivered by peers since the
    // last check; wakeups land on local_ready.
    drain_mailboxes(worker, /*redelivery=*/true);
    for (int woken : local_ready) {
      heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
    }
    local_ready.clear();

    if (heap.empty()) {
      if (active) {
        active = false;
        round_running_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (has_error_.load(std::memory_order_acquire)) break;
      if (round_running_.load(std::memory_order_acquire) == 0) {
        // Everyone is idle. One last drain: a peer may have pushed right
        // before it went idle; the acquire above makes that push visible.
        if (!drain_mailboxes(worker, /*redelivery=*/true)) break;
        continue;
      }
      // A peer is still running and may yet feed us through a mailbox.
      // An idle spin that never probes the watchdog could outlive the
      // budget if that peer is stuck in a long slice.
      if ((++iter & 1023U) == 0 && host_budget_exhausted()) {
        note_error(std::make_exception_ptr(BudgetExceededError(
            BudgetExceededError::Kind::kHostWallClock,
            "host wall-clock watchdog fired in threaded worker " +
                std::to_string(worker))));
        break;
      }
      std::this_thread::yield();
      continue;
    }

    if (!active) {
      active = true;
      round_running_.fetch_add(1, std::memory_order_acq_rel);
    }
    // The round barrier only probes the wall-clock watchdog between
    // rounds; a round that never drains (e.g. two processes in the same
    // partition ping-ponging without advancing their clocks) would
    // otherwise spin forever. Probe in-loop, like the sequential
    // scheduler; the scheduler thread tears the run down at the barrier.
    if ((++iter & 1023U) == 0) {
      if (has_error_.load(std::memory_order_acquire)) break;
      if (host_budget_exhausted()) {
        note_error(std::make_exception_ptr(BudgetExceededError(
            BudgetExceededError::Kind::kHostWallClock,
            "host wall-clock watchdog fired in threaded worker " +
                std::to_string(worker))));
        break;
      }
    }
    if (config_.optimistic && (iter & 255U) == 0) opt_publish_and_fossil();
    const int rank = heap.pop();
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    if (config_.optimistic && opt_throttled(p)) {
      throttled.push_back(rank);
      continue;
    }
    const VTime clock_before = p.clock_;
    resume_process(p);
    ws.busy_vtime += p.clock_ - clock_before;
    ++ws.slices;
  }
  if (active) round_running_.fetch_sub(1, std::memory_order_acq_rel);
  local_ready.insert(local_ready.end(), throttled.begin(), throttled.end());
}

namespace {

/// Mailbox depth per (sender worker, receiver worker) lane. Overflow is
/// not an error — excess traffic spills to the barrier outbox — so this
/// only bounds how much can bypass the barrier per round.
constexpr std::size_t kMailboxCapacity = 256;

/// Log2-ns buckets for ParallelStats::window_advance_hist.
constexpr std::size_t kAdvanceBuckets = 48;

std::size_t advance_bucket(VTime adv) {
  if (adv <= 0) return 0;
  auto v = static_cast<std::uint64_t>(adv);
  std::size_t b = 1;
  while (v > 1 && b + 1 < kAdvanceBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Engine::run_threaded() {
  const int workers = config_.host_workers;
  threaded_run_ = true;
  round_outboxes_.clear();
  round_outboxes_.resize(static_cast<std::size_t>(workers));
  worker_ready_.assign(static_cast<std::size_t>(workers), {});
  worker_wildcard_pending_.assign(static_cast<std::size_t>(workers), {});
  worker_heaps_.resize(static_cast<std::size_t>(workers));
  for (auto& h : worker_heaps_) h.reset(config_.num_processes);
  worker_stats_.assign(static_cast<std::size_t>(workers), WorkerStat{});
  const auto lanes = static_cast<std::size_t>(workers) *
                     static_cast<std::size_t>(workers);
  mailboxes_.clear();
  mailboxes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    mailboxes_.push_back(std::make_unique<SpscRing<Message>>(kMailboxCapacity));
  }
  spill_epoch_.assign(lanes, 0);
  round_epoch_ = 0;
  pstats_ = ParallelStats{};
  pstats_.window_advance_hist.assign(kAdvanceBuckets, 0);
  for (const auto& p : procs_) {
    worker_ready_[static_cast<std::size_t>(p->home_worker_)].push_back(
        p->rank_);
  }

  // Workers persist for the whole run; each pool round runs one
  // conservative window. A worker-side exception (simulator invariant
  // failure) must not escape the pool thread — record it and let the
  // scheduler abort at the barrier.
  WorkerPool pool(workers, [this](int w) {
    try {
      run_partition_round(w);
    } catch (...) {
      note_error(std::current_exception());
    }
  });

  auto any_ready = [&] {
    for (const auto& v : worker_ready_) {
      if (!v.empty()) return true;
    }
    return false;
  };

  VTime prev_min = kVTimeNever;
  while (true) {
    if (!any_ready()) {
      bool all_done = true;
      for (const auto& p : procs_) all_done = all_done && p->finished_;
      if (all_done) break;
      raise_deadlock();
    }

    // Conservative window for this round: no message sent from here on
    // can arrive before (min unfinished clock) + (latency floor), so
    // anything arriving at or below that bound is safe to hand straight
    // to the destination worker mid-round.
    VTime min_clock = kVTimeNever;
    for (const auto& p : procs_) {
      if (!p->finished_) min_clock = std::min(min_clock, p->clock_);
    }
    if (config_.optimistic) {
      // No safe bound: every cross-partition message may ride the mailbox
      // and be consumed speculatively. Stragglers are corrected by
      // rollback, so the window is unbounded.
      window_bound_ = kVTimeNever;
      // Seed the asynchronous-GVT inputs for this round: each worker's
      // clock floor starts at the global min (clocks only matter once a
      // rollback lowers them, and the triggering message's arrival is
      // covered by the sender's out_min or the sender's floor), and the
      // in-transit minimum restarts empty.
      for (int v = 0; v < workers; ++v) {
        opt_floor_[static_cast<std::size_t>(v)].store(
            min_clock, std::memory_order_relaxed);
        opt_out_min_[static_cast<std::size_t>(v)].store(
            kVTimeNever, std::memory_order_relaxed);
      }
    } else {
      const VTime lookahead =
          wildcard_min_latency_.load(std::memory_order_relaxed);
      window_bound_ =
          min_clock == kVTimeNever ? kVTimeNever : min_clock + lookahead;
    }
    ++pstats_.rounds;
    pstats_.window_advance_hist[advance_bucket(
        prev_min == kVTimeNever ? 0 : min_clock - prev_min)] += 1;
    prev_min = min_clock;
    ++round_epoch_;

    std::uint64_t slices_before = 0;
    for (const auto& w : worker_stats_) slices_before += w.slices;
    round_running_.store(workers, std::memory_order_relaxed);
    threaded_phase_ = true;
    pool.run_round();
    threaded_phase_ = false;
    if (error_) abort_run(error_);
    if (host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired at round barrier");
    }

    // Barrier reached: deliver everything still in flight. Mailboxes
    // first (a lane's outbox spill began only after its last successful
    // mailbox push, so draining rings before outboxes preserves
    // per-channel FIFO), in fixed (sender, receiver) order; then the
    // outboxes in worker order. Both orders are fixed and per-channel
    // order is preserved within each, so the flush — and therefore the
    // whole run — is deterministic.
    for (int v = 0; v < workers; ++v) {
      drain_mailboxes(v, /*redelivery=*/true);
    }
    for (auto& outbox : round_outboxes_) {
      for (auto& msg : outbox) deliver(std::move(msg), /*redelivery=*/true);
      outbox.clear();
    }

    // Wildcard receives always park during a round (clocks race); now the
    // barrier has frozen every clock and flushed every message, evaluate
    // the safety bound. Worker lists merge in fixed order, and promotion
    // itself is (arrival, rank)-deterministic, so this preserves the
    // sequential scheduler's commit choices.
    for (auto& pending : worker_wildcard_pending_) {
      wildcard_pending_.insert(wildcard_pending_.end(), pending.begin(),
                               pending.end());
      pending.clear();
    }
    if (!wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/!any_ready());
    }

    if (config_.optimistic) {
      // Exact GVT at the barrier: every worker is idle and every message
      // flushed, so min unfinished clock is the committed horizon. (The
      // barrier flush above may itself have triggered rollbacks — on this
      // thread — so clocks are read after it.)
      VTime g = kVTimeNever;
      for (const auto& p : procs_) {
        if (!p->finished_) g = std::min(g, p->clock_);
      }
      opt_fold_log_bytes();
      if (g != kVTimeNever && g > gvt_.load(std::memory_order_relaxed)) {
        gvt_.store(g, std::memory_order_relaxed);
        gvt_passes_.fetch_add(1, std::memory_order_relaxed);
        for (const auto& p : procs_) opt_fossil_rank(*p, g);
      }
      if (config_.speculation_window > 0) {
        // A round in which every worker only stashed throttled ranks made
        // zero slices while work remains: GVT cannot advance (the minimum
        // rank is blocked on a throttled peer), so let the next round run
        // unthrottled rather than deadlock at the window edge.
        std::uint64_t slices_after = 0;
        for (const auto& w : worker_stats_) slices_after += w.slices;
        opt_throttle_override_.store(
            slices_after == slices_before && any_ready(),
            std::memory_order_relaxed);
      }
    }
  }

  for (const auto& ws : worker_stats_) {
    pstats_.intra_messages += ws.intra;
    pstats_.mailbox_messages += ws.mailbox;
    pstats_.barrier_messages += ws.barrier;
    pstats_.worker_busy_vtime.push_back(ws.busy_vtime);
    pstats_.worker_slices.push_back(ws.slices);
  }
  // Trim the histogram to the last populated bucket.
  while (!pstats_.window_advance_hist.empty() &&
         pstats_.window_advance_hist.back() == 0) {
    pstats_.window_advance_hist.pop_back();
  }
  threaded_run_ = false;
}

double replay_host_trace(const std::vector<Slice>& trace, int num_processes,
                         int workers, const HostModel& model) {
  STGSIM_CHECK_GT(workers, 0);
  STGSIM_CHECK_GT(num_processes, 0);

  auto worker_of = [&](int lp) {
    return static_cast<int>(static_cast<long long>(lp) * workers /
                            num_processes);
  };

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  std::vector<double> slice_start(trace.size(), 0.0);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Slice& s = trace[i];
    const int w = worker_of(s.lp);
    double ready = worker_free[static_cast<std::size_t>(w)];
    for (const Slice::Dep& d : s.deps) {
      STGSIM_DCHECK(d.slice <= i);
      double avail =
          slice_start[d.slice] + d.offset_sec * model.duration_scale;
      if (worker_of(d.producer_lp) != w) avail += model.cross_worker_msg_sec;
      ready = std::max(ready, avail);
    }
    slice_start[i] = ready;
    worker_free[static_cast<std::size_t>(w)] =
        ready + s.duration_sec * model.duration_scale +
        model.per_slice_overhead_sec;
  }

  double makespan = 0.0;
  for (double t : worker_free) makespan = std::max(makespan, t);
  return makespan;
}

}  // namespace stgsim::simk
