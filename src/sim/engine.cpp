#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "sim/worker_pool.hpp"

namespace stgsim::simk {

namespace {

thread_local int g_current_worker = 0;

double steady_now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by this thread. Slice durations use this rather than
/// wall time so preemption by other host processes cannot poison the
/// recorded trace (a slice on a dedicated parallel host would not be
/// preempted).
double thread_cpu_sec() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::~Process() {
  // Unconsumed messages (legal at exit, like unmatched MPI sends) go back
  // to the engine's arena; the arena outlives procs_ by declaration order.
  if (engine_ == nullptr) return;
  for (auto& ch : channels_) {
    MsgNode* n = ch.head;
    while (n != nullptr) {
      MsgNode* next = n->next;
      engine_->msg_arena_.recycle(n);
      n = next;
    }
    ch.head = ch.tail = nullptr;
  }
}

int Process::world_size() const { return engine_->config().num_processes; }

MemoryTracker& Process::memory() { return engine_->memory(); }

PayloadBuf Process::make_payload(const void* data, std::size_t n) {
  return engine_->payload_pool_.make(data, n);
}

void Process::send(Message msg) {
  STGSIM_DCHECK(msg.src == rank_);
  STGSIM_DCHECK(msg.dst >= 0 && msg.dst < world_size());
  STGSIM_DCHECK(msg.arrival >= msg.sent_at);
  msg.seq = next_seq_for(msg.dst);
  if (engine_->config().record_host_trace) {
    msg.producer_slice = current_slice_;
    msg.producer_offset_sec = thread_cpu_sec() - slice_begin_sec_;
  }
  if (engine_->observer_ != nullptr) engine_->observer_->on_send(msg);
  engine_->deliver(std::move(msg));
}

bool Process::try_match(const MatchSpec& spec, Message* out) {
  auto take = [&](Channel& ch, MsgNode* node, MsgNode* prev) {
    if (prev != nullptr) {
      prev->next = node->next;
    } else {
      ch.head = node->next;
    }
    if (ch.tail == node) ch.tail = prev;
    --inbox_size_;
    *out = engine_->msg_arena_.release(node);
    if (engine_->config().record_host_trace) {
      // Consuming a message is a dependency point: end the current slice
      // here and begin a new one gated on the message's production point.
      // (On a parallel host this is exactly where the process could have
      // had to block, letting its worker run other processes meanwhile.)
      engine_->split_slice(*this);
      engine_->trace_[current_slice_].deps.push_back(
          {out->producer_slice, out->producer_offset_sec, out->src});
    }
  };

  // Probe accounting for the observer: one local increment per inspected
  // node, reported once per attempt (never per node).
  std::uint64_t probes = 0;
  auto report = [&](bool hit) {
    if (engine_->observer_ != nullptr) {
      engine_->observer_->on_match(rank_, probes, hit);
    }
    return hit;
  };

  if (spec.src != MatchSpec::kAnySource && spec.any_of == nullptr) {
    Channel* ch = find_channel(spec.src);
    if (ch == nullptr) return report(false);
    MsgNode* prev = nullptr;
    for (MsgNode* n = ch->head; n != nullptr; prev = n, n = n->next) {
      ++probes;
      if (spec.accepts(n->value)) {
        take(*ch, n, prev);
        return report(true);
      }
    }
    return report(false);
  }

  // Wildcard: per MPI, messages from one source are matched in send order;
  // across sources we pick the earliest arrival (ties by source id) among
  // each channel's first acceptable message. The explicit tie-break makes
  // channel iteration order irrelevant.
  engine_->saw_wildcard_recv_.store(true, std::memory_order_relaxed);
  Channel* best_ch = nullptr;
  MsgNode* best_node = nullptr;
  MsgNode* best_prev = nullptr;
  VTime best_arrival = kVTimeNever;
  int best_src = -1;
  for (auto& ch : channels_) {
    MsgNode* prev = nullptr;
    for (MsgNode* n = ch.head; n != nullptr; prev = n, n = n->next) {
      ++probes;
      if (spec.accepts(n->value)) {
        if (n->value.arrival < best_arrival ||
            (n->value.arrival == best_arrival && ch.src < best_src)) {
          best_ch = &ch;
          best_node = n;
          best_prev = prev;
          best_arrival = n->value.arrival;
          best_src = ch.src;
        }
        break;  // only the first acceptable message per channel competes
      }
    }
  }
  if (best_ch == nullptr) return report(false);
  take(*best_ch, best_node, best_prev);
  return report(true);
}

bool Process::peek_match(const MatchSpec& spec, VTime* arrival) const {
  VTime best = kVTimeNever;
  for (const auto& ch : channels_) {
    if (spec.src != MatchSpec::kAnySource && spec.src != ch.src) continue;
    for (const MsgNode* n = ch.head; n != nullptr; n = n->next) {
      if (spec.accepts(n->value)) {
        best = std::min(best, n->value.arrival);
        break;  // send order: only the first acceptable per channel
      }
    }
  }
  if (best == kVTimeNever) return false;
  if (arrival != nullptr) *arrival = best;
  return true;
}

Message Process::blocking_match(const MatchSpec& spec) {
  Message out;
  if (!spec.is_wildcard()) {
    if (try_match(spec, &out)) return out;
    blocked_ = true;
    waiting_on_ = &spec;
  } else {
    // A wildcard receive may only commit when no slower-clocked process
    // can still produce an earlier-arriving match. If the best queued
    // candidate is not yet bound-safe (or we are inside a threaded round,
    // where the bound cannot be evaluated), block and park for promotion.
    VTime arrival = kVTimeNever;
    if (peek_match(spec, &arrival) &&
        engine_->wildcard_commit_safe(*this, arrival)) {
      STGSIM_CHECK(try_match(spec, &out));
      return out;
    }
    blocked_ = true;
    waiting_on_ = &spec;
    if (arrival != kVTimeNever) engine_->park_wildcard(*this);
  }
  if (engine_->observer_ != nullptr) {
    engine_->observer_->on_block(rank_, clock_, spec);
  }
  Fiber::yield_to_scheduler();
  if (engine_->aborting_) throw FiberAborted{};
  // The engine only wakes us when a match is available.
  STGSIM_CHECK(try_match(spec, &out))
      << "process " << rank_ << " woke without a matching message";
  return out;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config) : config_(config) {
  STGSIM_CHECK_GT(config_.num_processes, 0);
  STGSIM_CHECK_GT(config_.host_workers, 0);
  memory_.set_cap(config_.memory_cap_bytes);
  observer_ = config_.observer;
  oracle_ = config_.oracle;
  mc_active_ =
      oracle_ != nullptr && !(config_.use_threads && config_.host_workers > 1);
  if (mc_active_) {
    STGSIM_CHECK(!config_.record_host_trace)
        << "host-trace recording is meaningless under MC schedule control";
  }
  if (config_.use_threads) {
    STGSIM_CHECK(!config_.record_host_trace)
        << "host-trace recording requires the sequential scheduler";
  }
}

Engine::~Engine() = default;

VTime Engine::wildcard_safe_bound(VTime min_latency, int exclude_rank) const {
  VTime lo = kVTimeNever;
  for (const auto& p : procs_) {
    if (p->finished_ || p->rank_ == exclude_rank) continue;
    lo = std::min(lo, p->clock_);
  }
  if (lo == kVTimeNever) return kVTimeNever;
  return lo + min_latency;
}

bool Engine::wildcard_commit_safe(const Process& p, VTime arrival) const {
  if (config_.unsafe_wildcard_commit) {
    // Test-only fault injection: commit on sight, reproducing the racy
    // pre-safety-bound behavior for the schedule checker to rediscover.
    return true;
  }
  if (threaded_phase_) return false;  // clocks race during a round
  if (mc_active_) {
    // MC mode: never commit mid-slice. Wildcards park and are promoted
    // only when every in-flight lane is drained, so the candidate set the
    // promotion scan evaluates is final (mirrors the threaded barrier).
    return false;
  }
  const VTime bound = wildcard_safe_bound(
      wildcard_min_latency_.load(std::memory_order_relaxed), p.rank_);
  // kVTimeNever: no other unfinished process exists, so the queued message
  // set is final and any match is safe.
  return bound == kVTimeNever || arrival < bound;
}

double Engine::now_host_sec() const { return steady_now_sec() - host_t0_sec_; }

void Engine::deliver(Message&& msg, bool redelivery) {
  Process& dst = *procs_[static_cast<std::size_t>(msg.dst)];

  if (threaded_phase_) {
    const int w = g_current_worker;
    if (dst.home_worker_ != w) {
      // Cross-partition. In-window messages ride the SPSC mailbox so the
      // owning worker can consume them this round; the rest wait for the
      // end-of-round barrier. Once one message on a (sender worker,
      // destination worker) lane spills to the outbox, every later
      // message on that lane must follow it this round — the barrier
      // flushes outboxes after mailboxes, and per-(src,dst) channel FIFO
      // must survive the split. (Payload buffers allocated on this worker
      // travel with the message; the pool is spinlocked.)
      WorkerStat& ws = worker_stats_[static_cast<std::size_t>(w)];
      const std::size_t lane =
          static_cast<std::size_t>(w) *
              static_cast<std::size_t>(config_.host_workers) +
          static_cast<std::size_t>(dst.home_worker_);
      if (spill_epoch_[lane] != round_epoch_ &&
          msg.arrival <= window_bound_ &&
          mailboxes_[lane]->try_push(std::move(msg))) {
        ++ws.mailbox;
      } else {
        spill_epoch_[lane] = round_epoch_;
        ++ws.barrier;
        round_outboxes_[static_cast<std::size_t>(w)].push_back(
            std::move(msg));
      }
      return;
    }
    if (!redelivery) ++worker_stats_[static_cast<std::size_t>(w)].intra;
  }

  if (mc_active_) {
    // MC mode: the message becomes *in flight*. Handing it to the inbox is
    // a separate schedulable step so the oracle can explore delivery
    // orders across lanes (per-lane FIFO is preserved by the deque).
    InflightLane& lane = inflight_lane(msg.src, msg.dst);
    lane.q.push_back(std::move(msg));
    ++inflight_total_;
    return;
  }

  deliver_now(std::move(msg));
}

Engine::InflightLane& Engine::inflight_lane(int src, int dst) {
  auto it = inflight_.begin();
  for (; it != inflight_.end(); ++it) {
    if (it->src == src && it->dst == dst) return *it;
    if (it->src > src || (it->src == src && it->dst > dst)) break;
  }
  it = inflight_.insert(it, InflightLane(src, dst));
  return *it;
}

void Engine::deliver_now(Message&& msg) {
  Process& dst = *procs_[static_cast<std::size_t>(msg.dst)];

  Process::Channel& ch = dst.channel(msg.src);
  STGSIM_DCHECK(ch.tail == nullptr || ch.tail->value.seq < msg.seq)
      << "FIFO violation on channel " << msg.src << "->" << msg.dst;
  MsgNode* node = msg_arena_.acquire(std::move(msg));
  if (ch.tail != nullptr) {
    ch.tail->next = node;
  } else {
    ch.head = node;
  }
  ch.tail = node;
  ++dst.inbox_size_;
  const std::uint64_t delivered = ++messages_delivered_;
  if (config_.max_messages > 0 && delivered > config_.max_messages) {
    if (threaded_phase_ && Fiber::current() == nullptr) {
      // Mailbox drain on a worker thread: raising here would tear down
      // fibers owned by other workers. Record the violation; every worker
      // sees has_error_ and ends its round, and the scheduler aborts at
      // the barrier.
      note_error(std::make_exception_ptr(BudgetExceededError(
          BudgetExceededError::Kind::kMessages,
          "message budget exceeded: " + std::to_string(delivered) +
              " messages delivered (cap " +
              std::to_string(config_.max_messages) + ")")));
    } else {
      raise_budget(BudgetExceededError::Kind::kMessages,
                   "message budget exceeded: " + std::to_string(delivered) +
                       " messages delivered (cap " +
                       std::to_string(config_.max_messages) + ")");
    }
  }

  if (dst.blocked_) {
    // Wake only if the newly available message completes a match, so a
    // process never context-switches spuriously.
    const MatchSpec& spec = *dst.waiting_on_;
    const Message& m = node->value;
    bool can_match = false;
    if (spec.src == MatchSpec::kAnySource || spec.src == m.src ||
        spec.any_of != nullptr) {
      // The new message is last in its channel; it can only be matched if
      // no earlier message in the same channel also matches (that one
      // would have woken us already) — so testing the new message alone
      // is exact.
      can_match = spec.accepts(m);
    }
    if (can_match) {
      if (spec.is_wildcard() &&
          (threaded_run_ || !wildcard_commit_safe(dst, m.arrival))) {
        // A slower-clocked rank could still send an earlier-arriving
        // match (or, in a threaded round, we cannot tell): defer the
        // wakeup until the safety bound passes. If an already-queued
        // candidate has an even earlier arrival, it is safe whenever this
        // one is, and try_match picks it on resume.
        park_wildcard(dst);
        return;
      }
      wake_process(dst, m.arrival);
    }
  }
}

void Engine::wake_process(Process& p, VTime arrival) {
  p.blocked_ = false;
  p.waiting_on_ = nullptr;
  p.wildcard_parked_ = false;
  if (observer_ != nullptr) observer_->on_wake(p.rank_, p.clock_, arrival);
  if (threaded_run_) {
    // Local deliveries happen on the destination's own worker; flush
    // deliveries and promotions happen between rounds — both may touch
    // this list.
    worker_ready_[static_cast<std::size_t>(p.home_worker_)].push_back(
        p.rank_);
  } else {
    ready_.push_back(p.rank_);
  }
}

void Engine::park_wildcard(Process& p) {
  STGSIM_DCHECK(p.blocked_ && p.waiting_on_ != nullptr);
  if (p.wildcard_parked_) return;
  p.wildcard_parked_ = true;
  if (threaded_phase_) {
    worker_wildcard_pending_[static_cast<std::size_t>(g_current_worker)]
        .push_back(p.rank_);
  } else {
    wildcard_pending_.push_back(p.rank_);
  }
}

void Engine::promote_safe_wildcards(bool stuck) {
  // One O(P) scan gives the two smallest unfinished clocks; excluding the
  // parked receiver itself then costs O(1) per candidate.
  VTime min1 = kVTimeNever, min2 = kVTimeNever;
  int argmin = -1;
  for (const auto& q : procs_) {
    if (q->finished_) continue;
    if (q->clock_ < min1) {
      min2 = min1;
      min1 = q->clock_;
      argmin = q->rank_;
    } else if (q->clock_ < min2) {
      // Covers duplicates of min1 too: excluding argmin still leaves a
      // process at that clock, so min2 must equal min1 then.
      min2 = q->clock_;
    }
  }
  const VTime lat = wildcard_min_latency_.load(std::memory_order_relaxed);

  bool promoted = false;
  VTime best_arrival = kVTimeNever;
  int best_rank = -1;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < wildcard_pending_.size(); ++i) {
    const int rank = wildcard_pending_[i];
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    if (!p.blocked_ || !p.wildcard_parked_) continue;  // woken since; drop
    VTime arrival = kVTimeNever;
    STGSIM_CHECK(p.peek_match(*p.waiting_on_, &arrival))
        << "parked wildcard receive on rank " << rank
        << " lost its queued candidate";
    const VTime lo = (p.rank_ == argmin) ? min2 : min1;
    if (lo == kVTimeNever || arrival < lo + lat) {
      wake_process(p, arrival);
      promoted = true;
      continue;
    }
    if (arrival < best_arrival ||
        (arrival == best_arrival && rank < best_rank)) {
      best_arrival = arrival;
      best_rank = rank;
    }
    wildcard_pending_[keep++] = rank;
  }
  wildcard_pending_.resize(keep);

  if (!promoted && stuck && best_rank >= 0) {
    // Nothing can run, so no further message will ever be queued: the
    // earliest-arrival candidate is exactly what the safety bound would
    // eventually admit. Wake only that one; its commit may unblock others
    // for real (bound-safe) promotion later.
    if (mc_active_) {
      // Several parked ranks tied at the same candidate arrival is the one
      // point where the (arrival, rank) rule is a genuine tie-break rather
      // than a timestamp-forced choice. Expose the tie to the oracle so
      // the checker can prove the committed results do not depend on it.
      std::vector<ChoiceOption> tied;
      for (int rank : wildcard_pending_) {
        Process& q = *procs_[static_cast<std::size_t>(rank)];
        VTime arrival = kVTimeNever;
        STGSIM_CHECK(q.peek_match(*q.waiting_on_, &arrival));
        if (arrival == best_arrival) {
          ChoiceOption c;
          c.kind = ChoiceOption::Kind::kWildcard;
          c.rank = rank;
          tied.push_back(c);
        }
      }
      if (tied.size() > 1) {
        best_rank = tied[oracle_choose(tied)].rank;
      }
    }
    Process& p = *procs_[static_cast<std::size_t>(best_rank)];
    wake_process(p, best_arrival);
    wildcard_pending_.erase(
        std::find(wildcard_pending_.begin(), wildcard_pending_.end(),
                  best_rank));
  }
}

void Engine::resume_process(Process& p) {
  STGSIM_DCHECK(!p.finished_ && !p.blocked_);
  if (observer_ != nullptr) observer_->on_resume(p.rank_, p.clock_);
  slices_.fetch_add(1, std::memory_order_relaxed);
  if (config_.record_host_trace) {
    p.current_slice_ = trace_.size();
    trace_.push_back(Slice{p.rank_, 0.0, {}});
    p.slice_begin_sec_ = thread_cpu_sec();
  }
  p.fiber_->resume();
  if (config_.record_host_trace) {
    trace_[p.current_slice_].duration_sec =
        thread_cpu_sec() - p.slice_begin_sec_;
  }
  if (p.fiber_->finished()) {
    p.finished_ = true;
  } else {
    STGSIM_CHECK(p.blocked_)
        << "process " << p.rank_ << " yielded without blocking or finishing";
  }
}

void Engine::split_slice(Process& p) {
  const double now = thread_cpu_sec();
  trace_[p.current_slice_].duration_sec = now - p.slice_begin_sec_;
  p.current_slice_ = trace_.size();
  trace_.push_back(Slice{p.rank_, 0.0, {}});
  p.slice_begin_sec_ = now;
}

void Engine::note_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::move(e);
  has_error_.store(true, std::memory_order_release);
}

void Engine::abort_run(std::exception_ptr fallback) {
  aborting_ = true;
  // Unwind every suspended fiber so its RAII state (arrays, requests,
  // inbox payloads) is destroyed; never-started fibers hold no state.
  for (auto& p : procs_) {
    if (p->finished_ || p->fiber_ == nullptr) continue;
    if (!p->blocked_) continue;
    p->blocked_ = false;
    p->waiting_on_ = nullptr;
    p->fiber_->resume();
    p->finished_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::move(fallback);
  }
  std::rethrow_exception(error_);
}

void Engine::raise_deadlock() {
  std::vector<DeadlockError::BlockedRank> blocked;
  for (const auto& p : procs_) {
    if (p->finished_) continue;
    DeadlockError::BlockedRank b;
    b.rank = p->rank_;
    b.clock = p->clock_;
    b.home_worker = p->home_worker_;
    if (p->waiting_on_ != nullptr) {
      b.waiting_src = p->waiting_on_->src;
      b.waiting_tag = p->waiting_on_->user_tag;
      b.waiting_what = p->waiting_on_->what;
    } else {
      b.waiting_what = "(not blocked)";
    }
    blocked.push_back(std::move(b));
  }

  auto describe = [](std::ostream& os, const DeadlockError::BlockedRank& b) {
    os << " rank " << b.rank << " @" << vtime_to_string(b.clock) << " in "
       << b.waiting_what << "(src=";
    if (b.waiting_src == MatchSpec::kAnySource) {
      os << "ANY";
    } else {
      os << b.waiting_src;
    }
    os << ", tag=";
    if (b.waiting_tag < 0) {
      os << "ANY";
    } else {
      os << b.waiting_tag;
    }
    os << ");";
  };

  std::ostringstream os;
  os << "simulation deadlock: " << blocked.size()
     << " unfinished process(es) blocked with no matching message in flight"
     << " and no future wakeup;";
  if (threaded_run_) {
    // Per-partition detail: which worker owns the blocked ranks and what
    // each is waiting on, so a parallel deadlock report reads like the
    // sequential one instead of an undifferentiated rank list.
    std::map<int, std::vector<const DeadlockError::BlockedRank*>> by_worker;
    for (const auto& b : blocked) by_worker[b.home_worker].push_back(&b);
    for (const auto& [w, ranks] : by_worker) {
      os << " worker " << w << " (" << ranks.size() << " blocked):";
      std::size_t shown = 0;
      for (const auto* b : ranks) {
        if (shown++ == 4) {
          os << " ... (" << ranks.size() - 4 << " more);";
          break;
        }
        describe(os, *b);
      }
    }
  } else {
    std::size_t shown = 0;
    for (const auto& b : blocked) {
      if (shown++ == 8) {
        os << " ... (" << blocked.size() - 8 << " more)";
        break;
      }
      describe(os, b);
    }
  }
  abort_run(std::make_exception_ptr(DeadlockError(os.str(), std::move(blocked))));
}

void Engine::raise_budget(BudgetExceededError::Kind kind,
                          const std::string& what) {
  auto err = std::make_exception_ptr(BudgetExceededError(kind, what));
  if (Fiber::current() != nullptr) {
    // In fiber context: unwind this process body; the wrapper records the
    // error and the scheduler aborts the rest of the run.
    std::rethrow_exception(err);
  }
  abort_run(std::move(err));
}

bool Engine::host_budget_exhausted() const {
  return config_.max_host_seconds > 0.0 &&
         now_host_sec() > config_.max_host_seconds;
}

RunResult Engine::run() {
  STGSIM_CHECK(!ran_) << "Engine::run() is single-shot";
  ran_ = true;
  STGSIM_CHECK(body_ != nullptr) << "set_body() before run()";

  procs_.reserve(static_cast<std::size_t>(config_.num_processes));
  SplitMix64 seeder(config_.seed);
  for (int r = 0; r < config_.num_processes; ++r) {
    auto p = std::make_unique<Process>();
    p->engine_ = this;
    p->rank_ = r;
    if (config_.max_virtual_time > 0) {
      p->vtime_budget_ = config_.max_virtual_time;
    }
    p->rng_.reseed(seeder.next());
    if (!config_.partition.empty()) {
      STGSIM_CHECK_EQ(config_.partition.size(),
                      static_cast<std::size_t>(config_.num_processes));
      const int w = config_.partition[static_cast<std::size_t>(r)];
      STGSIM_CHECK(w >= 0 && w < config_.host_workers)
          << "partition maps rank " << r << " to worker " << w;
      p->home_worker_ = w;
    } else {
      p->home_worker_ = static_cast<int>(
          static_cast<long long>(r) * config_.host_workers /
          config_.num_processes);
    }
    Process* raw = p.get();
    p->fiber_ = std::make_unique<Fiber>(
        [this, raw] {
          try {
            body_(*raw);
          } catch (const FiberAborted&) {
            // Clean teardown: unwound by Engine::abort_run.
          } catch (...) {
            note_error(std::current_exception());
          }
        },
        config_.fiber_stack_bytes);
    procs_.push_back(std::move(p));
  }

  host_t0_sec_ = steady_now_sec();

  if (config_.use_threads && config_.host_workers > 1) {
    run_threaded();
  } else if (mc_active_) {
    run_sequential_mc();
  } else {
    run_sequential();
  }

  RunResult res;
  res.per_rank_completion.reserve(procs_.size());
  for (const auto& p : procs_) {
    STGSIM_CHECK(p->finished_);
    res.per_rank_completion.push_back(p->clock_);
    res.completion = std::max(res.completion, p->clock_);
  }
  res.host_seconds = now_host_sec();
  res.messages_delivered = messages_delivered_;
  res.slices = config_.record_host_trace
                   ? trace_.size()
                   : slices_.load(std::memory_order_relaxed);
  res.peak_target_bytes = memory_.peak_bytes();
  res.final_target_bytes = memory_.current_bytes();
  return res;
}

void Engine::run_sequential() {
  // Runnable processes keyed by virtual clock; clocks are frozen while a
  // process is ready, so entries never go stale. (key, id) pop order
  // matches the std::priority_queue<pair> the heap replaced.
  IndexedMinHeap<VTime> heap(config_.num_processes);
  ready_.reserve(procs_.size());
  for (const auto& p : procs_) heap.push(p->rank_, p->clock_);

  std::size_t remaining = procs_.size();
  std::uint64_t iter = 0;
  while (remaining > 0) {
    if (!wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/heap.empty());
      for (int woken : ready_) {
        heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
      }
      ready_.clear();
    }
    if (heap.empty()) raise_deadlock();
    // A process that blocks immediately never runs advance(), so its
    // in-fiber watchdog never fires; probe from the scheduler too.
    if ((++iter & 1023U) == 0 && host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired in scheduler");
    }
    const int rank = heap.pop();
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    resume_process(p);
    if (error_) abort_run(error_);
    if (p.finished_) --remaining;
    // Deliveries during the slice queued wakeups into ready_.
    for (int woken : ready_) {
      heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
    }
    ready_.clear();
  }
}

std::size_t Engine::oracle_choose(const std::vector<ChoiceOption>& options) {
  STGSIM_DCHECK(!options.empty());
  try {
    const std::size_t idx = oracle_->choose(options);
    STGSIM_CHECK_LT(idx, options.size())
        << "schedule oracle chose out of range";
    return idx;
  } catch (...) {
    // Unwind suspended fibers before the oracle's exception (typically a
    // deliberate prefix-abandon) leaves Engine::run().
    abort_run(std::current_exception());
  }
}

void Engine::run_sequential_mc() {
  // Ready ranks in a sorted vector (not the clock-ordered heap): in MC
  // mode *which* ready rank runs next is the oracle's choice, and the
  // sorted order gives the option list a canonical shape.
  std::vector<int> ready_set;
  auto add_ready = [&](int rank) {
    ready_set.insert(
        std::lower_bound(ready_set.begin(), ready_set.end(), rank), rank);
  };
  for (const auto& p : procs_) ready_set.push_back(p->rank_);

  std::size_t remaining = procs_.size();
  std::uint64_t iter = 0;
  std::vector<ChoiceOption> options;
  while (remaining > 0) {
    // Promotion point: with every lane drained no further message can
    // appear without some rank running first, so parked wildcard
    // candidate sets are final — the same quiescent condition the
    // threaded scheduler's barrier establishes before it promotes.
    if (inflight_total_ == 0 && !wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/ready_set.empty());
      for (int woken : ready_) add_ready(woken);
      ready_.clear();
    }
    if ((++iter & 255U) == 0 && host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired in MC scheduler");
    }

    options.clear();
    for (int rank : ready_set) {
      ChoiceOption c;
      c.kind = ChoiceOption::Kind::kResume;
      c.rank = rank;
      options.push_back(c);
    }
    for (const auto& lane : inflight_) {
      if (lane.q.empty()) continue;
      ChoiceOption c;
      c.kind = ChoiceOption::Kind::kDeliver;
      c.src = lane.src;
      c.dst = lane.dst;
      c.tag = lane.q.front().tag;
      options.push_back(c);
    }
    if (options.empty()) raise_deadlock();

    const ChoiceOption& c = options[oracle_choose(options)];
    if (c.kind == ChoiceOption::Kind::kResume) {
      ready_set.erase(
          std::find(ready_set.begin(), ready_set.end(), c.rank));
      Process& p = *procs_[static_cast<std::size_t>(c.rank)];
      resume_process(p);
      if (error_) abort_run(error_);
      if (p.finished_) --remaining;
    } else {
      InflightLane& lane = inflight_lane(c.src, c.dst);
      STGSIM_CHECK(!lane.q.empty());
      Message m = std::move(lane.q.front());
      lane.q.pop_front();
      --inflight_total_;
      deliver_now(std::move(m));
    }
    for (int woken : ready_) add_ready(woken);
    ready_.clear();
  }
}

bool Engine::drain_mailboxes(int worker, bool redelivery) {
  const int workers = config_.host_workers;
  bool any = false;
  Message m;
  auto drain_from = [&](int u) {
    SpscRing<Message>& ring =
        *mailboxes_[static_cast<std::size_t>(u) *
                        static_cast<std::size_t>(workers) +
                    static_cast<std::size_t>(worker)];
    while (ring.try_pop(&m)) {
      deliver(std::move(m), redelivery);
      any = true;
    }
  };
  if (oracle_ != nullptr) {
    // Schedule-checker hook: the claim the drain order is held to is that
    // it never affects simulated results (every cross-channel choice has
    // an explicit tie-break). Let the oracle permute it; validate that the
    // result is still a permutation of the sender set.
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(workers) - 1);
    for (int u = 0; u < workers; ++u) {
      if (u != worker) order.push_back(u);
    }
    const std::size_t n = order.size();
    oracle_->permute_drain_order(worker, order);
    STGSIM_CHECK_EQ(order.size(), n) << "drain order must stay a permutation";
    std::uint64_t seen = 0;
    for (int u : order) {
      STGSIM_CHECK(u >= 0 && u < workers && u != worker &&
                   (seen & (1ULL << u)) == 0)
          << "drain order must stay a permutation of the sender set";
      seen |= 1ULL << u;
      drain_from(u);
    }
    return any;
  }
  for (int u = 0; u < workers; ++u) {
    if (u == worker) continue;
    drain_from(u);
  }
  return any;
}

void Engine::run_partition_round(int worker) {
  g_current_worker = worker;
  IndexedMinHeap<VTime>& heap = worker_heaps_[static_cast<std::size_t>(worker)];
  std::vector<int>& local_ready = worker_ready_[static_cast<std::size_t>(worker)];
  WorkerStat& ws = worker_stats_[static_cast<std::size_t>(worker)];

  // round_running_ counts workers that currently have (or may produce)
  // local work. A worker leaves the count when its heap and mailboxes are
  // both empty, rejoins if a mailbox delivery wakes one of its ranks, and
  // exits the round when the count hits zero — at that point every worker
  // is idle, so only barrier-deferred messages remain.
  bool active = true;
  std::uint64_t iter = 0;
  for (;;) {
    // In-window cross-partition messages delivered by peers since the
    // last check; wakeups land on local_ready.
    drain_mailboxes(worker, /*redelivery=*/true);
    for (int woken : local_ready) {
      heap.push(woken, procs_[static_cast<std::size_t>(woken)]->clock_);
    }
    local_ready.clear();

    if (heap.empty()) {
      if (active) {
        active = false;
        round_running_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (has_error_.load(std::memory_order_acquire)) break;
      if (round_running_.load(std::memory_order_acquire) == 0) {
        // Everyone is idle. One last drain: a peer may have pushed right
        // before it went idle; the acquire above makes that push visible.
        if (!drain_mailboxes(worker, /*redelivery=*/true)) break;
        continue;
      }
      // A peer is still running and may yet feed us through a mailbox.
      // An idle spin that never probes the watchdog could outlive the
      // budget if that peer is stuck in a long slice.
      if ((++iter & 1023U) == 0 && host_budget_exhausted()) {
        note_error(std::make_exception_ptr(BudgetExceededError(
            BudgetExceededError::Kind::kHostWallClock,
            "host wall-clock watchdog fired in threaded worker " +
                std::to_string(worker))));
        break;
      }
      std::this_thread::yield();
      continue;
    }

    if (!active) {
      active = true;
      round_running_.fetch_add(1, std::memory_order_acq_rel);
    }
    // The round barrier only probes the wall-clock watchdog between
    // rounds; a round that never drains (e.g. two processes in the same
    // partition ping-ponging without advancing their clocks) would
    // otherwise spin forever. Probe in-loop, like the sequential
    // scheduler; the scheduler thread tears the run down at the barrier.
    if ((++iter & 1023U) == 0) {
      if (has_error_.load(std::memory_order_acquire)) break;
      if (host_budget_exhausted()) {
        note_error(std::make_exception_ptr(BudgetExceededError(
            BudgetExceededError::Kind::kHostWallClock,
            "host wall-clock watchdog fired in threaded worker " +
                std::to_string(worker))));
        break;
      }
    }
    const int rank = heap.pop();
    Process& p = *procs_[static_cast<std::size_t>(rank)];
    const VTime clock_before = p.clock_;
    resume_process(p);
    ws.busy_vtime += p.clock_ - clock_before;
    ++ws.slices;
  }
  if (active) round_running_.fetch_sub(1, std::memory_order_acq_rel);
}

namespace {

/// Mailbox depth per (sender worker, receiver worker) lane. Overflow is
/// not an error — excess traffic spills to the barrier outbox — so this
/// only bounds how much can bypass the barrier per round.
constexpr std::size_t kMailboxCapacity = 256;

/// Log2-ns buckets for ParallelStats::window_advance_hist.
constexpr std::size_t kAdvanceBuckets = 48;

std::size_t advance_bucket(VTime adv) {
  if (adv <= 0) return 0;
  auto v = static_cast<std::uint64_t>(adv);
  std::size_t b = 1;
  while (v > 1 && b + 1 < kAdvanceBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Engine::run_threaded() {
  const int workers = config_.host_workers;
  threaded_run_ = true;
  round_outboxes_.clear();
  round_outboxes_.resize(static_cast<std::size_t>(workers));
  worker_ready_.assign(static_cast<std::size_t>(workers), {});
  worker_wildcard_pending_.assign(static_cast<std::size_t>(workers), {});
  worker_heaps_.resize(static_cast<std::size_t>(workers));
  for (auto& h : worker_heaps_) h.reset(config_.num_processes);
  worker_stats_.assign(static_cast<std::size_t>(workers), WorkerStat{});
  const auto lanes = static_cast<std::size_t>(workers) *
                     static_cast<std::size_t>(workers);
  mailboxes_.clear();
  mailboxes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    mailboxes_.push_back(std::make_unique<SpscRing<Message>>(kMailboxCapacity));
  }
  spill_epoch_.assign(lanes, 0);
  round_epoch_ = 0;
  pstats_ = ParallelStats{};
  pstats_.window_advance_hist.assign(kAdvanceBuckets, 0);
  for (const auto& p : procs_) {
    worker_ready_[static_cast<std::size_t>(p->home_worker_)].push_back(
        p->rank_);
  }

  // Workers persist for the whole run; each pool round runs one
  // conservative window. A worker-side exception (simulator invariant
  // failure) must not escape the pool thread — record it and let the
  // scheduler abort at the barrier.
  WorkerPool pool(workers, [this](int w) {
    try {
      run_partition_round(w);
    } catch (...) {
      note_error(std::current_exception());
    }
  });

  auto any_ready = [&] {
    for (const auto& v : worker_ready_) {
      if (!v.empty()) return true;
    }
    return false;
  };

  VTime prev_min = kVTimeNever;
  while (true) {
    if (!any_ready()) {
      bool all_done = true;
      for (const auto& p : procs_) all_done = all_done && p->finished_;
      if (all_done) break;
      raise_deadlock();
    }

    // Conservative window for this round: no message sent from here on
    // can arrive before (min unfinished clock) + (latency floor), so
    // anything arriving at or below that bound is safe to hand straight
    // to the destination worker mid-round.
    VTime min_clock = kVTimeNever;
    for (const auto& p : procs_) {
      if (!p->finished_) min_clock = std::min(min_clock, p->clock_);
    }
    const VTime lookahead =
        wildcard_min_latency_.load(std::memory_order_relaxed);
    window_bound_ =
        min_clock == kVTimeNever ? kVTimeNever : min_clock + lookahead;
    ++pstats_.rounds;
    pstats_.window_advance_hist[advance_bucket(
        prev_min == kVTimeNever ? 0 : min_clock - prev_min)] += 1;
    prev_min = min_clock;
    ++round_epoch_;

    round_running_.store(workers, std::memory_order_relaxed);
    threaded_phase_ = true;
    pool.run_round();
    threaded_phase_ = false;
    if (error_) abort_run(error_);
    if (host_budget_exhausted()) {
      raise_budget(BudgetExceededError::Kind::kHostWallClock,
                   "host wall-clock watchdog fired at round barrier");
    }

    // Barrier reached: deliver everything still in flight. Mailboxes
    // first (a lane's outbox spill began only after its last successful
    // mailbox push, so draining rings before outboxes preserves
    // per-channel FIFO), in fixed (sender, receiver) order; then the
    // outboxes in worker order. Both orders are fixed and per-channel
    // order is preserved within each, so the flush — and therefore the
    // whole run — is deterministic.
    for (int v = 0; v < workers; ++v) {
      drain_mailboxes(v, /*redelivery=*/true);
    }
    for (auto& outbox : round_outboxes_) {
      for (auto& msg : outbox) deliver(std::move(msg), /*redelivery=*/true);
      outbox.clear();
    }

    // Wildcard receives always park during a round (clocks race); now the
    // barrier has frozen every clock and flushed every message, evaluate
    // the safety bound. Worker lists merge in fixed order, and promotion
    // itself is (arrival, rank)-deterministic, so this preserves the
    // sequential scheduler's commit choices.
    for (auto& pending : worker_wildcard_pending_) {
      wildcard_pending_.insert(wildcard_pending_.end(), pending.begin(),
                               pending.end());
      pending.clear();
    }
    if (!wildcard_pending_.empty()) {
      promote_safe_wildcards(/*stuck=*/!any_ready());
    }
  }

  for (const auto& ws : worker_stats_) {
    pstats_.intra_messages += ws.intra;
    pstats_.mailbox_messages += ws.mailbox;
    pstats_.barrier_messages += ws.barrier;
    pstats_.worker_busy_vtime.push_back(ws.busy_vtime);
    pstats_.worker_slices.push_back(ws.slices);
  }
  // Trim the histogram to the last populated bucket.
  while (!pstats_.window_advance_hist.empty() &&
         pstats_.window_advance_hist.back() == 0) {
    pstats_.window_advance_hist.pop_back();
  }
  threaded_run_ = false;
}

double replay_host_trace(const std::vector<Slice>& trace, int num_processes,
                         int workers, const HostModel& model) {
  STGSIM_CHECK_GT(workers, 0);
  STGSIM_CHECK_GT(num_processes, 0);

  auto worker_of = [&](int lp) {
    return static_cast<int>(static_cast<long long>(lp) * workers /
                            num_processes);
  };

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  std::vector<double> slice_start(trace.size(), 0.0);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Slice& s = trace[i];
    const int w = worker_of(s.lp);
    double ready = worker_free[static_cast<std::size_t>(w)];
    for (const Slice::Dep& d : s.deps) {
      STGSIM_DCHECK(d.slice <= i);
      double avail =
          slice_start[d.slice] + d.offset_sec * model.duration_scale;
      if (worker_of(d.producer_lp) != w) avail += model.cross_worker_msg_sec;
      ready = std::max(ready, avail);
    }
    slice_start[i] = ready;
    worker_free[static_cast<std::size_t>(w)] =
        ready + s.duration_sec * model.duration_scale +
        model.per_slice_overhead_sec;
  }

  double makespan = 0.0;
  for (double t : worker_free) makespan = std::max(makespan, t);
  return makespan;
}

}  // namespace stgsim::simk
