// Process-oriented parallel discrete-event simulation kernel.
//
// This is our reimplementation of the MPI-Sim substrate (paper §2.1): every
// target process is a fiber with its own virtual clock; local computation
// advances the clock without context switches; communication is exchanged
// as timestamped messages. Because target programs are deterministic and
// receive completion uses max(local clock, arrival time), simulation
// results are independent of the order in which processes are scheduled —
// the property direct-execution simulators rely on. Wildcard receives are
// the exception and are guarded by a conservative safety bound.
//
// Three scheduler modes are provided:
//  * Sequential: runs fibers lowest-clock-first on one OS thread. While it
//    runs, it records a *slice trace* (host-time cost of every execution
//    slice and the message dependencies between slices). Replaying the
//    trace under a k-worker list schedule yields the wall-clock the same
//    simulation would take on k host processors — this stands in for the
//    paper's measurements of MPI-Sim on a parallel host (Figs. 14-16),
//    since this container has a single core.
//  * Threaded conservative: partitions processes over a persistent pool
//    of worker threads. Each round the scheduler computes a conservative
//    lookahead window W = (min unfinished clock) + (network latency
//    floor); workers execute their partitions and exchange cross-partition
//    messages arriving inside the window through bounded SPSC mailboxes,
//    deferring the rest to the round barrier, where the deterministic
//    flush/merge order (and wildcard promotion) keeps results bit-identical
//    to the sequential scheduler. See DESIGN.md §10 for the protocol and
//    its safety argument.
//  * Optimistic (Time Warp, EngineConfig::optimistic): processes execute
//    speculatively past the safe bound; causality violations trigger
//    rollback via coast-forward replay from a per-process consumption log
//    (sim/rollback.hpp), speculative output is cancelled with
//    anti-messages, and periodic GVT passes fossil-collect the logs.
//    Committed results stay bit-identical to the sequential scheduler.
//    See DESIGN.md §15.
//
// Hot-path data structures (all per-engine, no global state):
//  * runnable processes sit in an IndexedMinHeap keyed by virtual clock;
//  * each process's inbox is a flat vector of per-source channels holding
//    intrusively-linked nodes from a shared ObjectArena<Message>;
//  * direct-execution payloads live in a size-classed PayloadPool.
// All three recycle storage, so steady-state simulation performs no heap
// allocation per message.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/mailbox.hpp"
#include "sim/message.hpp"
#include "sim/pool.hpp"
#include "sim/rollback.hpp"
#include "support/check.hpp"
#include "support/indexed_heap.hpp"
#include "support/memtrack.hpp"
#include "support/rng.hpp"
#include "support/vtime.hpp"

namespace stgsim::simk {

/// Instrumentation hooks the engine invokes on scheduling and messaging
/// events. All methods have empty default bodies; the engine calls them
/// only when an observer is installed (EngineConfig::observer), so the
/// disabled path costs a single predictable branch per event.
///
/// Threading contract: callbacks carrying a `rank` are invoked either on
/// the worker thread that owns that rank's partition or on the scheduler
/// thread between rounds — never from two threads at once for the same
/// rank. An implementation that shards its state per rank therefore needs
/// no locks. `on_send` runs on the *sender's* context and should shard by
/// `m.src`.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A process slice begins: `rank` is resumed at virtual time `clock`.
  virtual void on_resume(int rank, VTime clock) {
    (void)rank; (void)clock;
  }
  /// `rank` blocks at `clock` waiting for a message matching `spec`.
  virtual void on_block(int rank, VTime clock, const MatchSpec& spec) {
    (void)rank; (void)clock; (void)spec;
  }
  /// A delivery (or wildcard safety-bound promotion) wakes `rank`; the
  /// waking message arrives at `arrival` (kVTimeNever when unknown).
  virtual void on_wake(int rank, VTime clock, VTime arrival) {
    (void)rank; (void)clock; (void)arrival;
  }
  /// A message was handed to the engine for delivery.
  virtual void on_send(const Message& m) { (void)m; }
  /// One matching attempt by `rank`: `probes` queued messages were
  /// inspected; `hit` says whether one was removed.
  virtual void on_match(int rank, std::uint64_t probes, bool hit) {
    (void)rank; (void)probes; (void)hit;
  }
};

/// One schedulable step at an engine choice point, exposed to a
/// ScheduleOracle when the engine runs under model-checking control.
/// Options are labels, not indices: a schedule replayed against a fresh
/// engine run matches options by value, so a recorded prefix stays valid
/// as long as the engine is deterministic up to the controlled choices.
struct ChoiceOption {
  enum class Kind : std::uint8_t {
    kResume,    ///< resume ready process `rank`
    kDeliver,   ///< deliver the head of in-flight lane `src` -> `dst`
    kWildcard,  ///< stuck-promotion tie: wake parked wildcard `rank`
  };

  Kind kind = Kind::kResume;
  int rank = -1;  ///< kResume / kWildcard
  int src = -1;   ///< kDeliver
  int dst = -1;   ///< kDeliver
  int tag = 0;    ///< kDeliver: user tag of the lane-head message

  bool operator==(const ChoiceOption& o) const {
    return kind == o.kind && rank == o.rank && src == o.src && dst == o.dst &&
           tag == o.tag;
  }
};

/// Schedule-control hook (EngineConfig::oracle). With an oracle installed
/// and the sequential scheduler selected, the engine runs in MC mode:
/// sends are buffered in per-(src,dst) FIFO lanes instead of landing in
/// the destination inbox immediately, and every nondeterministic choice —
/// which ready rank runs next, which lane delivers its head message,
/// which of several tied parked wildcards is promoted first — is routed
/// through choose(). Under the threaded scheduler only the mailbox drain
/// order is exposed (permute_drain_order); simulated results must not
/// depend on it, which is exactly what a checker perturbs it to prove.
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;

  /// Picks one of `options` (never empty); must return an index < size.
  /// May throw to abandon the run: the engine tears fibers down cleanly
  /// and rethrows the exception out of Engine::run().
  virtual std::size_t choose(const std::vector<ChoiceOption>& options) = 0;

  /// Threaded scheduler: may reorder `from_workers`, the order in which
  /// `worker` drains its incoming mailboxes. Must remain a permutation.
  /// Called concurrently from worker threads — implementations shard or
  /// synchronize their own state.
  virtual void permute_drain_order(int worker,
                                   std::vector<int>& from_workers) {
    (void)worker;
    (void)from_workers;
  }
};

class Engine;

/// Queued-message node; lives in the engine's ObjectArena.
using MsgNode = ObjectArena<Message>::Node;

/// Handle a target-process body uses to interact with the simulation.
class Process {
 public:
  ~Process();

  int rank() const { return rank_; }
  int world_size() const;

  VTime now() const { return clock_; }

  /// Charges `dt` of local computation to this process's virtual clock.
  /// Enforces the virtual-time budget and (periodically) the host
  /// wall-clock watchdog. Defined after Engine.
  void advance(VTime dt);

  /// clock = max(clock, t); used for receive/transfer completions.
  /// Enforces the virtual-time budget. Defined after Engine.
  void lift_clock(VTime t);

  /// Sends a message. msg.src must equal rank(); seq is assigned here.
  void send(Message msg);

  /// Copies `n` bytes into a buffer from the engine's payload pool (the
  /// allocation-free path for direct-execution sends).
  PayloadBuf make_payload(const void* data, std::size_t n);

  /// Non-blocking probe-and-remove: returns true and fills *out if a
  /// message matching `spec` is available now.
  bool try_match(const MatchSpec& spec, Message* out);

  /// Non-destructive probe: reports whether a matching message is
  /// available and, if so, its arrival time (for earliest-completion
  /// selection among several candidates, e.g. waitany).
  bool peek_match(const MatchSpec& spec, VTime* arrival) const;

  /// Blocks until a matching message is available, removes and returns it.
  /// Receive *completion time* is the caller's business (lift_clock).
  Message blocking_match(const MatchSpec& spec);

  /// Deterministic per-process random stream.
  Rng& rng() { return rng_; }

  // --- Optimistic-mode checkpoint handshake (no-ops under conservative
  // runs). The engine decides *when* a checkpoint is due (every
  // checkpoint_interval committed consumptions); the application layer
  // decides *where* it is safe (a quiescent statement boundary with no
  // pending requests) and what goes in the blob. See DESIGN.md §15.

  /// True when the engine wants a checkpoint. Poll at safe boundaries.
  bool checkpoint_due() const { return opt_.checkpoint_due; }
  /// Captures a restore point: engine cursors + the caller's state blob.
  /// Call only from this process's own fiber, with no pending requests.
  void take_checkpoint(std::vector<std::uint8_t> app_blob);
  /// Non-null when this fiber incarnation must restore from a checkpoint
  /// blob instead of initializing fresh state (set by rollback, consumed
  /// once at body startup via clear_pending_restore).
  const std::vector<std::uint8_t>* pending_restore() const {
    return opt_.restore_armed ? &opt_.restore_blob : nullptr;
  }
  void clear_pending_restore() {
    opt_.restore_armed = false;
    opt_.restore_blob.clear();
    opt_.restore_blob.shrink_to_fit();
  }

  /// Tracker charged for this run's simulated program data.
  MemoryTracker& memory();

  Engine& engine() { return *engine_; }

  /// Slot for the layer above (smpi::Comm) to attach its state.
  void* user = nullptr;

 private:
  friend class Engine;

  /// One FIFO of queued messages from a single source. Three words when
  /// empty; nodes come from the engine's arena, so inbox overhead is
  /// bounded by peak in-flight messages, not message churn.
  struct Channel {
    int src = -1;
    MsgNode* head = nullptr;
    MsgNode* tail = nullptr;
  };

  Channel* find_channel(int src) {
    for (auto& ch : channels_) {
      if (ch.src == src) return &ch;
    }
    return nullptr;
  }
  const Channel* find_channel(int src) const {
    for (const auto& ch : channels_) {
      if (ch.src == src) return &ch;
    }
    return nullptr;
  }
  Channel& channel(int src) {
    if (Channel* ch = find_channel(src)) return *ch;
    channels_.push_back(Channel{src, nullptr, nullptr});
    return channels_.back();
  }

  /// Next outgoing seq for `dst` (flat map: senders talk to few peers).
  std::uint64_t next_seq_for(int dst) {
    for (auto& e : next_seq_) {
      if (e.first == dst) return e.second++;
    }
    next_seq_.push_back({dst, 1});
    return 0;
  }

  /// How many advance() calls between host wall-clock watchdog probes
  /// (clock_gettime per charge would be measurable on hot loops).
  static constexpr int kWatchdogStride = 4096;

  Engine* engine_ = nullptr;
  int rank_ = -1;
  VTime clock_ = 0;
  VTime vtime_budget_ = kVTimeNever;  ///< from EngineConfig.max_virtual_time
  int watchdog_countdown_ = kWatchdogStride;
  Rng rng_;

  std::unique_ptr<Fiber> fiber_;
  OptState opt_;  ///< optimistic-mode logs; inert under conservative runs
  bool finished_ = false;
  bool blocked_ = false;
  const MatchSpec* waiting_on_ = nullptr;  // valid while blocked_
  bool wildcard_parked_ = false;  ///< blocked wildcard with an unsafe match
  int home_worker_ = 0;

  // Inbox: per-source channels in send (seq) order. Channel order is
  // first-delivery order; all cross-channel choices use explicit
  // (arrival, src) tie-breaks, so iteration order never affects results.
  std::vector<Channel> channels_;
  std::uint64_t inbox_size_ = 0;

  // Next seq per destination for outgoing messages.
  std::vector<std::pair<int, std::uint64_t>> next_seq_;

  // Host-trace state: current slice id and its start instant.
  std::uint64_t current_slice_ = 0;
  double slice_begin_sec_ = 0.0;
  double resume_ready_sec_ = 0.0;  // host_avail of the message that woke us
};

/// One execution slice in the host trace: process `lp` ran for
/// `duration_sec` of host time; it could not start before its dependencies
/// (send points inside earlier slices) were produced.
struct Slice {
  int lp = 0;
  double duration_sec = 0.0;
  /// (producer slice index, host-time offset of the send within it,
  ///  producer lp) for every message consumed to unblock/feed this slice.
  struct Dep {
    std::uint64_t slice;
    double offset_sec;
    int producer_lp;
  };
  std::vector<Dep> deps;
};

/// Knobs for replaying a slice trace on an emulated parallel host.
struct HostModel {
  double per_slice_overhead_sec = 0.4e-6;   ///< scheduler/context switch
  double cross_worker_msg_sec = 3.0e-6;     ///< remote delivery overhead
  double per_round_sync_base_sec = 4.0e-6;  ///< (reserved for window modes)

  /// Multiplier applied to measured slice durations (and send offsets):
  /// set to the target-era slowdown to model the simulator running on the
  /// same machine generation it predicts, as the paper's did.
  double duration_scale = 1.0;
};

struct EngineConfig {
  int num_processes = 1;

  /// Threaded conservative mode when > 1 and use_threads; otherwise the
  /// value is only used as the default worker count for trace replay.
  int host_workers = 1;
  bool use_threads = false;

  /// rank -> worker map for the threaded scheduler (from
  /// simk::make_partition or custom). Empty means the historical block
  /// partition. Size must equal num_processes; values in
  /// [0, host_workers). Never affects simulated results — only which
  /// thread executes each rank.
  std::vector<int> partition;

  std::size_t fiber_stack_bytes = 256 * 1024;
  std::size_t memory_cap_bytes = 0;  ///< 0 = uncapped
  std::uint64_t seed = 0x5eedULL;

  /// Record the slice trace (sequential scheduler only).
  bool record_host_trace = false;

  /// Instrumentation sink (not owned; must outlive the engine). Null
  /// disables all observer callbacks at the cost of one branch per event.
  EngineObserver* observer = nullptr;

  /// Schedule-control hook (not owned; must outlive the engine). With the
  /// sequential scheduler this switches the engine into MC mode (see
  /// ScheduleOracle); with the threaded scheduler it only perturbs the
  /// mailbox drain order. Incompatible with record_host_trace.
  ScheduleOracle* oracle = nullptr;

  /// Test-only fault injection: wildcard receives commit to the first
  /// matching message on sight, skipping the safety bound — the pre-fix
  /// racy behavior the schedule checker must be able to rediscover.
  /// Never set outside tests and `stgsim check --inject`.
  bool unsafe_wildcard_commit = false;

  /// Optimistic (Time Warp) scheduler mode: processes execute
  /// speculatively past the conservative safety bound; a straggler or
  /// anti-message arriving in a process's past triggers rollback
  /// (coast-forward replay from the consumption log, see sim/rollback.hpp)
  /// and anti-messages for its speculative output; periodic GVT passes
  /// drive fossil collection. Committed results are bit-identical to the
  /// conservative sequential scheduler. Works under all three drivers
  /// (sequential, MC, threaded). Incompatible with record_host_trace.
  bool optimistic = false;

  /// Test-only fault injection for the optimistic mode: wildcard commits
  /// are finalized immediately instead of being tracked until GVT passes
  /// them, so stragglers never trigger the rollback that would correct the
  /// commit — the commit-before-GVT race `stgsim check` must rediscover.
  bool unsafe_commit_before_gvt = false;

  /// Optimistic mode: scheduler iterations between GVT / fossil passes.
  /// With gvt_adaptive the value is the starting cadence; the engine then
  /// retunes it from consumption-log pressure.
  std::uint64_t gvt_interval = 256;

  /// Optimistic mode: committed consumptions between per-rank checkpoints
  /// (engine cursors + an app-layer state blob, see sim/rollback.hpp).
  /// Checkpoints bound both rollback cost (coast-forward replays at most
  /// ~interval entries) and log memory (fossil collection frees entries
  /// below the newest GVT-committed checkpoint). 0 disables checkpointing:
  /// replay-from-zero, unbounded log — the pre-checkpoint behavior.
  std::uint64_t checkpoint_interval = 64;

  /// Auto-tune the per-rank checkpoint interval from observed rollbacks:
  /// halve it (floor 1) when a rank rolls back, grow it (cap 8x the
  /// configured value) after long rollback-free stretches. Never affects
  /// committed results — only where restore points sit.
  bool checkpoint_adaptive = true;

  /// Adapt the GVT cadence of the single-threaded optimistic drivers to
  /// consumption-log pressure: pass more often while retained log bytes
  /// grow, back off while the logs stay small.
  bool gvt_adaptive = true;

  /// Optimistic mode: bound on speculation depth. A ready rank whose clock
  /// is more than this far past GVT is throttled until GVT catches up
  /// (rollback-storm damper). 0 = unbounded speculation. Not applied in MC
  /// mode, where the oracle owns the schedule.
  VTime speculation_window = 0;

  // Run budgets (0 = unlimited). When a budget is exceeded the run is torn
  // down cleanly and BudgetExceededError is thrown, so a pathological
  // target program (unbounded loop, livelocked protocol) terminates with a
  // diagnosis instead of spinning forever.
  VTime max_virtual_time = 0;       ///< cap on any process's virtual clock
  std::uint64_t max_messages = 0;   ///< cap on delivered messages
  double max_host_seconds = 0.0;    ///< cap on real wall-clock for the run
};

/// Counters describing one threaded-conservative run (all zero after a
/// sequential run). Message counts are deterministic for a fixed partition
/// and fault plan; `rounds` and the mailbox/barrier split depend on host
/// timing (a message races the end of the round it was sent in) — they
/// are excluded from run digests.
struct ParallelStats {
  std::uint64_t rounds = 0;
  std::uint64_t intra_messages = 0;    ///< both endpoints on one worker
  std::uint64_t mailbox_messages = 0;  ///< cross-partition, in-window SPSC
  std::uint64_t barrier_messages = 0;  ///< cross-partition, barrier-flushed

  std::uint64_t cross_messages() const {
    return mailbox_messages + barrier_messages;
  }

  /// Bucket k>0 counts rounds whose safe-window base (min unfinished
  /// clock) advanced by [2^(k-1), 2^k) ns since the previous round;
  /// bucket 0 counts zero-advance rounds.
  std::vector<std::uint64_t> window_advance_hist;

  /// Per-worker virtual time spent executing slices (sum over executed
  /// slices of the resumed rank's clock delta) and slice counts.
  std::vector<VTime> worker_busy_vtime;
  std::vector<std::uint64_t> worker_slices;

  // Optimistic-mode counters (all zero under the conservative schedulers).
  // Deterministic under the sequential driver; under the threaded driver
  // rollback/anti counts depend on host timing. Excluded from run digests
  // either way.
  std::uint64_t rollbacks = 0;         ///< causality-violation rollbacks
  std::uint64_t anti_messages = 0;     ///< anti-messages sent
  std::uint64_t gvt_passes = 0;        ///< GVT computations that advanced
  std::uint64_t fossil_finalized = 0;  ///< wildcard records finalized
  std::uint64_t checkpoints_taken = 0; ///< restore points captured
  std::uint64_t replayed_events = 0;   ///< log entries re-fed by rollbacks
  std::uint64_t log_bytes_peak = 0;    ///< peak consumption-log bytes

  /// Bucket k>0 counts rollbacks that discarded [2^(k-1), 2^k) consumed
  /// entries; bucket 0 counts rollbacks that discarded none (pure send
  /// cancellation / annihilated-head cases).
  std::vector<std::uint64_t> rollback_depth_hist;
};

struct RunResult {
  VTime completion = 0;  ///< max over ranks of virtual finish time
  std::vector<VTime> per_rank_completion;

  double host_seconds = 0.0;  ///< real wall-clock of this simulation run
  std::uint64_t messages_delivered = 0;
  std::uint64_t slices = 0;
  std::size_t peak_target_bytes = 0;
  std::size_t final_target_bytes = 0;
};

/// Thrown when every unfinished process is blocked and nothing can match.
/// Carries a structured snapshot of every blocked rank (its virtual clock
/// and the MatchSpec it is waiting on) for programmatic inspection.
class DeadlockError : public std::runtime_error {
 public:
  struct BlockedRank {
    int rank = -1;
    VTime clock = 0;
    int waiting_src = -2;  ///< MatchSpec::kAnySource for wildcard; -2 none
    int waiting_tag = -1;
    std::string waiting_what;  ///< MatchSpec::what, e.g. "recv"
    int home_worker = 0;  ///< owning partition (0 under the sequential
                          ///< scheduler)
  };

  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
  DeadlockError(const std::string& what, std::vector<BlockedRank> blocked)
      : std::runtime_error(what), blocked_(std::move(blocked)) {}

  const std::vector<BlockedRank>& blocked() const { return blocked_; }

 private:
  std::vector<BlockedRank> blocked_;
};

/// Thrown when a run budget (EngineConfig::max_*) is exceeded.
class BudgetExceededError : public std::runtime_error {
 public:
  enum class Kind { kVirtualTime, kMessages, kHostWallClock };

  BudgetExceededError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

inline const char* budget_kind_name(BudgetExceededError::Kind k) {
  switch (k) {
    case BudgetExceededError::Kind::kVirtualTime: return "virtual time";
    case BudgetExceededError::Kind::kMessages: return "delivered messages";
    case BudgetExceededError::Kind::kHostWallClock: return "host wall clock";
  }
  return "unknown";
}

/// Thrown *inside* target-process fibers when the run is being torn down
/// (another process failed, or a deadlock was detected); it unwinds the
/// fiber stack so RAII state (arrays, inboxes) is released. Target code
/// must not swallow it.
struct FiberAborted {};

class Engine {
 public:
  using ProcessBody = std::function<void(Process&)>;

  explicit Engine(EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The body every process runs (rank via Process::rank()).
  void set_body(ProcessBody body) { body_ = std::move(body); }

  /// Optimistic mode: called with a rank just before its fiber is
  /// re-executed after a rollback, so layers above the engine (smpi
  /// per-rank stats, obs shards) can reset state the replay will rebuild.
  /// Like set_body, installed after construction (the harness builds the
  /// world only after the engine exists).
  void set_rollback_reset(std::function<void(int)> fn) {
    rollback_reset_ = std::move(fn);
  }

  /// Runs the simulation to completion. Callable once per Engine.
  RunResult run();

  const EngineConfig& config() const { return config_; }
  MemoryTracker& memory() { return memory_; }

  /// Recorded slice trace (empty unless config.record_host_trace).
  const std::vector<Slice>& host_trace() const { return trace_; }

  /// Lower bound on the arrival time of any message that could still be
  /// sent: min over unfinished processes of their clock, plus
  /// `min_latency`. `exclude_rank` (when >= 0) is left out of the scan —
  /// pass the blocked receiver itself, which cannot send while it waits.
  VTime wildcard_safe_bound(VTime min_latency, int exclude_rank = -1) const;

  /// Minimum over-the-wire latency used in the wildcard safety bound.
  /// Zero (the default) is always conservative-correct but forces every
  /// contested wildcard receive through the stuck-promotion slow path;
  /// the smpi layer sets it to Network::min_latency().
  void set_wildcard_min_latency(VTime min_latency) {
    wildcard_min_latency_.store(min_latency, std::memory_order_relaxed);
  }

  /// True when a wildcard receive by `p` may commit to a queued message
  /// arriving at `arrival`: no other unfinished process can still produce
  /// an earlier-arriving match. Always false during a threaded round
  /// (other ranks' clocks are racing); such receives park and are
  /// promoted at the barrier.
  bool wildcard_commit_safe(const Process& p, VTime arrival) const;

  /// Pool/arena accounting — simulator overhead, distinct from the
  /// MemoryTracker's target-visible bytes. Capacity is bounded by peak
  /// in-flight demand, never by total message churn.
  PayloadPool::Stats payload_stats() { return payload_pool_.stats(); }
  ObjectArena<Message>::Stats arena_stats() { return msg_arena_.stats(); }

  /// Counters from the threaded conservative protocol; all zero after a
  /// sequential run. Valid once run() returned.
  const ParallelStats& parallel_stats() const { return pstats_; }

  /// Test hook: optimistic log/checkpoint geometry of one rank, for
  /// asserting the fossil-pruning invariant (no entry below the newest
  /// GVT-committed checkpoint survives collection).
  struct OptDebug {
    std::uint64_t consumed_base = 0;
    std::uint64_t consumed_size = 0;
    std::uint64_t fossil_cursor = 0;
    std::uint64_t log_bytes = 0;
    std::vector<std::uint64_t> checkpoint_cursors;
  };
  OptDebug opt_debug(int rank) const;

  /// True once any wildcard receive (ANY_SOURCE / waitany union) was
  /// attempted this run. A schedule checker uses this to decide whether
  /// deliveries into one inbox from distinct sources commute.
  bool saw_wildcard_recv() const {
    return saw_wildcard_recv_.load(std::memory_order_relaxed);
  }

 private:
  friend class Process;

  struct WorkerStat;  // defined below (used by opt_stat)

  /// Routes a message to its destination. During a threaded round a
  /// cross-partition message goes to the in-window SPSC mailbox (or the
  /// barrier outbox when out-of-window / full / order requires it);
  /// otherwise it is inserted into the destination inbox directly.
  /// `redelivery` marks the second leg of a deferred message (mailbox
  /// drain / barrier flush) so protocol counters count each message once.
  void deliver(Message&& msg, bool redelivery = false);
  /// The direct-insert tail of deliver(): channel insert, message budget,
  /// wake-or-park. In MC mode deliver() buffers into an in-flight lane
  /// instead and the MC loop calls this when the oracle picks the lane.
  void deliver_now(Message&& msg);
  void run_sequential();
  /// Sequential scheduler under full oracle control (MC mode): every
  /// resume, lane delivery and stuck-promotion tie goes through
  /// config.oracle->choose(). See DESIGN.md §13 for the choice-point model.
  void run_sequential_mc();
  /// Routes oracle->choose() through abort_run on throw so suspended
  /// fibers unwind before the exception leaves Engine::run().
  std::size_t oracle_choose(const std::vector<ChoiceOption>& options);
  void run_threaded();
  /// One round of worker `w`: execute the partition, draining incoming
  /// mailboxes between slices, until no local work remains and the round
  /// is quiescing.
  void run_partition_round(int worker);
  /// Pops every queued message from `worker`'s incoming mailboxes and
  /// inserts it locally. Returns true if anything was delivered.
  bool drain_mailboxes(int worker, bool redelivery);
  void resume_process(Process& p);
  [[noreturn]] void raise_deadlock();

  /// Unblocks `p` and queues it on the appropriate ready list. `arrival`
  /// is the waking message's arrival time (for the observer).
  void wake_process(Process& p, VTime arrival);

  // --- Optimistic (Time Warp) mode; see DESIGN.md §15 ---

  /// (Re)creates `p`'s fiber around body_; used at startup and after a
  /// rollback unwound the speculative incarnation.
  void attach_fresh_fiber(Process& p);
  /// Copy for the consumption log: fields copied, payload refcount-shared
  /// with the pool (PayloadBuf::share) — no byte copy.
  Message clone_message(const Message& m);
  /// Replay feed: hands `p` the next logged consumption instead of
  /// touching the inbox. Called from try_match while p is replaying.
  bool opt_feed_replay(Process& p, const MatchSpec& spec, Message* out);
  /// Records a speculative wildcard commit (called from blocking_match).
  void opt_record_wildcard(Process& p, const MatchSpec& spec,
                           const Message& m);
  /// Straggler check for a just-queued message: if any live wildcard
  /// record of `dst` would have preferred it, rolls `dst` back to the
  /// earliest violated commit. Returns true if a rollback happened.
  bool opt_check_violation(Process& dst, const MsgNode* node);
  /// Annihilates `anti`'s positive counterpart: unlinks it from the inbox,
  /// or rolls `dst` back past its consumption.
  void opt_apply_anti(Process& dst, const Message& anti);
  /// Rolls `p` back to consumption index `k`: cancels speculative sends
  /// with anti-messages, requeues consumed messages >= k (dropping entry k
  /// itself when `drop_entry`, i.e. it was annihilated), resets execution
  /// state, and schedules the coast-forward replay.
  void opt_rollback(Process& p, std::uint64_t k, bool drop_entry);
  /// Performs the deferred fiber unwind + recreation scheduled by
  /// opt_rollback (runs at the next resume, from scheduler context).
  void opt_finish_unwind(Process& p);
  /// Inserts a rolled-back (unconsumed again) message into its channel in
  /// seq order — reinserted seqs can interleave with still-queued ones.
  MsgNode* opt_insert_sorted(Process& p, Message&& m);
  /// Queues `p` on the ready list of its driver (heap push happens in the
  /// driver loop, like wake_process without the unblock/observer step).
  void opt_make_ready(Process& p);
  /// Drains this context's pending anti-messages iteratively, so a
  /// rollback cascade never recurses deeper than one level per message.
  void opt_flush_antis();
  /// Exact GVT pass for the single-threaded drivers: min over unfinished
  /// clocks (and MC in-flight lanes), then fossil-collects every rank.
  void opt_gvt_pass();
  /// Fossil collection for one rank at GVT `g`: finalizes (erases)
  /// wildcard records with arrival < g, prunes the committed send-log
  /// prefix that no future rollback can cancel, and frees consumption-log
  /// entries below the newest checkpoint whose cursor the fossil cursor
  /// has passed (no future rollback can replay below that checkpoint).
  void opt_fossil_rank(Process& p, VTime g);
  /// Bookkeeping after `p` consumed a message (live match or replay feed):
  /// advances the checkpoint countdown, arming checkpoint_due when the
  /// effective interval elapses, and grows the adaptive interval after
  /// long rollback-free stretches.
  void opt_note_consume(Process& p);
  /// Process::take_checkpoint body: captures cursors + blob into
  /// OptState::checkpoints.
  void opt_take_checkpoint(Process& p, std::vector<std::uint8_t> blob);
  /// Consumption-log byte accounting (per-rank current + engine peak).
  void opt_log_charge(Process& p, const Message& m);
  void opt_log_release(Process& p, const Message& m);
  std::uint64_t opt_fold_log_bytes();
  static std::size_t opt_entry_bytes(const Message& m);
  /// True when the optimistic speculation window throttles `p`: its clock
  /// is more than config.speculation_window past GVT. Never true for the
  /// GVT-defining (minimum-clock) rank, so progress is preserved.
  bool opt_throttled(const Process& p) const;
  /// Re-arms the single-threaded drivers' GVT countdown; with gvt_adaptive
  /// the cadence shrinks while consumption-log bytes grow and stretches
  /// back out while they shrink (bounds [16, 4x configured]).
  void opt_retune_gvt();
  /// Per-context stat cell (worker-local when threaded, slot 0 otherwise).
  WorkerStat& opt_stat();
  /// Records `p` (blocked on a wildcard spec with at least one queued
  /// match) for later safety-bound promotion.
  void park_wildcard(Process& p);
  /// Wakes every parked process whose best queued match has passed the
  /// safety bound. When `stuck` (no process can run, so the queued message
  /// set is final), and no parked process is bound-safe, wakes exactly the
  /// one with the smallest (arrival, rank) — the choice is then exact.
  /// Single-threaded contexts only (sequential loop / round barrier).
  void promote_safe_wildcards(bool stuck);

  /// Raises BudgetExceededError: thrown in place when called from inside a
  /// target fiber (unwinding it through the body wrapper), or routed
  /// through abort_run when called from scheduler context (so suspended
  /// fibers still unwind and release RAII state).
  [[noreturn]] void raise_budget(BudgetExceededError::Kind kind,
                                 const std::string& what);

  /// True when max_host_seconds is set and the run has exceeded it.
  bool host_budget_exhausted() const;

  double now_host_sec() const;

  /// Ends the current slice of `p` and starts a fresh one (trace only).
  void split_slice(Process& p);

  /// Stores the first exception thrown by a process body.
  void note_error(std::exception_ptr e);
  /// Resumes every blocked fiber so it unwinds via FiberAborted, then
  /// rethrows the pending error (or `fallback` if none).
  [[noreturn]] void abort_run(std::exception_ptr fallback);

  EngineConfig config_;
  ProcessBody body_;

  // Pools are declared before procs_ so they outlive the processes whose
  // destructors recycle queued nodes — and payload_pool_ before
  // msg_arena_, whose chunk teardown releases payload buffers.
  PayloadPool payload_pool_;
  ObjectArena<Message> msg_arena_;

  std::vector<std::unique_ptr<Process>> procs_;
  MemoryTracker memory_;

  // Processes woken by deliveries during the current slice (sequential
  // scheduler); drained into the ready heap after each slice.
  std::vector<int> ready_;

  std::vector<Slice> trace_;
  std::atomic<std::uint64_t> messages_delivered_{0};
  // Per-engine resume count. Not the global Fiber::switch_count(): several
  // engines run concurrently under the campaign job pool, and a shared
  // counter would bleed one run's slices into another's RunResult.
  std::atomic<std::uint64_t> slices_{0};
  bool ran_ = false;

  // Threaded mode: per-worker ready lists, ready heaps (persistent across
  // rounds; drained within each), and outboxes for cross-partition
  // messages that could not ride a mailbox, flushed at the end-of-round
  // barrier.
  std::vector<std::vector<int>> worker_ready_;
  std::vector<IndexedMinHeap<VTime>> worker_heaps_;
  std::vector<std::vector<Message>> round_outboxes_;
  bool threaded_run_ = false;
  bool threaded_phase_ = false;

  // Lookahead-window state. mailboxes_[w * workers + v] carries messages
  // from worker w to worker v; spill_epoch_ records, per lane, the last
  // round in which a message was diverted to the outbox — once one spills,
  // the rest of that lane's round must follow it (per-channel FIFO).
  // window_bound_ is written by the scheduler before each round (the
  // pool barrier publishes it); round_running_ lets an idle worker leave
  // the round as soon as it is the last one that could still produce work.
  std::vector<std::unique_ptr<SpscRing<Message>>> mailboxes_;
  std::vector<std::uint64_t> spill_epoch_;
  std::uint64_t round_epoch_ = 0;
  VTime window_bound_ = kVTimeNever;
  std::atomic<int> round_running_{0};
  std::atomic<bool> has_error_{false};

  // Per-worker protocol counters, padded so workers never share a line.
  struct alignas(64) WorkerStat {
    static constexpr int kDepthBuckets = 24;

    std::uint64_t intra = 0;
    std::uint64_t mailbox = 0;
    std::uint64_t barrier = 0;
    std::uint64_t slices = 0;
    VTime busy_vtime = 0;
    // Optimistic-mode counters (slot 0 under the sequential drivers).
    std::uint64_t rollbacks = 0;
    std::uint64_t antis = 0;
    std::uint64_t fossil = 0;
    std::uint64_t replayed = 0;
    std::uint64_t depth_hist[kDepthBuckets] = {};  ///< log2(discarded entries)
  };
  std::vector<WorkerStat> worker_stats_;
  ParallelStats pstats_;

  // Optimistic-mode engine state. Anti-message cascades are queued per
  // context and drained iteratively from deliver_now's tail (flag guards
  // re-entry), so a chain of N cascading rollbacks costs O(1) stack.
  // gvt_ / gvt_passes_ are atomic for the threaded driver's mid-round
  // estimates; the floors/out-mins arrays implement the asynchronous GVT
  // (min of worker clock floors and in-transit mailbox arrivals).
  std::function<void(int)> rollback_reset_;
  std::vector<std::vector<Message>> opt_anti_queues_;
  std::vector<char> opt_flushing_;
  std::atomic<VTime> gvt_{0};
  std::atomic<std::uint64_t> gvt_passes_{0};
  std::atomic<int> opt_unfinished_delta_{0};  ///< finished ranks resurrected
  std::unique_ptr<std::atomic<VTime>[]> opt_floor_;
  std::unique_ptr<std::atomic<VTime>[]> opt_out_min_;

  // Consumption-log byte accounting: global current/peak across ranks
  // (atomic: the threaded driver logs on worker threads).
  std::atomic<std::uint64_t> opt_log_bytes_{0};
  std::atomic<std::uint64_t> opt_log_bytes_peak_{0};

  // Adaptive GVT cadence for the single-threaded optimistic drivers:
  // countdown to the next pass, re-armed to opt_gvt_interval_ which the
  // pass itself retunes from log pressure (within [16, 4x the baseline]).
  // A pass is an O(P) scan, so the adaptive baseline scales with the
  // rank count — a fixed cadence turns GVT into O(P/interval) amortized
  // work per scheduler pop, which at 4096+ ranks dominates the run. The
  // pressure threshold scales the same way: "the logs hold one eager
  // message per rank" is steady state, not an emergency.
  std::uint64_t opt_gvt_interval_ = 256;
  std::uint64_t opt_gvt_countdown_ = 256;
  std::uint64_t opt_gvt_base_ = 256;
  std::uint64_t opt_gvt_pressure_bytes_ = std::uint64_t{1} << 20;
  std::uint64_t opt_log_bytes_last_pass_ = 0;

  // Speculation-window throttling: ready ranks past the window wait here
  // (sequential driver) until a GVT pass re-admits them; the threaded
  // driver instead skips over-window heap minima for a round, with a
  // one-shot override when a whole round made no progress (the
  // window-defining minimum rank may be blocked on a throttled peer).
  std::vector<int> opt_throttled_;
  std::atomic<bool> opt_throttle_override_{false};
  // Rank granted a one-slice pass through the throttle check by the
  // sequential driver's forced release. Without it the released rank is
  // re-throttled at the very next pop (its clock is still past the
  // window) and the driver livelocks: GVT pass, release, re-throttle,
  // with no virtual state changing in between.
  int opt_release_exempt_ = -1;

  // Wildcard safety: ranks blocked on a wildcard receive whose queued
  // candidate has not passed the safety bound yet. Sequential deliveries
  // park into the global list; deliveries during a threaded round park
  // into the current worker's list, merged at the barrier. The latency
  // floor is atomic only because smpi::Comm instances set it (to the same
  // value) from every rank's fiber, including worker threads.
  std::atomic<VTime> wildcard_min_latency_{0};
  std::vector<int> wildcard_pending_;
  std::vector<std::vector<int>> worker_wildcard_pending_;

  // MC mode (oracle + sequential scheduler): sends buffer into per-
  // (src,dst) FIFO lanes and delivery of a lane head is itself a
  // schedulable step. Declared after the pools so queued payloads are
  // released before the pools tear down. Lanes are kept sorted by
  // (src,dst) so the option list the oracle sees has a canonical order.
  struct InflightLane {
    int src = -1;
    int dst = -1;
    std::deque<Message> q;

    InflightLane(int s, int d) : src(s), dst(d) {}
    // Copy deleted explicitly (Message is move-only; deque's copy ctor is
    // declared regardless, which would otherwise win move_if_noexcept).
    InflightLane(InflightLane&&) = default;
    InflightLane& operator=(InflightLane&&) = default;
    InflightLane(const InflightLane&) = delete;
    InflightLane& operator=(const InflightLane&) = delete;
  };
  InflightLane& inflight_lane(int src, int dst);
  std::vector<InflightLane> inflight_;
  std::size_t inflight_total_ = 0;

  ScheduleOracle* oracle_ = nullptr;
  bool mc_active_ = false;  ///< oracle installed and scheduler sequential
  std::atomic<bool> saw_wildcard_recv_{false};

  EngineObserver* observer_ = nullptr;

  std::mutex error_mutex_;
  std::exception_ptr error_;
  bool aborting_ = false;

  double host_t0_sec_ = 0.0;
};

// Defined here (not in-class) because they consult the Engine for budget
// enforcement. Both run in fiber context, so a budget violation throws
// straight through the process body into the engine's error path.

inline void Process::advance(VTime dt) {
  STGSIM_DCHECK(dt >= 0);
  clock_ += dt;
  if (clock_ > vtime_budget_) {
    engine_->raise_budget(
        BudgetExceededError::Kind::kVirtualTime,
        "virtual-time budget exceeded: rank " + std::to_string(rank_) +
            " reached " + vtime_to_string(clock_));
  }
  if (--watchdog_countdown_ <= 0) {
    watchdog_countdown_ = kWatchdogStride;
    if (engine_->host_budget_exhausted()) {
      engine_->raise_budget(
          BudgetExceededError::Kind::kHostWallClock,
          "host wall-clock watchdog fired in rank " + std::to_string(rank_));
    }
  }
}

inline void Process::lift_clock(VTime t) {
  if (t > clock_) {
    clock_ = t;
    if (clock_ > vtime_budget_) {
      engine_->raise_budget(
          BudgetExceededError::Kind::kVirtualTime,
          "virtual-time budget exceeded: rank " + std::to_string(rank_) +
              " reached " + vtime_to_string(clock_));
    }
  }
}

/// Replays `trace` on an emulated `workers`-processor host (block mapping
/// of processes to workers) and returns the predicted wall-clock seconds.
double replay_host_trace(const std::vector<Slice>& trace, int num_processes,
                         int workers, const HostModel& model = {});

}  // namespace stgsim::simk
