#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

#include "support/check.hpp"

namespace stgsim::simk {

namespace {

thread_local Fiber* g_current_fiber = nullptr;
// Global (not thread_local): the threaded scheduler resumes fibers from
// persistent worker threads, and per-thread counters would silently drop
// every resume performed off the scheduler thread. A relaxed increment is
// noise next to the swapcontext it accompanies.
std::atomic<unsigned long long> g_switches{0};

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = page_size();
  return (bytes + ps - 1) / ps * ps;
}

}  // namespace

Fiber::Fiber(BodyFn body, std::size_t stack_bytes) : body_(std::move(body)) {
  STGSIM_CHECK(body_ != nullptr);
  const std::size_t usable = round_up_pages(stack_bytes);
  map_bytes_ = usable + page_size();  // + guard page
  stack_base_ = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  STGSIM_CHECK(stack_base_ != MAP_FAILED) << "fiber stack mmap failed";
  // Guard page at the low end (stacks grow down on x86-64).
  STGSIM_CHECK_EQ(mprotect(stack_base_, page_size(), PROT_NONE), 0);

  STGSIM_CHECK_EQ(getcontext(&context_), 0);
  context_.uc_stack.ss_sp =
      static_cast<std::uint8_t*>(stack_base_) + page_size();
  context_.uc_stack.ss_size = usable;
  context_.uc_link = nullptr;  // run_body never falls off the trampoline

  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  // Fibers must not be destroyed while suspended mid-body with live RAII
  // state; the engine only destroys fibers after completion or when the
  // whole run is being torn down (where leaking fiber-local destructors
  // is acceptable for abnormal termination).
  if (stack_base_ != nullptr) {
    munmap(stack_base_, map_bytes_);
  }
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(bits)->run_body();
}

void Fiber::run_body() {
  body_();
  finished_ = true;
  // Return to whoever resumed us last; the fiber is never resumed again.
  Fiber* self = g_current_fiber;
  g_current_fiber = nullptr;
  swapcontext(&self->context_, &self->return_context_);
  STGSIM_UNREACHABLE("finished fiber resumed");
}

void Fiber::resume() {
  STGSIM_CHECK(g_current_fiber == nullptr)
      << "resume() called from inside a fiber";
  STGSIM_CHECK(!finished_) << "resume() on finished fiber";
  started_ = true;
  g_current_fiber = this;
  g_switches.fetch_add(1, std::memory_order_relaxed);
  STGSIM_CHECK_EQ(swapcontext(&return_context_, &context_), 0);
  STGSIM_CHECK(g_current_fiber == nullptr);
}

void Fiber::yield_to_scheduler() {
  Fiber* self = g_current_fiber;
  STGSIM_CHECK(self != nullptr) << "yield outside of fiber";
  g_current_fiber = nullptr;
  STGSIM_CHECK_EQ(swapcontext(&self->context_, &self->return_context_), 0);
  // Resumed again: restore current pointer (resume() set it before the
  // swap back into us).
  g_current_fiber = self;
}

Fiber* Fiber::current() { return g_current_fiber; }

unsigned long long Fiber::switch_count() {
  return g_switches.load(std::memory_order_relaxed);
}

}  // namespace stgsim::simk
