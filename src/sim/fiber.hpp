// Stackful fibers for process-oriented simulation.
//
// MPI-Sim simulates each target MPI process with a thread on the host; we
// use ucontext fibers instead of OS threads so a single host process can
// hold tens of thousands of target processes (the paper simulates Sweep3D
// on 10,000 target processors). Stacks are mmap'ed with a guard page so a
// runaway target program faults instead of corrupting a neighbouring fiber.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>

namespace stgsim::simk {

/// A suspendable call stack. Fibers are cooperatively scheduled: the
/// scheduler calls resume(), the fiber calls Fiber::yield_to_scheduler().
class Fiber {
 public:
  using BodyFn = std::function<void()>;

  /// Creates a fiber that will run `body` on first resume. `stack_bytes`
  /// is rounded up to whole pages; one extra guard page is added below.
  Fiber(BodyFn body, std::size_t stack_bytes);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Runs the fiber until it yields or its body returns.
  /// Must be called from scheduler context (not from inside a fiber).
  void resume();

  /// Suspends the currently running fiber, returning control to the
  /// scheduler that resumed it. Must be called from inside a fiber.
  static void yield_to_scheduler();

  /// The fiber currently executing on this OS thread, or nullptr.
  static Fiber* current();

  bool finished() const { return finished_; }

  /// Total resume() calls across all fibers process-wide (stats). Counts
  /// resumes from every thread, so threaded-scheduler slice totals match
  /// the sequential scheduler's.
  static unsigned long long switch_count();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  BodyFn body_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  void* stack_base_ = nullptr;   // mmap base (includes guard page)
  std::size_t map_bytes_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace stgsim::simk
