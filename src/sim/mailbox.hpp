// Bounded single-producer single-consumer ring used as a cross-partition
// mailbox by the threaded conservative scheduler.
//
// One ring connects one (sending worker, receiving worker) pair. During a
// round the sending worker is the only producer and the receiving worker
// the only consumer, so the ring needs no locks — just acquire/release
// pairs on the head and tail indices. At the round barrier the scheduler
// thread takes over the consumer role; the worker pool's barrier provides
// the happens-before edge that makes that hand-off safe.
//
// try_push never blocks: a full ring reports failure and the caller falls
// back to the per-round outbox (flushed at the barrier), so a burst of
// cross-partition traffic degrades to the old barrier path instead of
// stalling a worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace stgsim::simk {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (>= 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;
  SpscRing(SpscRing&&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false (leaving `v` untouched) when full.
  bool try_push(T&& v) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[h & mask_] = std::move(v);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T* out) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (head_.load(std::memory_order_acquire) == t) return false;
    *out = std::move(slots_[t & mask_]);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact for the consumer; a producer
  /// may have pushed since for other observers).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next push index
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next pop index
};

}  // namespace stgsim::simk
