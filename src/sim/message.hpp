// Message and matching types shared by the engine and the optimistic
// rollback log (sim/rollback.hpp). Split out of engine.hpp so the log
// structures can hold Messages and MatchSpecs by value without a circular
// include.
#pragma once

#include <cstdint>

#include "sim/pool.hpp"
#include "support/vtime.hpp"

namespace stgsim::simk {

/// A timestamped message between target processes. Payload holds real data
/// under direct execution; under the analytical model only `wire_bytes` is
/// meaningful and the payload stays empty. `kind` is a protocol-layer
/// discriminator (smpi: eager/RTS/CTS/collective) kept separate from the
/// user-level tag so matching never has to unpack bit fields.
struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;              ///< user-level tag (protocol kind is `kind`)
  std::uint8_t kind = 0;    ///< protocol-defined discriminator, < 8
  /// Optimistic mode only: this is an anti-message cancelling the positive
  /// message identified by (src, dst, seq). It annihilates its counterpart
  /// from the destination inbox, or triggers a rollback if the counterpart
  /// was already consumed. Never set under the conservative schedulers.
  bool anti = false;
  VTime sent_at = 0;        ///< virtual time the send was issued
  VTime arrival = 0;        ///< virtual time available at the receiver
  std::uint64_t seq = 0;    ///< per-(src,dst) send order (non-overtaking)
  std::uint64_t aux = 0;    ///< protocol-defined (rendezvous/collective ids)
  std::size_t wire_bytes = 0;
  PayloadBuf payload;       ///< pooled; empty under the analytical model

  // Host-trace bookkeeping (set by the engine on send).
  std::uint64_t producer_slice = 0;
  double producer_offset_sec = 0.0;
};

/// Matching rule for a (blocking) receive: plain data compared inline —
/// no std::function, no allocation per probe. The engine applies MPI
/// ordering: for a fixed source, the earliest message in send order that
/// the spec accepts. `any_of` expresses a union of alternatives (waitany):
/// the alternatives array must outlive the spec's use (stack-lived in the
/// blocked fiber is fine).
struct MatchSpec {
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;
  static constexpr std::uint8_t kAnyKind = 0xff;

  int src = kAnySource;
  int tag = kAnyTag;               ///< user tag; kAnyTag accepts all
  std::uint8_t kind_mask = kAnyKind;  ///< bit per accepted Message::kind
  bool match_aux = false;          ///< when set, require aux equality
  std::uint64_t aux = 0;

  const MatchSpec* any_of = nullptr;  ///< union of alternatives (waitany)
  std::uint32_t any_of_count = 0;

  // Diagnostic labels surfaced by the deadlock detector (never used for
  // matching): what operation is blocked and on which user-level tag.
  const char* what = "recv";  ///< e.g. "recv", "rendezvous-cts", "waitany"
  int user_tag = -1;          ///< user-level tag; -1 = wildcard/unknown

  bool accepts(const Message& m) const {
    if (any_of != nullptr) {
      for (std::uint32_t i = 0; i < any_of_count; ++i) {
        if (any_of[i].accepts(m)) return true;
      }
      return false;
    }
    if (src != kAnySource && src != m.src) return false;
    if ((kind_mask & static_cast<std::uint8_t>(1u << m.kind)) == 0) {
      return false;
    }
    if (tag != kAnyTag && tag != m.tag) return false;
    if (match_aux && aux != m.aux) return false;
    return true;
  }

  /// True when the choice of message can depend on scheduling order: the
  /// spec accepts more than one source (ANY_SOURCE, or a waitany union).
  /// Such receives may only commit under the engine's safety bound.
  bool is_wildcard() const {
    return src == kAnySource || any_of != nullptr;
  }
};

}  // namespace stgsim::simk
