#include "sim/partition.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace stgsim::simk {

const char* partition_mode_name(PartitionMode m) {
  switch (m) {
    case PartitionMode::kBlock: return "block";
    case PartitionMode::kInterleave: return "interleave";
    case PartitionMode::kComm: return "comm";
  }
  return "?";
}

bool parse_partition_mode(const std::string& name, PartitionMode* out) {
  if (name == "block") { *out = PartitionMode::kBlock; return true; }
  if (name == "interleave") { *out = PartitionMode::kInterleave; return true; }
  if (name == "comm") { *out = PartitionMode::kComm; return true; }
  return false;
}

Affinity::Affinity(int nranks)
    : nranks_(nranks), adj_(static_cast<std::size_t>(nranks)) {
  STGSIM_CHECK_GT(nranks, 0);
}

void Affinity::add(int a, int b, double w) {
  if (a == b || w <= 0.0) return;
  STGSIM_CHECK(a >= 0 && a < nranks_ && b >= 0 && b < nranks_);
  auto accumulate = [](std::vector<std::pair<int, double>>& row, int peer,
                       double weight) {
    for (auto& [p, acc] : row) {
      if (p == peer) {
        acc += weight;
        return;
      }
    }
    row.emplace_back(peer, weight);
  };
  accumulate(adj_[static_cast<std::size_t>(a)], b, w);
  accumulate(adj_[static_cast<std::size_t>(b)], a, w);
}

double Affinity::total_weight() const {
  double sum = 0.0;
  for (const auto& row : adj_) {
    for (const auto& [peer, w] : row) sum += w;
  }
  return sum / 2.0;  // every undirected edge is stored twice
}

std::vector<int> block_partition(int nranks, int workers) {
  STGSIM_CHECK_GT(workers, 0);
  std::vector<int> part(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    // Same mapping the engine historically used for home_worker_.
    part[static_cast<std::size_t>(r)] = static_cast<int>(
        static_cast<long long>(r) * workers / nranks);
  }
  return part;
}

std::vector<int> interleave_partition(int nranks, int workers) {
  STGSIM_CHECK_GT(workers, 0);
  std::vector<int> part(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    part[static_cast<std::size_t>(r)] = r % workers;
  }
  return part;
}

double cut_weight(const Affinity& aff, const std::vector<int>& part) {
  STGSIM_CHECK_EQ(part.size(), static_cast<std::size_t>(aff.nranks()));
  double cut = 0.0;
  for (int r = 0; r < aff.nranks(); ++r) {
    for (const auto& [peer, w] : aff.neighbors(r)) {
      if (peer > r && part[static_cast<std::size_t>(peer)] !=
                          part[static_cast<std::size_t>(r)]) {
        cut += w;
      }
    }
  }
  return cut;
}

namespace {

/// Weight from `r` to every part, computed on demand (rank degrees are
/// small for the mesh/grid patterns we partition).
void part_weights(const Affinity& aff, const std::vector<int>& part, int r,
                  std::vector<double>* w) {
  std::fill(w->begin(), w->end(), 0.0);
  for (const auto& [peer, pw] : aff.neighbors(r)) {
    (*w)[static_cast<std::size_t>(part[static_cast<std::size_t>(peer)])] +=
        pw;
  }
}

/// Greedy graph growing: parts are filled one at a time to their quota,
/// always absorbing the unassigned rank with the strongest connection to
/// the part grown so far (ties to the lowest rank; disconnected ranks seed
/// from the lowest unassigned id). Deterministic by construction.
std::vector<int> greedy_grow(const Affinity& aff, int workers,
                             const std::vector<int>& quota) {
  const int n = aff.nranks();
  std::vector<int> part(static_cast<std::size_t>(n), -1);
  std::vector<double> conn(static_cast<std::size_t>(n), 0.0);
  int next_seed = 0;

  for (int p = 0; p < workers; ++p) {
    std::fill(conn.begin(), conn.end(), 0.0);
    // Max-heap of (connection, -rank) with lazy deletion: stale entries
    // (connection no longer current, or rank already assigned) are
    // discarded on pop.
    std::priority_queue<std::pair<double, int>> heap;
    int grown = 0;
    while (grown < quota[static_cast<std::size_t>(p)]) {
      int pick = -1;
      while (!heap.empty()) {
        const auto [w, negr] = heap.top();
        const int r = -negr;
        if (part[static_cast<std::size_t>(r)] == -1 &&
            w == conn[static_cast<std::size_t>(r)]) {
          pick = r;
          break;
        }
        heap.pop();
      }
      if (pick == -1) {
        while (next_seed < n && part[static_cast<std::size_t>(next_seed)] != -1) {
          ++next_seed;
        }
        STGSIM_CHECK(next_seed < n);
        pick = next_seed;
      } else {
        heap.pop();
      }
      part[static_cast<std::size_t>(pick)] = p;
      ++grown;
      for (const auto& [peer, w] : aff.neighbors(pick)) {
        if (part[static_cast<std::size_t>(peer)] != -1) continue;
        conn[static_cast<std::size_t>(peer)] += w;
        heap.emplace(conn[static_cast<std::size_t>(peer)], -peer);
      }
    }
  }
  return part;
}

/// One Kernighan–Lin pass between parts `p` and `q`. The classic inner
/// loop: tentatively apply the best available swap (or quota-permitted
/// one-sided move) *even when its gain is negative*, lock the moved ranks,
/// and keep going; then commit the prefix of the move sequence with the
/// best cumulative gain and roll the rest back. Accepting interim negative
/// moves is what lets the pass climb out of zero-gain plateaus (e.g. a
/// row-blocked grid, where every single swap is gain <= 0 but a pair of
/// swaps re-tiles the boundary). Each rank moves at most once per pass, so
/// a pass is O(boundary^2) worst case, bounded by `max_moves`.
bool refine_pair(const Affinity& aff, std::vector<int>* part,
                 std::vector<int>* sizes, const std::vector<int>& quota,
                 int p, int q, int max_moves) {
  const int n = aff.nranks();
  std::vector<double> w(sizes->size());
  // D[r] = (weight to the other part) - (weight to own part): the cut
  // reduction of moving r across, before accounting for the partner swap.
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  std::vector<int> in_p, in_q;
  for (int r = 0; r < n; ++r) {
    const int pr = (*part)[static_cast<std::size_t>(r)];
    if (pr != p && pr != q) continue;
    part_weights(aff, *part, r, &w);
    const int other = pr == p ? q : p;
    d[static_cast<std::size_t>(r)] = w[static_cast<std::size_t>(other)] -
                                     w[static_cast<std::size_t>(pr)];
    (pr == p ? in_p : in_q).push_back(r);
  }

  auto weight_between = [&](int a, int b) {
    for (const auto& [peer, pw] : aff.neighbors(a)) {
      if (peer == b) return pw;
    }
    return 0.0;
  };

  auto apply_move = [&](int r, int from, int to) {
    (*part)[static_cast<std::size_t>(r)] = to;
    --(*sizes)[static_cast<std::size_t>(from)];
    ++(*sizes)[static_cast<std::size_t>(to)];
    // Crossing the boundary flips the sign of r's own D and shifts each
    // neighbor's by ±2w depending on which side it sits on.
    d[static_cast<std::size_t>(r)] = -d[static_cast<std::size_t>(r)];
    for (const auto& [peer, pw] : aff.neighbors(r)) {
      const int pp = (*part)[static_cast<std::size_t>(peer)];
      if (pp == to) {
        d[static_cast<std::size_t>(peer)] -= 2.0 * pw;
      } else if (pp == from) {
        d[static_cast<std::size_t>(peer)] += 2.0 * pw;
      }
    }
  };

  struct Move {
    int rank;
    int from;
    int to;
  };
  std::vector<Move> moves;  // tentative sequence, in application order
  double cumulative = 0.0, best_cum = 0.0;
  std::size_t best_len = 0;

  // Per-move candidate pool size per side. Classic KL maximizes
  // D_a + D_b - 2w(a,b) over *pairs* — taking the best-D rank from each
  // side independently is not enough (the two best-D ranks are often
  // connected, and the -2w term makes their swap the worst choice on a
  // plateau). A small pool bounds the pair scan at kPool^2 per move.
  constexpr std::size_t kPool = 8;

  std::vector<int> cand_p, cand_q;
  auto top_candidates = [&](const std::vector<int>& side, int owner,
                            std::vector<int>* out) {
    out->clear();
    for (int r : side) {
      if (locked[static_cast<std::size_t>(r)] ||
          (*part)[static_cast<std::size_t>(r)] != owner) {
        continue;
      }
      // Insertion sort by (D desc, rank asc); side lists are in ascending
      // rank order, so equal-D candidates stay rank-ordered.
      std::size_t i = out->size();
      out->push_back(r);
      while (i > 0 && d[static_cast<std::size_t>((*out)[i - 1])] <
                          d[static_cast<std::size_t>(r)]) {
        (*out)[i] = (*out)[i - 1];
        --i;
      }
      (*out)[i] = r;
      if (out->size() > kPool) out->pop_back();
    }
  };

  while (static_cast<int>(moves.size()) < max_moves) {
    top_candidates(in_p, p, &cand_p);
    top_candidates(in_q, q, &cand_q);
    if (cand_p.empty() && cand_q.empty()) break;

    // Option 1: one-sided move, when the balance budget allows it (only
    // possible while a part sits below its quota, i.e. after an uneven
    // greedy fill — swaps never create a deficit).
    constexpr double kNoGain = -1e300;
    double move_gain = kNoGain;
    int move_rank = -1, move_from = -1, move_to = -1;
    if (!cand_p.empty() && (*sizes)[static_cast<std::size_t>(q)] <
                               quota[static_cast<std::size_t>(q)]) {
      move_gain = d[static_cast<std::size_t>(cand_p[0])];
      move_rank = cand_p[0]; move_from = p; move_to = q;
    }
    if (!cand_q.empty() &&
        (*sizes)[static_cast<std::size_t>(p)] <
            quota[static_cast<std::size_t>(p)] &&
        d[static_cast<std::size_t>(cand_q[0])] > move_gain) {
      move_gain = d[static_cast<std::size_t>(cand_q[0])];
      move_rank = cand_q[0]; move_from = q; move_to = p;
    }

    // Option 2: the best swap over the candidate pools (keeps sizes
    // exactly; the workhorse when sizes already match quotas). Strict >
    // keeps the earliest — lowest-(rank_p, rank_q) — maximizing pair, so
    // the pass is deterministic.
    double swap_gain = kNoGain;
    int rp = -1, rq = -1;
    for (int a : cand_p) {
      for (int b : cand_q) {
        const double g = d[static_cast<std::size_t>(a)] +
                         d[static_cast<std::size_t>(b)] -
                         2.0 * weight_between(a, b);
        if (g > swap_gain) {
          swap_gain = g;
          rp = a;
          rq = b;
        }
      }
    }

    if (move_gain == kNoGain && swap_gain == kNoGain) break;
    if (move_gain >= swap_gain) {
      apply_move(move_rank, move_from, move_to);
      locked[static_cast<std::size_t>(move_rank)] = true;
      moves.push_back({move_rank, move_from, move_to});
      cumulative += move_gain;
    } else {
      apply_move(rp, p, q);
      apply_move(rq, q, p);
      locked[static_cast<std::size_t>(rp)] = true;
      locked[static_cast<std::size_t>(rq)] = true;
      moves.push_back({rp, p, q});
      moves.push_back({rq, q, p});
      cumulative += swap_gain;
    }
    if (cumulative > best_cum) {
      best_cum = cumulative;
      best_len = moves.size();
    }
  }

  // Roll back everything after the best prefix (in reverse order; the D
  // updates in apply_move are their own inverse).
  for (std::size_t i = moves.size(); i > best_len; --i) {
    const Move& m = moves[i - 1];
    apply_move(m.rank, m.to, m.from);
  }
  return best_cum > 0.0;
}

}  // namespace

std::vector<int> comm_partition(const Affinity& aff, int workers) {
  STGSIM_CHECK_GT(workers, 0);
  const int n = aff.nranks();

  // Balanced quotas matching block_partition's sizes: part p owns ranks
  // [p*n/k, (p+1)*n/k).
  std::vector<int> quota(static_cast<std::size_t>(workers));
  for (int p = 0; p < workers; ++p) {
    quota[static_cast<std::size_t>(p)] = static_cast<int>(
        static_cast<long long>(p + 1) * n / workers -
        static_cast<long long>(p) * n / workers);
  }

  std::vector<int> part = greedy_grow(aff, workers, quota);

  std::vector<int> sizes(static_cast<std::size_t>(workers), 0);
  for (int r = 0; r < n; ++r) {
    ++sizes[static_cast<std::size_t>(part[static_cast<std::size_t>(r)])];
  }

  // A KL pass can move every rank of the pair once; locking makes that a
  // natural bound, the cap is only a backstop.
  const int max_moves = std::max(64, 2 * ((n + workers - 1) / workers + 1));
  for (int pass = 0; pass < 4; ++pass) {
    bool improved = false;
    for (int p = 0; p < workers; ++p) {
      for (int q = p + 1; q < workers; ++q) {
        improved |= refine_pair(aff, &part, &sizes, quota, p, q, max_moves);
      }
    }
    if (!improved) break;
  }
  return part;
}

std::vector<int> make_partition(PartitionMode mode, int nranks, int workers,
                                const Affinity* aff) {
  switch (mode) {
    case PartitionMode::kBlock:
      return block_partition(nranks, workers);
    case PartitionMode::kInterleave:
      return interleave_partition(nranks, workers);
    case PartitionMode::kComm:
      STGSIM_CHECK(aff != nullptr)
          << "comm partitioning needs an affinity graph";
      STGSIM_CHECK_EQ(aff->nranks(), nranks);
      return comm_partition(*aff, workers);
  }
  return block_partition(nranks, workers);
}

}  // namespace stgsim::simk
