// Rank-to-worker partitioning for the threaded conservative scheduler.
//
// The cost of a threaded round is dominated by cross-partition messages:
// they either ride a bounded mailbox (cheap, but still a shared-memory
// hand-off) or wait for the round barrier (a whole extra round of latency).
// Partition quality therefore directly controls how much the parallel
// protocol costs, exactly as it did for MPI-Sim's distributed
// implementation. Three policies are provided:
//
//   kBlock       — contiguous rank blocks (the historical default; good
//                  for 1-D neighbor patterns, poor for 2-D grids);
//   kInterleave  — round-robin (a deliberate worst case for locality;
//                  useful as a stress test and load-balance baseline);
//   kComm        — communication-aware: greedy growth over the rank
//                  affinity graph followed by Kernighan–Lin-style boundary
//                  refinement, minimizing the weight of cut edges under a
//                  strict balance constraint (part sizes differ by <= 1).
//
// The affinity graph is extracted statically from the target program's
// communication structure (src/harness/affinity.*); the partitioners here
// are pure graph algorithms with no knowledge of the IR, so the sim layer
// stays at the bottom of the module graph.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace stgsim::simk {

enum class PartitionMode { kBlock, kInterleave, kComm };

const char* partition_mode_name(PartitionMode m);

/// Parses "block" / "interleave" / "comm"; returns false on anything else.
bool parse_partition_mode(const std::string& name, PartitionMode* out);

/// Sparse symmetric weighted graph over ranks. Edge weights accumulate:
/// add(a, b, w) twice contributes 2w. Self-edges are ignored (affinity to
/// oneself never crosses a partition).
class Affinity {
 public:
  explicit Affinity(int nranks);

  int nranks() const { return nranks_; }

  void add(int a, int b, double w);

  /// Neighbors of `r` with accumulated weights, in first-added order.
  const std::vector<std::pair<int, double>>& neighbors(int r) const {
    return adj_[static_cast<std::size_t>(r)];
  }

  /// Sum of all edge weights (each undirected edge counted once).
  double total_weight() const;

 private:
  int nranks_ = 0;
  std::vector<std::vector<std::pair<int, double>>> adj_;
};

/// rank -> worker maps. All three produce balanced parts (sizes differ by
/// at most one) and are deterministic functions of their inputs.
std::vector<int> block_partition(int nranks, int workers);
std::vector<int> interleave_partition(int nranks, int workers);
std::vector<int> comm_partition(const Affinity& aff, int workers);

/// Builds the rank->worker map for `mode`. `aff` may be null for kBlock /
/// kInterleave; kComm requires it.
std::vector<int> make_partition(PartitionMode mode, int nranks, int workers,
                                const Affinity* aff);

/// Total weight of edges whose endpoints land in different parts.
double cut_weight(const Affinity& aff, const std::vector<int>& part);

}  // namespace stgsim::simk
