// Per-engine slab allocators for the message hot path.
//
// Direct-execution mode used to pay one heap allocation per send (the
// payload vector) plus one per inbox insertion (deque growth). Both now
// come from engine-owned pools:
//
//   * PayloadPool — size-classed free lists of payload buffers. A DE-mode
//     send copies into a recycled buffer; the buffer returns to the pool
//     when the last reference drops. AM-mode messages carry no payload and
//     never touch the pool. Buffers are refcounted (a small header ahead of
//     the data) so the optimistic scheduler's consumption log can retain a
//     delivered payload by sharing it (PayloadBuf::share) instead of deep
//     cloning it: payload bytes are written once at make() and read-only
//     afterwards, which makes aliasing safe (copy-on-write degenerates to
//     copy-never).
//   * ObjectArena<T> — chunked slab of intrusively-linked nodes; the
//     engine stores queued messages in ObjectArena<Message> nodes, so an
//     empty inbox channel holds no heap storage at all (three words), and
//     node capacity is bounded by the peak number of in-flight messages,
//     not by message churn.
//
// Both are thread-safe via a spinlock: the threaded conservative scheduler
// allocates on the sending worker and releases on the receiving worker.
// The round barrier orders recycled-node reuse across workers. Neither
// pool charges MemoryTracker — payloads are simulator overhead, not
// target-visible data (target arrays are charged where they are
// allocated, as before).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace stgsim::simk {

/// Tiny test-and-set lock: critical sections here are a few instructions,
/// so a futex-based mutex would be overkill on the uncontended (sequential
/// scheduler) path.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class PayloadPool;

/// Move-only handle to a refcounted payload buffer; the storage returns to
/// its pool when the last handle drops. Copying is deliberately disabled —
/// aliasing must be explicit via share().
class PayloadBuf {
 public:
  PayloadBuf() = default;
  PayloadBuf(PayloadBuf&& o) noexcept { steal(o); }
  PayloadBuf& operator=(PayloadBuf&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  PayloadBuf(const PayloadBuf&) = delete;
  PayloadBuf& operator=(const PayloadBuf&) = delete;
  ~PayloadBuf() { reset(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const std::uint8_t* data() const { return data_; }
  std::uint8_t* data() { return data_; }

  /// Returns a second handle aliasing the same storage (refcount bump, no
  /// copy). Payload bytes are immutable after make(), so readers through
  /// either handle observe identical data.
  PayloadBuf share() const;

  /// Drops this handle; the storage returns to the pool when the last
  /// handle (original or shared) resets.
  void reset();

 private:
  friend class PayloadPool;
  PayloadBuf(PayloadPool* pool, std::uint8_t* data, std::size_t size, int cls)
      : pool_(pool), data_(data), size_(size), cls_(cls) {}

  void steal(PayloadBuf& o) {
    pool_ = o.pool_;
    data_ = o.data_;
    size_ = o.size_;
    cls_ = o.cls_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
    o.cls_ = 0;
  }

  PayloadPool* pool_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  int cls_ = 0;
};

/// Size-classed (geometric, x4 from 64 B to 1 MiB) payload allocator.
/// Oversized requests fall back to the heap but still release through the
/// same PayloadBuf interface.
class PayloadPool {
 public:
  PayloadPool() = default;
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  ~PayloadPool() {
    STGSIM_DCHECK(outstanding_.load() == 0)
        << "payload buffers outlive their pool";
    for (auto& cls : free_) {
      for (std::uint8_t* p : cls) delete[] p;
    }
  }

  /// Copies [src, src+n) into a pooled buffer with refcount 1. n == 0
  /// yields an empty, pool-free buffer. The bytes are immutable from here
  /// on — share() relies on it.
  PayloadBuf make(const void* src, std::size_t n) {
    if (n == 0) return PayloadBuf();
    const int cls = class_for(n);
    std::uint8_t* base = nullptr;
    if (cls >= 0) {
      lock_.lock();
      auto& list = free_[static_cast<std::size_t>(cls)];
      if (!list.empty()) {
        base = list.back();
        list.pop_back();
      }
      lock_.unlock();
      if (base == nullptr) base = new std::uint8_t[kHeaderBytes + class_bytes(cls)];
    } else {
      base = new std::uint8_t[kHeaderBytes + n];
    }
    std::uint8_t* data = base + kHeaderBytes;
    new (base) std::atomic<std::uint64_t>(1);
    std::memcpy(data, src, n);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return PayloadBuf(this, data, n, cls);
  }

  struct Stats {
    std::uint64_t outstanding = 0;   ///< live buffers
    std::size_t retained_bytes = 0;  ///< capacity parked in free lists
  };
  Stats stats() {
    Stats s;
    s.outstanding = outstanding_.load(std::memory_order_relaxed);
    lock_.lock();
    for (int c = 0; c < kClasses; ++c) {
      s.retained_bytes += free_[static_cast<std::size_t>(c)].size() *
                          class_bytes(c);
    }
    lock_.unlock();
    return s;
  }

 private:
  friend class PayloadBuf;
  static constexpr int kClasses = 8;  // 64 << 2c: 64 B ... 1 MiB
  /// Refcount header ahead of the payload bytes; 16 bytes keeps the data
  /// pointer at operator new[]'s default alignment.
  static constexpr std::size_t kHeaderBytes = 16;

  static std::atomic<std::uint64_t>* header_of(std::uint8_t* data) {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(data - kHeaderBytes);
  }

  static std::size_t class_bytes(int cls) {
    return std::size_t{64} << (2 * cls);
  }
  static int class_for(std::size_t n) {
    for (int c = 0; c < kClasses; ++c) {
      if (n <= class_bytes(c)) return c;
    }
    return -1;  // direct heap allocation
  }

  /// Drops one reference to `data`'s buffer; the storage is reclaimed
  /// only when the last reference goes.
  void unref(std::uint8_t* data, int cls) {
    if (header_of(data)->fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    std::uint8_t* base = data - kHeaderBytes;
    if (cls < 0) {
      delete[] base;
      return;
    }
    lock_.lock();
    free_[static_cast<std::size_t>(cls)].push_back(base);
    lock_.unlock();
  }

  SpinLock lock_;
  std::vector<std::uint8_t*> free_[kClasses];
  std::atomic<std::uint64_t> outstanding_{0};
};

inline void PayloadBuf::reset() {
  if (pool_ != nullptr) pool_->unref(data_, cls_);
  pool_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  cls_ = 0;
}

inline PayloadBuf PayloadBuf::share() const {
  if (pool_ == nullptr) return PayloadBuf();
  PayloadPool::header_of(data_)->fetch_add(1, std::memory_order_relaxed);
  return PayloadBuf(pool_, data_, size_, cls_);
}

/// Chunked slab of linked-list nodes with a shared free list. Node
/// addresses are stable for the arena's lifetime; chunks are only freed on
/// destruction, so capacity is bounded by the peak live-node count.
template <typename T>
class ObjectArena {
 public:
  struct Node {
    T value{};
    Node* next = nullptr;
  };

  ObjectArena() = default;
  ObjectArena(const ObjectArena&) = delete;
  ObjectArena& operator=(const ObjectArena&) = delete;

  /// Takes a node from the free list (or grows by one chunk) and moves
  /// `v` into it.
  Node* acquire(T&& v) {
    lock_.lock();
    Node* n = free_;
    if (n != nullptr) {
      free_ = n->next;
    } else {
      n = grow_locked();
    }
    live_ += 1;
    lock_.unlock();
    n->value = std::move(v);
    n->next = nullptr;
    return n;
  }

  /// Moves the value out and recycles the node.
  T release(Node* n) {
    T v = std::move(n->value);
    recycle(n);
    return v;
  }

  /// Recycles a node, destroying its value (teardown paths).
  void recycle(Node* n) {
    n->value = T{};  // release held resources (e.g. payload buffers) now
    lock_.lock();
    n->next = free_;
    free_ = n;
    live_ -= 1;
    lock_.unlock();
  }

  struct Stats {
    std::uint64_t live = 0;      ///< nodes currently queued
    std::uint64_t capacity = 0;  ///< nodes ever allocated (peak demand)
  };
  Stats stats() {
    lock_.lock();
    Stats s{live_, capacity_};
    lock_.unlock();
    return s;
  }

 private:
  static constexpr std::size_t kChunkNodes = 256;

  Node* grow_locked() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* chunk = chunks_.back().get();
    // Thread all but the first node onto the free list; hand out the first.
    for (std::size_t i = 1; i + 1 < kChunkNodes; ++i) {
      chunk[i].next = &chunk[i + 1];
    }
    chunk[kChunkNodes - 1].next = free_;
    free_ = &chunk[1];
    capacity_ += kChunkNodes;
    return &chunk[0];
  }

  SpinLock lock_;
  Node* free_ = nullptr;
  std::uint64_t live_ = 0;
  std::uint64_t capacity_ = 0;
  std::vector<std::unique_ptr<Node[]>> chunks_;
};

}  // namespace stgsim::simk
