// Per-process state log for the optimistic (Time Warp) scheduler mode.
//
// The optimistic mode does not snapshot fiber stacks (incompatible with
// sanitizers and with RAII state living on the stack). Instead every
// process keeps a *consumption log* — a copy of every message it has
// matched, in match order (payloads refcount-shared with the pool, not
// cloned) — and rollback is coast-forward replay: the fiber is unwound,
// recreated, and re-executed with its receives fed from the log and its
// sends (already delivered the first time) suppressed. Target bodies are
// deterministic given their rng seed and receive sequence, so replay
// reproduces the pre-rollback state exactly, at which point execution
// continues for real.
//
// Replay starts from the newest *checkpoint* at-or-before the rollback
// point, not from rank start. A checkpoint pairs the engine's replay
// cursors (consume cursor, send ordinal, clock, rng state, per-dst seq
// counters) with an opaque blob the application layer serialized at a
// quiescent statement boundary (no pending requests); restoring the blob
// and replaying consumed[cursor, k) reproduces the state at k. Because
// checkpoints are plain copyable data — unlike fibers — they are an
// inexhaustible rollback supply, which is what makes it sound to *free*
// log entries below the newest GVT-committed checkpoint (fossil pruning):
// no future rollback can target the freed prefix. Peak log memory is
// O(checkpoint interval), not O(history). See DESIGN.md §15.
//
// Logs per process:
//  * consumed — ConsumedEntry per matched message (the replay feed),
//    indexed by *absolute* cursor i as consumed[i - consumed_base]; fossil
//    pruning advances consumed_base to a committed checkpoint's cursor.
//  * checkpoints — restore points, cursor-ordered. Rollback to k pops
//    checkpoints with cursor > k and restores from the new back (or falls
//    back to replay-from-zero while no checkpoint exists yet).
//  * sends — SendRecord per delivered send, so speculative output past a
//    rollback point can be cancelled with anti-messages. Fossil-collected
//    up to GVT (a committed send can never need an anti).
//  * records — WildcardRecord per *speculative* wildcard commit still
//    inside the rollback horizon. A message arriving later that such a
//    record would have preferred (earlier (arrival, src)) is a causality
//    violation and triggers rollback. GVT finalizes records (erases them)
//    once no earlier-timestamped message can still appear.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "support/vtime.hpp"

namespace stgsim::simk {

/// One consumed (matched) message: a copy (payload refcount-shared with
/// the engine's pool) plus the send ordinal the consumer had reached,
/// which tells rollback which sends were issued before / after this match.
struct ConsumedEntry {
  Message msg;
  std::uint64_t sends_before = 0;  ///< send_ordinal at match time
};

/// A restore point: the engine-side cursors plus the application layer's
/// opaque state blob, captured at a quiescent statement boundary after the
/// consume cursor reached `cursor`. Copyable by design — restoring never
/// consumes the checkpoint, so one checkpoint services any number of
/// rollbacks.
struct Checkpoint {
  std::uint64_t cursor = 0;        ///< absolute consume cursor at capture
  std::uint64_t send_ordinal = 0;  ///< absolute send ordinal at capture
  VTime clock = 0;                 ///< process virtual clock at capture
  std::array<std::uint64_t, 4> rng{};  ///< xoshiro256** state
  /// Per-destination next message sequence numbers (flat map, as kept by
  /// the process). Suppressed replay sends still consume seqs, so these
  /// must be restored, not recomputed.
  std::vector<std::pair<int, std::uint64_t>> next_seq;
  /// Application-layer state (smpi counters, rank stats, obs shard,
  /// interpreter frame/arrays/position), serialized by the app layer. The
  /// engine treats it as opaque bytes.
  std::vector<std::uint8_t> app_blob;

  std::size_t bytes() const {
    return sizeof(Checkpoint) + next_seq.capacity() * sizeof(next_seq[0]) +
           app_blob.capacity();
  }
};

/// One delivered send, identified at the receiver by (sender rank, seq).
struct SendRecord {
  int dst = -1;
  std::uint64_t seq = 0;
  VTime sent_at = 0;
  VTime arrival = 0;
};

/// A wildcard commit that is still speculative: the receive chose the
/// earliest-(arrival, src) candidate *queued at the time*, but a slower
/// rank may still produce an earlier one. Self-contained copy of the
/// matching rule (waitany alternatives deep-copied into `alts`, so the
/// record never dangles into a fiber stack).
struct WildcardRecord {
  std::vector<MatchSpec> alts;  ///< non-empty iff the spec was a union
  MatchSpec spec;               ///< used when alts is empty
  VTime arrival = 0;            ///< committed candidate's arrival
  int src = -1;                 ///< committed candidate's source
  std::uint64_t consumed_index = 0;  ///< index into OptState::consumed

  bool accepts(const Message& m) const {
    if (!alts.empty()) {
      for (const MatchSpec& a : alts) {
        if (a.accepts(m)) return true;
      }
      return false;
    }
    return spec.accepts(m);
  }
};

/// All optimistic-mode state of one process. Empty/inert unless
/// EngineConfig::optimistic is set.
struct OptState {
  std::uint64_t rng_seed = 0;  ///< per-rank seed, reapplied on rollback

  // Consumption log. Absolute cursor i lives at consumed[i - consumed_base];
  // fossil pruning frees the front and advances consumed_base (only ever to
  // a committed checkpoint's cursor, so every reachable rollback target
  // stays replayable).
  std::vector<ConsumedEntry> consumed;
  std::uint64_t consumed_base = 0;

  // Checkpoints, cursor-ordered (strictly increasing). Capture is driven
  // by the engine setting checkpoint_due once since_checkpoint reaches
  // effective_interval; the application layer polls the flag at statement
  // boundaries and calls Process::take_checkpoint with its blob.
  std::vector<Checkpoint> checkpoints;
  std::uint64_t since_checkpoint = 0;
  std::uint64_t effective_interval = 0;  ///< adaptive; 0 = checkpoints off
  bool checkpoint_due = false;

  // Restore handoff: rollback into a checkpoint copies its blob here and
  // arms the flag; the recreated fiber consumes it at startup instead of
  // initializing fresh state.
  std::vector<std::uint8_t> restore_blob;
  bool restore_armed = false;

  // Adaptive-interval inputs: committed consumes since this rank last
  // rolled back (grow signal) and total rollbacks (shrink signal).
  std::uint64_t consumes_since_rollback = 0;

  // Per-rank counters surfaced through ParallelStats.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t log_bytes = 0;  ///< current consumption-log bytes

  // Send log. sends[i] is the send with ordinal send_base + i;
  // send_ordinal counts sends issued by the *current incarnation* of the
  // fiber (reset to 0 on rollback). During replay, sends with ordinal <
  // suppress_below were already delivered and are dropped (after a
  // consistency check against the log).
  std::vector<SendRecord> sends;
  std::uint64_t send_base = 0;
  std::uint64_t send_ordinal = 0;
  std::uint64_t suppress_below = 0;

  std::vector<WildcardRecord> records;

  // Replay feed: absolute cursors [replay_next, replay_limit) are handed
  // to the re-executing fiber in order; replay is over when they meet.
  // replay_next starts at the restored checkpoint's cursor (0 if none).
  std::uint64_t replay_next = 0;
  std::uint64_t replay_limit = 0;

  // Fiber lifecycle. A rollback discovered from scheduler or another
  // fiber's context cannot unwind the victim's fiber in place (ucontext
  // switches only happen from scheduler context): pending_unwind defers
  // the unwind + recreation to the next resume. rollback_abort makes the
  // old fiber throw FiberAborted at its suspended yield point. fresh is
  // true while the attached fiber has never run (nothing to unwind).
  bool pending_unwind = false;
  bool rollback_abort = false;
  bool fresh = true;

  // Fossil-collection cursor: first absolute consumed index whose arrival
  // has not passed GVT yet (send-log pruning point, and upper bound for
  // log pruning). Monotone except on rollback. Invariant: consumed_base <=
  // fossil_cursor <= every future rollback target.
  std::uint64_t fossil_cursor = 0;

  bool replaying() const { return replay_next < replay_limit; }

  /// Absolute consume cursor: the index the *next* match will occupy.
  std::uint64_t cursor() const {
    return replaying() ? replay_next : consumed_base + consumed.size();
  }

  /// Log entry at absolute cursor i.
  ConsumedEntry& entry(std::uint64_t i) {
    return consumed[static_cast<std::size_t>(i - consumed_base)];
  }
  const ConsumedEntry& entry(std::uint64_t i) const {
    return consumed[static_cast<std::size_t>(i - consumed_base)];
  }
};

}  // namespace stgsim::simk
