// Per-process state log for the optimistic (Time Warp) scheduler mode.
//
// The optimistic mode does not snapshot fiber stacks (incompatible with
// sanitizers and with RAII state living on the stack). Instead every
// process keeps a *consumption log* — a deep copy of every message it has
// matched, in match order — and rollback is coast-forward replay: the
// fiber is unwound, recreated, and re-executed from rank start with its
// receives fed from the log prefix and its sends (already delivered the
// first time) suppressed. Target bodies are deterministic given their rng
// seed and receive sequence, so replay reproduces the pre-rollback state
// exactly, at which point execution continues for real.
//
// Three logs per process:
//  * consumed — ConsumedEntry per matched message (the replay feed). Never
//    truncated from the front: replay always starts at rank start. The
//    trade-off (memory grows with total messages consumed) buys rollback
//    that needs no state snapshots at all; see DESIGN.md §15.
//  * sends — SendRecord per delivered send, so speculative output past a
//    rollback point can be cancelled with anti-messages. Fossil-collected
//    up to GVT (a committed send can never need an anti).
//  * records — WildcardRecord per *speculative* wildcard commit still
//    inside the rollback horizon. A message arriving later that such a
//    record would have preferred (earlier (arrival, src)) is a causality
//    violation and triggers rollback. GVT finalizes records (erases them)
//    once no earlier-timestamped message can still appear.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "support/vtime.hpp"

namespace stgsim::simk {

/// One consumed (matched) message: a deep copy (payload cloned from the
/// engine's pool) plus the send ordinal the consumer had reached, which
/// tells rollback which sends were issued before / after this match.
struct ConsumedEntry {
  Message msg;
  std::uint64_t sends_before = 0;  ///< send_ordinal at match time
};

/// One delivered send, identified at the receiver by (sender rank, seq).
struct SendRecord {
  int dst = -1;
  std::uint64_t seq = 0;
  VTime sent_at = 0;
  VTime arrival = 0;
};

/// A wildcard commit that is still speculative: the receive chose the
/// earliest-(arrival, src) candidate *queued at the time*, but a slower
/// rank may still produce an earlier one. Self-contained copy of the
/// matching rule (waitany alternatives deep-copied into `alts`, so the
/// record never dangles into a fiber stack).
struct WildcardRecord {
  std::vector<MatchSpec> alts;  ///< non-empty iff the spec was a union
  MatchSpec spec;               ///< used when alts is empty
  VTime arrival = 0;            ///< committed candidate's arrival
  int src = -1;                 ///< committed candidate's source
  std::uint64_t consumed_index = 0;  ///< index into OptState::consumed

  bool accepts(const Message& m) const {
    if (!alts.empty()) {
      for (const MatchSpec& a : alts) {
        if (a.accepts(m)) return true;
      }
      return false;
    }
    return spec.accepts(m);
  }
};

/// All optimistic-mode state of one process. Empty/inert unless
/// EngineConfig::optimistic is set.
struct OptState {
  std::uint64_t rng_seed = 0;  ///< per-rank seed, reapplied on rollback

  std::vector<ConsumedEntry> consumed;

  // Send log. sends[i] is the send with ordinal send_base + i;
  // send_ordinal counts sends issued by the *current incarnation* of the
  // fiber (reset to 0 on rollback). During replay, sends with ordinal <
  // suppress_below were already delivered and are dropped (after a
  // consistency check against the log).
  std::vector<SendRecord> sends;
  std::uint64_t send_base = 0;
  std::uint64_t send_ordinal = 0;
  std::uint64_t suppress_below = 0;

  std::vector<WildcardRecord> records;

  // Replay feed: consumed[replay_next .. replay_limit) are handed to the
  // re-executing fiber in order; replay is over when they meet.
  std::uint64_t replay_next = 0;
  std::uint64_t replay_limit = 0;

  // Fiber lifecycle. A rollback discovered from scheduler or another
  // fiber's context cannot unwind the victim's fiber in place (ucontext
  // switches only happen from scheduler context): pending_unwind defers
  // the unwind + recreation to the next resume. rollback_abort makes the
  // old fiber throw FiberAborted at its suspended yield point. fresh is
  // true while the attached fiber has never run (nothing to unwind).
  bool pending_unwind = false;
  bool rollback_abort = false;
  bool fresh = true;

  // Fossil-collection cursor: first consumed index whose arrival has not
  // passed GVT yet (send-log pruning point). Monotone except on rollback.
  std::uint64_t fossil_cursor = 0;

  bool replaying() const { return replay_next < replay_limit; }
};

}  // namespace stgsim::simk
