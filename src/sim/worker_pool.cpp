#include "sim/worker_pool.hpp"

#include "support/check.hpp"

namespace stgsim::simk {

namespace {

#if defined(__x86_64__) || defined(__i386__)
inline void cpu_relax() { __builtin_ia32_pause(); }
#else
inline void cpu_relax() { std::this_thread::yield(); }
#endif

/// Spin iterations on the release generation before a worker parks on the
/// condition variable. Small on purpose: on an oversubscribed (or
/// single-core) host spinning only steals cycles from the scheduler that
/// is about to release us.
constexpr int kReleaseSpins = 256;

}  // namespace

WorkerPool::WorkerPool(int workers, WorkFn fn) : fn_(std::move(fn)) {
  STGSIM_CHECK_GT(workers, 0);
  STGSIM_CHECK(fn_ != nullptr);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  release_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run_round() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done_count_ = 0;
    // Release edge: round state written by the scheduler before this call
    // is published to workers by the generation store + mutex.
    generation_.fetch_add(1, std::memory_order_release);
  }
  release_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return done_count_ == static_cast<int>(threads_.size());
  });
}

void WorkerPool::worker_main(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    // Fast path: the next round is released while we spin.
    bool released = false;
    for (int i = 0; i < kReleaseSpins; ++i) {
      if (generation_.load(std::memory_order_acquire) != seen) {
        released = true;
        break;
      }
      cpu_relax();
    }
    if (!released) {
      std::unique_lock<std::mutex> lock(mutex_);
      release_cv_.wait(lock, [this, seen] {
        return stop_ || generation_.load(std::memory_order_relaxed) != seen;
      });
      if (stop_) return;
    }
    seen = generation_.load(std::memory_order_acquire);

    fn_(w);

    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = ++done_count_ == static_cast<int>(threads_.size());
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace stgsim::simk
