// Persistent worker pool with a reusable round barrier.
//
// The threaded conservative scheduler runs one "round" per window: every
// worker executes its partition, then all meet at a barrier where the
// scheduler thread flushes deferred messages and promotes parked wildcard
// receives. The original implementation spawned and joined a fresh
// std::thread per partition every round — at 16k ranks a run takes
// thousands of rounds, so thread creation dominated. This pool keeps the
// workers alive for the whole run and releases them with a sense-reversing
// (generation-counted) barrier instead.
//
// Release protocol: run_round() bumps an atomic generation counter; each
// worker holds its last-seen generation (its private "sense") and runs one
// round whenever the shared counter differs. Workers spin briefly on the
// atomic before falling back to a condition variable, so back-to-back
// rounds on a multi-core host never enter the kernel. Completion mirrors
// the release: the last worker to finish flips the done count and wakes
// the scheduler. The mutex acquisitions on both edges double as the
// happens-before fences between scheduler-side round setup and worker-side
// execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stgsim::simk {

class WorkerPool {
 public:
  using WorkFn = std::function<void(int worker)>;

  /// Starts `workers` threads, all parked. `fn(w)` runs one round of
  /// worker w's work each time run_round() releases the pool; exceptions
  /// it throws must be handled inside `fn` (the pool has nowhere to
  /// rethrow them mid-round).
  WorkerPool(int workers, WorkFn fn);

  /// Joins all workers (any round in progress completes first).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Releases every worker for one round and blocks until all finish.
  void run_round();

 private:
  void worker_main(int w);

  WorkFn fn_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable release_cv_;  ///< scheduler -> workers
  std::condition_variable done_cv_;     ///< last worker -> scheduler
  std::atomic<std::uint64_t> generation_{0};
  int done_count_ = 0;
  bool stop_ = false;
};

}  // namespace stgsim::simk
