#include "smpi/collectives.hpp"

#include <stdexcept>

namespace stgsim::smpi {

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAlltoall: return "alltoall";
  }
  return "?";
}

const char* coll_algo_name(CollAlgo a) {
  switch (a) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kDissemination: return "dissemination";
    case CollAlgo::kPairwise: return "pairwise";
  }
  return "?";
}

namespace {

bool op_supports(CollOp op, CollAlgo a) {
  if (a == CollAlgo::kAuto || a == CollAlgo::kLinear) return true;
  switch (op) {
    case CollOp::kBarrier: return a == CollAlgo::kDissemination;
    case CollOp::kBcast:
    case CollOp::kReduce:
    case CollOp::kAllreduce:
      return a == CollAlgo::kBinomial || a == CollAlgo::kRing;
    case CollOp::kAlltoall: return a == CollAlgo::kPairwise;
  }
  return false;
}

constexpr CollAlgo kAllAlgos[] = {
    CollAlgo::kAuto,     CollAlgo::kLinear,        CollAlgo::kBinomial,
    CollAlgo::kRing,     CollAlgo::kDissemination, CollAlgo::kPairwise,
};

}  // namespace

std::string coll_algo_choices(CollOp op) {
  std::string out;
  for (CollAlgo a : kAllAlgos) {
    if (!op_supports(op, a)) continue;
    if (!out.empty()) out += ", ";
    out += coll_algo_name(a);
  }
  return out;
}

CollAlgo parse_coll_algo(CollOp op, const std::string& name) {
  for (CollAlgo a : kAllAlgos) {
    if (name == coll_algo_name(a)) {
      if (!op_supports(op, a)) {
        throw std::runtime_error(std::string(coll_op_name(op)) +
                                 " does not support the '" + name +
                                 "' algorithm (accepted: " +
                                 coll_algo_choices(op) + ")");
      }
      return a;
    }
  }
  throw std::runtime_error("unknown collective algorithm '" + name +
                           "' for " + coll_op_name(op) +
                           " (accepted: " + coll_algo_choices(op) + ")");
}

CollAlgo& coll_algo_field(CollectiveConfig& cfg, CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return cfg.barrier;
    case CollOp::kBcast: return cfg.bcast;
    case CollOp::kReduce: return cfg.reduce;
    case CollOp::kAllreduce: return cfg.allreduce;
    case CollOp::kAlltoall: return cfg.alltoall;
  }
  return cfg.barrier;  // unreachable
}

CollAlgo resolve_coll_algo(CollOp op, CollAlgo configured, std::size_t bytes,
                           std::size_t ring_threshold) {
  if (configured != CollAlgo::kAuto) return configured;
  switch (op) {
    case CollOp::kBarrier: return CollAlgo::kDissemination;
    case CollOp::kAlltoall: return CollAlgo::kPairwise;
    case CollOp::kBcast:
    case CollOp::kReduce:
    case CollOp::kAllreduce:
      return bytes >= ring_threshold ? CollAlgo::kRing : CollAlgo::kBinomial;
  }
  return CollAlgo::kBinomial;
}

}  // namespace stgsim::smpi
