// Collective algorithm selection.
//
// Real MPI libraries ship several algorithms per collective and pick one
// from a selection table keyed on message size and communicator size;
// which algorithm runs dominates collective cost at scale far more than
// the point-to-point constants do. This header is that table's
// configuration surface: per-operation algorithm choices (kAuto defers to
// the size-based default) carried from machine spec strings
// ("ibm_sp[algo.bcast=ring]") through World::Options into Comm, where
// every algorithm is built from the same point-to-point sends over the
// platform — costs emerge from the network model, never from closed
// forms.
//
//   barrier    auto | linear | dissemination
//   bcast      auto | linear | binomial | ring
//   reduce     auto | linear | binomial | ring
//   allreduce  auto | linear | binomial | ring
//   alltoall   auto | linear | pairwise
//
// kAuto resolves to the tree algorithms below `ring_threshold` bytes and
// the bandwidth-optimal ring algorithms at or above it (dissemination for
// barrier, pairwise for alltoall) — mirroring the latency-vs-bandwidth
// switch in MPICH/OpenMPI selection tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace stgsim::smpi {

enum class CollOp : std::uint8_t {
  kBarrier, kBcast, kReduce, kAllreduce, kAlltoall
};

enum class CollAlgo : std::uint8_t {
  kAuto, kLinear, kBinomial, kRing, kDissemination, kPairwise
};

const char* coll_op_name(CollOp op);
const char* coll_algo_name(CollAlgo a);

/// The algorithm names `op` accepts, comma-separated (errors and docs).
std::string coll_algo_choices(CollOp op);

/// Parses an algorithm name for `op`, validating against what the op
/// supports; throws std::runtime_error listing the accepted names.
CollAlgo parse_coll_algo(CollOp op, const std::string& name);

/// Per-run collective configuration (part of the machine description).
struct CollectiveConfig {
  CollAlgo barrier = CollAlgo::kAuto;
  CollAlgo bcast = CollAlgo::kAuto;
  CollAlgo reduce = CollAlgo::kAuto;
  CollAlgo allreduce = CollAlgo::kAuto;
  CollAlgo alltoall = CollAlgo::kAuto;

  /// kAuto switches bcast/reduce/allreduce from binomial to ring at this
  /// payload size (bytes). High enough that the latency-bound collectives
  /// the shipped apps issue (8-byte reductions and parameter broadcasts)
  /// keep their binomial trees — and their pre-platform digests.
  std::size_t ring_threshold = 64 * 1024;

  bool operator==(const CollectiveConfig&) const = default;
};

/// Mutable access to the per-op field (machine spec-string plumbing).
CollAlgo& coll_algo_field(CollectiveConfig& cfg, CollOp op);

/// Resolves kAuto to a concrete algorithm for a `bytes`-sized payload.
CollAlgo resolve_coll_algo(CollOp op, CollAlgo configured, std::size_t bytes,
                           std::size_t ring_threshold);

}  // namespace stgsim::smpi
