#include "smpi/smpi.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace stgsim::smpi {

namespace {

/// Wire size charged for control messages (RTS/CTS envelopes).
constexpr std::size_t kControlBytes = 64;

}  // namespace

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

double World::param(const std::string& name) const {
  auto it = params_.find(name);
  STGSIM_CHECK(it != params_.end())
      << "missing model parameter '" << name
      << "' — run the timer-instrumented program first (Figure 2 workflow)";
  return it->second;
}

std::string CommTrace::diff(const CommTrace& other) const {
  std::ostringstream os;
  if (per_rank_.size() != other.per_rank_.size()) {
    os << "rank count differs: " << per_rank_.size() << " vs "
       << other.per_rank_.size();
    return os.str();
  }
  for (std::size_t r = 0; r < per_rank_.size(); ++r) {
    const auto& a = per_rank_[r];
    const auto& b = other.per_rank_[r];
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(a[i] == b[i])) {
        os << "rank " << r << " op " << i << ": kind "
           << static_cast<int>(a[i].kind) << "/" << static_cast<int>(b[i].kind)
           << " peer " << a[i].peer << "/" << b[i].peer << " tag " << a[i].tag
           << "/" << b[i].tag << " bytes " << a[i].bytes << "/" << b[i].bytes;
        return os.str();
      }
    }
    if (a.size() != b.size()) {
      os << "rank " << r << ": op count " << a.size() << " vs " << b.size();
      return os.str();
    }
  }
  return "";
}

RankStats World::aggregate_stats() const {
  RankStats agg;
  for (const auto& s : stats_) {
    agg.compute_time = std::max(agg.compute_time, s.compute_time);
    agg.comm_time = std::max(agg.comm_time, s.comm_time);
    agg.sends += s.sends;
    agg.recvs += s.recvs;
    agg.collectives += s.collectives;
    agg.delays += s.delays;
    agg.bytes_sent += s.bytes_sent;
  }
  return agg;
}

// ---------------------------------------------------------------------------
// Comm: basics
// ---------------------------------------------------------------------------

Comm::Comm(World& world, simk::Process& proc)
    : world_(world), proc_(proc), stats_(world.stats(proc.rank())) {
  STGSIM_CHECK_EQ(world.nranks(), proc.world_size());
  proc_.user = this;
  // Arm the engine's wildcard (ANY_SOURCE / waitany) safety bound with
  // this network's latency floor; without it the bound degenerates to the
  // raw minimum clock and every contested wildcard receive takes the
  // stuck-promotion slow path. The floor includes the fault plan's
  // always-on global latency factors — a sound, possibly larger bound.
  proc_.engine().set_wildcard_min_latency(world_.wildcard_latency_floor());
}

Comm::~Comm() { proc_.user = nullptr; }

void Comm::save_state(BlobWriter& w) const {
  w.u32(next_rid_);
  w.u64(coll_seq_);
  w.pod(stats_);
  obs::Recorder* rec = world_.options().obs;
  w.u8(rec != nullptr ? 1 : 0);
  if (rec != nullptr) rec->save_rank(proc_.rank(), w);
}

void Comm::restore_state(BlobReader& r) {
  next_rid_ = r.u32();
  coll_seq_ = r.u64();
  stats_ = r.get<RankStats>();
  const bool had_obs = r.u8() != 0;
  obs::Recorder* rec = world_.options().obs;
  STGSIM_CHECK_EQ(had_obs, rec != nullptr)
      << "checkpoint blob and run disagree about observability";
  if (rec != nullptr) rec->restore_rank(proc_.rank(), r);
}

void Comm::compute(VTime t) {
  const VTime t0 = now();
  const VTime dt = stretched(t);
  proc_.advance(dt);
  stats_.compute_time += dt;
  obs_op(obs::OpKind::kCompute, -1, 0, t0);
}

void Comm::delay(VTime t) {
  STGSIM_CHECK_GE(t, 0) << "negative delay — bad scaling function?";
  const VTime t0 = now();
  const VTime dt = stretched(t);
  proc_.advance(dt);
  stats_.compute_time += dt;
  ++stats_.delays;
  obs_op(obs::OpKind::kDelay, -1, 0, t0);
}

void Comm::send_raw(int dst, MsgKind msg_kind, int tag, std::uint64_t aux,
                    const void* data, std::size_t bytes,
                    std::size_t wire_bytes, net::TransferKind kind) {
  simk::Message m;
  m.src = rank();
  m.dst = dst;
  m.kind = msg_kind;
  m.tag = tag;
  m.aux = aux;
  m.sent_at = now();
  m.arrival =
      world_.network().arrival(rank(), dst, now(), wire_bytes, proc_.rng(), kind);
  m.wire_bytes = bytes;  // logical message size (status / rndv transfer)
  if (data != nullptr && bytes > 0) {
    m.payload = proc_.make_payload(data, bytes);
  }
  proc_.send(std::move(m));
}

VTime Comm::abstract_coll_cost(std::size_t bytes) const {
  const auto& net = world_.options().net;
  int rounds = 0;
  for (int span = 1; span < size(); span <<= 1) ++rounds;
  // Hop-aware round latency: a collective's rounds cross the platform's
  // diameter in the worst case. On the flat preset the diameter is the
  // base latency, reproducing the pre-platform closed form exactly.
  const VTime per_round = world_.network().platform().diameter_latency() +
                          net.send_overhead + net.recv_overhead;
  return rounds * per_round +
         vtime_from_sec(static_cast<double>(bytes) / net.bytes_per_sec);
}

void Comm::coll_send_at(int dst, int round, const void* data,
                        std::size_t bytes, VTime arrival) {
  const std::uint64_t aux =
      (coll_seq_ << 8) | static_cast<std::uint64_t>(round & 0xff);
  simk::Message m;
  m.src = rank();
  m.dst = dst;
  m.kind = kKindColl;
  m.tag = 0;
  m.aux = aux;
  m.sent_at = now();
  m.arrival = std::max(arrival, now());
  m.wire_bytes = bytes;
  if (data != nullptr && bytes > 0) {
    m.payload = proc_.make_payload(data, bytes);
  }
  proc_.send(std::move(m));
  stats_.bytes_sent += bytes;
  if (world_.options().obs != nullptr) {
    world_.options().obs->count_coll_msg(rank(), dst, bytes);
  }
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  const VTime t0 = now();
  STGSIM_CHECK(dst >= 0 && dst < size());
  trace(CommEvent::Kind::kSend, dst, tag, bytes);
  proc_.advance(world_.options().net.send_overhead);
  ++stats_.sends;
  stats_.bytes_sent += bytes;

  if (abstract_comm() || !world_.network().uses_rendezvous(bytes)) {
    send_raw(dst, kKindEager, tag, 0, data, bytes, bytes);
  } else {
    // Rendezvous: the RTS envelope carries the payload for fidelity of the
    // data, but only kControlBytes travel now; the bulk transfer is modeled
    // by the receiver once it grants the CTS. The blocking send completes
    // when the CTS arrives — i.e. not before the receive is posted.
    const std::uint64_t rid =
        (static_cast<std::uint64_t>(rank()) << 32) | next_rid_++;
    {
      simk::Message m;
      m.src = rank();
      m.dst = dst;
      m.kind = kKindRts;
      m.tag = tag;
      m.aux = rid;
      m.sent_at = now();
      m.arrival = world_.network().arrival(rank(), dst, now(), kControlBytes,
                                           proc_.rng(),
                                           net::TransferKind::kControl);
      m.wire_bytes = bytes;
      if (data != nullptr && bytes > 0) {
        m.payload = proc_.make_payload(data, bytes);
      }
      proc_.send(std::move(m));
    }
    simk::MatchSpec spec;
    spec.src = dst;
    spec.kind_mask = kMaskCts;
    spec.match_aux = true;
    spec.aux = rid;
    spec.what = "rendezvous-cts";
    spec.user_tag = tag;
    simk::Message cts = proc_.blocking_match(spec);
    proc_.lift_clock(cts.arrival);
  }
  stats_.comm_time += now() - t0;
  if (world_.options().obs != nullptr) {
    world_.options().obs->count_p2p(
        rank(), dst, bytes,
        !abstract_comm() && world_.network().uses_rendezvous(bytes));
    obs_op(obs::OpKind::kSend, dst, bytes, t0);
  }
}

simk::Message Comm::match_recv(int src, int user_tag) {
  simk::MatchSpec spec;
  spec.src = (src == kAnySource) ? simk::MatchSpec::kAnySource : src;
  spec.kind_mask = kMaskP2P;
  spec.tag = user_tag;  // kAnyTag == MatchSpec::kAnyTag
  spec.what = "recv";
  spec.user_tag = user_tag;
  return proc_.blocking_match(spec);
}

void Comm::complete_eager_or_rts(simk::Message& m, void* data,
                                 std::size_t bytes, RecvStatus* status) {
  if (m.wire_bytes > bytes) {
    // A target-program bug (MPI_ERR_TRUNCATE territory), not a simulator
    // invariant: report it structurally so the harness can surface an
    // internal_error outcome instead of a check-failure banner.
    std::ostringstream os;
    os << "rank " << rank() << ": receive buffer too small: posted " << bytes
       << " got " << m.wire_bytes << " (src " << m.src << " tag " << m.tag
       << ")";
    throw TargetProgramError(os.str());
  }
  proc_.lift_clock(m.arrival);

  if (m.kind == kKindRts) {
    // Grant the transfer: CTS back to the sender, then model the bulk
    // data crossing the wire starting when the CTS reaches the sender.
    const VTime cts_arrival = world_.network().arrival(
        rank(), m.src, now(), kControlBytes, proc_.rng(),
        net::TransferKind::kControl);
    {
      simk::Message cts;
      cts.src = rank();
      cts.dst = m.src;
      cts.kind = kKindCts;
      cts.tag = m.tag;
      cts.aux = m.aux;
      cts.sent_at = now();
      cts.arrival = cts_arrival;
      cts.wire_bytes = kControlBytes;
      proc_.send(std::move(cts));
    }
    const VTime data_done = world_.network().arrival(
        m.src, rank(), cts_arrival, m.wire_bytes, proc_.rng(),
        net::TransferKind::kRendezvousData);
    proc_.lift_clock(data_done);
  }

  proc_.advance(world_.options().net.recv_overhead);
  if (data != nullptr && !m.payload.empty()) {
    std::memcpy(data, m.payload.data(), m.payload.size());
  }
  if (status != nullptr) {
    status->src = m.src;
    status->tag = m.tag;
    status->bytes = m.wire_bytes;
  }
  ++stats_.recvs;
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes,
                RecvStatus* status) {
  const VTime t0 = now();
  trace(CommEvent::Kind::kRecv, src, tag, bytes);
  simk::Message m = match_recv(src, tag);
  const int from = m.src;
  complete_eager_or_rts(m, data, bytes, status);
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kRecv, from, bytes, t0);
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t bytes) {
  const VTime t0 = now();
  STGSIM_CHECK(dst >= 0 && dst < size());
  trace(CommEvent::Kind::kIsend, dst, tag, bytes);
  proc_.advance(world_.options().net.send_overhead);
  ++stats_.sends;
  stats_.bytes_sent += bytes;

  Request req;
  req.peer = dst;
  req.tag = tag;
  req.bytes = bytes;

  if (abstract_comm() || !world_.network().uses_rendezvous(bytes)) {
    send_raw(dst, kKindEager, tag, 0, data, bytes, bytes);
    req.kind_ = Request::Kind::kSendDone;
    req.done_ = true;
  } else {
    const std::uint64_t rid =
        (static_cast<std::uint64_t>(rank()) << 32) | next_rid_++;
    simk::Message m;
    m.src = rank();
    m.dst = dst;
    m.kind = kKindRts;
    m.tag = tag;
    m.aux = rid;
    m.sent_at = now();
    m.arrival = world_.network().arrival(rank(), dst, now(), kControlBytes,
                                         proc_.rng(),
                                         net::TransferKind::kControl);
    m.wire_bytes = bytes;
    if (data != nullptr && bytes > 0) {
      m.payload = proc_.make_payload(data, bytes);
    }
    proc_.send(std::move(m));
    req.kind_ = Request::Kind::kSendRendezvous;
    req.rid = rid;
  }
  stats_.comm_time += now() - t0;
  if (world_.options().obs != nullptr) {
    world_.options().obs->count_p2p(
        rank(), dst, bytes,
        !abstract_comm() && world_.network().uses_rendezvous(bytes));
    obs_op(obs::OpKind::kIsend, dst, bytes, t0);
  }
  return req;
}

Request Comm::irecv(int src, int tag, void* data, std::size_t bytes,
                    RecvStatus* status) {
  trace(CommEvent::Kind::kIrecv, src, tag, bytes);
  Request req;
  req.kind_ = Request::Kind::kRecv;
  req.peer = src;
  req.tag = tag;
  req.buf = data;
  req.bytes = bytes;
  req.status = status;
  obs_op(obs::OpKind::kIrecv, src, bytes, now());  // posting is instant
  return req;
}

void Comm::wait(Request& req) {
  STGSIM_CHECK(req.valid()) << "wait() on invalid request";
  if (req.done_) return;
  const VTime t0 = now();
  switch (req.kind_) {
    case Request::Kind::kSendRendezvous: {
      simk::MatchSpec spec;
      spec.src = req.peer;
      spec.kind_mask = kMaskCts;
      spec.match_aux = true;
      spec.aux = req.rid;
      spec.what = "rendezvous-cts";
      spec.user_tag = req.tag;
      simk::Message cts = proc_.blocking_match(spec);
      proc_.lift_clock(cts.arrival);
      break;
    }
    case Request::Kind::kRecv: {
      simk::Message m = match_recv(req.peer, req.tag);
      complete_eager_or_rts(m, req.buf, req.bytes, req.status);
      break;
    }
    default:
      break;
  }
  req.done_ = true;
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kWait, req.peer, req.bytes, t0);
}

void Comm::waitall(std::vector<Request>& reqs) {
  const VTime t0 = now();
  trace(CommEvent::Kind::kWaitall, -1, 0, reqs.size());
  // Service receives first: granting CTSes unblocks peers whose
  // rendezvous sends we may be waiting on ourselves (progress-engine
  // behaviour of a real MPI library).
  for (auto& r : reqs) {
    if (r.kind_ == Request::Kind::kRecv) wait(r);
  }
  for (auto& r : reqs) {
    if (!r.done_) wait(r);
  }
  obs_op(obs::OpKind::kWaitall, -1, reqs.size(), t0);
}

std::size_t Comm::waitany(std::vector<Request>& reqs) {
  const VTime t0 = now();
  auto spec_for = [](const Request& r, simk::MatchSpec* spec) {
    if (r.kind_ == Request::Kind::kSendRendezvous) {
      spec->src = r.peer;
      spec->kind_mask = kMaskCts;
      spec->match_aux = true;
      spec->aux = r.rid;
      spec->what = "rendezvous-cts";
      spec->user_tag = r.tag;
      return true;
    }
    if (r.kind_ == Request::Kind::kRecv) {
      spec->src =
          (r.peer == kAnySource) ? simk::MatchSpec::kAnySource : r.peer;
      spec->kind_mask = kMaskP2P;
      spec->tag = r.tag;  // kAnyTag == MatchSpec::kAnyTag
      spec->what = "recv";
      spec->user_tag = r.tag;
      return true;
    }
    return false;
  };
  auto complete = [&](std::size_t i, simk::MatchSpec& spec) {
    Request& r = reqs[i];
    simk::Message m;
    STGSIM_CHECK(proc_.try_match(spec, &m));
    if (r.kind_ == Request::Kind::kSendRendezvous) {
      proc_.lift_clock(m.arrival);
    } else {
      complete_eager_or_rts(m, r.buf, r.bytes, r.status);
    }
    r.done_ = true;
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kWaitany, r.peer, r.bytes, t0);
  };

  while (true) {
    // Pass 1: among everything already completable, finish the one whose
    // message arrived earliest in virtual time (what a real waitany on
    // the target machine would have observed first).
    bool any_incomplete = false;
    int matchable = 0;
    std::size_t best_idx = reqs.size();
    VTime best_arrival = kVTimeNever;
    simk::MatchSpec best_spec;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& r = reqs[i];
      if (!r.valid() || r.done_) continue;
      any_incomplete = true;
      simk::MatchSpec spec;
      if (!spec_for(r, &spec)) continue;
      ++matchable;
      VTime arrival = 0;
      if (proc_.peek_match(spec, &arrival) && arrival < best_arrival) {
        best_arrival = arrival;
        best_idx = i;
        best_spec = std::move(spec);
      }
    }
    if (best_idx < reqs.size()) {
      // Committing here is a cross-source choice whenever more than one
      // request (or an ANY_SOURCE request) is pending: a slower-clocked
      // rank could still send an earlier-arriving match for another
      // alternative. Only commit under the engine's safety bound; when it
      // does not hold yet, fall through to the blocking path, which parks
      // until the bound passes.
      const bool choice =
          matchable > 1 || best_spec.src == simk::MatchSpec::kAnySource;
      if (!choice ||
          proc_.engine().wildcard_commit_safe(proc_, best_arrival)) {
        complete(best_idx, best_spec);
        return best_idx;
      }
    }
    STGSIM_CHECK(any_incomplete) << "waitany with no incomplete requests";

    // Pass 2: block on the union of all pending matches; the winning
    // message is identified afterwards by re-testing each request. The
    // alternatives live on this fiber's stack for the whole block.
    std::vector<simk::MatchSpec> alts;
    alts.reserve(reqs.size());
    for (const Request& r : reqs) {
      if (!r.valid() || r.done_) continue;
      simk::MatchSpec s;
      if (spec_for(r, &s)) alts.push_back(s);
    }
    simk::MatchSpec united;
    united.src = simk::MatchSpec::kAnySource;
    united.what = "waitany";
    united.any_of = alts.data();
    united.any_of_count = static_cast<std::uint32_t>(alts.size());
    simk::Message m = proc_.blocking_match(united);

    // Attribute the message to the first request it satisfies.
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Request& r = reqs[i];
      if (!r.valid() || r.done_) continue;
      simk::MatchSpec s;
      if (!spec_for(r, &s) || !s.accepts(m)) continue;
      if (r.kind_ == Request::Kind::kSendRendezvous) {
        proc_.lift_clock(m.arrival);
      } else {
        complete_eager_or_rts(m, r.buf, r.bytes, r.status);
      }
      r.done_ = true;
      stats_.comm_time += now() - t0;
      obs_op(obs::OpKind::kWaitany, r.peer, r.bytes, t0);
      return i;
    }
    STGSIM_UNREACHABLE("waitany matched a message no request claims");
  }
}

void Comm::sendrecv(int dst, int send_tag, const void* send_data,
                    std::size_t send_bytes, int src, int recv_tag,
                    void* recv_data, std::size_t recv_bytes,
                    RecvStatus* status) {
  const VTime t0 = now();
  std::vector<Request> reqs;
  reqs.push_back(irecv(src, recv_tag, recv_data, recv_bytes, status));
  reqs.push_back(isend(dst, send_tag, send_data, send_bytes));
  waitall(reqs);
  obs_op(obs::OpKind::kSendrecv, dst, send_bytes + recv_bytes, t0);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Comm::coll_send(int dst, int round, const void* data, std::size_t bytes) {
  proc_.advance(world_.options().net.send_overhead);
  const std::uint64_t aux =
      (coll_seq_ << 8) | static_cast<std::uint64_t>(round & 0xff);
  send_raw(dst, kKindColl, 0, aux, data, bytes,
           std::max(bytes, std::size_t{8}));
  stats_.bytes_sent += bytes;
  if (world_.options().obs != nullptr) {
    world_.options().obs->count_coll_msg(rank(), dst, bytes);
  }
}

void Comm::coll_recv(int src, int round, void* data, std::size_t bytes) {
  simk::MatchSpec spec;
  spec.src = src;
  spec.kind_mask = kMaskColl;
  spec.match_aux = true;
  spec.aux = (coll_seq_ << 8) | static_cast<std::uint64_t>(round & 0xff);
  spec.what = "collective";
  simk::Message m = proc_.blocking_match(spec);
  proc_.lift_clock(m.arrival);
  proc_.advance(world_.options().net.recv_overhead);
  if (data != nullptr && !m.payload.empty()) {
    STGSIM_CHECK_LE(m.payload.size(), bytes);
    std::memcpy(data, m.payload.data(), m.payload.size());
  }
}

void Comm::barrier() {
  trace(CommEvent::Kind::kBarrier, -1, 0, 0);
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  if (abstract_comm()) {
    // Gather/release star with a closed-form cost each way.
    const VTime half = abstract_coll_cost(0) / 2;
    if (rank() == 0) {
      VTime latest = now();
      for (int r = 1; r < P; ++r) {
        simk::MatchSpec spec;
        spec.src = r;
        spec.kind_mask = kMaskColl;
        spec.match_aux = true;
        spec.aux = (coll_seq_ << 8);
        spec.what = "collective";
        simk::Message m = proc_.blocking_match(spec);
        latest = std::max(latest, m.arrival);
      }
      proc_.lift_clock(latest + half);
      for (int r = 1; r < P; ++r) {
        coll_send_at(r, 1, nullptr, 0, now() + half);
      }
    } else {
      coll_send_at(0, 0, nullptr, 0, now() + half);
      coll_recv(0, 1, nullptr, 0);
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kBarrier, -1, 0, t0);
    return;
  }
  if (coll_algo(CollOp::kBarrier, coll_cfg().barrier, 0) ==
      CollAlgo::kLinear) {
    // Gather-to-0 then release, both root-sequential.
    if (rank() == 0) {
      for (int r = 1; r < P; ++r) coll_recv(r, 0, nullptr, 0);
      for (int r = 1; r < P; ++r) coll_send(r, 1, nullptr, 0);
    } else {
      coll_send(0, 0, nullptr, 0);
      coll_recv(0, 1, nullptr, 0);
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kBarrier, -1, 0, t0);
    return;
  }
  for (int round = 0, offset = 1; offset < P; ++round, offset <<= 1) {
    const int dst = (rank() + offset) % P;
    const int src = (rank() - offset % P + P) % P;
    coll_send(dst, round, nullptr, 0);
    coll_recv(src, round, nullptr, 0);
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kBarrier, -1, 0, t0);
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  trace(CommEvent::Kind::kBcast, root, 0, bytes);
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  const int relative = (rank() - root + P) % P;

  if (abstract_comm()) {
    // Star from the root, arrivals at the closed-form completion time.
    if (rank() == root) {
      const VTime done = now() + abstract_coll_cost(bytes);
      for (int r = 0; r < P; ++r) {
        if (r != root) coll_send_at(r, 0, data, bytes, done);
      }
    } else {
      coll_recv(root, 0, data, bytes);
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kBcast, root, bytes, t0);
    return;
  }

  const CollAlgo algo = coll_algo(CollOp::kBcast, coll_cfg().bcast, bytes);
  if (algo == CollAlgo::kLinear) {
    if (rank() == root) {
      for (int r = 0; r < P; ++r) {
        if (r != root) coll_send(r, 0, data, bytes);
      }
    } else {
      coll_recv(root, 0, data, bytes);
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kBcast, root, bytes, t0);
    return;
  }
  if (algo == CollAlgo::kRing) {
    bcast_ring(data, bytes, root);
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kBcast, root, bytes, t0);
    return;
  }

  int mask = 1;
  while (mask < P) {
    if (relative & mask) {
      const int src = (rank() - mask + P) % P;
      coll_recv(src, 0, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < P) {
      const int dst = (rank() + mask) % P;
      coll_send(dst, 0, data, bytes);
    }
    mask >>= 1;
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kBcast, root, bytes, t0);
}

void Comm::reduce_sum(double* inout, int n, int root) {
  trace(CommEvent::Kind::kAllreduce, root, 0,
        static_cast<std::size_t>(n) * sizeof(double));
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  const int relative = (rank() - root + P) % P;
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
  std::vector<double> partial(static_cast<std::size_t>(n));

  if (abstract_comm()) {
    // Gather star into the root; completion = latest entry + closed form.
    const VTime cost = abstract_coll_cost(bytes);
    if (rank() == root) {
      VTime latest = now();
      for (int r = 0; r < P; ++r) {
        if (r == root) continue;
        simk::MatchSpec spec;
        spec.src = r;
        spec.kind_mask = kMaskColl;
        spec.match_aux = true;
        spec.aux = (coll_seq_ << 8);
        spec.what = "collective";
        simk::Message m = proc_.blocking_match(spec);
        latest = std::max(latest, m.arrival);
        if (inout != nullptr && !m.payload.empty()) {
          std::memcpy(partial.data(), m.payload.data(), m.payload.size());
          for (int i = 0; i < n; ++i) inout[i] += partial[i];
        }
      }
      proc_.lift_clock(latest + cost);
    } else {
      coll_send_at(root, 0, inout, bytes, now());
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kReduce, root, bytes, t0);
    return;
  }

  const CollAlgo algo = coll_algo(CollOp::kReduce, coll_cfg().reduce, bytes);
  if (algo == CollAlgo::kLinear) {
    if (rank() == root) {
      for (int r = 0; r < P; ++r) {
        if (r == root) continue;
        coll_recv(r, 0, partial.data(), bytes);
        if (inout != nullptr) {
          for (int i = 0; i < n; ++i) inout[i] += partial[i];
        }
      }
    } else {
      coll_send(root, 0, inout, bytes);
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kReduce, root, bytes, t0);
    return;
  }
  if (algo == CollAlgo::kRing && P > 1) {
    reduce_ring(inout, n, root, /*is_max=*/false);
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kReduce, root, bytes, t0);
    return;
  }

  int mask = 1;
  while (mask < P) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < P) {
        const int src = (src_rel + root) % P;
        coll_recv(src, mask, partial.data(), bytes);
        if (inout != nullptr) {
          for (int i = 0; i < n; ++i) inout[i] += partial[i];
        }
      }
    } else {
      const int dst = ((relative & ~mask) + root) % P;
      coll_send(dst, mask, inout, bytes);
      break;
    }
    mask <<= 1;
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kReduce, root, bytes, t0);
}

void Comm::allreduce_sum(double* inout, int n) {
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
  if (!abstract_comm() && size() > 1 &&
      coll_algo(CollOp::kAllreduce, coll_cfg().allreduce, bytes) ==
          CollAlgo::kRing) {
    trace(CommEvent::Kind::kAllreduce, -1, 0, bytes);
    const VTime t0 = now();
    ++coll_seq_;
    ++stats_.collectives;
    allreduce_ring(inout, n, /*is_max=*/false);
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kAllreduce, -1, bytes, t0);
    return;
  }
  // Tree/linear compositions reuse reduce + bcast, each dispatching its
  // own configured algorithm.
  reduce_sum(inout, n, 0);
  bcast(inout, bytes, 0);
}

double Comm::allreduce_sum(double value) {
  allreduce_sum(&value, 1);
  return value;
}

void Comm::allreduce_max(double* inout, int n) {
  if (!abstract_comm() && size() > 1 &&
      coll_algo(CollOp::kAllreduce, coll_cfg().allreduce,
                static_cast<std::size_t>(n) * sizeof(double)) ==
          CollAlgo::kRing) {
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
    trace(CommEvent::Kind::kAllreduce, -1, 1, bytes);
    const VTime t0 = now();
    ++coll_seq_;
    ++stats_.collectives;
    allreduce_ring(inout, n, /*is_max=*/true);
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kAllreduce, -1, bytes, t0);
    return;
  }
  trace(CommEvent::Kind::kAllreduce, -1, 1,
        static_cast<std::size_t>(n) * sizeof(double));
  // Same binomial pattern as reduce_sum with a max combiner, then bcast.
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(double);
  std::vector<double> partial(static_cast<std::size_t>(n));

  if (abstract_comm()) {
    // Gather star into rank 0, closed-form completion, then bcast (which
    // itself takes the abstract path).
    const VTime cost = abstract_coll_cost(bytes);
    if (rank() == 0) {
      VTime latest = now();
      for (int r = 1; r < P; ++r) {
        simk::MatchSpec spec;
        spec.src = r;
        spec.kind_mask = kMaskColl;
        spec.match_aux = true;
        spec.aux = (coll_seq_ << 8);
        spec.what = "collective";
        simk::Message m = proc_.blocking_match(spec);
        latest = std::max(latest, m.arrival);
        if (inout != nullptr && !m.payload.empty()) {
          std::memcpy(partial.data(), m.payload.data(), m.payload.size());
          for (int i = 0; i < n; ++i) {
            inout[i] = std::max(inout[i], partial[i]);
          }
        }
      }
      proc_.lift_clock(latest + cost);
    } else {
      coll_send_at(0, 0, inout, bytes, now());
    }
    stats_.comm_time += now() - t0;
    obs_op(obs::OpKind::kAllreduce, -1, bytes, t0);
    bcast(inout, bytes, 0);
    return;
  }

  int mask = 1;
  while (mask < P) {
    if ((rank() & mask) == 0) {
      const int src = rank() | mask;
      if (src < P) {
        coll_recv(src, mask, partial.data(), bytes);
        if (inout != nullptr) {
          for (int i = 0; i < n; ++i) inout[i] = std::max(inout[i], partial[i]);
        }
      }
    } else {
      const int dst = rank() & ~mask;
      coll_send(dst, mask, inout, bytes);
      break;
    }
    mask <<= 1;
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kAllreduce, -1, bytes, t0);
  bcast(inout, bytes, 0);
}

void Comm::gather(const void* send, std::size_t bytes_each, void* recv_all,
                  int root) {
  trace(CommEvent::Kind::kAllreduce, root, 2, bytes_each);
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  if (rank() == root) {
    auto* out = static_cast<std::uint8_t*>(recv_all);
    if (out != nullptr && send != nullptr) {
      std::memcpy(out + static_cast<std::size_t>(root) * bytes_each, send,
                  bytes_each);
    }
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      coll_recv(r, 0,
                out != nullptr
                    ? out + static_cast<std::size_t>(r) * bytes_each
                    : nullptr,
                bytes_each);
    }
  } else {
    coll_send(root, 0, send, bytes_each);
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kGather, root, bytes_each, t0);
}

void Comm::scatter(const void* send_all, std::size_t bytes_each, void* recv,
                   int root) {
  trace(CommEvent::Kind::kAllreduce, root, 3, bytes_each);
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  if (rank() == root) {
    const auto* in = static_cast<const std::uint8_t*>(send_all);
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      coll_send(r, 0,
                in != nullptr ? in + static_cast<std::size_t>(r) * bytes_each
                              : nullptr,
                bytes_each);
    }
    if (recv != nullptr && in != nullptr) {
      std::memcpy(recv, in + static_cast<std::size_t>(root) * bytes_each,
                  bytes_each);
    }
  } else {
    coll_recv(root, 0, recv, bytes_each);
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kScatter, root, bytes_each, t0);
}

// ---------------------------------------------------------------------------
// Ring algorithms
//
// All rings run root-relative: rank r sits at chain/ring position
// rel = (r - root + P) % P and talks only to its immediate neighbours.
// coll_send is eager fire-and-forget, so the send-then-recv step order is
// deadlock-free by construction.
// ---------------------------------------------------------------------------

void Comm::bcast_ring(void* data, std::size_t bytes, int root) {
  const int P = size();
  if (P < 2) return;
  auto* out = static_cast<std::uint8_t*>(data);
  const int rel = (rank() - root + P) % P;
  const int prev = (rank() - 1 + P) % P;
  const int next = (rank() + 1) % P;
  // Pipelined chain: the payload is cut into P segments that stream down
  // the chain, so the bandwidth term is ~2x the payload (like van de
  // Geijn scatter+allgather) instead of P-1 x for a naive chain.
  const int segments = P;
  for (int seg = 0; seg < segments; ++seg) {
    const std::size_t lo = bytes * static_cast<std::size_t>(seg) / segments;
    const std::size_t hi =
        bytes * (static_cast<std::size_t>(seg) + 1) / segments;
    void* p = out != nullptr ? out + lo : nullptr;
    if (rel > 0) coll_recv(prev, seg, p, hi - lo);
    if (rel < P - 1) coll_send(next, seg, p, hi - lo);
  }
}

void Comm::ring_reduce_scatter(double* work, int n, int root, bool is_max) {
  const int P = size();
  const int rel = (rank() - root + P) % P;
  const int right = (rank() + 1) % P;
  const int left = (rank() - 1 + P) % P;
  // Chunk c covers elements [c*n/P, (c+1)*n/P).
  auto lo = [&](int c) {
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(n) / P;
  };
  std::vector<double> tmp(static_cast<std::size_t>(n) / P + 1);
  for (int s = 0; s < P - 1; ++s) {
    // The chunk received last step is the one sent this step, so the
    // partial sums accumulate around the ring; after P-1 steps chunk
    // (rel + 1) % P on this rank holds every rank's contribution.
    const int send_c = ((rel - s) % P + P) % P;
    const int recv_c = ((rel - s - 1) % P + P) % P;
    const std::size_t recv_lo = lo(recv_c);
    const std::size_t recv_n = lo(recv_c + 1) - recv_lo;
    coll_send(right, s, work != nullptr ? work + lo(send_c) : nullptr,
              (lo(send_c + 1) - lo(send_c)) * sizeof(double));
    coll_recv(left, s, work != nullptr ? tmp.data() : nullptr,
              recv_n * sizeof(double));
    if (work != nullptr) {
      for (std::size_t i = 0; i < recv_n; ++i) {
        if (is_max) {
          work[recv_lo + i] = std::max(work[recv_lo + i], tmp[i]);
        } else {
          work[recv_lo + i] += tmp[i];
        }
      }
    }
  }
}

void Comm::ring_allgather(double* work, int n, int root) {
  const int P = size();
  const int rel = (rank() - root + P) % P;
  const int right = (rank() + 1) % P;
  const int left = (rank() - 1 + P) % P;
  auto lo = [&](int c) {
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(n) / P;
  };
  // Entry state: chunk (rel + 1) % P is this rank's fully reduced chunk
  // (ring_reduce_scatter's postcondition). Rounds continue the sequence
  // numbers where reduce-scatter left off.
  for (int s = 0; s < P - 1; ++s) {
    const int send_c = ((rel + 1 - s) % P + P) % P;
    const int recv_c = ((rel - s) % P + P) % P;
    coll_send(right, P - 1 + s,
              work != nullptr ? work + lo(send_c) : nullptr,
              (lo(send_c + 1) - lo(send_c)) * sizeof(double));
    coll_recv(left, P - 1 + s,
              work != nullptr ? work + lo(recv_c) : nullptr,
              (lo(recv_c + 1) - lo(recv_c)) * sizeof(double));
  }
}

void Comm::allreduce_ring(double* inout, int n, bool is_max) {
  if (size() < 2) return;
  ring_reduce_scatter(inout, n, 0, is_max);
  ring_allgather(inout, n, 0);
}

void Comm::reduce_ring(double* inout, int n, int root, bool is_max) {
  const int P = size();
  if (P < 2) return;
  ring_reduce_scatter(inout, n, root, is_max);
  // Owners forward their reduced chunk to the root (chunk c is owned by
  // relative position (c - 1 + P) % P).
  auto lo = [&](int c) {
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(n) / P;
  };
  const int rel = (rank() - root + P) % P;
  const int own_c = (rel + 1) % P;
  if (rank() == root) {
    for (int c = 0; c < P; ++c) {
      if (c == own_c) continue;
      const int owner = (((c - 1 + P) % P) + root) % P;
      coll_recv(owner, P - 1 + c,
                inout != nullptr ? inout + lo(c) : nullptr,
                (lo(c + 1) - lo(c)) * sizeof(double));
    }
  } else {
    coll_send(root, P - 1 + own_c,
              inout != nullptr ? inout + lo(own_c) : nullptr,
              (lo(own_c + 1) - lo(own_c)) * sizeof(double));
  }
}

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

void Comm::alltoall_pairwise(const void* send_all, std::size_t bytes_each,
                             void* recv_all) {
  const int P = size();
  const auto* in = static_cast<const std::uint8_t*>(send_all);
  auto* out = static_cast<std::uint8_t*>(recv_all);
  for (int s = 1; s < P; ++s) {
    // Step s exchanges with partners at ring distance s; every rank is in
    // exactly one pair-per-step, so the P-1 steps tile the traffic with
    // no endpoint contention.
    const int dst = (rank() + s) % P;
    const int src = (rank() - s + P) % P;
    coll_send(dst, s,
              in != nullptr ? in + static_cast<std::size_t>(dst) * bytes_each
                            : nullptr,
              bytes_each);
    coll_recv(src, s,
              out != nullptr
                  ? out + static_cast<std::size_t>(src) * bytes_each
                  : nullptr,
              bytes_each);
  }
}

void Comm::alltoall_linear(const void* send_all, std::size_t bytes_each,
                           void* recv_all) {
  const int P = size();
  const auto* in = static_cast<const std::uint8_t*>(send_all);
  auto* out = static_cast<std::uint8_t*>(recv_all);
  for (int r = 0; r < P; ++r) {
    if (r == rank()) continue;
    coll_send(r, 0,
              in != nullptr ? in + static_cast<std::size_t>(r) * bytes_each
                            : nullptr,
              bytes_each);
  }
  for (int r = 0; r < P; ++r) {
    if (r == rank()) continue;
    coll_recv(r, 0,
              out != nullptr ? out + static_cast<std::size_t>(r) * bytes_each
                             : nullptr,
              bytes_each);
  }
}

void Comm::alltoall(const void* send_all, std::size_t bytes_each,
                    void* recv_all) {
  trace(CommEvent::Kind::kAlltoall, -1, 0, bytes_each);
  const VTime t0 = now();
  ++coll_seq_;
  ++stats_.collectives;
  const int P = size();
  const auto* in = static_cast<const std::uint8_t*>(send_all);
  auto* out = static_cast<std::uint8_t*>(recv_all);
  if (out != nullptr && in != nullptr) {
    std::memcpy(out + static_cast<std::size_t>(rank()) * bytes_each,
                in + static_cast<std::size_t>(rank()) * bytes_each,
                bytes_each);
  }
  if (abstract_comm()) {
    // Every off-rank block lands at the closed-form completion time for
    // the full per-rank volume.
    const VTime done =
        now() + abstract_coll_cost(bytes_each * static_cast<std::size_t>(P));
    for (int s = 1; s < P; ++s) {
      const int dst = (rank() + s) % P;
      coll_send_at(dst, s,
                   in != nullptr
                       ? in + static_cast<std::size_t>(dst) * bytes_each
                       : nullptr,
                   bytes_each, done);
    }
    for (int s = 1; s < P; ++s) {
      const int src = (rank() - s + P) % P;
      coll_recv(src, s,
                out != nullptr
                    ? out + static_cast<std::size_t>(src) * bytes_each
                    : nullptr,
                bytes_each);
    }
  } else if (coll_algo(CollOp::kAlltoall, coll_cfg().alltoall, bytes_each) ==
             CollAlgo::kLinear) {
    alltoall_linear(send_all, bytes_each, recv_all);
  } else {
    alltoall_pairwise(send_all, bytes_each, recv_all);
  }
  stats_.comm_time += now() - t0;
  obs_op(obs::OpKind::kAlltoall, -1, bytes_each, t0);
}

double Comm::read_param(const std::string& name) {
  double value = 0.0;
  if (rank() == 0) {
    proc_.advance(world_.options().param_read_cost);
    value = world_.param(name);
  }
  bcast(&value, sizeof value, 0);
  return value;
}

}  // namespace stgsim::smpi
